//! CPU-side configuration (Table 1) and derived latencies.

use serde::{Deserialize, Serialize};
use tee_mem::{DramConfig, HierarchyConfig};
use tee_sim::ClockDomain;

/// Static configuration of the simulated CPU socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Core frequency in GHz (Table 1: 3.5 GHz).
    pub freq_ghz: f64,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// DRAM configuration (Table 1: DDR4-2400, 2 channels).
    pub dram: DramConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// AES pipeline latency in cycles (Table 1: 40).
    pub aes_latency: u64,
    /// MAC computation latency in cycles (Table 1: 40).
    pub mac_latency: u64,
    /// Maximum outstanding misses per core (MSHR / memory-level parallelism).
    pub mlp: usize,
    /// Compute cycles per element for the Adam update (vectorized fp32).
    pub adam_cycles_per_element: f64,
    /// Metadata-cache capacity in bytes (Table 1: 32 KB).
    pub metadata_cache_bytes: u64,
    /// Protected-region capacity in 64 B lines (sizes the Merkle tree).
    pub protected_lines: usize,
    /// Whether engines perform real AES/MAC/Merkle computation (security
    /// tests) or count-only modeling (fast timing sweeps).
    pub functional_crypto: bool,
}

impl Default for CpuConfig {
    /// The Table-1 configuration.
    fn default() -> Self {
        CpuConfig {
            freq_ghz: 3.5,
            hierarchy: HierarchyConfig::default(),
            dram: DramConfig::ddr4_2400_2ch(),
            l1_latency: 4,
            l2_latency: 14,
            l3_latency: 38,
            aes_latency: 40,
            mac_latency: 40,
            mlp: 10,
            adam_cycles_per_element: 1.0,
            metadata_cache_bytes: 32 << 10,
            protected_lines: 1 << 21, // 128 MiB protected region
            functional_crypto: false,
        }
    }
}

impl CpuConfig {
    /// A proportionally scaled-down configuration for fast benchmarking:
    /// caches and protected region shrink 8×, so MB-scale working sets
    /// reproduce the memory-bound behaviour of the full-size system.
    pub fn scaled_down() -> Self {
        let mut cfg = Self::default();
        cfg.hierarchy.l3.size_bytes = 1 << 20; // 1 MiB
        cfg.hierarchy.l2.size_bytes = 32 << 10;
        cfg.hierarchy.l1.size_bytes = 8 << 10;
        cfg.protected_lines = 1 << 18; // 16 MiB protected region
        cfg
    }

    /// The core clock domain.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::from_ghz(self.freq_ghz)
    }

    /// Converts core cycles to simulated time.
    pub fn cycles(&self, n: u64) -> tee_sim::Time {
        self.clock().cycles_to_time(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.freq_ghz, 3.5);
        assert_eq!(c.hierarchy.cores, 8);
        assert_eq!(c.hierarchy.l1.size_bytes, 32 << 10);
        assert_eq!(c.hierarchy.l2.size_bytes, 256 << 10);
        assert_eq!(c.dram.channels, 2);
        assert_eq!(c.aes_latency, 40);
        assert_eq!(c.mac_latency, 40);
        assert_eq!(c.metadata_cache_bytes, 32 << 10);
    }

    #[test]
    fn scaled_down_preserves_shape() {
        let c = CpuConfig::scaled_down();
        assert!(c.hierarchy.l3.size_bytes < CpuConfig::default().hierarchy.l3.size_bytes);
        assert_eq!(c.freq_ghz, 3.5);
    }

    #[test]
    fn cycle_conversion() {
        let c = CpuConfig::default();
        // 35 cycles at 3.5 GHz = 10 ns.
        assert_eq!(c.cycles(35), tee_sim::Time::from_ns(10));
    }
}
