//! # tee-cpu
//!
//! The CPU side of the TensorTEE reproduction:
//!
//! * [`config`] — Table-1 system configuration,
//! * [`tensor`] — tensor descriptors,
//! * [`mee`] — the SGX-like cacheline-granularity MEE baseline
//!   (VN + MAC + 8-ary Bonsai Merkle tree + 32 KB metadata cache),
//! * [`analyzer`] — **TenAnalyzer**, the paper's hardware tensor-detection
//!   unit (Meta Table + Tensor Filter + Figure-12 write protocol),
//! * [`softvn`] — the SoftVN software-declared baseline,
//! * [`kernels`] — Adam-update and tiled-GEMM workload generators,
//! * [`engine`] — the execution engine that drives request streams through
//!   caches → TEE → DRAM and produces Figures 3, 18, 19 and §6.2.
//!
//! ## Quick start
//!
//! ```
//! use tee_cpu::analyzer::TenAnalyzerConfig;
//! use tee_cpu::engine::{CpuEngine, TeeMode};
//! use tee_cpu::kernels::AdamWorkload;
//! use tee_cpu::config::CpuConfig;
//!
//! let workload = AdamWorkload::synthetic(2, 8 << 10);
//! let mut engine = CpuEngine::new(
//!     CpuConfig::default(),
//!     TeeMode::TensorTee(TenAnalyzerConfig::default()),
//! );
//! let report = engine.run_adam(&workload, 2, 3);
//! assert_eq!(report.iterations.len(), 3);
//! ```

pub mod analyzer;
pub mod config;
pub mod engine;
pub mod kernels;
pub mod mee;
pub mod softvn;
pub mod tensor;

pub use analyzer::{TenAnalyzer, TenAnalyzerConfig};
pub use config::CpuConfig;
pub use engine::{AdamReport, CpuEngine, GemmReport, TeeMode};
pub use kernels::{AdamWorkload, GemmWorkload};
pub use mee::{IntegrityError, SgxMee, VnPath};
pub use softvn::{SoftVnConfig, SoftVnTable};
pub use tensor::TensorDesc;
