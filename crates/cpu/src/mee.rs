//! The SGX-like Memory Encryption Engine baseline (§2.2, §5.1).
//!
//! Per 64 B cacheline the MEE keeps a 56-bit VN and a MAC in DRAM, with an
//! 8-ary Merkle tree protecting the VNs and a 32 KB on-chip metadata cache
//! in front of all of it. Every LLC miss therefore costs up to
//! `1 (data) + 1 (VN) + walk (Merkle) + 1 (MAC)` DRAM accesses — the
//! metadata traffic that turns Adam memory-bound in Figure 3.
//!
//! The same engine also serves TensorTEE and SoftVN runs through
//! [`VnPath::OnChip`]/[`VnPath::Background`], which skip the VN fetch and
//! Merkle walk exactly as the Meta Table does.

use crate::config::CpuConfig;
use std::collections::HashMap;
use tee_crypto::ctr::LINE_BYTES as CRYPTO_LINE;
use tee_crypto::mac::{line_mac, MacKey, MacTag};
use tee_crypto::{CtrEngine, Key, LineCounter, VnMerkleTree};
use tee_mem::mc::RequestClass;
use tee_mem::metadata::MetaKind;
use tee_mem::store::LineData;
use tee_mem::{MemoryController, MetadataCache, PhysMem};
use tee_sim::{StatSet, Time};

/// How the VN for a request is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VnPath {
    /// SGX baseline: fetch the VN from DRAM and verify it through the
    /// Merkle tree (both on the critical path, metadata-cache filtered).
    OffChip,
    /// The VN is already on-chip (SoftVN hit): no VN fetch, no Merkle
    /// walk — but the per-line MAC is still fetched from DRAM.
    OnChip(u64),
    /// TensorTEE `hit_in`: VN *and* MAC are both on-chip at tensor
    /// granularity (the Meta Table entry holds the XOR tensor MAC), so no
    /// metadata DRAM traffic at all.
    OnChipTensorMac(u64),
    /// Meta Table `hit_boundary`: the VN is *assumed* on-chip and used
    /// immediately, while a confirming VN fetch is issued off the critical
    /// path (bandwidth cost only). MAC handling is tensor-granularity.
    Background(u64),
}

impl VnPath {
    /// Whether the per-line MAC must be fetched from/stored to DRAM.
    fn needs_line_mac(&self) -> bool {
        matches!(self, VnPath::OffChip | VnPath::OnChip(_))
    }
}

/// Integrity failures surfaced by functional verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// Recomputed MAC did not match the stored MAC.
    MacMismatch {
        /// Offending physical line address.
        pa: u64,
    },
    /// Merkle-tree walk found an inconsistent node.
    MerkleViolation {
        /// Tree level of the mismatch.
        level: usize,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::MacMismatch { pa } => write!(f, "MAC mismatch at {pa:#x}"),
            IntegrityError::MerkleViolation { level } => {
                write!(f, "merkle violation at level {level}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Result of one MEE line operation.
#[derive(Debug, Clone)]
pub struct LineOp {
    /// Completion time (data usable / write retired).
    pub done: Time,
    /// Decrypted plaintext (functional mode only).
    pub data: Option<LineData>,
    /// Verification outcome (always `Ok` in count-only mode).
    pub integrity: Result<(), IntegrityError>,
}

/// The memory-encryption engine.
///
/// In *functional* mode it really encrypts/decrypts the [`PhysMem`] image
/// and maintains a live Merkle tree; in count-only mode it models the same
/// timing and traffic without touching data.
#[derive(Debug)]
pub struct SgxMee {
    functional: bool,
    protected_lines: usize,
    merkle_depth: usize,
    aes_latency: Time,
    mac_latency: Time,
    ctr: CtrEngine,
    mac_key: MacKey,
    tree: Option<VnMerkleTree>,
    leaf_map: HashMap<u64, usize>,
    next_leaf: usize,
    macs: HashMap<u64, MacTag>,
    /// Count-only mode: lightweight per-line VN mirror (the functional
    /// tree serves this in functional mode). TenAnalyzer's detection
    /// depends on observing real off-chip VNs.
    plain_vns: HashMap<u64, u64>,
    meta_cache: MetadataCache,
    bitmap_pending: u64,
    stats: StatSet,
}

/// Synthetic DRAM regions for metadata traffic (distinct from data PAs).
const VN_REGION: u64 = 0x4000_0000_0000;
const MAC_REGION: u64 = 0x5000_0000_0000;
const MERKLE_REGION: u64 = 0x6000_0000_0000;

impl SgxMee {
    /// Builds an MEE from the CPU configuration and an enclave key.
    pub fn new(cfg: &CpuConfig, key: Key) -> Self {
        let clock = cfg.clock();
        let mac_key = MacKey::from(key);
        let tree = if cfg.functional_crypto {
            Some(VnMerkleTree::new(cfg.protected_lines, mac_key))
        } else {
            None
        };
        let merkle_depth = Self::depth_for(cfg.protected_lines);
        SgxMee {
            functional: cfg.functional_crypto,
            protected_lines: cfg.protected_lines,
            merkle_depth,
            aes_latency: clock.cycles_to_time(cfg.aes_latency),
            mac_latency: clock.cycles_to_time(cfg.mac_latency),
            ctr: CtrEngine::new(key.derive("enc")),
            mac_key,
            tree,
            leaf_map: HashMap::new(),
            next_leaf: 0,
            macs: HashMap::new(),
            plain_vns: HashMap::new(),
            meta_cache: MetadataCache::new(cfg.metadata_cache_bytes, 8),
            bitmap_pending: 0,
            stats: StatSet::new("mee"),
        }
    }

    fn depth_for(leaves: usize) -> usize {
        let mut depth = 1;
        let mut groups = leaves.div_ceil(8);
        while groups > 1 {
            groups = groups.div_ceil(8);
            depth += 1;
        }
        depth
    }

    /// The Merkle depth implied by the protected-region size.
    pub fn merkle_depth(&self) -> usize {
        self.merkle_depth
    }

    /// Traffic/verification statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// The metadata cache (hit-rate inspection).
    pub fn metadata_cache(&self) -> &MetadataCache {
        &self.meta_cache
    }

    /// The current VN of a line (functional mode; 0 if untouched).
    pub fn line_vn(&self, pa: u64) -> u64 {
        match (&self.tree, self.leaf_map.get(&pa)) {
            (Some(t), Some(&leaf)) => t.vn(leaf),
            (None, _) => self.plain_vns.get(&pa).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Adversarial hook: corrupt the stored off-chip VN of `pa` (functional
    /// mode), emulating replaying a stale VN without fixing the tree.
    pub fn corrupt_off_chip_vn(&mut self, pa: u64, vn: u64) {
        let leaf = self.leaf(pa);
        if let Some(t) = self.tree.as_mut() {
            t.corrupt_leaf(leaf, vn);
        }
    }

    /// Adversarial hook: overwrite the stored MAC for `pa`.
    pub fn forge_mac(&mut self, pa: u64, tag: MacTag) {
        self.macs.insert(pa, tag);
    }

    /// The stored MAC for a line, if any (used by transfer protocols).
    pub fn stored_mac(&self, pa: u64) -> Option<MacTag> {
        self.macs.get(&pa).copied()
    }

    /// Background VN fetch for a request that was served by the on-chip
    /// caches: TenAnalyzer still needs the off-chip VN (detection on a
    /// Meta Table miss, confirmation on a boundary hit). Consumes
    /// metadata bandwidth off the critical path.
    pub fn background_vn_fetch(&mut self, pa: u64, at: Time, mc: &mut MemoryController) {
        let leaf = self.leaf(pa);
        let _ = self.vn_access(leaf, at, mc, false);
    }

    fn leaf(&mut self, pa: u64) -> usize {
        debug_assert_eq!(pa % CRYPTO_LINE as u64, 0);
        if let Some(&l) = self.leaf_map.get(&pa) {
            return l;
        }
        let l = if self.next_leaf < self.protected_lines {
            let l = self.next_leaf;
            self.next_leaf += 1;
            l
        } else {
            assert!(
                !self.functional,
                "protected region exhausted ({} lines)",
                self.protected_lines
            );
            // Count-only mode: wrap (timing aliasing is harmless).
            self.next_leaf += 1;
            (self.next_leaf - 1) % self.protected_lines
        };
        self.leaf_map.insert(pa, l);
        l
    }

    /// Fetches the VN metadata line (cache-filtered); returns completion.
    fn vn_access(&mut self, leaf: usize, at: Time, mc: &mut MemoryController, write: bool) -> Time {
        let hit = if write {
            self.meta_cache.update(MetaKind::Vn, leaf as u64)
        } else {
            self.meta_cache.access(MetaKind::Vn, leaf as u64)
        };
        if hit {
            self.stats.bump("vn_meta_hit");
            at
        } else {
            self.stats.bump("vn_meta_miss");
            let addr = VN_REGION + (leaf as u64 / 8) * 64;
            mc.request(addr, RequestClass::Metadata, at)
        }
    }

    /// Walks the Merkle tree until a cached (trusted) node is found;
    /// returns the completion time of the last DRAM access on the walk.
    fn merkle_walk(
        &mut self,
        leaf: usize,
        at: Time,
        mc: &mut MemoryController,
        write: bool,
    ) -> Time {
        let mut t = at;
        let mut idx = leaf as u64;
        for level in 0..self.merkle_depth {
            idx /= 8;
            let hit = if write {
                self.meta_cache.update(MetaKind::Merkle(level as u8), idx)
            } else {
                self.meta_cache.access(MetaKind::Merkle(level as u8), idx)
            };
            if hit {
                self.stats.bump("merkle_meta_hit");
                if !write {
                    // A cached ancestor is already verified; stop early.
                    break;
                }
            } else {
                self.stats.bump("merkle_meta_miss");
                let addr = MERKLE_REGION + ((level as u64) << 40) + idx * 64;
                t = mc.request(addr, RequestClass::Metadata, t);
            }
        }
        t
    }

    /// Fetches/updates the MAC metadata line; returns completion.
    fn mac_access(
        &mut self,
        leaf: usize,
        at: Time,
        mc: &mut MemoryController,
        write: bool,
    ) -> Time {
        let hit = if write {
            self.meta_cache.update(MetaKind::Mac, leaf as u64)
        } else {
            self.meta_cache.access(MetaKind::Mac, leaf as u64)
        };
        if hit {
            self.stats.bump("mac_meta_hit");
            at
        } else {
            self.stats.bump("mac_meta_miss");
            let addr = MAC_REGION + (leaf as u64 / 8) * 64;
            mc.request(addr, RequestClass::Metadata, at)
        }
    }

    /// Serves an LLC-miss read of line `pa` issued at `at`.
    pub fn read_line(
        &mut self,
        pa: u64,
        path: VnPath,
        at: Time,
        mc: &mut MemoryController,
        mem: &mut PhysMem,
    ) -> LineOp {
        self.stats.bump("reads");
        let leaf = self.leaf(pa);
        let t_data = mc.request(pa, RequestClass::Demand, at);
        let (t_meta, vn, merkle_result) = match path {
            VnPath::OffChip => {
                let t_vn = self.vn_access(leaf, at, mc, false);
                let t_walk = self.merkle_walk(leaf, t_vn, mc, false);
                let (vn, res) = match &self.tree {
                    Some(tree) => (
                        tree.vn(leaf),
                        tree.verify(leaf)
                            .map(|_| ())
                            .map_err(|v| IntegrityError::MerkleViolation { level: v.level }),
                    ),
                    None => (0, Ok(())),
                };
                (t_walk, vn, res)
            }
            VnPath::OnChip(vn) | VnPath::OnChipTensorMac(vn) => {
                self.stats.bump("vn_onchip");
                (at, vn, Ok(()))
            }
            VnPath::Background(vn) => {
                self.stats.bump("vn_background");
                // Confirming fetch consumes bandwidth but is off the
                // critical path.
                let _ = self.vn_access(leaf, at, mc, false);
                (at, vn, Ok(()))
            }
        };
        let t_mac = if path.needs_line_mac() {
            self.mac_access(leaf, at, mc, false)
        } else {
            // Tensor-granularity MAC lives in the Meta Table entry
            // on-chip; no DRAM access (§4.2/§4.3 unified granularity).
            at
        };

        let (data, mac_result) = if self.functional {
            // Enclave memory is zero-initialized at creation: materialize
            // first-touch lines as encrypted zeros under the current VN.
            if !self.macs.contains_key(&pa) {
                let init_vn = self.tree.as_ref().map_or(0, |t| t.vn(leaf));
                let zeros = [0u8; 64];
                let ct = self
                    .ctr
                    .encrypt_line(&zeros, LineCounter { pa, vn: init_vn });
                mem.write_line(pa, ct);
                self.macs
                    .insert(pa, line_mac(&self.mac_key, &ct, pa, init_vn));
            }
            let ct = mem.read_line(pa);
            let pt = self.ctr.decrypt_line(&ct, LineCounter { pa, vn });
            let expect = self.macs.get(&pa).copied().unwrap_or_default();
            let computed = line_mac(&self.mac_key, &ct, pa, vn);
            let ok = computed == expect;
            (
                Some(pt),
                if ok {
                    Ok(())
                } else {
                    Err(IntegrityError::MacMismatch { pa })
                },
            )
        } else {
            (None, Ok(()))
        };

        let done = t_data.max(t_meta).max(t_mac)
            + match path {
                VnPath::OffChip => self.aes_latency + self.mac_latency,
                // On-chip VN lets the keystream precompute; only the MAC
                // check remains exposed.
                VnPath::OnChip(_) | VnPath::OnChipTensorMac(_) | VnPath::Background(_) => {
                    self.mac_latency
                }
            };
        LineOp {
            done,
            data,
            integrity: merkle_result.and(mac_result),
        }
    }

    /// Retires a write-back of line `pa` issued at `at`.
    ///
    /// For [`VnPath::OffChip`] the off-chip VN is incremented and the
    /// Merkle path updated. For on-chip paths the caller manages the VN
    /// (tensor-granularity); the off-chip VN copy is still kept equivalent
    /// via a background metadata update (bandwidth only).
    pub fn write_line(
        &mut self,
        pa: u64,
        plaintext: Option<&LineData>,
        path: VnPath,
        at: Time,
        mc: &mut MemoryController,
        mem: &mut PhysMem,
    ) -> Time {
        self.stats.bump("writes");
        let leaf = self.leaf(pa);
        // Advance the off-chip VN (functional bookkeeping for all paths —
        // the on-chip tensor VN must stay equivalent to per-line VNs).
        let vn = if let Some(tree) = self.tree.as_mut() {
            tree.increment(leaf);
            tree.vn(leaf)
        } else {
            let v = self.plain_vns.entry(pa).or_insert(0);
            *v += 1;
            *v
        };

        let t_data = mc.request(pa, RequestClass::Demand, at);
        let t_meta = match path {
            VnPath::OffChip => {
                let t_vn = self.vn_access(leaf, at, mc, true);
                self.merkle_walk(leaf, t_vn, mc, true)
            }
            VnPath::OnChip(_) | VnPath::OnChipTensorMac(_) | VnPath::Background(_) => {
                // Tensor-granularity writes track per-line updates in the
                // DRAM bitmap (1 bit/line, §4.2): one 64 B metadata line
                // covers 512 data lines, so the equivalence traffic is
                // 1/512 of the SGX per-line VN updates.
                self.bitmap_pending += 1;
                if self.bitmap_pending >= 512 {
                    self.bitmap_pending = 0;
                    self.stats.bump("bitmap_writeback");
                    let addr = VN_REGION + 0x0800_0000_0000 + (leaf as u64 / 512) * 64;
                    mc.request(addr, RequestClass::Metadata, at);
                }
                at
            }
        };
        let t_mac = if path.needs_line_mac() {
            self.mac_access(leaf, at, mc, true)
        } else {
            at
        };

        if self.functional {
            let pt = plaintext.expect("functional write needs data");
            let ct = self.ctr.encrypt_line(pt, LineCounter { pa, vn });
            mem.write_line(pa, ct);
            self.macs.insert(pa, line_mac(&self.mac_key, &ct, pa, vn));
        }

        t_data.max(t_meta).max(t_mac) + self.aes_latency + self.mac_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_mem::DramConfig;

    fn functional_setup() -> (SgxMee, MemoryController, PhysMem) {
        let cfg = CpuConfig {
            functional_crypto: true,
            protected_lines: 1 << 10,
            ..CpuConfig::default()
        };
        let mee = SgxMee::new(&cfg, Key::from_seed(1));
        let mc = MemoryController::new(DramConfig::ddr4_2400_2ch());
        (mee, mc, PhysMem::new())
    }

    #[test]
    fn depth_formula() {
        assert_eq!(SgxMee::depth_for(8), 1);
        assert_eq!(SgxMee::depth_for(64), 2);
        assert_eq!(SgxMee::depth_for(1 << 21), 7);
    }

    #[test]
    fn functional_round_trip() {
        let (mut mee, mut mc, mut mem) = functional_setup();
        let pt = [0x5A; 64];
        mee.write_line(
            0x100,
            Some(&pt),
            VnPath::OffChip,
            Time::ZERO,
            &mut mc,
            &mut mem,
        );
        let op = mee.read_line(0x100, VnPath::OffChip, Time::from_us(1), &mut mc, &mut mem);
        assert_eq!(op.data, Some(pt));
        assert!(op.integrity.is_ok());
        // Ciphertext at rest differs from plaintext.
        assert_ne!(mem.snoop(0x100), pt);
    }

    #[test]
    fn tamper_detected() {
        let (mut mee, mut mc, mut mem) = functional_setup();
        let pt = [7u8; 64];
        mee.write_line(
            0x40,
            Some(&pt),
            VnPath::OffChip,
            Time::ZERO,
            &mut mc,
            &mut mem,
        );
        mem.tamper_byte(0x40, 3, 0xFF);
        let op = mee.read_line(0x40, VnPath::OffChip, Time::from_us(1), &mut mc, &mut mem);
        assert_eq!(op.integrity, Err(IntegrityError::MacMismatch { pa: 0x40 }));
    }

    #[test]
    fn replay_detected() {
        let (mut mee, mut mc, mut mem) = functional_setup();
        let v1 = [1u8; 64];
        let v2 = [2u8; 64];
        mee.write_line(
            0x40,
            Some(&v1),
            VnPath::OffChip,
            Time::ZERO,
            &mut mc,
            &mut mem,
        );
        let stale_ct = mem.capture(0x40);
        let stale_mac = mee.stored_mac(0x40).unwrap();
        mee.write_line(
            0x40,
            Some(&v2),
            VnPath::OffChip,
            Time::from_us(1),
            &mut mc,
            &mut mem,
        );
        // Adversary replays ciphertext + matching stale MAC + stale VN.
        mem.replay(0x40, stale_ct);
        mee.forge_mac(0x40, stale_mac);
        mee.corrupt_off_chip_vn(0x40, 1);
        let op = mee.read_line(0x40, VnPath::OffChip, Time::from_us(2), &mut mc, &mut mem);
        // The Merkle tree catches the stale VN.
        assert!(matches!(
            op.integrity,
            Err(IntegrityError::MerkleViolation { .. })
        ));
    }

    #[test]
    fn onchip_path_skips_vn_traffic() {
        let cfg = CpuConfig {
            functional_crypto: false,
            ..CpuConfig::default()
        };
        let mut mee = SgxMee::new(&cfg, Key::from_seed(2));
        let mut mc = MemoryController::new(DramConfig::ddr4_2400_2ch());
        let mut mem = PhysMem::new();
        for i in 0..64u64 {
            mee.read_line(i * 64, VnPath::OnChip(0), Time::ZERO, &mut mc, &mut mem);
        }
        assert_eq!(mee.stats().get("vn_meta_miss"), 0);
        assert_eq!(mee.stats().get("merkle_meta_miss"), 0);
        assert_eq!(mee.stats().get("vn_onchip"), 64);
        // MAC lines are still fetched (8 lines for 64 leaves).
        assert!(mee.stats().get("mac_meta_miss") > 0);
    }

    #[test]
    fn offchip_path_generates_metadata_traffic() {
        let cfg = CpuConfig {
            functional_crypto: false,
            ..CpuConfig::default()
        };
        let mut mee = SgxMee::new(&cfg, Key::from_seed(2));
        let mut mc = MemoryController::new(DramConfig::ddr4_2400_2ch());
        let mut mem = PhysMem::new();
        for i in 0..512u64 {
            mee.read_line(i * 64, VnPath::OffChip, Time::ZERO, &mut mc, &mut mem);
        }
        assert!(mc.stats().get("metadata") > 0);
        assert!(mee.stats().get("vn_meta_miss") > 0);
    }

    #[test]
    fn onchip_read_completes_faster() {
        let cfg = CpuConfig {
            functional_crypto: false,
            ..CpuConfig::default()
        };
        let mut mee_off = SgxMee::new(&cfg, Key::from_seed(3));
        let mut mee_on = SgxMee::new(&cfg, Key::from_seed(3));
        let mut mem = PhysMem::new();
        let mut mc1 = MemoryController::new(DramConfig::ddr4_2400_2ch());
        let mut mc2 = MemoryController::new(DramConfig::ddr4_2400_2ch());
        let off = mee_off.read_line(0, VnPath::OffChip, Time::ZERO, &mut mc1, &mut mem);
        let on = mee_on.read_line(0, VnPath::OnChip(0), Time::ZERO, &mut mc2, &mut mem);
        assert!(on.done < off.done);
    }
}
