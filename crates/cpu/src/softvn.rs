//! SoftVN baseline (§2.2 "Limitations of existing work", Figure 19).
//!
//! SoftVN keeps tensor VNs in an on-chip table whose entries are declared
//! *explicitly by software*. It has no detection phase, so it performs well
//! immediately — but (1) VN acquisition sits on the cache-access critical
//! path, so lookup latency grows with the entry count, and (2) a tensor
//! used in parallel across cores occupies one entry per subtensor,
//! exhausting the table ("wastage of entries").

use crate::tensor::TensorDesc;
use serde::{Deserialize, Serialize};
use tee_sim::StatSet;

/// SoftVN configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SoftVnConfig {
    /// VN-table capacity in entries.
    pub entries: usize,
    /// Critical-path lookup cost: cycles per 64 entries searched.
    pub lookup_cycles_per_64: u64,
}

impl Default for SoftVnConfig {
    fn default() -> Self {
        SoftVnConfig {
            entries: 256,
            lookup_cycles_per_64: 1,
        }
    }
}

/// The software-managed VN table.
///
/// # Example
///
/// ```
/// use tee_cpu::softvn::{SoftVnConfig, SoftVnTable};
/// use tee_cpu::tensor::TensorDesc;
///
/// let mut t = SoftVnTable::new(SoftVnConfig::default());
/// assert!(t.declare(TensorDesc::new_1d(0, 4096)));
/// assert_eq!(t.lookup(64), Some(0));
/// t.bump(0);
/// assert_eq!(t.lookup(64), Some(1));
/// ```
#[derive(Debug)]
pub struct SoftVnTable {
    cfg: SoftVnConfig,
    declared: Vec<(TensorDesc, u64)>,
    stats: StatSet,
}

impl SoftVnTable {
    /// Creates an empty table.
    pub fn new(cfg: SoftVnConfig) -> Self {
        SoftVnTable {
            cfg,
            declared: Vec::new(),
            stats: StatSet::new("softvn"),
        }
    }

    /// Declares a tensor (software annotation). Returns `false` when the
    /// table is full — that tensor falls back to the off-chip path.
    pub fn declare(&mut self, desc: TensorDesc) -> bool {
        if self.declared.len() >= self.cfg.entries {
            self.stats.bump("declare_overflow");
            return false;
        }
        self.declared.push((desc, 0));
        true
    }

    /// Number of declared entries.
    pub fn len(&self) -> usize {
        self.declared.len()
    }

    /// Whether nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.declared.is_empty()
    }

    /// Looks up the VN covering `va`, if declared.
    pub fn lookup(&mut self, va: u64) -> Option<u64> {
        let hit = self
            .declared
            .iter()
            .find(|(d, _)| d.contains(va))
            .map(|&(_, vn)| vn);
        if hit.is_some() {
            self.stats.bump("hit");
        } else {
            self.stats.bump("miss");
        }
        hit
    }

    /// Software bumps a tensor's VN after its update completes (the
    /// explicit `specify VN at writeback` step SoftVN requires).
    pub fn bump(&mut self, base_va: u64) {
        if let Some((_, vn)) = self.declared.iter_mut().find(|(d, _)| d.base == base_va) {
            *vn += 1;
        }
    }

    /// The VN a write-back to `va` must carry (current VN + 1 during the
    /// update round), if covered.
    pub fn write_vn(&mut self, va: u64) -> Option<u64> {
        self.declared
            .iter()
            .find(|(d, _)| d.contains(va))
            .map(|&(_, vn)| vn + 1)
    }

    /// Critical-path lookup latency in core cycles for the current table
    /// size (CAM-search cost model).
    pub fn lookup_cycles(&self) -> u64 {
        (self.declared.len() as u64)
            .div_ceil(64)
            .saturating_mul(self.cfg.lookup_cycles_per_64)
    }

    /// Table statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Drops all declarations (kernel exit).
    pub fn clear(&mut self) {
        self.declared.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut t = SoftVnTable::new(SoftVnConfig::default());
        assert!(t.declare(TensorDesc::new_1d(0x1000, 640)));
        assert_eq!(t.lookup(0x1000), Some(0));
        assert_eq!(t.lookup(0x1000 + 639), Some(0));
        assert_eq!(t.lookup(0x2000), None);
    }

    #[test]
    fn capacity_overflow() {
        let mut t = SoftVnTable::new(SoftVnConfig {
            entries: 2,
            lookup_cycles_per_64: 1,
        });
        assert!(t.declare(TensorDesc::new_1d(0, 64)));
        assert!(t.declare(TensorDesc::new_1d(0x1000, 64)));
        assert!(!t.declare(TensorDesc::new_1d(0x2000, 64)));
        assert_eq!(t.stats().get("declare_overflow"), 1);
    }

    #[test]
    fn lookup_latency_grows_with_entries() {
        let mut t = SoftVnTable::new(SoftVnConfig {
            entries: 512,
            lookup_cycles_per_64: 1,
        });
        for i in 0..65u64 {
            t.declare(TensorDesc::new_1d(i << 16, 64));
        }
        assert_eq!(t.lookup_cycles(), 2);
    }

    #[test]
    fn write_vn_is_vn_plus_one() {
        let mut t = SoftVnTable::new(SoftVnConfig::default());
        t.declare(TensorDesc::new_1d(0, 640));
        assert_eq!(t.write_vn(64), Some(1));
        t.bump(0);
        assert_eq!(t.write_vn(64), Some(2));
        assert_eq!(t.lookup(64), Some(1));
    }

    #[test]
    fn clear_empties_table() {
        let mut t = SoftVnTable::new(SoftVnConfig::default());
        t.declare(TensorDesc::new_1d(0, 64));
        t.clear();
        assert!(t.is_empty());
    }
}
