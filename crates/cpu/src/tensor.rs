//! Tensor descriptors shared by kernels and TEE engines.

use serde::{Deserialize, Serialize};
use tee_mem::LINE_BYTES;

/// A dense tensor in virtual memory.
///
/// # Example
///
/// ```
/// use tee_cpu::tensor::TensorDesc;
/// let t = TensorDesc::new_1d(0x10000, 1024 * 4); // 1024 fp32 elements
/// assert_eq!(t.lines(), 64);
/// assert!(t.contains(0x10000 + 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorDesc {
    /// Base virtual address (line-aligned).
    pub base: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Logical rows (1 for flat tensors).
    pub rows: u64,
    /// Bytes per row.
    pub row_bytes: u64,
    /// Byte distance between row starts (≥ `row_bytes`).
    pub pitch: u64,
}

impl TensorDesc {
    /// A flat 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 64 B aligned or `bytes` is zero.
    pub fn new_1d(base: u64, bytes: u64) -> Self {
        assert_eq!(base % LINE_BYTES, 0, "tensor base must be line-aligned");
        assert!(bytes > 0, "empty tensor");
        TensorDesc {
            base,
            bytes,
            rows: 1,
            row_bytes: bytes,
            pitch: bytes,
        }
    }

    /// A 2-D row-major tensor (`rows` × `row_bytes`, rows spaced `pitch`
    /// bytes apart).
    ///
    /// # Panics
    ///
    /// Panics on unaligned base, zero dimensions, or `pitch < row_bytes`.
    pub fn new_2d(base: u64, rows: u64, row_bytes: u64, pitch: u64) -> Self {
        assert_eq!(base % LINE_BYTES, 0, "tensor base must be line-aligned");
        assert!(rows > 0 && row_bytes > 0, "empty tensor");
        assert!(pitch >= row_bytes, "rows overlap");
        TensorDesc {
            base,
            bytes: rows * row_bytes,
            rows,
            row_bytes,
            pitch,
        }
    }

    /// Number of 64 B lines covered (data bytes only).
    pub fn lines(&self) -> u64 {
        self.bytes.div_ceil(LINE_BYTES)
    }

    /// End of the tensor's address footprint (exclusive).
    pub fn end(&self) -> u64 {
        self.base + (self.rows - 1) * self.pitch + self.row_bytes
    }

    /// Whether `va` falls inside tensor data (row gaps excluded).
    pub fn contains(&self, va: u64) -> bool {
        if va < self.base || va >= self.end() {
            return false;
        }
        let off = va - self.base;
        (off % self.pitch) < self.row_bytes
    }

    /// Iterates the line-aligned addresses of the tensor in row-major order.
    pub fn line_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.rows).flat_map(move |r| {
            let row_start = self.base + r * self.pitch;
            let lines = self.row_bytes.div_ceil(LINE_BYTES);
            (0..lines).map(move |l| row_start + l * LINE_BYTES)
        })
    }

    /// Splits a flat tensor into `n` contiguous line-aligned chunks —
    /// how the Adam kernel partitions work across threads.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is 2-D or `n` is zero.
    pub fn split(&self, n: u64) -> Vec<TensorDesc> {
        assert!(n > 0, "cannot split into zero chunks");
        assert_eq!(self.rows, 1, "only flat tensors are split across threads");
        let total_lines = self.lines();
        let per = total_lines.div_ceil(n);
        let mut out = Vec::new();
        let mut line = 0;
        while line < total_lines {
            let chunk_lines = per.min(total_lines - line);
            let base = self.base + line * LINE_BYTES;
            let bytes = (chunk_lines * LINE_BYTES).min(self.bytes - line * LINE_BYTES);
            out.push(TensorDesc::new_1d(base, bytes));
            line += chunk_lines;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_geometry() {
        let t = TensorDesc::new_1d(0, 130);
        assert_eq!(t.lines(), 3);
        assert_eq!(t.end(), 130);
        assert!(t.contains(129));
        assert!(!t.contains(130));
    }

    #[test]
    fn two_d_contains_excludes_gaps() {
        let t = TensorDesc::new_2d(0, 2, 64, 256);
        assert!(t.contains(0));
        assert!(t.contains(63));
        assert!(!t.contains(64), "gap between rows");
        assert!(t.contains(256));
        assert_eq!(t.end(), 320);
    }

    #[test]
    fn line_addrs_row_major() {
        let t = TensorDesc::new_2d(0, 2, 128, 512);
        let addrs: Vec<u64> = t.line_addrs().collect();
        assert_eq!(addrs, vec![0, 64, 512, 576]);
    }

    #[test]
    fn split_covers_everything_once() {
        let t = TensorDesc::new_1d(0x1000, 10 * 64);
        let parts = t.split(3);
        assert_eq!(parts.len(), 3);
        let total: u64 = parts.iter().map(|p| p.lines()).sum();
        assert_eq!(total, 10);
        // Chunks are contiguous and ordered.
        assert_eq!(parts[0].base, 0x1000);
        assert_eq!(parts[1].base, parts[0].end());
    }

    #[test]
    fn split_one_is_identity() {
        let t = TensorDesc::new_1d(0, 64 * 7);
        assert_eq!(t.split(1), vec![t]);
    }

    #[test]
    #[should_panic]
    fn unaligned_base_rejected() {
        let _ = TensorDesc::new_1d(13, 64);
    }
}
