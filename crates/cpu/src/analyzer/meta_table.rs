//! The Meta Table: on-chip tensor-granularity VN/MAC storage (§4.2).
//!
//! Each entry holds shared metadata for every cacheline of one detected
//! tensor: address range + stride, the tensor VN, the tensor MAC, and the
//! write-protocol state (Updating Flag, Bit State, update bitmap). Reads
//! that *hit in* an entry get their VN with zero off-chip traffic; reads
//! that hit the *boundary* (`addr == last + stride`) extend the entry after
//! a background VN confirmation — the "gradual coverage" mechanism of
//! Figure 10. Writes follow the Figure-12 protocol: every line must flip
//! its bitmap bit exactly once between the start and finish edges, at which
//! point the tensor VN increments atomically.

use crate::tensor::TensorDesc;
use std::collections::HashSet;
use tee_crypto::MacTag;
use tee_mem::LINE_BYTES;
use tee_sim::probe::SharedProbe;
use tee_sim::{StatSet, Time};

/// Geometry of one detected tensor region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A strided 1-D run of lines: `base + k*stride` for `k < lines`.
    OneD {
        /// Covered line count.
        lines: u64,
        /// Byte stride between consecutive lines (64 for dense tensors).
        stride: u64,
    },
    /// A tiled 2-D region assembled by entry merging: `rows` rows of
    /// `row_lines` dense lines, spaced `pitch` bytes apart.
    TwoD {
        /// Dense lines per row.
        row_lines: u64,
        /// Byte distance between row starts.
        pitch: u64,
        /// Number of rows.
        rows: u64,
    },
}

/// One Meta Table entry.
#[derive(Debug, Clone)]
pub struct MetaEntry {
    /// Base (line-aligned) virtual address.
    pub base: u64,
    /// Region geometry.
    pub shape: Shape,
    /// The tensor version number.
    pub vn: u64,
    /// Tensor MAC accumulator (used by the transfer protocol).
    pub mac: MacTag,
    /// Updating Flag: a tensor update round is in progress.
    updating: bool,
    /// Lines flipped this round (bitmap bits that differ from BS).
    flipped: HashSet<u64>,
    lru: u64,
}

impl MetaEntry {
    /// Creates a fresh 1-D entry.
    pub fn new_1d(base: u64, lines: u64, stride: u64, vn: u64) -> Self {
        assert!(lines > 0 && stride >= LINE_BYTES);
        MetaEntry {
            base,
            shape: Shape::OneD { lines, stride },
            vn,
            mac: MacTag::default(),
            updating: false,
            flipped: HashSet::new(),
            lru: 0,
        }
    }

    /// Creates an entry covering a full tensor descriptor (used when the
    /// NPU's transfer instruction supplies the structure, §4.2).
    pub fn from_desc(desc: &TensorDesc, vn: u64) -> Self {
        if desc.rows <= 1 {
            Self::new_1d(desc.base, desc.lines(), LINE_BYTES, vn)
        } else {
            MetaEntry {
                base: desc.base,
                shape: Shape::TwoD {
                    row_lines: desc.row_bytes.div_ceil(LINE_BYTES),
                    pitch: desc.pitch,
                    rows: desc.rows,
                },
                vn,
                mac: MacTag::default(),
                updating: false,
                flipped: HashSet::new(),
                lru: 0,
            }
        }
    }

    /// Total covered lines.
    pub fn line_count(&self) -> u64 {
        match self.shape {
            Shape::OneD { lines, .. } => lines,
            Shape::TwoD {
                row_lines, rows, ..
            } => row_lines * rows,
        }
    }

    /// Whether a line-aligned VA falls inside the covered region.
    pub fn contains(&self, va: u64) -> bool {
        if va < self.base {
            return false;
        }
        let off = va - self.base;
        match self.shape {
            Shape::OneD { lines, stride } => off.is_multiple_of(stride) && off / stride < lines,
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            } => {
                let row = off / pitch;
                let col = off % pitch;
                row < rows && col.is_multiple_of(LINE_BYTES) && col / LINE_BYTES < row_lines
            }
        }
    }

    /// The next address that would extend this entry, if it can grow.
    ///
    /// 1-D entries grow at their end. 2-D entries grow *horizontally*: the
    /// line following row 0's coverage extends every row (tile columns are
    /// met left-to-right); when the rows touch (`row span == pitch`) the
    /// region is really contiguous and collapses back to 1-D.
    pub fn frontier(&self) -> Option<u64> {
        match self.shape {
            Shape::OneD { lines, stride } => Some(self.base + lines * stride),
            Shape::TwoD {
                row_lines, pitch, ..
            } if row_lines * LINE_BYTES < pitch => Some(self.base + row_lines * LINE_BYTES),
            Shape::TwoD { .. } => None,
        }
    }

    /// First covered line address.
    pub fn first_line(&self) -> u64 {
        self.base
    }

    /// Last covered line address.
    pub fn last_line(&self) -> u64 {
        match self.shape {
            Shape::OneD { lines, stride } => self.base + (lines - 1) * stride,
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            } => self.base + (rows - 1) * pitch + (row_lines - 1) * LINE_BYTES,
        }
    }

    /// Ordinal of a covered line (bitmap index).
    fn line_ordinal(&self, va: u64) -> u64 {
        debug_assert!(self.contains(va));
        let off = va - self.base;
        match self.shape {
            Shape::OneD { stride, .. } => off / stride,
            Shape::TwoD {
                row_lines, pitch, ..
            } => (off / pitch) * row_lines + (off % pitch) / LINE_BYTES,
        }
    }

    /// The VN to use when *reading* `va`: lines already flipped in the
    /// current update round have been written back at `vn + 1`.
    pub fn read_vn(&self, va: u64) -> u64 {
        if self.updating && self.flipped.contains(&self.line_ordinal(va)) {
            self.vn + 1
        } else {
            self.vn
        }
    }

    /// Whether an update round is in progress.
    pub fn is_updating(&self) -> bool {
        self.updating
    }

    /// Iterates every covered line address.
    pub fn covered_lines(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self.shape {
            Shape::OneD { lines, stride } => {
                Box::new((0..lines).map(move |l| self.base + l * stride))
            }
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            } => Box::new((0..rows).flat_map(move |r| {
                (0..row_lines).map(move |c| self.base + r * pitch + c * LINE_BYTES)
            })),
        }
    }
}

/// Outcome of a read lookup (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadLookup {
    /// Inside an entry: VN served on-chip.
    HitIn {
        /// Entry slot.
        slot: usize,
        /// The VN for this line.
        vn: u64,
    },
    /// Exactly at an entry's frontier: VN assumed, confirmation pending.
    HitBoundary {
        /// Entry slot (pass back to [`MetaTable::confirm_boundary`]).
        slot: usize,
        /// The assumed VN.
        vn: u64,
    },
    /// No entry covers the address.
    Miss,
}

/// Outcome of a write lookup (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteLookup {
    /// Hit the first address: update round started.
    HitEdgeStart {
        /// Entry slot.
        slot: usize,
        /// VN the written-back line carries (old VN + 1).
        vn: u64,
    },
    /// Hit the last address and the whole bitmap flipped: round complete,
    /// tensor VN incremented.
    HitEdgeFinish {
        /// Entry slot.
        slot: usize,
        /// The new tensor VN.
        vn: u64,
    },
    /// Hit strictly inside the range.
    HitIn {
        /// Entry slot.
        slot: usize,
        /// VN the written-back line carries.
        vn: u64,
    },
    /// Outside every entry: off-chip VN update only.
    Miss,
    /// An assertion failed; the entry was invalidated.
    Violation,
}

/// The Meta Table (512 entries in the paper's configuration, §6.5).
///
/// # Example
///
/// ```
/// use tee_cpu::analyzer::meta_table::{MetaEntry, MetaTable, ReadLookup};
///
/// let mut t = MetaTable::new(512);
/// t.insert(MetaEntry::new_1d(0x1000, 4, 64, 0));
/// assert!(matches!(t.lookup_read(0x1040), ReadLookup::HitIn { vn: 0, .. }));
/// assert!(matches!(t.lookup_read(0x1100), ReadLookup::HitBoundary { .. }));
/// ```
#[derive(Debug)]
pub struct MetaTable {
    slots: Vec<Option<MetaEntry>>,
    tick: u64,
    stats: StatSet,
    probe: SharedProbe,
}

impl MetaTable {
    /// Creates a table with `capacity` entry slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "meta table needs at least one slot");
        MetaTable {
            slots: (0..capacity).map(|_| None).collect(),
            tick: 0,
            stats: StatSet::new("meta_table"),
            probe: SharedProbe::Null,
        }
    }

    /// Attaches an observability probe. Assert1 violations are reported as
    /// `CPU` instants (timestamped by the table's access ordinal — the
    /// table has no wall clock) and a `cpu.assert1_violations` counter.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe = probe;
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup statistics (`hit_in`, `hit_boundary`, `miss`, `write_*`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Resets the statistics (entries are kept) — used for per-iteration
    /// hit-rate sampling (Figure 18).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Read access to a live entry.
    pub fn entry(&self, slot: usize) -> Option<&MetaEntry> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Iterates live entries.
    pub fn entries(&self) -> impl Iterator<Item = &MetaEntry> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Finds the entry whose region covers a tensor base address (used by
    /// the transfer protocol to export VN+MAC).
    pub fn find_covering(&self, va: u64) -> Option<&MetaEntry> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .find(|e| e.contains(va))
    }

    /// Figure 10 read dataflow.
    pub fn lookup_read(&mut self, va: u64) -> ReadLookup {
        self.tick += 1;
        let tick = self.tick;
        for (slot, opt) in self.slots.iter_mut().enumerate() {
            let Some(e) = opt.as_mut() else { continue };
            if e.contains(va) {
                e.lru = tick;
                self.stats.bump("hit_in");
                return ReadLookup::HitIn {
                    slot,
                    vn: e.read_vn(va),
                };
            }
        }
        for (slot, opt) in self.slots.iter_mut().enumerate() {
            let Some(e) = opt.as_mut() else { continue };
            if e.frontier() == Some(va) {
                e.lru = tick;
                self.stats.bump("hit_boundary");
                return ReadLookup::HitBoundary { slot, vn: e.vn };
            }
        }
        self.stats.bump("miss");
        ReadLookup::Miss
    }

    /// Completes a boundary hit: if the off-chip VN matched the assumed VN,
    /// the entry's range is extended by one stride; otherwise the entry is
    /// left unchanged (the access is treated as a miss upstream).
    pub fn confirm_boundary(&mut self, slot: usize, va: u64, vn_matched: bool) {
        // 2-D growth covers one *speculative* new line per additional row;
        // refuse the extension if any of those lines already belongs to
        // another entry (overlap would desync write rounds).
        let speculative_conflict = {
            match self.slots.get(slot).and_then(|s| s.as_ref()) {
                Some(e) => match e.shape {
                    Shape::TwoD {
                        row_lines,
                        pitch,
                        rows,
                    } => (1..rows).any(|r| {
                        let line = e.base + r * pitch + row_lines * LINE_BYTES;
                        self.slots
                            .iter()
                            .enumerate()
                            .any(|(i, s)| i != slot && s.as_ref().is_some_and(|o| o.contains(line)))
                    }),
                    Shape::OneD { .. } => false,
                },
                None => false,
            }
        };
        let Some(e) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        if !vn_matched || e.frontier() != Some(va) || e.updating || speculative_conflict {
            self.stats.bump("boundary_rejected");
            return;
        }
        match e.shape {
            Shape::OneD { ref mut lines, .. } => {
                *lines += 1;
                self.stats.bump("boundary_extended");
            }
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            } => {
                let grown = row_lines + 1;
                e.shape = if grown * LINE_BYTES == pitch {
                    // Rows now touch: the region is contiguous.
                    Shape::OneD {
                        lines: rows * grown,
                        stride: LINE_BYTES,
                    }
                } else {
                    Shape::TwoD {
                        row_lines: grown,
                        pitch,
                        rows,
                    }
                };
                self.stats.bump("boundary_extended");
            }
        }
    }

    /// Figure 12 write dataflow. `va` is a line-aligned write-back address
    /// as filtered by the LLC.
    pub fn lookup_write(&mut self, va: u64) -> WriteLookup {
        self.tick += 1;
        let tick = self.tick;
        let Some(slot) = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|e| e.contains(va)))
        else {
            self.stats.bump("write_miss");
            return WriteLookup::Miss;
        };
        let e = self.slots[slot].as_mut().expect("slot checked above");
        e.lru = tick;
        let ordinal = e.line_ordinal(va);

        // Assert1: each cacheline updates at most once per round.
        if e.flipped.contains(&ordinal) {
            if self.probe.enabled() {
                self.probe
                    .instant("CPU", "assert1_violation", Time::from_ps(tick));
                self.probe.count("cpu.assert1_violations", 1);
            }
            if std::env::var_os("TT_DEBUG_VIOLATIONS").is_some() {
                eprintln!(
                    "assert1: va={va:#x} base={:#x} lines={} flipped={} updating={}",
                    e.base,
                    e.line_count(),
                    e.flipped.len(),
                    e.updating
                );
            }
            self.stats.bump("write_violation");
            self.stats.bump("violation_assert1");
            self.slots[slot] = None;
            return WriteLookup::Violation;
        }

        let first = va == e.first_line();
        // Any in-range write opens the round (Figure 12(b): UF==1? N → 1).
        if !e.updating {
            e.updating = true;
            if first {
                self.stats.bump("write_edge_start");
            }
        }
        e.flipped.insert(ordinal);
        // Close-on-completion: the round finishes when every bitmap bit
        // has flipped (Assert2 checked affirmatively). The paper checks at
        // the *last address* and invalidates on mismatch; with per-core
        // eviction streams the last address routinely drains before other
        // cores' chunks, so we keep the round open until the bitmap is
        // complete — the same exactly-once guarantee, skew-tolerant
        // (see the fidelity preamble of EXPERIMENTS.md).
        if e.flipped.len() as u64 == e.line_count() {
            e.vn += 1;
            e.flipped.clear();
            e.updating = false;
            let vn = e.vn;
            self.stats.bump("write_edge_finish");
            return WriteLookup::HitEdgeFinish { slot, vn };
        }
        if first {
            return WriteLookup::HitEdgeStart { slot, vn: e.vn + 1 };
        }
        self.stats.bump("write_hit_in");
        WriteLookup::HitIn { slot, vn: e.vn + 1 }
    }

    /// Inserts a freshly detected entry, first attempting the Figure-11
    /// merges against live entries; evicts the LRU entry if the table is
    /// full. Returns the slot the region now lives in.
    pub fn insert(&mut self, mut entry: MetaEntry) -> usize {
        self.tick += 1;
        entry.lru = self.tick;
        // Reject overlapping coverage: overlapping entries desync the
        // Figure-12 write rounds (flips landing in one entry while the
        // other's bitmap goes stale). Exact per-line check for small
        // (filter-sized) newcomers; preloads into a populated table use
        // the cheaper containment test.
        let overlap_slot = if entry.line_count() <= 256 {
            let mut found = None;
            'scan: for line in entry.covered_lines() {
                for (i, s) in self.slots.iter().enumerate() {
                    if s.as_ref().is_some_and(|e| e.contains(line)) {
                        found = Some(i);
                        break 'scan;
                    }
                }
            }
            found
        } else {
            self.slots.iter().position(|s| {
                s.as_ref().is_some_and(|e| {
                    e.contains(entry.first_line()) && e.contains(entry.last_line())
                })
            })
        };
        if let Some(slot) = overlap_slot {
            self.stats.bump("redundant_insert");
            return slot;
        }
        // Attempt merges until no entry absorbs the newcomer. Exact
        // (concatenation / row-attach) merges are preferred; the 2-row tile
        // *inference* only fires when no exact merge exists anywhere, so
        // unrelated equal-length entries are not paired speculatively.
        loop {
            let mut absorbed = false;
            for allow_inference in [false, true] {
                for slot in 0..self.slots.len() {
                    let Some(existing) = self.slots[slot].as_ref() else {
                        continue;
                    };
                    if let Some(merged) = try_merge(existing, &entry, allow_inference) {
                        // Remove the absorber and continue merging the
                        // result — chains of row entries collapse into one
                        // 2-D region.
                        self.slots[slot] = None;
                        entry = merged;
                        entry.lru = self.tick;
                        self.stats.bump("merges");
                        absorbed = true;
                        break;
                    }
                }
                if absorbed {
                    break;
                }
            }
            if !absorbed {
                break;
            }
        }
        // Occupancy pressure: compact the table by merging adjacent
        // existing entries before resorting to eviction ("merge a few
        // recently updated entries", §4.2 — different cores' fragments of
        // one tensor are merged with each other, not only with newcomers).
        if self.slots.iter().filter(|s| s.is_some()).count() >= self.slots.len() * 7 / 8 {
            self.compact();
        }
        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .unwrap_or_else(|| {
                self.stats.bump("evictions");
                self.slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_ref().map_or(0, |e| e.lru))
                    .map(|(i, _)| i)
                    .expect("non-empty table")
            });
        self.slots[slot] = Some(entry);
        slot
    }

    /// Pairwise-merges existing entries (exact merges only — no
    /// speculative tile inference between settled entries). Runs until a
    /// fixed point.
    pub fn compact(&mut self) {
        loop {
            let mut merged_any = false;
            'outer: for i in 0..self.slots.len() {
                if self.slots[i].is_none() {
                    continue;
                }
                for j in (i + 1)..self.slots.len() {
                    let (Some(a), Some(b)) = (&self.slots[i], &self.slots[j]) else {
                        continue;
                    };
                    if let Some(m) = try_merge(a, b, false) {
                        let mut m = m;
                        m.lru = self.tick;
                        self.slots[i] = Some(m);
                        self.slots[j] = None;
                        self.stats.bump("merges");
                        merged_any = true;
                        continue 'outer;
                    }
                }
            }
            if !merged_any {
                break;
            }
        }
    }

    /// Invalidates every entry (context switch without save/restore).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }
}

/// Ceiling on how sparse an inferred 2-D tile may be: the pitch may exceed
/// the covered row span by at most this factor (a 256×256 matrix tiled
/// 64×64 has ratio 4). Prevents pairing unrelated distant streams.
const MAX_PITCH_RATIO: u64 = 32;

/// Largest row (in lines) eligible for 2-row tile inference — freshly
/// detected tile rows are filter-threshold sized; long streaming runs are
/// whole tensors and must not pair speculatively.
const MAX_INFERENCE_ROW_LINES: u64 = 64;

/// Figure 11: merging two detected regions into a larger one. Returns the
/// merged entry if `a` and `b` are compatible (same stride and VN, and
/// geometrically adjacent in one of the allowed directions).
/// `allow_inference` additionally permits the speculative 2-row tile
/// inference of Figure 11(b).
fn try_merge(a: &MetaEntry, b: &MetaEntry, allow_inference: bool) -> Option<MetaEntry> {
    if a.vn != b.vn || a.is_updating() || b.is_updating() {
        return None;
    }
    match (a.shape, b.shape) {
        // 1D ∥ 1D, same stride, end-to-end: concatenate.
        (
            Shape::OneD {
                lines: la,
                stride: sa,
            },
            Shape::OneD {
                lines: lb,
                stride: sb,
            },
        ) if sa == sb => {
            if a.base + la * sa == b.base {
                return Some(MetaEntry::new_1d(a.base, la + lb, sa, a.vn));
            }
            if b.base + lb * sb == a.base {
                return Some(MetaEntry::new_1d(b.base, la + lb, sa, a.vn));
            }
            // 1D + 1D as two rows of a tile (equal length, non-adjacent):
            // infer the pitch (Figure 11b).
            if allow_inference && la == lb && la <= MAX_INFERENCE_ROW_LINES && sa == LINE_BYTES {
                let (lo, hi) = if a.base < b.base { (a, b) } else { (b, a) };
                let pitch = hi.base - lo.base;
                let span = la * sa;
                if pitch > span && pitch <= span * MAX_PITCH_RATIO {
                    let mut m = MetaEntry::new_1d(lo.base, la, sa, a.vn);
                    m.shape = Shape::TwoD {
                        row_lines: la,
                        pitch,
                        rows: 2,
                    };
                    return Some(m);
                }
            }
            None
        }
        // 2D + next/previous row.
        (
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            },
            Shape::OneD { lines, stride },
        ) if stride == LINE_BYTES && lines == row_lines => merge_row(a, b, row_lines, pitch, rows),
        (
            Shape::OneD { lines, stride },
            Shape::TwoD {
                row_lines,
                pitch,
                rows,
            },
        ) if stride == LINE_BYTES && lines == row_lines => merge_row(b, a, row_lines, pitch, rows),
        // 2D + 2D: stacked vertically or side-by-side horizontally
        // (the "4 directions for 2D tensors" of Figure 11).
        (
            Shape::TwoD {
                row_lines: rla,
                pitch: pa,
                rows: ra,
            },
            Shape::TwoD {
                row_lines: rlb,
                pitch: pb,
                rows: rb,
            },
        ) if pa == pb => {
            let mk = |base: u64, row_lines: u64, rows: u64, src: &MetaEntry| {
                let mut m = src.clone();
                m.base = base;
                m.shape = Shape::TwoD {
                    row_lines,
                    pitch: pa,
                    rows,
                };
                m.flipped.clear();
                m.updating = false;
                m
            };
            if rla == rlb {
                // Vertical stacking.
                if a.base + ra * pa == b.base {
                    return Some(mk(a.base, rla, ra + rb, a));
                }
                if b.base + rb * pb == a.base {
                    return Some(mk(b.base, rla, ra + rb, b));
                }
            }
            if ra == rb {
                // Horizontal adjacency: rows concatenate within the pitch.
                if b.base == a.base + rla * LINE_BYTES && (rla + rlb) * LINE_BYTES <= pa {
                    return Some(mk(a.base, rla + rlb, ra, a));
                }
                if a.base == b.base + rlb * LINE_BYTES && (rla + rlb) * LINE_BYTES <= pa {
                    return Some(mk(b.base, rla + rlb, ra, b));
                }
            }
            None
        }
        _ => None,
    }
}

/// Attaches a row entry `row` to a 2-D region `tile` (above or below).
fn merge_row(
    tile: &MetaEntry,
    row: &MetaEntry,
    row_lines: u64,
    pitch: u64,
    rows: u64,
) -> Option<MetaEntry> {
    if row.base == tile.base + rows * pitch {
        let mut m = tile.clone();
        m.shape = Shape::TwoD {
            row_lines,
            pitch,
            rows: rows + 1,
        };
        m.flipped.clear();
        m.updating = false;
        Some(m)
    } else if row.base + pitch == tile.base {
        let mut m = tile.clone();
        m.base = row.base;
        m.shape = Shape::TwoD {
            row_lines,
            pitch,
            rows: rows + 1,
        };
        m.flipped.clear();
        m.updating = false;
        Some(m)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_in_and_boundary() {
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(0, 4, 64, 7));
        match t.lookup_read(64) {
            ReadLookup::HitIn { vn, .. } => assert_eq!(vn, 7),
            other => panic!("expected hit_in, got {other:?}"),
        }
        assert!(matches!(t.lookup_read(256), ReadLookup::HitBoundary { .. }));
        assert!(matches!(t.lookup_read(512), ReadLookup::Miss));
        assert!(
            matches!(t.lookup_read(32), ReadLookup::Miss),
            "unaligned offset"
        );
    }

    #[test]
    fn boundary_extension_grows_coverage() {
        let mut t = MetaTable::new(8);
        let slot = t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        if let ReadLookup::HitBoundary { slot: s, .. } = t.lookup_read(256) {
            assert_eq!(s, slot);
            t.confirm_boundary(s, 256, true);
        } else {
            panic!("expected boundary");
        }
        assert!(matches!(t.lookup_read(256), ReadLookup::HitIn { .. }));
        assert_eq!(t.stats().get("boundary_extended"), 1);
    }

    #[test]
    fn rejected_boundary_does_not_extend() {
        let mut t = MetaTable::new(8);
        let slot = t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.confirm_boundary(slot, 256, false);
        assert!(matches!(t.lookup_read(256), ReadLookup::HitBoundary { .. }));
    }

    #[test]
    fn write_round_increments_vn_once() {
        let mut t = MetaTable::new(8);
        let slot = t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        assert!(matches!(
            t.lookup_write(0),
            WriteLookup::HitEdgeStart { vn: 1, .. }
        ));
        assert!(matches!(
            t.lookup_write(64),
            WriteLookup::HitIn { vn: 1, .. }
        ));
        assert!(matches!(t.lookup_write(128), WriteLookup::HitIn { .. }));
        match t.lookup_write(192) {
            WriteLookup::HitEdgeFinish { vn, .. } => assert_eq!(vn, 1),
            other => panic!("expected finish, got {other:?}"),
        }
        assert_eq!(t.entry(slot).unwrap().vn, 1);
        assert!(!t.entry(slot).unwrap().is_updating());
    }

    #[test]
    fn double_write_violates_assert1() {
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.lookup_write(0);
        t.lookup_write(64);
        assert_eq!(t.lookup_write(64), WriteLookup::Violation);
        assert_eq!(t.len(), 0, "entry invalidated");
    }

    #[test]
    fn probed_violation_emits_instant_and_counter() {
        let probe = SharedProbe::recording();
        let mut t = MetaTable::new(8);
        t.set_probe(probe.clone());
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.lookup_write(0);
        t.lookup_write(64);
        assert_eq!(t.lookup_write(64), WriteLookup::Violation);
        // Same outcome as the unprobed test above — the probe only reports.
        assert_eq!(t.len(), 0, "entry invalidated");
        assert_eq!(t.stats().get("violation_assert1"), 1);
        let snap = probe.snapshot().unwrap();
        assert_eq!(snap.metrics().get("cpu.assert1_violations"), 1);
        assert!(snap.events().iter().any(|e| matches!(
            e,
            tee_sim::probe::ProbeEvent::Instant { track, name, .. }
                if track == "CPU" && name == "assert1_violation"
        )));
    }

    #[test]
    fn early_last_address_keeps_round_open() {
        // Close-on-completion: reaching the last address before the other
        // lines does not finish (or invalidate) the round — the VN bumps
        // only when the bitmap completes.
        let mut t = MetaTable::new(8);
        let slot = t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.lookup_write(0);
        assert!(matches!(t.lookup_write(192), WriteLookup::HitIn { .. }));
        assert_eq!(t.entry(slot).unwrap().vn, 0, "round still open");
        t.lookup_write(64);
        assert!(matches!(
            t.lookup_write(128),
            WriteLookup::HitEdgeFinish { vn: 1, .. }
        ));
    }

    #[test]
    fn read_vn_tracks_partial_update() {
        let mut t = MetaTable::new(8);
        let slot = t.insert(MetaEntry::new_1d(0, 4, 64, 5));
        t.lookup_write(0); // flips line 0, vn now logically 6 for line 0
        match t.lookup_read(0) {
            ReadLookup::HitIn { vn, .. } => assert_eq!(vn, 6),
            other => panic!("{other:?}"),
        }
        match t.lookup_read(64) {
            ReadLookup::HitIn { vn, .. } => assert_eq!(vn, 5),
            other => panic!("{other:?}"),
        }
        let _ = slot;
    }

    #[test]
    fn adjacent_1d_entries_merge() {
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.insert(MetaEntry::new_1d(256, 4, 64, 0));
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.line_count(), 8);
        assert!(e.contains(448));
    }

    #[test]
    fn prepend_merge_works() {
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(256, 4, 64, 0));
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().base, 0);
    }

    #[test]
    fn different_vn_does_not_merge() {
        let mut t = MetaTable::new(8);
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.insert(MetaEntry::new_1d(256, 4, 64, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rows_merge_into_2d_then_extend() {
        let mut t = MetaTable::new(8);
        // Two 4-line rows with pitch 1024: infer a 2-row tile.
        t.insert(MetaEntry::new_1d(0, 4, 64, 0));
        t.insert(MetaEntry::new_1d(1024, 4, 64, 0));
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(
            e.shape,
            Shape::TwoD {
                row_lines: 4,
                pitch: 1024,
                rows: 2
            }
        );
        // Third row extends the tile.
        t.insert(MetaEntry::new_1d(2048, 4, 64, 0));
        let e = t.entries().next().unwrap();
        assert!(matches!(e.shape, Shape::TwoD { rows: 3, .. }));
        assert!(e.contains(2048 + 128));
        assert!(!e.contains(512), "gap between rows not covered");
    }

    #[test]
    fn chain_merge_collapses_multiple_entries() {
        let mut t = MetaTable::new(8);
        // Unequal lengths so the speculative 2-row inference stays out of
        // the way; the bridging insert cascades across both neighbours.
        t.insert(MetaEntry::new_1d(0, 2, 64, 0));
        t.insert(MetaEntry::new_1d(192, 1, 64, 0));
        t.insert(MetaEntry::new_1d(128, 1, 64, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().line_count(), 4);
    }

    #[test]
    fn horizontal_2d_merge() {
        let mut t = MetaTable::new(8);
        // Two 4-line × 4-row tiles side by side under a 1024 B pitch.
        let mut a = MetaEntry::new_1d(0, 4, 64, 0);
        a.shape = Shape::TwoD {
            row_lines: 4,
            pitch: 1024,
            rows: 4,
        };
        let mut b = MetaEntry::new_1d(256, 4, 64, 0);
        b.shape = Shape::TwoD {
            row_lines: 4,
            pitch: 1024,
            rows: 4,
        };
        t.insert(a);
        t.insert(b);
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(
            e.shape,
            Shape::TwoD {
                row_lines: 8,
                pitch: 1024,
                rows: 4
            }
        );
        assert!(e.contains(256 + 1024));
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = MetaTable::new(2);
        t.insert(MetaEntry::new_1d(0, 2, 64, 0));
        t.insert(MetaEntry::new_1d(0x10000, 2, 64, 1));
        // Touch the first entry so the second is LRU.
        let _ = t.lookup_read(0);
        t.insert(MetaEntry::new_1d(0x20000, 2, 64, 2));
        assert_eq!(t.len(), 2);
        assert!(t.find_covering(0).is_some(), "recently used survives");
        assert!(t.find_covering(0x10000).is_none(), "LRU evicted");
        assert_eq!(t.stats().get("evictions"), 1);
    }

    #[test]
    fn from_desc_covers_2d() {
        let d = TensorDesc::new_2d(0, 3, 128, 512);
        let e = MetaEntry::from_desc(&d, 4);
        assert!(e.contains(512));
        assert!(e.contains(64));
        assert!(!e.contains(128));
        assert_eq!(e.line_count(), 6);
    }

    #[test]
    fn update_round_on_2d_entry() {
        let mut t = MetaTable::new(4);
        let d = TensorDesc::new_2d(0, 2, 128, 512);
        t.insert(MetaEntry::from_desc(&d, 0));
        assert!(matches!(
            t.lookup_write(0),
            WriteLookup::HitEdgeStart { .. }
        ));
        assert!(matches!(t.lookup_write(64), WriteLookup::HitIn { .. }));
        assert!(matches!(t.lookup_write(512), WriteLookup::HitIn { .. }));
        assert!(matches!(
            t.lookup_write(576),
            WriteLookup::HitEdgeFinish { vn: 1, .. }
        ));
    }
}
