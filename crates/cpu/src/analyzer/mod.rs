//! TenAnalyzer: hardware tensor detection and management in the memory
//! controller (§4.2).
//!
//! The analyzer sits beside the cache hierarchy and receives every core
//! request (virtual addresses, in parallel with cache lookup, hiding its
//! latency). It owns the [`meta_table::MetaTable`] and the
//! [`filter::TensorFilter`] and implements the reading (detection) and
//! writing (update) dataflows of Figures 10 and 12. The *Enable
//! Tensor-wise Management Flag* (`EnTMF`) turns the whole unit off for
//! non-tensor applications.

pub mod filter;
pub mod meta_table;

use filter::TensorFilter;
use meta_table::{MetaEntry, MetaTable, ReadLookup, WriteLookup};

use crate::tensor::TensorDesc;
use tee_crypto::MacTag;
use tee_sim::StatSet;

/// Configuration of the analyzer (§6.5 hardware budget).
#[derive(Debug, Clone, Copy)]
pub struct TenAnalyzerConfig {
    /// Meta Table entry count (512 in the paper).
    pub meta_entries: usize,
    /// Tensor Filter entry count (10 in the paper).
    pub filter_entries: usize,
    /// Addresses collected before the tensor condition is checked (4).
    pub filter_threshold: usize,
    /// EnTMF: whether tensor-wise management is active.
    pub enabled: bool,
}

impl Default for TenAnalyzerConfig {
    fn default() -> Self {
        TenAnalyzerConfig {
            meta_entries: 512,
            filter_entries: 10,
            filter_threshold: 4,
            enabled: true,
        }
    }
}

/// A saved Meta Table image for enclave context switching (§4.2).
#[derive(Debug, Clone)]
pub struct SavedContext {
    entries: Vec<MetaEntry>,
}

impl SavedContext {
    /// Number of saved entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the saved image is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The analyzer's verdict on a core read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDecision {
    /// VN served on-chip; no off-chip metadata traffic at all.
    HitIn {
        /// The on-chip VN for this line.
        vn: u64,
    },
    /// VN assumed from the entry; a background confirmation fetch must be
    /// issued, and [`TenAnalyzer::confirm_boundary`] called with its result.
    HitBoundary {
        /// Meta Table slot to confirm against.
        slot: usize,
        /// The assumed VN.
        vn: u64,
    },
    /// Fall back to the cacheline-granularity (SGX) path; the off-chip VN
    /// should be reported back via [`TenAnalyzer::observe_miss_vn`] so the
    /// filter can learn the pattern.
    Miss,
}

/// The analyzer's verdict on an LLC write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDecision {
    /// Covered by an entry: on-chip VN bookkeeping done; the line carries
    /// `vn`; off-chip VN equivalence update proceeds in the background.
    Covered {
        /// VN the written-back line must be encrypted under.
        vn: u64,
        /// Whether this write completed a tensor update round.
        finished_round: bool,
    },
    /// Not covered: full off-chip (SGX) write path.
    Miss,
}

/// The TenAnalyzer unit.
///
/// # Example
///
/// ```
/// use tee_cpu::analyzer::{ReadDecision, TenAnalyzer, TenAnalyzerConfig};
///
/// let mut a = TenAnalyzer::new(TenAnalyzerConfig::default());
/// // Four sequential misses teach the filter a streaming tensor.
/// for i in 0..4u64 {
///     assert_eq!(a.on_read(i * 64), ReadDecision::Miss);
///     a.observe_miss_vn(i * 64, 0);
/// }
/// // The next line is the entry's boundary...
/// assert!(matches!(a.on_read(4 * 64), ReadDecision::HitBoundary { .. }));
/// ```
#[derive(Debug)]
pub struct TenAnalyzer {
    cfg: TenAnalyzerConfig,
    table: MetaTable,
    filter: TensorFilter,
    stats: StatSet,
    read_snapshot: (u64, u64, u64),
}

impl TenAnalyzer {
    /// Builds an analyzer.
    pub fn new(cfg: TenAnalyzerConfig) -> Self {
        TenAnalyzer {
            cfg,
            table: MetaTable::new(cfg.meta_entries),
            filter: TensorFilter::new(cfg.filter_entries, cfg.filter_threshold),
            stats: StatSet::new("ten_analyzer"),
            read_snapshot: (0, 0, 0),
        }
    }

    /// Whether EnTMF is set.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Attaches an observability probe to the Meta Table so protocol
    /// violations surface as trace instants and counters.
    pub fn set_probe(&mut self, probe: tee_sim::probe::SharedProbe) {
        self.table.set_probe(probe);
    }

    /// The Meta Table (hit statistics, entry inspection).
    pub fn table(&self) -> &MetaTable {
        &self.table
    }

    /// The Tensor Filter (detection statistics).
    pub fn filter(&self) -> &TensorFilter {
        &self.filter
    }

    /// Unit-level statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Core read request (VA, line-aligned). Figure 10 dataflow.
    pub fn on_read(&mut self, va: u64) -> ReadDecision {
        if !self.cfg.enabled {
            return ReadDecision::Miss;
        }
        match self.table.lookup_read(va) {
            ReadLookup::HitIn { vn, .. } => ReadDecision::HitIn { vn },
            ReadLookup::HitBoundary { slot, vn } => ReadDecision::HitBoundary { slot, vn },
            ReadLookup::Miss => ReadDecision::Miss,
        }
    }

    /// Reports the off-chip VN observed for a missed read so the filter
    /// can collect the pattern; a completed pattern populates the Meta
    /// Table (possibly merging with existing entries).
    pub fn observe_miss_vn(&mut self, va: u64, off_chip_vn: u64) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(entry) = self.filter.observe_miss(va, off_chip_vn) {
            self.stats.bump("entries_created");
            self.table.insert(entry);
        }
    }

    /// Resolves a pending boundary confirmation: `vn_matched` is whether
    /// the off-chip VN equalled the assumed VN.
    pub fn confirm_boundary(&mut self, slot: usize, va: u64, vn_matched: bool) {
        if self.cfg.enabled {
            self.table.confirm_boundary(slot, va, vn_matched);
        }
    }

    /// LLC write-back (VA, line-aligned). Figure 12 dataflow.
    pub fn on_writeback(&mut self, va: u64) -> WriteDecision {
        if !self.cfg.enabled {
            return WriteDecision::Miss;
        }
        match self.table.lookup_write(va) {
            WriteLookup::HitEdgeStart { vn, .. } | WriteLookup::HitIn { vn, .. } => {
                WriteDecision::Covered {
                    vn,
                    finished_round: false,
                }
            }
            WriteLookup::HitEdgeFinish { vn, .. } => WriteDecision::Covered {
                vn,
                finished_round: true,
            },
            WriteLookup::Miss => WriteDecision::Miss,
            WriteLookup::Violation => {
                self.stats.bump("violations");
                WriteDecision::Miss
            }
        }
    }

    /// Fast-path entry creation from an NPU transfer instruction, which
    /// carries the tensor structure (address, size, stride) — §4.2.
    pub fn preload_from_transfer(&mut self, desc: &TensorDesc, vn: u64, mac: MacTag) {
        if !self.cfg.enabled {
            return;
        }
        let mut e = MetaEntry::from_desc(desc, vn);
        e.mac = mac;
        self.stats.bump("entries_preloaded");
        self.table.insert(e);
    }

    /// Exports `(vn, mac)` for a tensor base address, as the trusted
    /// metadata channel does during CPU→NPU transfer.
    pub fn export_metadata(&self, base_va: u64) -> Option<(u64, MacTag)> {
        self.table.find_covering(base_va).map(|e| (e.vn, e.mac))
    }

    /// Per-iteration hit-rate snapshot (Figure 18): returns the
    /// `(hit_in, hit_boundary, miss)` read counts accumulated since the
    /// previous call (other statistics are left untouched).
    pub fn take_read_stats(&mut self) -> (u64, u64, u64) {
        let s = self.table.stats();
        let now = (s.get("hit_in"), s.get("hit_boundary"), s.get("miss"));
        let prev = self.read_snapshot;
        self.read_snapshot = now;
        (now.0 - prev.0, now.1 - prev.1, now.2 - prev.2)
    }

    /// Background merge scan: consolidates adjacent settled entries.
    /// The engine triggers this at kernel boundaries (all update rounds
    /// closed, VNs in agreement) — fragments left by per-thread detection
    /// collapse into region-wide entries.
    pub fn compact(&mut self) {
        if self.cfg.enabled {
            self.table.compact();
        }
    }

    /// Context switch, save phase (§4.2: "the Meta Table is saved and
    /// restored for context-switching cases"): exports every live entry
    /// and clears the on-chip state for the next enclave.
    pub fn save_context(&mut self) -> SavedContext {
        let entries: Vec<MetaEntry> = self.table.entries().cloned().collect();
        self.clear();
        SavedContext { entries }
    }

    /// Context switch, restore phase: reloads a previously saved Meta
    /// Table image.
    pub fn restore_context(&mut self, ctx: SavedContext) {
        self.table.clear();
        for e in ctx.entries {
            self.table.insert(e);
        }
    }

    /// Context switch without save/restore: drop all on-chip state.
    pub fn clear(&mut self) {
        self.table.clear();
        self.filter.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> TenAnalyzer {
        TenAnalyzer::new(TenAnalyzerConfig {
            meta_entries: 16,
            filter_entries: 10,
            filter_threshold: 4,
            enabled: true,
        })
    }

    /// Streams one pass over `lines` lines starting at `base`, reporting
    /// VN `vn` for misses and confirming boundaries, like the engine does.
    fn stream_pass(a: &mut TenAnalyzer, base: u64, lines: u64, vn: u64) -> (u64, u64, u64) {
        let (mut hit_in, mut boundary, mut miss) = (0, 0, 0);
        for i in 0..lines {
            let va = base + i * 64;
            match a.on_read(va) {
                ReadDecision::HitIn { .. } => hit_in += 1,
                ReadDecision::HitBoundary { slot, .. } => {
                    boundary += 1;
                    a.confirm_boundary(slot, va, true);
                }
                ReadDecision::Miss => {
                    miss += 1;
                    a.observe_miss_vn(va, vn);
                }
            }
        }
        (hit_in, boundary, miss)
    }

    #[test]
    fn detection_then_boundary_then_hit_in() {
        let mut a = analyzer();
        // Pass 1: detection misses + boundary extension for the rest.
        let (h1, b1, m1) = stream_pass(&mut a, 0, 64, 0);
        assert_eq!(m1, 4, "filter threshold misses");
        assert_eq!(b1, 60, "rest of the pass extends the entry");
        assert_eq!(h1, 0);
        // Pass 2: everything hits in.
        let (h2, b2, m2) = stream_pass(&mut a, 0, 64, 0);
        assert_eq!((h2, b2, m2), (64, 0, 0));
    }

    #[test]
    fn disabled_analyzer_is_inert() {
        let mut a = TenAnalyzer::new(TenAnalyzerConfig {
            enabled: false,
            ..TenAnalyzerConfig::default()
        });
        for i in 0..8 {
            assert_eq!(a.on_read(i * 64), ReadDecision::Miss);
            a.observe_miss_vn(i * 64, 0);
        }
        assert_eq!(a.table().len(), 0);
        assert_eq!(a.on_writeback(0), WriteDecision::Miss);
    }

    #[test]
    fn writeback_round_trips_vn() {
        let mut a = analyzer();
        stream_pass(&mut a, 0, 16, 0);
        // Full write round in order.
        let mut finished = false;
        for i in 0..16u64 {
            match a.on_writeback(i * 64) {
                WriteDecision::Covered {
                    vn, finished_round, ..
                } => {
                    assert_eq!(vn, 1, "written lines carry vn+1");
                    finished |= finished_round;
                }
                WriteDecision::Miss => panic!("covered line reported miss"),
            }
        }
        assert!(finished, "last line must complete the round");
        // Next read sees the incremented VN.
        match a.on_read(0) {
            ReadDecision::HitIn { vn } => assert_eq!(vn, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preload_covers_immediately() {
        let mut a = analyzer();
        let d = TensorDesc::new_1d(0x8000, 64 * 64);
        a.preload_from_transfer(&d, 9, MacTag::from_raw(0xAB));
        match a.on_read(0x8000 + 40 * 64) {
            ReadDecision::HitIn { vn } => assert_eq!(vn, 9),
            other => panic!("{other:?}"),
        }
        assert_eq!(a.export_metadata(0x8000), Some((9, MacTag::from_raw(0xAB))));
    }

    #[test]
    fn violation_falls_back_to_miss() {
        let mut a = analyzer();
        stream_pass(&mut a, 0, 8, 0);
        a.on_writeback(0);
        a.on_writeback(64);
        // Double write violates Assert1; entry invalidated.
        assert_eq!(a.on_writeback(64), WriteDecision::Miss);
        assert_eq!(a.stats().get("violations"), 1);
        assert_eq!(a.on_read(0), ReadDecision::Miss, "coverage lost");
    }

    #[test]
    fn take_read_stats_resets() {
        let mut a = analyzer();
        stream_pass(&mut a, 0, 8, 0);
        let (h, b, m) = a.take_read_stats();
        assert_eq!(h + b + m, 8);
        let (h2, b2, m2) = a.take_read_stats();
        assert_eq!((h2, b2, m2), (0, 0, 0));
    }

    #[test]
    fn context_save_restore_round_trips() {
        let mut a = analyzer();
        stream_pass(&mut a, 0, 32, 0);
        assert!(matches!(a.on_read(64), ReadDecision::HitIn { .. }));
        // Switch away: state leaves the chip.
        let saved = a.save_context();
        assert!(!saved.is_empty());
        assert_eq!(a.on_read(64), ReadDecision::Miss);
        // Switch back: coverage returns.
        a.restore_context(saved);
        assert!(matches!(a.on_read(64), ReadDecision::HitIn { .. }));
    }

    #[test]
    fn clear_drops_state() {
        let mut a = analyzer();
        stream_pass(&mut a, 0, 16, 0);
        a.clear();
        assert_eq!(a.table().len(), 0);
        assert_eq!(a.on_read(0), ReadDecision::Miss);
    }
}
