//! The Tensor Filter: miss-stream pattern detection (§4.2, Figure 10).
//!
//! Meta Table misses are fed here. Each of the (10, per §6.5) filter
//! entries collects up to 4 addresses; when an entry reaches its collection
//! limit it checks the tensor condition — identical VN and a consistent
//! stride between the addresses — and, if satisfied, emits an initial
//! [`MetaEntry`] for the Meta Table.

use crate::analyzer::meta_table::MetaEntry;
use tee_mem::LINE_BYTES;
use tee_sim::StatSet;

/// Largest first-delta accepted as a plausible tensor stride (prevents two
/// unrelated streams from pairing up in one filter entry).
const MAX_STRIDE: u64 = 64 * LINE_BYTES;

#[derive(Debug, Clone)]
struct FilterEntry {
    addrs: Vec<u64>,
    vn: u64,
    lru: u64,
}

impl FilterEntry {
    fn stride(&self) -> Option<u64> {
        if self.addrs.len() < 2 {
            return None;
        }
        Some(self.addrs[1] - self.addrs[0])
    }

    /// Whether `va` continues this entry's pattern.
    fn matches(&self, va: u64, vn: u64) -> bool {
        if vn != self.vn {
            return false;
        }
        let last = *self.addrs.last().expect("entries are never empty");
        match self.stride() {
            None => va > last && va - last <= MAX_STRIDE,
            Some(s) => va == last + s,
        }
    }

    /// Validates the tensor condition and produces the initial Meta Table
    /// entry.
    fn into_meta(self) -> Option<MetaEntry> {
        let stride = self.stride()?;
        if stride < LINE_BYTES {
            return None;
        }
        // Consistent pattern across all collected addresses.
        for w in self.addrs.windows(2) {
            if w[1] - w[0] != stride {
                return None;
            }
        }
        Some(MetaEntry::new_1d(
            self.addrs[0],
            self.addrs.len() as u64,
            stride,
            self.vn,
        ))
    }
}

/// The Tensor Filter.
///
/// # Example
///
/// ```
/// use tee_cpu::analyzer::filter::TensorFilter;
///
/// let mut f = TensorFilter::new(10, 4);
/// assert!(f.observe_miss(0, 0).is_none());
/// assert!(f.observe_miss(64, 0).is_none());
/// assert!(f.observe_miss(128, 0).is_none());
/// let entry = f.observe_miss(192, 0).expect("4th address completes detection");
/// assert_eq!(entry.line_count(), 4);
/// ```
#[derive(Debug)]
pub struct TensorFilter {
    entries: Vec<FilterEntry>,
    capacity: usize,
    threshold: usize,
    tick: u64,
    stats: StatSet,
}

impl TensorFilter {
    /// Creates a filter with `capacity` entries collecting `threshold`
    /// addresses each (paper: 10 entries × 4 addresses).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `threshold < 2`.
    pub fn new(capacity: usize, threshold: usize) -> Self {
        assert!(capacity > 0, "filter needs at least one entry");
        assert!(threshold >= 2, "stride needs at least two addresses");
        TensorFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            threshold,
            tick: 0,
            stats: StatSet::new("tensor_filter"),
        }
    }

    /// Collection threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the filter holds no partial patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Detection statistics (`collected`, `detected`, `evictions`,
    /// `rejected`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Feeds one Meta Table miss (line address + its off-chip VN).
    /// Returns a detected [`MetaEntry`] when a pattern completes.
    pub fn observe_miss(&mut self, va: u64, vn: u64) -> Option<MetaEntry> {
        self.tick += 1;
        self.stats.bump("collected");
        if let Some(idx) = self.entries.iter().position(|e| e.matches(va, vn)) {
            self.entries[idx].addrs.push(va);
            self.entries[idx].lru = self.tick;
            if self.entries[idx].addrs.len() >= self.threshold {
                let entry = self.entries.swap_remove(idx);
                return match entry.into_meta() {
                    Some(meta) => {
                        self.stats.bump("detected");
                        Some(meta)
                    }
                    None => {
                        self.stats.bump("rejected");
                        None
                    }
                };
            }
            return None;
        }
        // Allocate a new tracking entry, evicting LRU if needed.
        if self.entries.len() == self.capacity {
            let lru_idx = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("filter is full, hence non-empty");
            self.entries.swap_remove(lru_idx);
            self.stats.bump("evictions");
        }
        self.entries.push(FilterEntry {
            addrs: vec![va],
            vn,
            lru: self.tick,
        });
        None
    }

    /// Drops all partial patterns (kernel switch).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_dense_stream() {
        let mut f = TensorFilter::new(10, 4);
        for i in 0..3 {
            assert!(f.observe_miss(i * 64, 5).is_none());
        }
        let e = f.observe_miss(192, 5).expect("detected");
        assert_eq!(e.base, 0);
        assert_eq!(e.vn, 5);
        assert_eq!(e.line_count(), 4);
    }

    #[test]
    fn detects_strided_stream() {
        let mut f = TensorFilter::new(10, 4);
        let stride = 256;
        for i in 0..3 {
            assert!(f.observe_miss(i * stride, 0).is_none());
        }
        let e = f.observe_miss(3 * stride, 0).expect("detected");
        assert!(e.contains(2 * stride));
        assert!(!e.contains(64), "only strided lines covered");
    }

    #[test]
    fn vn_mismatch_starts_new_entry() {
        let mut f = TensorFilter::new(10, 4);
        f.observe_miss(0, 0);
        f.observe_miss(64, 1); // different VN cannot join
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn interleaved_streams_tracked_separately() {
        let mut f = TensorFilter::new(10, 4);
        let a_base = 0u64;
        let b_base = 1 << 20;
        let mut detected = Vec::new();
        for i in 0..4 {
            if let Some(e) = f.observe_miss(a_base + i * 64, 0) {
                detected.push(e);
            }
            if let Some(e) = f.observe_miss(b_base + i * 64, 0) {
                detected.push(e);
            }
        }
        assert_eq!(detected.len(), 2);
        assert_ne!(detected[0].base, detected[1].base);
    }

    #[test]
    fn capacity_thrash_prevents_detection() {
        // More concurrent streams than entries, strict round-robin: every
        // stream is evicted before completing (the contention pathology
        // that staggers detection across iterations).
        let mut f = TensorFilter::new(2, 4);
        let mut detected = 0;
        for i in 0..4u64 {
            for s in 0..4u64 {
                if f.observe_miss((s << 24) + i * 64, 0).is_some() {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, 0);
        assert!(f.stats().get("evictions") > 0);
    }

    #[test]
    fn far_jump_does_not_pair() {
        let mut f = TensorFilter::new(10, 4);
        f.observe_miss(0, 0);
        f.observe_miss(1 << 30, 0);
        assert_eq!(f.len(), 2, "delta above MAX_STRIDE starts a new entry");
    }

    #[test]
    fn clear_resets() {
        let mut f = TensorFilter::new(4, 4);
        f.observe_miss(0, 0);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic]
    fn degenerate_threshold_rejected() {
        let _ = TensorFilter::new(4, 1);
    }
}
