//! CPU workload generators: the Adam optimizer update and tiled GEMM.
//!
//! These produce the tensor layouts and per-thread access schedules the
//! engine executes; the actual request streams are synthesized on the fly
//! by [`crate::engine::CpuEngine`].

use crate::tensor::TensorDesc;
use tee_mem::LINE_BYTES;
use tee_sim::util::align_up;

/// The four state streams Adam touches per parameter tensor
/// (ZeRO-Offload keeps fp32 master weights + optimizer state on the CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdamTensorSet {
    /// fp32 master weights (read + write).
    pub w: TensorDesc,
    /// Gradients received from the NPU (read).
    pub g: TensorDesc,
    /// First moment (read + write).
    pub m: TensorDesc,
    /// Second moment (read + write).
    pub v: TensorDesc,
}

impl AdamTensorSet {
    /// Total bytes across the four streams.
    pub fn bytes(&self) -> u64 {
        self.w.bytes + self.g.bytes + self.m.bytes + self.v.bytes
    }
}

/// A full Adam workload: one tensor set per parameter tensor.
#[derive(Debug, Clone)]
pub struct AdamWorkload {
    /// Per-parameter-tensor stream sets.
    pub tensors: Vec<AdamTensorSet>,
}

impl AdamWorkload {
    /// Lays out `sizes` (bytes of fp32 parameters per tensor) in a fresh
    /// virtual address space. Streams are *kind-major*: all weight tensors
    /// form one contiguous region, then gradients, momenta and variances —
    /// matching DeepSpeed's flattened fp32 buffers. Contiguity lets
    /// TenAnalyzer merge per-tensor entries into per-region entries
    /// (Figure 11), which is what keeps the 512-entry Meta Table
    /// sufficient for models with hundreds of tensors.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zeros.
    pub fn from_tensor_sizes(sizes: &[u64]) -> Self {
        assert!(!sizes.is_empty(), "workload needs at least one tensor");
        let region_gap: u64 = 1 << 36; // regions far apart
        let bases = [
            0x0100_0000_0000u64,               // w
            0x0100_0000_0000 + region_gap,     // g
            0x0100_0000_0000 + 2 * region_gap, // m
            0x0100_0000_0000 + 3 * region_gap, // v
        ];
        let mut offsets = [0u64; 4];
        let mut alloc = |kind: usize, bytes: u64| {
            let base = bases[kind] + offsets[kind];
            offsets[kind] += align_up(bytes, LINE_BYTES);
            TensorDesc::new_1d(base, bytes)
        };
        let tensors = sizes
            .iter()
            .map(|&s| {
                assert!(s > 0, "zero-sized tensor");
                let bytes = align_up(s, LINE_BYTES);
                AdamTensorSet {
                    w: alloc(0, bytes),
                    g: alloc(1, bytes),
                    m: alloc(2, bytes),
                    v: alloc(3, bytes),
                }
            })
            .collect();
        AdamWorkload { tensors }
    }

    /// Uniform synthetic workload: `count` tensors of `bytes` each.
    pub fn synthetic(count: usize, bytes: u64) -> Self {
        Self::from_tensor_sizes(&vec![bytes; count])
    }

    /// Total bytes across every stream (4× the parameter bytes).
    pub fn total_bytes(&self) -> u64 {
        self.tensors.iter().map(AdamTensorSet::bytes).sum()
    }

    /// Total parameter elements (fp32).
    pub fn elements(&self) -> u64 {
        self.tensors.iter().map(|t| t.w.bytes / 4).sum()
    }

    /// The four flattened regions (w, g, m, v) as single spanning
    /// descriptors — what DeepSpeed's flat fp32 buffers look like, and
    /// what SoftVN software annotations declare.
    pub fn flat_regions(&self) -> [TensorDesc; 4] {
        let span = |pick: fn(&AdamTensorSet) -> TensorDesc| {
            let first = pick(self.tensors.first().expect("non-empty workload"));
            let last = pick(self.tensors.last().expect("non-empty workload"));
            TensorDesc::new_1d(first.base, last.end() - first.base)
        };
        [span(|s| s.w), span(|s| s.g), span(|s| s.m), span(|s| s.v)]
    }

    /// Partitions the workload across `threads` workers: every tensor is
    /// split into contiguous chunks, chunk *t* of every tensor going to
    /// thread *t* (the data-parallel split that causes SoftVN's entry
    /// wastage).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn partition(&self, threads: u32) -> Vec<Vec<AdamTensorSet>> {
        assert!(threads > 0, "need at least one thread");
        let mut per_thread: Vec<Vec<AdamTensorSet>> = vec![Vec::new(); threads as usize];
        for set in &self.tensors {
            let w = set.w.split(threads as u64);
            let g = set.g.split(threads as u64);
            let m = set.m.split(threads as u64);
            let v = set.v.split(threads as u64);
            for t in 0..w.len().min(g.len()).min(m.len()).min(v.len()) {
                per_thread[t].push(AdamTensorSet {
                    w: w[t],
                    g: g[t],
                    m: m[t],
                    v: v[t],
                });
            }
        }
        per_thread
    }
}

/// A tiled square GEMM workload (§6.2: 256×256 matrices, 64×64 tiles).
#[derive(Debug, Clone, Copy)]
pub struct GemmWorkload {
    /// Matrix dimension (elements per side).
    pub n: u64,
    /// Tile dimension.
    pub tile: u64,
    /// Base VA of A (row-major), B and C follow.
    pub a_base: u64,
    /// Base VA of B.
    pub b_base: u64,
    /// Base VA of C.
    pub c_base: u64,
}

impl GemmWorkload {
    /// Element size (fp32).
    pub const ELEM: u64 = 4;

    /// Creates the §6.2 workload.
    ///
    /// # Panics
    ///
    /// Panics unless `tile` divides `n` and a row of a tile fills whole
    /// cachelines.
    pub fn new(n: u64, tile: u64) -> Self {
        assert!(n.is_multiple_of(tile), "tile must divide n");
        assert!(
            (tile * Self::ELEM).is_multiple_of(LINE_BYTES),
            "tile rows must be line-multiple"
        );
        let bytes = n * n * Self::ELEM;
        let a_base = 0x0002_0000_0000;
        let b_base = align_up(a_base + bytes, 4096) + 4096;
        let c_base = align_up(b_base + bytes, 4096) + 4096;
        GemmWorkload {
            n,
            tile,
            a_base,
            b_base,
            c_base,
        }
    }

    /// Bytes per matrix row.
    pub fn row_bytes(&self) -> u64 {
        self.n * Self::ELEM
    }

    /// Generates the read access stream (line addresses) of one full tiled
    /// GEMM: for every (i,j,k) tile triple, stream tile rows of A and B.
    /// C-tile writes are appended as a separate stream per (i,j).
    pub fn read_stream(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let tiles = self.n / self.tile;
        let row_bytes = self.row_bytes();
        let tile_row_bytes = self.tile * Self::ELEM;
        let lines_per_tile_row = tile_row_bytes / LINE_BYTES;
        let push_tile = |out: &mut Vec<u64>, base: u64, ti: u64, tj: u64| {
            let tile_base = base + ti * self.tile * row_bytes + tj * tile_row_bytes;
            for r in 0..self.tile {
                let row_start = tile_base + r * row_bytes;
                for l in 0..lines_per_tile_row {
                    out.push(row_start + l * LINE_BYTES);
                }
            }
        };
        for i in 0..tiles {
            for j in 0..tiles {
                for k in 0..tiles {
                    push_tile(&mut out, self.a_base, i, k);
                    push_tile(&mut out, self.b_base, k, j);
                }
                push_tile(&mut out, self.c_base, i, j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint() {
        let w = AdamWorkload::synthetic(3, 1 << 16);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for s in &w.tensors {
            for d in [s.w, s.g, s.m, s.v] {
                spans.push((d.base, d.end()));
            }
        }
        spans.sort_unstable();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "streams overlap: {pair:?}");
        }
    }

    #[test]
    fn totals_add_up() {
        let w = AdamWorkload::synthetic(2, 1 << 20);
        assert_eq!(w.total_bytes(), 8 << 20);
        assert_eq!(w.elements(), 2 * ((1 << 20) / 4));
    }

    #[test]
    fn partition_covers_all_lines() {
        let w = AdamWorkload::synthetic(2, 64 * 10);
        let parts = w.partition(3);
        let lines: u64 = parts
            .iter()
            .flatten()
            .map(|s| s.w.lines() + s.g.lines() + s.m.lines() + s.v.lines())
            .sum();
        assert_eq!(lines, w.total_bytes() / 64);
    }

    #[test]
    fn partition_single_thread_is_whole() {
        let w = AdamWorkload::synthetic(1, 640);
        let parts = w.partition(1);
        assert_eq!(parts[0][0].w, w.tensors[0].w);
    }

    #[test]
    fn gemm_stream_touches_all_matrices() {
        let g = GemmWorkload::new(64, 16);
        let stream = g.read_stream();
        assert!(stream.iter().any(|&a| a >= g.a_base && a < g.b_base));
        assert!(stream.iter().any(|&a| a >= g.b_base && a < g.c_base));
        assert!(stream.iter().any(|&a| a >= g.c_base));
        // 4x4 tiles: 16 (i,j) x 4 k x 2 matrices x 16 rows x 1 line + C tiles.
        assert_eq!(stream.len(), 16 * (4 * 2 + 1) * 16);
    }

    #[test]
    fn gemm_tile_rows_are_line_aligned() {
        let g = GemmWorkload::new(256, 64);
        for addr in g.read_stream().into_iter().take(1000) {
            assert_eq!(addr % LINE_BYTES, 0);
        }
    }

    #[test]
    #[should_panic]
    fn misaligned_tile_rejected() {
        let _ = GemmWorkload::new(64, 8); // 8*4 = 32 B < one line
    }
}
