//! The CPU execution engine: drives kernel request streams through the
//! cache hierarchy, the TEE engine and DRAM, producing the timing and
//! hit-rate data behind Figures 3, 18, 19 and §6.2.
//!
//! Fidelity notes (see the fidelity preamble of EXPERIMENTS.md):
//! * every 64 B line request flows through the real cache model; only LLC
//!   misses and dirty write-backs reach the MEE/DRAM — so metadata
//!   amplification, bandwidth saturation and MLP limits all emerge rather
//!   than being assumed;
//! * threads execute in small round-robin quanta so their local clocks
//!   stay approximately synchronized while sharing the memory system;
//! * in functional mode the engine additionally performs real encryption
//!   and verification against the `PhysMem` ciphertext image.

use crate::analyzer::{ReadDecision, TenAnalyzer, TenAnalyzerConfig, WriteDecision};
use crate::config::CpuConfig;
use crate::kernels::{AdamWorkload, GemmWorkload};
use crate::mee::{IntegrityError, SgxMee, VnPath};
use crate::softvn::{SoftVnConfig, SoftVnTable};
use std::collections::{HashMap, VecDeque};
use tee_crypto::Key;
use tee_mem::cache::{CacheHierarchy, HitLevel};
use tee_mem::mc::RequestClass;
use tee_mem::store::LineData;
use tee_mem::{MemoryController, PageMapper, PhysMem, LINE_BYTES};
use tee_sim::Time;

/// Which TEE scheme the engine runs under.
#[derive(Debug, Clone)]
pub enum TeeMode {
    /// No protection (performance reference).
    NonSecure,
    /// SGX-like cacheline-granularity baseline.
    Sgx,
    /// SoftVN software-declared VN table.
    SoftVn(SoftVnConfig),
    /// TensorTEE with TenAnalyzer.
    TensorTee(TenAnalyzerConfig),
}

impl TeeMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TeeMode::NonSecure => "non-secure",
            TeeMode::Sgx => "sgx",
            TeeMode::SoftVn(_) => "softvn",
            TeeMode::TensorTee(_) => "tensortee",
        }
    }
}

/// Per-iteration measurements.
#[derive(Debug, Clone, Copy)]
pub struct IterationStats {
    /// Wall-clock latency of the iteration (barrier to barrier).
    pub latency: Time,
    /// Meta Table `hit_in` reads (TensorTEE only).
    pub hit_in: u64,
    /// Meta Table `hit_boundary` reads.
    pub hit_boundary: u64,
    /// Meta Table read misses.
    pub miss: u64,
    /// Demand DRAM requests issued this iteration.
    pub demand: u64,
    /// Metadata DRAM requests issued this iteration.
    pub metadata: u64,
}

impl IterationStats {
    /// `hit_in / (hit_in + hit_boundary + miss)`; 0 when no reads reached
    /// the analyzer.
    pub fn hit_in_rate(&self) -> f64 {
        let total = self.hit_in + self.hit_boundary + self.miss;
        if total == 0 {
            0.0
        } else {
            self.hit_in as f64 / total as f64
        }
    }

    /// `(hit_in + hit_boundary) / total` — the paper's `hit_all`.
    pub fn hit_all_rate(&self) -> f64 {
        let total = self.hit_in + self.hit_boundary + self.miss;
        if total == 0 {
            0.0
        } else {
            (self.hit_in + self.hit_boundary) as f64 / total as f64
        }
    }
}

/// Result of an Adam run.
#[derive(Debug, Clone)]
pub struct AdamReport {
    /// Per-iteration measurements.
    pub iterations: Vec<IterationStats>,
    /// Sum of iteration latencies.
    pub total: Time,
    /// Integrity violations observed (functional mode).
    pub integrity_errors: u64,
}

impl AdamReport {
    /// Mean latency of iterations `skip..` (warm-up excluded).
    pub fn steady_latency(&self, skip: usize) -> Time {
        let tail: Vec<_> = self.iterations.iter().skip(skip).collect();
        if tail.is_empty() {
            return Time::ZERO;
        }
        let sum: u64 = tail.iter().map(|i| i.latency.as_ps()).sum();
        Time::from_ps(sum / tail.len() as u64)
    }
}

/// Result of a GEMM run (§6.2).
#[derive(Debug, Clone, Copy)]
pub struct GemmReport {
    /// Total run latency.
    pub latency: Time,
    /// Meta Table hit_in reads.
    pub hit_in: u64,
    /// Meta Table boundary hits.
    pub hit_boundary: u64,
    /// Meta Table misses.
    pub miss: u64,
}

impl GemmReport {
    /// Fraction of analyzer reads that hit in.
    pub fn hit_in_rate(&self) -> f64 {
        let total = self.hit_in + self.hit_boundary + self.miss;
        if total == 0 {
            0.0
        } else {
            self.hit_in as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct ThreadCtx {
    t: Time,
    outstanding: VecDeque<Time>,
}

/// The CPU engine.
#[derive(Debug)]
pub struct CpuEngine {
    cfg: CpuConfig,
    mode: TeeMode,
    hierarchy: CacheHierarchy,
    mc: MemoryController,
    mee: SgxMee,
    analyzer: Option<TenAnalyzer>,
    softvn: Option<SoftVnTable>,
    mem: PhysMem,
    mapper: PageMapper,
    va_of_pa: HashMap<u64, u64>,
    integrity_errors: u64,
    last_integrity_error: Option<IntegrityError>,
}

/// Lines processed per scheduling quantum per thread.
const QUANTUM_LINES: u64 = 4;

impl CpuEngine {
    /// Builds an engine for one TEE mode.
    pub fn new(cfg: CpuConfig, mode: TeeMode) -> Self {
        let analyzer = match &mode {
            TeeMode::TensorTee(a) => Some(TenAnalyzer::new(*a)),
            _ => None,
        };
        let softvn = match &mode {
            TeeMode::SoftVn(s) => Some(SoftVnTable::new(*s)),
            _ => None,
        };
        CpuEngine {
            hierarchy: CacheHierarchy::new(cfg.hierarchy),
            mc: MemoryController::new(cfg.dram),
            mee: SgxMee::new(&cfg, Key::from_seed(0xC0FFEE)),
            analyzer,
            softvn,
            mem: PhysMem::new(),
            mapper: PageMapper::new(0x7EE),
            va_of_pa: HashMap::new(),
            integrity_errors: 0,
            last_integrity_error: None,
            cfg,
            mode,
        }
    }

    /// The engine's TEE mode.
    pub fn mode(&self) -> &TeeMode {
        &self.mode
    }

    /// The TenAnalyzer, when running TensorTEE.
    pub fn analyzer(&self) -> Option<&TenAnalyzer> {
        self.analyzer.as_ref()
    }

    /// Attaches an observability probe to the TenAnalyzer (no-op in other
    /// TEE modes). Probes only observe — engine results are unchanged.
    pub fn set_probe(&mut self, probe: tee_sim::probe::SharedProbe) {
        if let Some(a) = self.analyzer.as_mut() {
            a.set_probe(probe);
        }
    }

    /// The memory controller (traffic statistics).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// The MEE (metadata statistics, adversarial hooks in tests).
    pub fn mee(&self) -> &SgxMee {
        &self.mee
    }

    /// Mutable MEE access for attack injection in security tests.
    pub fn mee_mut(&mut self) -> &mut SgxMee {
        &mut self.mee
    }

    /// The physical memory image (attack injection in security tests).
    pub fn mem_mut(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// The first integrity error observed, if any.
    pub fn last_integrity_error(&self) -> Option<IntegrityError> {
        self.last_integrity_error
    }

    /// Preloads Meta Table entries from tensor descriptors, as the NPU's
    /// data-transfer instructions do (§4.2: transfer instructions carry
    /// address/size/stride and fast-path entry creation). No-op outside
    /// TensorTEE mode.
    pub fn preload_tensors(&mut self, tensors: &[crate::tensor::TensorDesc]) {
        if let Some(a) = self.analyzer.as_mut() {
            for t in tensors {
                a.preload_from_transfer(t, 0, tee_crypto::MacTag::default());
            }
        }
    }

    fn translate(&mut self, va_line: u64) -> u64 {
        let pa = self.mapper.translate(va_line);
        debug_assert_eq!(pa % LINE_BYTES, 0);
        self.va_of_pa.entry(pa).or_insert(va_line);
        pa
    }

    fn synth_line(va: u64) -> LineData {
        let mut d = [0u8; 64];
        for (i, chunk) in d.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(va + i as u64).to_le_bytes());
        }
        d
    }

    fn record_integrity(&mut self, res: Result<(), IntegrityError>) {
        if let Err(e) = res {
            self.integrity_errors += 1;
            if self.last_integrity_error.is_none() {
                self.last_integrity_error = Some(e);
            }
        }
    }

    /// One demand access from `core` at VA `va_line`. Advances the thread
    /// clock; issues any resulting write-backs.
    fn access(&mut self, core: u32, th: &mut ThreadCtx, va_line: u64, is_write: bool) {
        let pa = self.translate(va_line);

        // TenAnalyzer observes every core request in parallel with the
        // cache lookup — including stores, whose write-allocate fills also
        // need a VN to decrypt (the Figure-12 write dataflow separately
        // observes the LLC *write-backs*).
        let decision = self.analyzer.as_mut().map(|a| a.on_read(va_line));

        let outcome = self.hierarchy.access(core, pa, is_write);

        // Issue write-backs produced by this access.
        let wbs = outcome.mem_writebacks.clone();
        for wb_pa in wbs {
            self.writeback(wb_pa, th.t);
        }

        // TenAnalyzer observes the core stream *before* the caches
        // (Figure 9), so detection and boundary confirmation proceed even
        // when the data itself is served on-chip.
        if outcome.served_by != HitLevel::Memory {
            match decision {
                Some(ReadDecision::HitBoundary { slot, vn }) => {
                    self.mee.background_vn_fetch(pa, th.t, &mut self.mc);
                    let matched = self.mee.line_vn(pa) == vn;
                    let analyzer = self.analyzer.as_mut().expect("tensortee mode");
                    analyzer.confirm_boundary(slot, va_line, matched);
                }
                Some(ReadDecision::Miss) => {
                    self.mee.background_vn_fetch(pa, th.t, &mut self.mc);
                    let vn_off = self.mee.line_vn(pa);
                    let analyzer = self.analyzer.as_mut().expect("tensortee mode");
                    analyzer.observe_miss_vn(va_line, vn_off);
                }
                _ => {}
            }
        }

        match outcome.served_by {
            HitLevel::L1 => {
                th.t += self.cfg.cycles(self.cfg.l1_latency.div_ceil(4));
            }
            HitLevel::L2 => {
                th.t += self.cfg.cycles(self.cfg.l2_latency.div_ceil(4));
            }
            HitLevel::L3 => {
                th.t += self.cfg.cycles(self.cfg.l3_latency.div_ceil(4));
            }
            HitLevel::Memory => {
                let done = self.fill_from_memory(pa, va_line, decision, th.t);
                // Issue cost of traversing the hierarchy.
                th.t += self.cfg.cycles(self.cfg.l3_latency.div_ceil(4));
                th.outstanding.push_back(done);
                if th.outstanding.len() > self.cfg.mlp {
                    let oldest = th.outstanding.pop_front().expect("non-empty");
                    th.t = th.t.max(oldest);
                }
            }
        }
    }

    /// Handles an off-chip fill for a (possibly analyzer-observed) read.
    fn fill_from_memory(
        &mut self,
        pa: u64,
        va_line: u64,
        decision: Option<ReadDecision>,
        at: Time,
    ) -> Time {
        match &self.mode {
            TeeMode::NonSecure => self.mc.request(pa, RequestClass::Demand, at),
            TeeMode::Sgx => {
                let op = self
                    .mee
                    .read_line(pa, VnPath::OffChip, at, &mut self.mc, &mut self.mem);
                self.record_integrity(op.integrity);
                op.done
            }
            TeeMode::SoftVn(_) => {
                let table = self.softvn.as_mut().expect("softvn mode");
                let lookup_cycles = table.lookup_cycles();
                let vn = table.lookup(va_line);
                let path = match vn {
                    Some(v) => VnPath::OnChip(v),
                    None => VnPath::OffChip,
                };
                let at = at + self.cfg.cycles(lookup_cycles);
                let op = self
                    .mee
                    .read_line(pa, path, at, &mut self.mc, &mut self.mem);
                self.record_integrity(op.integrity);
                op.done
            }
            TeeMode::TensorTee(_) => {
                let decision = decision.unwrap_or(ReadDecision::Miss);
                match decision {
                    ReadDecision::HitIn { vn } => {
                        let op = self.mee.read_line(
                            pa,
                            VnPath::OnChipTensorMac(vn),
                            at,
                            &mut self.mc,
                            &mut self.mem,
                        );
                        self.record_integrity(op.integrity);
                        op.done
                    }
                    ReadDecision::HitBoundary { slot, vn } => {
                        let op = self.mee.read_line(
                            pa,
                            VnPath::Background(vn),
                            at,
                            &mut self.mc,
                            &mut self.mem,
                        );
                        self.record_integrity(op.integrity);
                        let matched = self.mee.line_vn(pa) == vn;
                        let analyzer = self.analyzer.as_mut().expect("tensortee mode");
                        analyzer.confirm_boundary(slot, va_line, matched);
                        op.done
                    }
                    ReadDecision::Miss => {
                        let op = self.mee.read_line(
                            pa,
                            VnPath::OffChip,
                            at,
                            &mut self.mc,
                            &mut self.mem,
                        );
                        self.record_integrity(op.integrity);
                        let vn_off = self.mee.line_vn(pa);
                        let analyzer = self.analyzer.as_mut().expect("tensortee mode");
                        analyzer.observe_miss_vn(va_line, vn_off);
                        op.done
                    }
                }
            }
        }
    }

    fn is_functional(&self) -> bool {
        self.cfg.functional_crypto
    }

    /// Retires one LLC write-back through the active TEE path.
    fn writeback(&mut self, wb_pa: u64, at: Time) {
        let va = *self
            .va_of_pa
            .get(&wb_pa)
            .expect("write-back of a never-translated line");
        let data = Self::synth_line(va);
        let data_opt = self.is_functional().then_some(&data);
        match &self.mode {
            TeeMode::NonSecure => {
                self.mc.request(wb_pa, RequestClass::Demand, at);
            }
            TeeMode::Sgx => {
                self.mee.write_line(
                    wb_pa,
                    data_opt,
                    VnPath::OffChip,
                    at,
                    &mut self.mc,
                    &mut self.mem,
                );
            }
            TeeMode::SoftVn(_) => {
                let path = match self.softvn.as_mut().expect("softvn mode").write_vn(va) {
                    Some(vn) => VnPath::OnChip(vn),
                    None => VnPath::OffChip,
                };
                self.mee
                    .write_line(wb_pa, data_opt, path, at, &mut self.mc, &mut self.mem);
            }
            TeeMode::TensorTee(_) => {
                let decision = self
                    .analyzer
                    .as_mut()
                    .expect("tensortee mode")
                    .on_writeback(va);
                let path = match decision {
                    WriteDecision::Covered { vn, .. } => VnPath::OnChipTensorMac(vn),
                    WriteDecision::Miss => VnPath::OffChip,
                };
                self.mee
                    .write_line(wb_pa, data_opt, path, at, &mut self.mc, &mut self.mem);
            }
        }
    }

    /// Runs `iterations` Adam optimizer steps over `workload` with
    /// `threads` worker threads. Returns per-iteration measurements.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the configured core count.
    pub fn run_adam(
        &mut self,
        workload: &AdamWorkload,
        threads: u32,
        iterations: u32,
    ) -> AdamReport {
        assert!(threads > 0, "need at least one thread");
        assert!(
            threads <= self.cfg.hierarchy.cores,
            "more threads than cores"
        );
        // SoftVN: software declares the four flattened fp32 regions
        // (DeepSpeed keeps weights/grads/momentum/variance in flat
        // buffers), split per worker — one VN-table entry per chunk per
        // core, the "entry wastage" the paper describes (§2.2).
        if let Some(table) = self.softvn.as_mut() {
            table.clear();
            for region in workload.flat_regions() {
                for chunk in region.split(threads as u64) {
                    table.declare(chunk);
                }
            }
        }

        let parts = workload.partition(threads);
        let mut report = AdamReport {
            iterations: Vec::with_capacity(iterations as usize),
            total: Time::ZERO,
            integrity_errors: 0,
        };
        let mut barrier = Time::ZERO;

        for _iter in 0..iterations {
            let start = barrier;
            let demand0 = self.mc.stats().get("demand");
            let meta0 = self.mc.stats().get("metadata");
            if let Some(a) = self.analyzer.as_mut() {
                let _ = a.take_read_stats();
            }

            let mut ctxs: Vec<ThreadCtx> = (0..threads)
                .map(|_| ThreadCtx {
                    t: start,
                    outstanding: VecDeque::new(),
                })
                .collect();
            // Per-thread cursors: (tensor index, line index within chunk).
            let mut cursors: Vec<(usize, u64)> = vec![(0, 0); threads as usize];
            let mut live = threads as usize;

            while live > 0 {
                live = 0;
                for th in 0..threads as usize {
                    let (mut ti, mut li) = cursors[th];
                    if ti >= parts[th].len() {
                        continue;
                    }
                    live += 1;
                    let mut budget = QUANTUM_LINES;
                    while budget > 0 && ti < parts[th].len() {
                        let set = &parts[th][ti];
                        let lines = set.w.lines();
                        if li >= lines {
                            ti += 1;
                            li = 0;
                            continue;
                        }
                        let off = li * LINE_BYTES;
                        let (w, g, m, v) = (
                            set.w.base + off,
                            set.g.base + off,
                            set.m.base + off,
                            set.v.base + off,
                        );
                        let mut ctx = std::mem::replace(
                            &mut ctxs[th],
                            ThreadCtx {
                                t: Time::ZERO,
                                outstanding: VecDeque::new(),
                            },
                        );
                        // Adam: read w,g,m,v; compute; write w,m,v.
                        self.access(th as u32, &mut ctx, w, false);
                        self.access(th as u32, &mut ctx, g, false);
                        self.access(th as u32, &mut ctx, m, false);
                        self.access(th as u32, &mut ctx, v, false);
                        let elems = (LINE_BYTES / 4) as f64;
                        let compute = (elems * self.cfg.adam_cycles_per_element).round() as u64;
                        ctx.t += self.cfg.cycles(compute);
                        self.access(th as u32, &mut ctx, w, true);
                        self.access(th as u32, &mut ctx, m, true);
                        self.access(th as u32, &mut ctx, v, true);
                        ctxs[th] = ctx;
                        li += 1;
                        budget -= 1;
                    }
                    cursors[th] = (ti, li);
                }
            }

            // Barrier: wait for every thread and its outstanding misses.
            let mut end = start;
            for ctx in &ctxs {
                end = end.max(ctx.t);
                for &o in &ctx.outstanding {
                    end = end.max(o);
                }
            }

            // Optimizer-step boundary: the updated weights are DMA'd to
            // the NPU next, which forces the dirty lines out of the cache
            // hierarchy. Draining here also closes every tensor's VN
            // update round before the next iteration re-writes it
            // (Figure 12 semantics), identically for all TEE modes.
            {
                let mut dirty = self.hierarchy.flush_all();
                // The weight DMA drains regions in *virtual* address
                // order; physical frames are scattered by paging.
                dirty.sort_unstable_by_key(|pa| self.va_of_pa.get(pa).copied().unwrap_or(*pa));
                for pa in dirty {
                    self.writeback(pa, end);
                }
                end = end.max(self.mc.idle_at());
                // Kernel boundary: background merge scan consolidates
                // fragments now that every update round is closed.
                if let Some(a) = self.analyzer.as_mut() {
                    a.compact();
                }
            }

            // SoftVN: software bumps the written regions' VNs at the
            // optimizer-step boundary (gradients are read-only).
            if let Some(table) = self.softvn.as_mut() {
                let [w, _g, m, v] = workload.flat_regions();
                for region in [w, m, v] {
                    for chunk in region.split(threads as u64) {
                        table.bump(chunk.base);
                    }
                }
            }

            barrier = end;
            let (hit_in, hit_boundary, miss) = self
                .analyzer
                .as_mut()
                .map(|a| a.take_read_stats())
                .unwrap_or((0, 0, 0));
            report.iterations.push(IterationStats {
                latency: end - start,
                hit_in,
                hit_boundary,
                miss,
                demand: self.mc.stats().get("demand") - demand0,
                metadata: self.mc.stats().get("metadata") - meta0,
            });
        }
        report.total = barrier;
        report.integrity_errors = self.integrity_errors;
        report
    }

    /// Runs one full tiled GEMM (single thread) and reports analyzer hit
    /// rates (§6.2).
    pub fn run_gemm(&mut self, gemm: &GemmWorkload) -> GemmReport {
        if let Some(a) = self.analyzer.as_mut() {
            let _ = a.take_read_stats();
        }
        let mut ctx = ThreadCtx {
            t: Time::ZERO,
            outstanding: VecDeque::new(),
        };
        for va in gemm.read_stream() {
            self.access(0, &mut ctx, va, false);
        }
        let mut end = ctx.t;
        for &o in &ctx.outstanding {
            end = end.max(o);
        }
        let (hit_in, hit_boundary, miss) = self
            .analyzer
            .as_mut()
            .map(|a| a.take_read_stats())
            .unwrap_or((0, 0, 0));
        GemmReport {
            latency: end,
            hit_in,
            hit_boundary,
            miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(functional: bool) -> CpuConfig {
        let mut cfg = CpuConfig::default();
        // Tiny caches so small workloads are memory-bound.
        cfg.hierarchy.l1.size_bytes = 2 << 10;
        cfg.hierarchy.l2.size_bytes = 4 << 10;
        cfg.hierarchy.l3.size_bytes = 16 << 10;
        cfg.protected_lines = 1 << 14;
        cfg.functional_crypto = functional;
        cfg
    }

    fn small_workload() -> AdamWorkload {
        AdamWorkload::synthetic(2, 16 << 10) // 2 tensors × 16 KB × 4 streams
    }

    #[test]
    fn sgx_slower_than_non_secure() {
        let w = small_workload();
        let mut ns = CpuEngine::new(small_cfg(false), TeeMode::NonSecure);
        let mut sgx = CpuEngine::new(small_cfg(false), TeeMode::Sgx);
        let t_ns = ns.run_adam(&w, 4, 2).steady_latency(0);
        let t_sgx = sgx.run_adam(&w, 4, 2).steady_latency(0);
        assert!(t_sgx > t_ns, "sgx {t_sgx} should exceed non-secure {t_ns}");
    }

    #[test]
    fn tensortee_converges_to_hits() {
        let w = small_workload();
        let mut tt = CpuEngine::new(
            small_cfg(false),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let rep = tt.run_adam(&w, 2, 6);
        let first = rep.iterations.first().unwrap();
        let last = rep.iterations.last().unwrap();
        assert!(
            last.hit_in_rate() > 0.8,
            "late hit_in {}",
            last.hit_in_rate()
        );
        assert!(
            last.hit_in_rate() > first.hit_in_rate(),
            "hit rate should improve: {} -> {}",
            first.hit_in_rate(),
            last.hit_in_rate()
        );
    }

    #[test]
    fn tensortee_steady_state_beats_sgx() {
        let w = small_workload();
        let mut sgx = CpuEngine::new(small_cfg(false), TeeMode::Sgx);
        let mut tt = CpuEngine::new(
            small_cfg(false),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let t_sgx = sgx.run_adam(&w, 4, 6).steady_latency(3);
        let t_tt = tt.run_adam(&w, 4, 6).steady_latency(3);
        assert!(t_tt < t_sgx, "tensortee {t_tt} should beat sgx {t_sgx}");
    }

    #[test]
    fn tensortee_metadata_traffic_drops() {
        let w = small_workload();
        let mut sgx = CpuEngine::new(small_cfg(false), TeeMode::Sgx);
        let mut tt = CpuEngine::new(
            small_cfg(false),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let rep_sgx = sgx.run_adam(&w, 2, 5);
        let rep_tt = tt.run_adam(&w, 2, 5);
        let meta_sgx: u64 = rep_sgx.iterations.iter().skip(2).map(|i| i.metadata).sum();
        let meta_tt: u64 = rep_tt.iterations.iter().skip(2).map(|i| i.metadata).sum();
        assert!(
            meta_tt < meta_sgx / 2,
            "steady-state metadata: tt={meta_tt} sgx={meta_sgx}"
        );
    }

    #[test]
    fn functional_run_verifies_clean() {
        let w = AdamWorkload::synthetic(1, 4 << 10);
        let mut tt = CpuEngine::new(
            small_cfg(true),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let rep = tt.run_adam(&w, 2, 4);
        assert_eq!(
            rep.integrity_errors,
            0,
            "clean run must verify: {:?}",
            tt.last_integrity_error()
        );
    }

    #[test]
    fn functional_sgx_run_verifies_clean() {
        let w = AdamWorkload::synthetic(1, 4 << 10);
        let mut sgx = CpuEngine::new(small_cfg(true), TeeMode::Sgx);
        let rep = sgx.run_adam(&w, 2, 3);
        assert_eq!(rep.integrity_errors, 0, "{:?}", sgx.last_integrity_error());
    }

    #[test]
    fn functional_softvn_run_verifies_clean() {
        let w = AdamWorkload::synthetic(1, 4 << 10);
        let mut sv = CpuEngine::new(small_cfg(true), TeeMode::SoftVn(SoftVnConfig::default()));
        let rep = sv.run_adam(&w, 2, 3);
        assert_eq!(rep.integrity_errors, 0, "{:?}", sv.last_integrity_error());
    }

    #[test]
    fn softvn_fast_from_first_iteration() {
        let w = small_workload();
        let mut sv = CpuEngine::new(small_cfg(false), TeeMode::SoftVn(SoftVnConfig::default()));
        let mut sgx = CpuEngine::new(small_cfg(false), TeeMode::Sgx);
        let rep_sv = sv.run_adam(&w, 2, 2);
        let rep_sgx = sgx.run_adam(&w, 2, 2);
        assert!(rep_sv.iterations[0].latency < rep_sgx.iterations[0].latency);
    }

    #[test]
    fn gemm_detection_converges() {
        let mut tt = CpuEngine::new(
            small_cfg(false),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        // Tile rows must span at least the filter threshold (4 lines), as
        // in the paper's 64-element tiles (§6.2).
        let g = GemmWorkload::new(256, 64);
        // First GEMM builds the structures…
        let first = tt.run_gemm(&g);
        assert!(first.hit_in > 0, "reuse within one GEMM already hits");
        // …after which accesses hit in (paper: 98.8%).
        let second = tt.run_gemm(&g);
        assert!(
            second.hit_in_rate() > 0.95,
            "GEMM after structure construction: {}",
            second.hit_in_rate()
        );
    }

    #[test]
    fn more_threads_is_faster_non_secure() {
        let w = AdamWorkload::synthetic(4, 16 << 10);
        let mut e1 = CpuEngine::new(small_cfg(false), TeeMode::NonSecure);
        let mut e4 = CpuEngine::new(small_cfg(false), TeeMode::NonSecure);
        let t1 = e1.run_adam(&w, 1, 2).steady_latency(0);
        let t4 = e4.run_adam(&w, 4, 2).steady_latency(0);
        assert!(t4 < t1, "4 threads {t4} should beat 1 thread {t1}");
    }
}
