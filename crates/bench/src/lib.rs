//! # tee-bench
//!
//! Criterion benchmark harness. Each bench in `benches/` regenerates one
//! table or figure of the paper (see DESIGN.md for the experiment index):
//! it prints the paper-formatted artifact once, then Criterion-times the
//! underlying simulation kernel.

use criterion::Criterion;

/// A short Criterion configuration suitable for simulation kernels
/// (each sample is itself thousands of simulated events).
pub fn criterion_quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Prints the experiment banner with the paper reference.
pub fn banner(id: &str, paper_claim: &str) {
    eprintln!("\n================================================================");
    eprintln!("{id}");
    eprintln!("paper reference: {paper_claim}");
    eprintln!("================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_config_builds() {
        let _ = super::criterion_quick();
    }
}
