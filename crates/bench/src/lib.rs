//! # tee-bench
//!
//! Criterion benchmark harness for the paper's evaluation section (§6).
//! Each bench target in `benches/` regenerates one table or figure —
//! `fig03_cpu_slowdown` through `fig21_comm_breakdown`, `tab2_workloads`,
//! the §6.2/§6.5 spot checks, plus the `scaling_1_2_4_8` multi-NPU
//! strong-scaling extension — printing the paper-formatted artifact once
//! and then Criterion-timing the underlying simulation kernel. The full
//! bench → figure/table map lives in EXPERIMENTS.md at the repo root;
//! the shared experiment runners live in `tensortee::experiments`.

use criterion::Criterion;

/// A short Criterion configuration suitable for simulation kernels
/// (each sample is itself thousands of simulated events).
pub fn criterion_quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Prints the experiment banner with the paper reference.
pub fn banner(id: &str, paper_claim: &str) {
    eprintln!("\n================================================================");
    eprintln!("{id}");
    eprintln!("paper reference: {paper_claim}");
    eprintln!("================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_config_builds() {
        let _ = super::criterion_quick();
    }
}
