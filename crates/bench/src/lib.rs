//! # tee-bench
//!
//! Criterion benchmark harness for the paper's evaluation section (§6).
//! Each bench target in `benches/` regenerates one registered artifact —
//! `fig03` through `fig21`, `tab2`, the §6.2/§6.5 spot checks, the
//! ablations, plus the `scaling_strong` multi-NPU extension — by
//! resolving it from [`tensortee::artifact::registry`] via
//! [`run_registered`], printing the paper-formatted report, and then
//! Criterion-timing the underlying simulation kernel. The full bench →
//! figure/table map lives in EXPERIMENTS.md at the repo root; the
//! `tensortee` CLI (`cargo run --release --bin tensortee -- list`) drives
//! the same registry without the kernel timing.
//!
//! These benches time individual *kernels*; the repo's end-to-end perf
//! baseline is the `tensortee bench` subcommand
//! ([`tensortee::perf::BenchTrajectory`]), which times every registry
//! artifact plus the explore sweeps and writes the CI-ratcheted
//! `BENCH_<rev>.json` (see EXPERIMENTS.md, "Perf trajectory").

use criterion::Criterion;
use tensortee::artifact::RunContext;
use tensortee::report::Report;

/// A short Criterion configuration suitable for simulation kernels
/// (each sample is itself thousands of simulated events).
pub fn criterion_quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Prints the experiment banner with the paper reference.
pub fn banner(id: &str, paper_claim: &str) {
    eprintln!("\n================================================================");
    eprintln!("{id}");
    eprintln!("paper reference: {paper_claim}");
    eprintln!("================================================================");
}

/// Resolves artifact `id` from the registry, runs it under the full
/// paper-fidelity [`RunContext`], prints the banner and the report, and
/// returns the report for benches that want the structured values.
///
/// # Panics
///
/// Panics if `id` is not registered (a bench naming a missing artifact is
/// a wiring bug, not a runtime condition).
pub fn run_registered(id: &str) -> Report {
    run_in_context(id, &RunContext::full())
}

/// [`run_registered`], but under an explicit context.
pub fn run_in_context(id: &str, ctx: &RunContext) -> Report {
    let artifact = tensortee::artifact::find(id)
        .unwrap_or_else(|| panic!("artifact {id:?} not in the registry"));
    banner(
        &format!("{} — {}", artifact.paper_anchor, artifact.title),
        artifact.claim,
    );
    let report = artifact.run(ctx);
    eprintln!("{}", report.to_markdown());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_config_builds() {
        let _ = super::criterion_quick();
    }

    #[test]
    #[should_panic]
    fn unknown_artifact_panics() {
        let _ = super::run_registered("not-an-artifact");
    }
}
