//! Fleet serving — KV-aware router, secure KV handoff and the
//! calendar-queue DES core at cluster scale (extension beyond the
//! paper's single-instance serving; see EXPERIMENTS.md).
//!
//! Prints the `fleet_latency` per-mode table and the `fleet_handoff`
//! placement × protocol grid: KV-aware placement sends follow-up turns
//! home (cutting migrations vs round-robin), and among the migrations
//! that do happen, TensorTEE's direct handoff overlaps the KV transfer
//! with destination compute while SGX+MGX's staged path stays exposed.
//! The micro-benchmarks time one fleet trace end-to-end per placement
//! policy, plus the calendar-vs-heap event-queue kernel the scheduler
//! runs on.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_fleet::{simulate, FleetConfig, Policy};
use tee_serve::config::SecurityProfile;
use tee_serve::{ServeConfig, SessionTraceConfig};
use tee_sim::{EventQueue, HeapQueue, SplitMix64, Time};
use tee_workloads::zoo::TABLE2;

/// The hold-model churn both queue kernels run: 1024 events in flight,
/// every pop schedules a successor at a random forward offset.
fn churn<Q>(
    q: &mut Q,
    events: u64,
    mut sched: impl FnMut(&mut Q, Time, u64),
    mut pop: impl FnMut(&mut Q) -> (Time, u64),
) {
    let mut rng = SplitMix64::new(0xF1EE7);
    for i in 0..1024u64 {
        sched(q, Time::from_ns(rng.next_below(1_000_000)), i);
    }
    let mut next = 1024u64;
    for _ in 0..events {
        let (now, e) = pop(q);
        black_box(e);
        if next < events {
            sched(q, now + Time::from_ns(1 + rng.next_below(1_000_000)), next);
            next += 1;
        }
    }
}

fn main() {
    run_registered("fleet_latency");
    run_registered("fleet_handoff");

    // Kernel timing: one short multi-tenant trace end-to-end per
    // placement policy, plus the raw event-queue hold-model churn.
    let model = TABLE2[0]; // GPT keeps the per-iteration price small
    let serve = ServeConfig::for_model(&model, 4, 640);
    let trace = SessionTraceConfig::poisson(48, 24.0, 4, 42).generate();
    let profile = SecurityProfile::tensor_tee();
    let mut c = criterion_quick();
    for policy in Policy::all() {
        let cfg = FleetConfig::new(serve.clone(), 4).with_policy(policy);
        c.bench_function(&format!("fleet/trace48_{}", policy.label()), |b| {
            b.iter(|| black_box(simulate(&cfg, &model, &profile, &trace).goodput_tps()))
        });
    }
    c.bench_function("fleet/queue_calendar_64k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            churn(
                &mut q,
                1 << 16,
                |q, at, e| q.schedule(at, e),
                |q| q.pop().unwrap(),
            );
        })
    });
    c.bench_function("fleet/queue_heap_64k", |b| {
        b.iter(|| {
            let mut q: HeapQueue<u64> = HeapQueue::new();
            churn(
                &mut q,
                1 << 16,
                |q, at, e| q.schedule(at, e),
                |q| q.pop().unwrap(),
            );
        })
    });
    c.final_summary();
}
