//! Figure 20 — NPU MAC granularity sweep vs. delayed tensor verification.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_npu::engine::{Layer, NpuEngine};
use tee_npu::MacScheme;
use tensortee::SystemConfig;

fn main() {
    run_registered("fig20");

    let cfg = SystemConfig::default();
    let layers = vec![Layer::elementwise(4 << 20); 8];
    let mut c = criterion_quick();
    c.bench_function("fig20/coarse_4kb_run", |b| {
        let engine = NpuEngine::new(cfg.npu.clone(), MacScheme::PerBlock { granularity: 4096 });
        b.iter(|| black_box(engine.run(&layers).total))
    });
    c.bench_function("fig20/tensor_delayed_run", |b| {
        let engine = NpuEngine::new(cfg.npu.clone(), MacScheme::TensorDelayed);
        b.iter(|| black_box(engine.run(&layers).total))
    });
    c.final_summary();
}
