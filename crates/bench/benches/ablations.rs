//! Ablations over the design choices the reproduction calls out:
//! Meta Table capacity, Tensor Filter threshold, metadata-cache size for
//! the SGX baseline, and AES bandwidth for the staging protocol.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{CpuEngine, TeeMode};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::bench_adam_workload;
use tensortee::SystemConfig;

fn main() {
    run_registered("ablations");

    let cfg = SystemConfig::default();
    let mut c = criterion_quick();
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    c.bench_function("ablation/tensortee_128_entries", |b| {
        b.iter(|| {
            let mut e = CpuEngine::new(
                cfg.cpu.clone(),
                TeeMode::TensorTee(TenAnalyzerConfig {
                    meta_entries: 128,
                    ..TenAnalyzerConfig::default()
                }),
            );
            black_box(e.run_adam(&workload, 8, 1).total)
        })
    });
    c.final_summary();
}
