//! Ablations over the design choices the reproduction calls out:
//! Meta Table capacity, Tensor Filter threshold, metadata-cache size for
//! the SGX baseline, and AES bandwidth for the staging protocol.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_comm::protocol::StagingProtocol;
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{CpuEngine, TeeMode};
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::bench_adam_workload;
use tensortee::SystemConfig;

fn meta_table_capacity_sweep(cfg: &SystemConfig) {
    banner(
        "Ablation — Meta Table capacity",
        "§6.2: beyond 512 simultaneously live tensors the benefit diminishes",
    );
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    eprintln!("| entries | steady hit_in | steady latency |");
    eprintln!("|---|---|---|");
    for entries in [32usize, 64, 128, 256, 512, 1024] {
        let mut e = CpuEngine::new(
            cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig {
                meta_entries: entries,
                ..TenAnalyzerConfig::default()
            }),
        );
        let rep = e.run_adam(&workload, 8, 4);
        let last = rep.iterations.last().unwrap();
        eprintln!(
            "| {entries} | {:.2} | {} |",
            last.hit_in_rate(),
            last.latency
        );
    }
}

fn filter_threshold_sweep(cfg: &SystemConfig) {
    banner(
        "Ablation — Tensor Filter collection threshold",
        "§4.2 uses 4 addresses; fewer detects faster but with weaker evidence",
    );
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    eprintln!("| threshold | iter-0 hit_all | iter-3 hit_in |");
    eprintln!("|---|---|---|");
    for threshold in [2usize, 3, 4, 8] {
        let mut e = CpuEngine::new(
            cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig {
                filter_threshold: threshold,
                ..TenAnalyzerConfig::default()
            }),
        );
        let rep = e.run_adam(&workload, 8, 4);
        eprintln!(
            "| {threshold} | {:.2} | {:.2} |",
            rep.iterations[0].hit_all_rate(),
            rep.iterations[3].hit_in_rate()
        );
    }
}

fn metadata_cache_sweep(cfg: &SystemConfig) {
    banner(
        "Ablation — SGX metadata-cache size",
        "Table 1 uses 32 KB; the baseline's only defense against Merkle traffic",
    );
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    eprintln!("| metadata cache | steady SGX latency |");
    eprintln!("|---|---|");
    for kb in [8u64, 16, 32, 64, 128] {
        let mut cpu = cfg.cpu.clone();
        cpu.metadata_cache_bytes = kb << 10;
        let mut e = CpuEngine::new(cpu, TeeMode::Sgx);
        let rep = e.run_adam(&workload, 8, 3);
        eprintln!("| {kb} KB | {} |", rep.steady_latency(1));
    }
}

fn aes_bandwidth_sweep() {
    banner(
        "Ablation — staging-protocol AES bandwidth",
        "§3.3: one engine (8 GB/s) starves transfers; more engines trade area",
    );
    let bytes = TABLE2[1].grad_bytes();
    eprintln!("| AES bandwidth | staged transfer total |");
    eprintln!("|---|---|");
    for gbs in [4.0f64, 8.0, 16.0, 32.0, 64.0] {
        let mut p = StagingProtocol::with_aes_bandwidth(gbs * 1e9);
        eprintln!("| {gbs} GB/s | {} |", p.transfer(Time::ZERO, bytes).total());
    }
}

fn main() {
    let cfg = SystemConfig::default();
    meta_table_capacity_sweep(&cfg);
    filter_threshold_sweep(&cfg);
    metadata_cache_sweep(&cfg);
    aes_bandwidth_sweep();

    let mut c = criterion_quick();
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    c.bench_function("ablation/tensortee_128_entries", |b| {
        b.iter(|| {
            let mut e = CpuEngine::new(
                cfg.cpu.clone(),
                TeeMode::TensorTee(TenAnalyzerConfig {
                    meta_entries: 128,
                    ..TenAnalyzerConfig::default()
                }),
            );
            black_box(e.run_adam(&workload, 8, 1).total)
        })
    });
    c.final_summary();
}
