//! Figure 18 — Meta Table hit rate vs. iteration (cold detection).

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{CpuEngine, TeeMode};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::bench_adam_workload;
use tensortee::SystemConfig;

fn main() {
    run_registered("fig18");

    let cfg = SystemConfig::default();
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    let mut c = criterion_quick();
    c.bench_function("fig18/tensortee_cold_iteration", |b| {
        b.iter(|| {
            let mut e = CpuEngine::new(
                cfg.cpu.clone(),
                TeeMode::TensorTee(TenAnalyzerConfig::default()),
            );
            black_box(e.run_adam(&workload, 8, 1).total)
        })
    });
    c.final_summary();
}
