//! Figure 17 — per-model phase breakdown under the three configurations.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_workloads::zoo::TABLE2;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    run_registered("fig17");

    let cfg = SystemConfig::default();
    let mut c = criterion_quick();
    c.bench_function("fig17/breakdown_three_modes_gpt", |b| {
        b.iter(|| {
            for mode in SecureMode::all() {
                let mut sys = TrainingSystem::new(cfg.clone(), mode);
                black_box(sys.simulate_step(&TABLE2[0]).fractions());
            }
        })
    });
    c.final_summary();
}
