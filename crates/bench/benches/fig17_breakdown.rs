//! Figure 17 — per-model phase breakdown under the three configurations.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::fig17_breakdown;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    let cfg = SystemConfig::default();
    banner(
        "Figure 17 — bottleneck analysis (per-model breakdown)",
        "TensorTEE eliminates CPU metadata overhead and exposed transfer time",
    );
    eprintln!("{}", fig17_breakdown(&cfg, &TABLE2));

    let mut c = criterion_quick();
    c.bench_function("fig17/breakdown_three_modes_gpt", |b| {
        b.iter(|| {
            for mode in SecureMode::all() {
                let mut sys = TrainingSystem::new(cfg.clone(), mode);
                black_box(sys.simulate_step(&TABLE2[0]).fractions());
            }
        })
    });
    c.final_summary();
}
