//! Figure 4 — access characteristics: tensor numbers and sizes.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_workloads::census::TensorCensus;
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::fig04_tensor_census;

fn main() {
    banner(
        "Figure 4 — Tensor census",
        "tensor sizes grow to MBytes; tensor counts stay at a few hundred",
    );
    eprintln!("{}", fig04_tensor_census());

    let mut c = criterion_quick();
    c.bench_function("fig04/census_all_models", |b| {
        b.iter(|| {
            for m in TABLE2 {
                let census = TensorCensus::of(&m);
                black_box((census.count(), census.max_bytes()));
            }
        })
    });
    c.final_summary();
}
