//! Figure 4 — access characteristics: tensor numbers and sizes.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_workloads::census::TensorCensus;
use tee_workloads::zoo::TABLE2;

fn main() {
    run_registered("fig04");

    let mut c = criterion_quick();
    c.bench_function("fig04/census_all_models", |b| {
        b.iter(|| {
            for m in TABLE2 {
                let census = TensorCensus::of(&m);
                black_box((census.count(), census.max_bytes()));
            }
        })
    });
    c.final_summary();
}
