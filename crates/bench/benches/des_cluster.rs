//! Discrete-event cluster engine — analytic parity plus the two
//! DES-only scenarios (extension beyond the paper's analytic model; see
//! EXPERIMENTS.md).
//!
//! Prints the `des_parity` differential table (every breakdown must
//! match the analytic oracle bit-for-bit), the straggler sweep (a slow
//! rank widens TensorTEE's lead: direct overlap hides more of the
//! collective while staging's serialized hops stay exposed), and the
//! pipeline sweep (boundary activations contending on the shared
//! fabric). The micro-benchmarks time one DES step against the analytic
//! fold to show the event replay's overhead stays in the noise of a
//! design-space sweep.

use criterion::black_box;
use tee_bench::{criterion_quick, run_in_context};
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;
use tee_workloads::StepSchedule;
use tensortee::{
    ClusterConfig, ClusterSystem, DesClusterConfig, DesClusterSystem, RunContext, SecureMode,
    SystemConfig,
};

fn main() {
    let ctx = RunContext::full();
    run_in_context("des_parity", &ctx);
    run_in_context("des_straggler", &ctx);
    run_in_context("des_pipeline", &ctx);

    let schedule = StepSchedule::of(&TABLE2[1]);
    let cpu = Time::from_ms(25);
    let mut c = criterion_quick();
    c.bench_function("des/analytic_step_8", |b| {
        b.iter(|| {
            let mut sys = ClusterSystem::new(
                SystemConfig::fast_sim(),
                ClusterConfig::of(8),
                SecureMode::TensorTee,
            );
            black_box(sys.simulate_with_cpu_time(&schedule, cpu).total())
        })
    });
    c.bench_function("des/event_step_8", |b| {
        b.iter(|| {
            let mut sys = DesClusterSystem::new(
                SystemConfig::fast_sim(),
                DesClusterConfig::lockstep(ClusterConfig::of(8)),
                SecureMode::TensorTee,
            );
            black_box(sys.simulate_with_cpu_time(&schedule, cpu).makespan)
        })
    });
    c.bench_function("des/pipeline_step_8x16", |b| {
        b.iter(|| {
            let mut sys = DesClusterSystem::new(
                SystemConfig::fast_sim(),
                DesClusterConfig::lockstep(ClusterConfig::of(8)).with_pipeline(16),
                SecureMode::TensorTee,
            );
            black_box(sys.simulate_with_cpu_time(&schedule, cpu).makespan)
        })
    });
    c.final_summary();
}
