//! Figure 21 — gradient-transfer breakdown and improvement.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_comm::protocol::StagingProtocol;
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;

fn main() {
    run_registered("fig21");

    let grad = TABLE2[1].grad_bytes();
    let mut c = criterion_quick();
    c.bench_function("fig21/staged_gradient_transfer", |b| {
        b.iter(|| {
            let mut p = StagingProtocol::new();
            black_box(p.transfer(Time::ZERO, grad).total())
        })
    });
    c.final_summary();
}
