//! Figure 21 — gradient-transfer breakdown and improvement.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_comm::protocol::StagingProtocol;
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::fig21_comm_breakdown;
use tensortee::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    banner(
        "Figure 21 — gradient-transfer breakdown",
        "re-encryption/decryption eliminated; 18.7x communication improvement",
    );
    let (_, md) = fig21_comm_breakdown(&cfg, &TABLE2);
    eprintln!("{md}");

    let grad = TABLE2[1].grad_bytes();
    let mut c = criterion_quick();
    c.bench_function("fig21/staged_gradient_transfer", |b| {
        b.iter(|| {
            let mut p = StagingProtocol::new();
            black_box(p.transfer(Time::ZERO, grad).total())
        })
    });
    c.final_summary();
}
