//! §6.5 — hardware overhead of the TenAnalyzer structures.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tensortee::HardwareBudget;

fn main() {
    banner(
        "§6.5 — hardware overhead",
        "512-entry Meta Table + filter + bitmap cache + poison bits = 24 KB, 0.0072 mm² @ 7 nm",
    );
    let hw = HardwareBudget::default();
    eprintln!("{}\n", hw.markdown());

    let mut c = criterion_quick();
    c.bench_function("sec65/budget_arithmetic", |b| {
        b.iter(|| black_box(HardwareBudget::default().total_bytes()))
    });
    c.final_summary();
}
