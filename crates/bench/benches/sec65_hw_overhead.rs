//! §6.5 — hardware overhead of the TenAnalyzer structures.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tensortee::HardwareBudget;

fn main() {
    run_registered("sec65");

    let mut c = criterion_quick();
    c.bench_function("sec65/budget_arithmetic", |b| {
        b.iter(|| black_box(HardwareBudget::default().total_bytes()))
    });
    c.final_summary();
}
