//! Inference serving — offered-load and burstiness sweep (tee-serve
//! extension; see EXPERIMENTS.md).
//!
//! Prints goodput / TTFT p99 / exposed KV time across load multipliers
//! and arrival patterns per mode. The shape to look for: below
//! saturation all modes track the offered load; past it TensorTEE holds
//! near the non-secure ceiling while SGX+MGX saturates earlier (KV
//! staging + coarse-MAC decode stalls), and bursty arrivals widen the
//! TTFT tail for everyone but cost the staging protocol the most.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_serve::TraceConfig;

fn main() {
    run_registered("serve_sweep");

    // Kernel timing: trace generation itself (the deterministic
    // Poisson/bursty samplers).
    let mut c = criterion_quick();
    c.bench_function("serve/trace_gen_poisson_1k", |b| {
        b.iter(|| black_box(TraceConfig::poisson(1_000, 32.0, 7).generate().len()))
    });
    c.bench_function("serve/trace_gen_bursty_1k", |b| {
        b.iter(|| black_box(TraceConfig::bursty(1_000, 32.0, 8, 7).generate().len()))
    });
    c.final_summary();
}
