//! Figure 16 — overall performance across the Table-2 zoo.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_workloads::zoo::TABLE2;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    run_registered("fig16");

    let cfg = SystemConfig::default();
    let mut c = criterion_quick();
    c.bench_function("fig16/tensortee_step_gpt2m", |b| {
        b.iter(|| {
            let mut sys = TrainingSystem::new(cfg.clone(), SecureMode::TensorTee);
            black_box(sys.simulate_step(&TABLE2[1]).total())
        })
    });
    c.final_summary();
}
