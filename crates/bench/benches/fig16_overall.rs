//! Figure 16 — overall performance across the Table-2 zoo.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::fig16_overall;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    let cfg = SystemConfig::default();
    banner(
        "Figure 16 — overall performance (latency/batch + speedup)",
        "TensorTEE 2.1–5.5x over SGX+MGX (avg 4.0x); 2.1% over non-secure",
    );
    let (_, md) = fig16_overall(&cfg, &TABLE2);
    eprintln!("{md}");

    let mut c = criterion_quick();
    c.bench_function("fig16/tensortee_step_gpt2m", |b| {
        b.iter(|| {
            let mut sys = TrainingSystem::new(cfg.clone(), SecureMode::TensorTee);
            black_box(sys.simulate_step(&TABLE2[1]).total())
        })
    });
    c.final_summary();
}
