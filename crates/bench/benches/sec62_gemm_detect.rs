//! §6.2 — tiled-GEMM tensor detection (256×256, 64×64 tiles).

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{CpuEngine, GemmWorkload, TeeMode};
use tensortee::SystemConfig;

fn main() {
    run_registered("sec62");

    let cfg = SystemConfig::default();
    let mut c = criterion_quick();
    c.bench_function("sec62/gemm_detection_pass", |b| {
        let gemm = GemmWorkload::new(256, 64);
        b.iter(|| {
            let mut e = CpuEngine::new(
                cfg.cpu.clone(),
                TeeMode::TensorTee(TenAnalyzerConfig::default()),
            );
            black_box(e.run_gemm(&gemm).hit_in)
        })
    });
    c.final_summary();
}
