//! §6.2 — tiled-GEMM tensor detection (256×256, 64×64 tiles).

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{CpuEngine, GemmWorkload, TeeMode};
use tensortee::experiments::sec62_gemm_detection;
use tensortee::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    banner(
        "§6.2 — GEMM tensor detection via entry merging",
        "98.8% hit_in after a single GEMM builds the structures",
    );
    let (_, md) = sec62_gemm_detection(&cfg);
    eprintln!("{md}");

    let mut c = criterion_quick();
    c.bench_function("sec62/gemm_detection_pass", |b| {
        let gemm = GemmWorkload::new(256, 64);
        b.iter(|| {
            let mut e = CpuEngine::new(
                cfg.cpu.clone(),
                TeeMode::TensorTee(TenAnalyzerConfig::default()),
            );
            black_box(e.run_gemm(&gemm).hit_in)
        })
    });
    c.final_summary();
}
