//! Figures 7 & 15 — AES-bound serialization vs. recovered overlap.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;

fn main() {
    run_registered("fig15");

    let grad_bytes = TABLE2[1].grad_bytes();
    let mut c = criterion_quick();
    c.bench_function("fig15/staging_protocol_transfer", |b| {
        b.iter(|| {
            let mut p = StagingProtocol::new();
            black_box(p.transfer(Time::ZERO, grad_bytes).total())
        })
    });
    c.bench_function("fig15/direct_protocol_transfer", |b| {
        b.iter(|| {
            let mut p = DirectProtocol::new();
            black_box(p.transfer(Time::ZERO, grad_bytes).total())
        })
    });
    c.final_summary();
}
