//! Figures 7 & 15 — AES-bound serialization vs. recovered overlap.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_sim::Time;
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::fig15_overlap;

fn main() {
    banner(
        "Figures 7/15 — compute/communication overlap",
        "baseline serializes behind AES; unified granularity overlaps transfer with compute",
    );
    let grad_bytes = TABLE2[1].grad_bytes();
    // Backward window for GPT2-M at our NPU's pace (~2/3 of fwd+bwd).
    let bwd = Time::from_ms(600);
    eprintln!("{}", fig15_overlap(grad_bytes, bwd));

    let mut c = criterion_quick();
    c.bench_function("fig15/staging_protocol_transfer", |b| {
        b.iter(|| {
            let mut p = StagingProtocol::new();
            black_box(p.transfer(Time::ZERO, grad_bytes).total())
        })
    });
    c.bench_function("fig15/direct_protocol_transfer", |b| {
        b.iter(|| {
            let mut p = DirectProtocol::new();
            black_box(p.transfer(Time::ZERO, grad_bytes).total())
        })
    });
    c.final_summary();
}
