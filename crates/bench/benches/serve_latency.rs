//! Inference serving — latency and goodput per security mode (tee-serve
//! extension beyond the paper's training-only evaluation; see
//! EXPERIMENTS.md).
//!
//! Prints the per-mode serving table for the seeded Poisson trace on
//! GPT2-M: completed requests, TTFT p50/p99, TPOT, p99 latency, goodput
//! and exposed KV-migration time. The shape to look for: SGX+MGX
//! serializes KV HBM↔DRAM migration behind its staging re-encryption
//! (§3.3) and pays coarse-MAC stalls on every decode stream, while
//! TensorTEE hides the direct transfers behind decode compute and stays
//! at non-secure goodput.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_serve::{simulate, SecurityProfile, ServeConfig, TraceConfig};
use tee_workloads::zoo::TABLE2;

fn main() {
    run_registered("serve_latency");

    // Kernel timing: one short trace end-to-end under each secure mode.
    let model = TABLE2[1]; // GPT2-M
    let cfg = ServeConfig::for_model(&model, 4, 640);
    let trace = TraceConfig::poisson(12, 16.0, 42).generate();
    let mut c = criterion_quick();
    c.bench_function("serve/trace12_sgx_mgx", |b| {
        b.iter(|| {
            black_box(simulate(&cfg, &model, &SecurityProfile::sgx_mgx(), &trace).goodput_tps())
        })
    });
    c.bench_function("serve/trace12_tensortee", |b| {
        b.iter(|| {
            black_box(simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &trace).goodput_tps())
        })
    });
    c.final_summary();
}
