//! Figure 19 — CPU performance: SGX vs. SoftVN vs. TensorTEE over
//! iterations, at 4 and 8 threads.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_cpu::{CpuEngine, SoftVnConfig, TeeMode};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::{bench_adam_workload, fig19_cpu_perf};
use tensortee::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    banner(
        "Figure 19 — CPU performance comparison",
        "SGX 3.65x @8T; TensorTEE converges to SoftVN-comparable within ~10 iterations",
    );
    let (_, md) = fig19_cpu_perf(&cfg, &[4, 8], &[1, 2, 5, 10, 20, 30, 40]);
    eprintln!("{md}");

    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    let mut c = criterion_quick();
    c.bench_function("fig19/softvn_adam_8t_iteration", |b| {
        b.iter(|| {
            let mut e = CpuEngine::new(cfg.cpu.clone(), TeeMode::SoftVn(SoftVnConfig::default()));
            black_box(e.run_adam(&workload, 8, 1).total)
        })
    });
    c.final_summary();
}
