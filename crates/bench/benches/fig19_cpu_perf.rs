//! Figure 19 — CPU performance: SGX vs. SoftVN vs. TensorTEE over
//! iterations, at 4 and 8 threads.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_cpu::{CpuEngine, SoftVnConfig, TeeMode};
use tee_workloads::zoo::TABLE2;
use tensortee::experiments::bench_adam_workload;
use tensortee::SystemConfig;

fn main() {
    run_registered("fig19");

    let cfg = SystemConfig::default();
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    let mut c = criterion_quick();
    c.bench_function("fig19/softvn_adam_8t_iteration", |b| {
        b.iter(|| {
            let mut e = CpuEngine::new(cfg.cpu.clone(), TeeMode::SoftVn(SoftVnConfig::default()));
            black_box(e.run_adam(&workload, 8, 1).total)
        })
    });
    c.final_summary();
}
