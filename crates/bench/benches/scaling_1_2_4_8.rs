//! Strong scaling — multi-NPU data parallelism with secure ring
//! all-reduce (extension beyond the paper's single-NPU evaluation; see
//! EXPERIMENTS.md).
//!
//! Prints the strong-scaling table for GPT2-M at 1/2/4/8 NPUs under
//! SGX+MGX vs TensorTEE: step time, speedup over the same mode's
//! single-NPU step, exposed-communication fraction, and per-rank
//! all-reduce wire bytes. The shape to look for: staging's exposed-comm
//! share keeps climbing (every ring hop pays the §3.3 conversion) until
//! adding NPUs makes the step *slower*, while the direct protocol hides
//! the collective in the backward window and keeps scaling.

use criterion::black_box;
use tee_bench::{criterion_quick, run_in_context};
use tee_comm::ring::{Interconnect, RingAllReduce};
use tee_workloads::zoo::TABLE2;
use tensortee::{RunContext, SecureMode};

fn main() {
    // The historical artifact compares the two secure protocols only.
    let ctx = RunContext::full().with_modes(vec![SecureMode::SgxMgx, SecureMode::TensorTee]);
    run_in_context("scaling_strong", &ctx);

    let grad = TABLE2[1].grad_bytes();
    let mut c = criterion_quick();
    c.bench_function("scaling/ring_all_reduce_staged_8", |b| {
        b.iter(|| {
            let ring = RingAllReduce::new(8, Interconnect::PcieP2p);
            black_box(ring.staged(grad).total())
        })
    });
    c.bench_function("scaling/ring_all_reduce_direct_8", |b| {
        b.iter(|| {
            let ring = RingAllReduce::new(8, Interconnect::PcieP2p);
            black_box(ring.direct(grad).total())
        })
    });
    c.final_summary();
}
