//! Strong scaling — multi-NPU data parallelism with secure ring
//! all-reduce (extension beyond the paper's single-NPU evaluation; see
//! EXPERIMENTS.md).
//!
//! Prints the strong-scaling table for GPT2-M at 1/2/4/8 NPUs under
//! SGX+MGX vs TensorTEE: step time, speedup over the same mode's
//! single-NPU step, exposed-communication fraction, and per-rank
//! all-reduce wire bytes. The shape to look for: staging's exposed-comm
//! share keeps climbing (every ring hop pays the §3.3 conversion) until
//! adding NPUs makes the step *slower*, while the direct protocol hides
//! the collective in the backward window and keeps scaling.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_comm::ring::{Interconnect, RingAllReduce};
use tee_workloads::zoo::by_name;
use tensortee::experiments::scaling_strong;
use tensortee::{SecureMode, SystemConfig};

fn main() {
    let cfg = SystemConfig::default();
    let model = by_name("GPT2-M").expect("Table-2 model");
    banner(
        "Strong scaling — 1/2/4/8 NPUs, secure ring all-reduce",
        "extension: staging's exposed comm grows with N, direct stays flat (cf. §3.3, §4.4)",
    );
    let (_, md) = scaling_strong(
        &cfg,
        &model,
        &[1, 2, 4, 8],
        &[SecureMode::SgxMgx, SecureMode::TensorTee],
    );
    eprintln!("{md}");

    let grad = model.grad_bytes();
    let mut c = criterion_quick();
    c.bench_function("scaling/ring_all_reduce_staged_8", |b| {
        b.iter(|| {
            let ring = RingAllReduce::new(8, Interconnect::PcieP2p);
            black_box(ring.staged(grad).total())
        })
    });
    c.bench_function("scaling/ring_all_reduce_direct_8", |b| {
        b.iter(|| {
            let ring = RingAllReduce::new(8, Interconnect::PcieP2p);
            black_box(ring.direct(grad).total())
        })
    });
    c.final_summary();
}
