//! Design-space exploration — Pareto frontier + knob sensitivity over
//! the training scenario (tee-explore extension; see EXPERIMENTS.md).
//!
//! Prints both registered exploration reports (the sweep prices every
//! sampled hardware point through the full training-step simulator under
//! all three modes), then Criterion-times the two engine kernels that
//! bound a sweep's overhead: the Latin-hypercube sampling plan and the
//! four-objective Pareto frontier over a pre-priced evaluation set.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_explore::{pareto_frontier, Executor, Knob, Sense, Space};

fn main() {
    run_registered("explore_pareto");
    run_registered("explore_sensitivity");

    // Kernel timing: sampling plan + frontier on a synthetic sweep shaped
    // like the real one (4 objectives, hundreds of evaluations).
    let space = Space::new(vec![
        Knob::numeric("a", [1.0, 2.0, 3.0]),
        Knob::numeric("b", [1.0, 2.0, 3.0]),
        Knob::numeric("c", [1.0, 2.0, 3.0, 4.0]),
        Knob::numeric("d", [1.0, 2.0]),
    ]);
    let points = space.latin_hypercube(64, 42);
    let evals = Executor::new(4, 42).run(&points, &|_i, p, mut rng| {
        vec![
            space.value(p, 0) * 100.0 + rng.next_f64(),
            space.value(p, 1) + rng.next_f64(),
            space.value(p, 2) * 0.01,
            space.value(p, 3) * rng.next_f64(),
        ]
    });
    let senses = [
        Sense::Maximize,
        Sense::Minimize,
        Sense::Minimize,
        Sense::Minimize,
    ];

    let mut c = criterion_quick();
    c.bench_function("explore/lhs_64pts", |b| {
        b.iter(|| black_box(space.latin_hypercube(black_box(64), 42).len()))
    });
    c.bench_function("explore/pareto_192evals", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&evals), &senses).len()))
    });
    c.final_summary();
}
