//! Figure 5 — GPT2-M training breakdown: communication share under
//! non-secure vs. SGX+MGX (and TensorTEE).

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_workloads::zoo::TABLE2;
use tensortee::{SecureMode, SystemConfig, TrainingSystem};

fn main() {
    run_registered("fig05");

    let cfg = SystemConfig::default();
    let mut c = criterion_quick();
    c.bench_function("fig05/sgx_mgx_step", |b| {
        b.iter(|| {
            let mut sys = TrainingSystem::new(cfg.clone(), SecureMode::SgxMgx);
            black_box(sys.simulate_step(&TABLE2[1]).total())
        })
    });
    c.final_summary();
}
