//! Table 2 — workloads and parameters.

use criterion::black_box;
use tee_bench::{banner, criterion_quick};
use tee_workloads::zoo::TABLE2;
use tee_workloads::StepSchedule;

fn print_table2() {
    banner(
        "Table 2 — Workloads and Parameters",
        "12 models, 117M–6.7B params",
    );
    eprintln!(
        "| model | # params (nominal) | # params (modeled) | batch | layers | hidden | seq |"
    );
    eprintln!("|---|---|---|---|---|---|---|");
    for m in TABLE2 {
        eprintln!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            m.name,
            m.nominal_params,
            m.params(),
            m.batch_size,
            m.layers,
            m.hidden,
            m.seq_len
        );
    }
}

fn main() {
    print_table2();
    let mut c = criterion_quick();
    c.bench_function("tab2/step_schedule_build", |b| {
        b.iter(|| {
            for m in TABLE2 {
                black_box(StepSchedule::of(&m).adam_bytes());
            }
        })
    });
    c.final_summary();
}
