//! Table 2 — workloads and parameters.

use criterion::black_box;
use tee_bench::{criterion_quick, run_registered};
use tee_workloads::zoo::TABLE2;
use tee_workloads::StepSchedule;

fn main() {
    run_registered("tab2");

    let mut c = criterion_quick();
    c.bench_function("tab2/step_schedule_build", |b| {
        b.iter(|| {
            for m in TABLE2 {
                black_box(StepSchedule::of(&m).adam_bytes());
            }
        })
    });
    c.final_summary();
}
