//! One serving instance as a DES component: a continuous-batching
//! iteration loop priced by the calibrated [`IterCost`] surrogate.
//!
//! The instance mirrors the `tee-serve` scheduler's iteration-level
//! admission (batch slots + prefill token budget, FIFO, head never
//! starved) but runs open-ended inside the fleet scheduler: requests
//! arrive as [`Msg::Dispatch`] messages from the router, completions are
//! reported back as [`Msg::Done`]. A [`Msg::Stall`] extends the current
//! busy window — that is how a staged (non-overlappable) KV handoff
//! serializes against the destination's compute.

use crate::cost::IterCost;
use crate::sim::Msg;
use std::collections::VecDeque;
use tee_serve::SessionRequest;
use tee_sim::des::{Component, Ctx};
use tee_sim::probe::SharedProbe;
use tee_sim::{Histogram, Time};

/// An admitted turn working through prefill + decode iterations.
#[derive(Debug, Clone, Copy)]
struct ActiveTurn {
    req: SessionRequest,
    /// Tokens produced so far (0 = prefill still pending).
    generated: u64,
    first_token_at: Option<Time>,
}

impl ActiveTurn {
    /// Cached context streamed for this turn's attention: carried session
    /// history plus own prompt plus everything generated.
    fn context(&self) -> u64 {
        self.req.context_tokens + self.req.request.prompt_tokens + self.generated
    }
}

/// Latency/throughput metrics one instance accumulates; the fleet report
/// merges these across instances ([`Histogram::merge`]).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceMetrics {
    /// Time-to-first-token per completed-prefill turn, ns.
    pub ttft_ns: Histogram,
    /// End-to-end latency per completed turn, ns.
    pub latency_ns: Histogram,
    /// Time-per-output-token per completed turn, ns.
    pub tpot_ns: Histogram,
    /// Output tokens generated.
    pub output_tokens: u64,
    /// Iterations launched.
    pub iterations: u64,
    /// Total busy (iteration) time including stall extensions.
    pub busy_time: Time,
    /// Turns completed.
    pub completed: u32,
}

impl InstanceMetrics {
    fn new() -> Self {
        InstanceMetrics {
            ttft_ns: Histogram::new(),
            latency_ns: Histogram::new(),
            tpot_ns: Histogram::new(),
            output_tokens: 0,
            iterations: 0,
            busy_time: Time::ZERO,
            completed: 0,
        }
    }
}

/// A serving instance component.
#[derive(Debug)]
pub struct Instance {
    /// Fleet index (component id is `index + 1`; the router is 0).
    index: usize,
    router: usize,
    cost: IterCost,
    max_batch: usize,
    prefill_token_budget: u64,
    waiting: VecDeque<SessionRequest>,
    running: Vec<ActiveTurn>,
    /// `true` while an iteration is in flight; its end is `wake`.
    busy: bool,
    /// Next tick: iteration end when busy, pending-start wake otherwise.
    wake: Time,
    /// Earliest next iteration start (staged-handoff serialization
    /// received while idle).
    stall_until: Time,
    /// Metrics, exposed to the fleet collector after the run.
    pub metrics: InstanceMetrics,
    probe: SharedProbe,
}

impl Instance {
    /// Creates an idle instance. `router` is the router's component id.
    pub fn new(
        index: usize,
        router: usize,
        cost: IterCost,
        max_batch: usize,
        prefill_token_budget: u64,
    ) -> Self {
        assert!(max_batch >= 1, "need at least one batch slot");
        Instance {
            index,
            router,
            cost,
            max_batch,
            prefill_token_budget,
            waiting: VecDeque::new(),
            running: Vec::new(),
            busy: false,
            wake: Time::MAX,
            stall_until: Time::ZERO,
            metrics: InstanceMetrics::new(),
            probe: SharedProbe::Null,
        }
    }

    /// Installs an observability probe: each launched iteration emits a
    /// span on this instance's `NPU<index>` track.
    pub fn with_probe(mut self, probe: SharedProbe) -> Self {
        self.probe = probe;
        self
    }

    /// Fleet index of this instance (component id is `index + 1`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Admits waiting turns (batch slots + prefill token budget, head
    /// never starved) and launches one fused iteration if there is work.
    fn start_iteration(&mut self, now: Time) {
        let mut new_prompt_tokens: u64 = self
            .running
            .iter()
            .filter(|a| a.generated == 0)
            .map(|a| a.req.request.prompt_tokens)
            .sum();
        while self.running.len() < self.max_batch {
            let Some(req) = self.waiting.front() else {
                break;
            };
            let p = req.request.prompt_tokens;
            if new_prompt_tokens > 0 && new_prompt_tokens + p > self.prefill_token_budget {
                break;
            }
            let req = self.waiting.pop_front().expect("front checked above");
            new_prompt_tokens += p;
            self.running.push(ActiveTurn {
                req,
                generated: 0,
                first_token_at: None,
            });
        }
        if self.running.is_empty() {
            self.busy = false;
            self.wake = Time::MAX;
            return;
        }
        // Prefills pay their new prompt (quadratic attention inside the
        // surrogate); their carried session history joins the streamed
        // context, as do all decode contexts.
        let mut prefills: Vec<u64> = Vec::new();
        let mut r = 0u64;
        let mut ctx_sum = 0u64;
        for a in &self.running {
            if a.generated == 0 {
                prefills.push(a.req.request.prompt_tokens);
                ctx_sum += a.req.context_tokens;
            } else {
                r += 1;
                ctx_sum += a.context();
            }
        }
        let dt = self.cost.iteration(&prefills, r, ctx_sum);
        self.metrics.iterations += 1;
        self.metrics.busy_time += dt;
        self.busy = true;
        self.wake = now + dt;
        if self.probe.enabled() {
            let name = match (prefills.is_empty(), r) {
                (false, 0) => "prefill",
                (true, _) => "decode",
                _ => "mixed",
            };
            self.probe
                .span(&format!("NPU{}", self.index), name, now, self.wake);
            self.probe.count("fleet.iterations", 1);
        }
    }

    /// Applies a finished iteration: every running turn produced one
    /// token; completions are recorded and reported to the router.
    fn finish_iteration(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        let metrics = &mut self.metrics;
        let router = self.router;
        let index = self.index;
        self.running.retain_mut(|a| {
            if a.generated == 0 {
                a.first_token_at = Some(now);
                metrics
                    .ttft_ns
                    .record((now - a.req.request.arrival).as_ns_f64().round() as u64);
            }
            a.generated += 1;
            if a.generated < a.req.request.output_tokens {
                return true;
            }
            metrics.completed += 1;
            metrics.output_tokens += a.req.request.output_tokens;
            metrics
                .latency_ns
                .record((now - a.req.request.arrival).as_ns_f64().round() as u64);
            if a.req.request.output_tokens > 1 {
                let first = a.first_token_at.expect("completed turn prefilled");
                let per_token =
                    (now - first).as_ns_f64() / (a.req.request.output_tokens - 1) as f64;
                metrics.tpot_ns.record(per_token.round() as u64);
            }
            ctx.send(
                router,
                Msg::Done {
                    instance: index,
                    session: a.req.session,
                },
            );
            false
        });
    }
}

impl Component for Instance {
    type Msg = Msg;

    fn next_tick(&self) -> Time {
        self.wake
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        if self.busy {
            self.finish_iteration(now, ctx);
            self.busy = false;
        }
        if now < self.stall_until {
            self.wake = self.stall_until;
            return;
        }
        self.start_iteration(now);
    }

    fn receive(&mut self, now: Time, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Dispatch(req) => {
                self.waiting.push_back(req);
                if !self.busy {
                    // Wake (this timestamp or after the stall) to admit.
                    self.wake = now.max(self.stall_until);
                }
            }
            Msg::Stall(d) => {
                // A non-overlappable handoff serializes against compute:
                // extend the in-flight iteration, or push the next start.
                if self.busy {
                    self.wake += d;
                    self.metrics.busy_time += d;
                } else {
                    self.stall_until = self.stall_until.max(now) + d;
                    if self.wake != Time::MAX {
                        self.wake = self.wake.max(self.stall_until);
                    }
                }
            }
            other => unreachable!("instance {} got a router message: {other:?}", self.index),
        }
    }
}
