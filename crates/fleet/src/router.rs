//! The cluster router: placement policies, bounded-queue admission
//! control, KV-location tracking with priced secure handoffs, and the
//! threshold autoscaling control loop.

use crate::config::{AutoscaleConfig, FleetConfig, Policy};
use crate::sim::Msg;
use std::collections::BTreeMap;
use tee_serve::{KvProtocol, SessionRequest};
use tee_sim::des::{Component, Ctx};
use tee_sim::probe::SharedProbe;
use tee_sim::{StatSet, Time};

/// Lifecycle of one instance as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    /// Routable.
    Active,
    /// Scaling up: cold start in progress, not yet routable.
    Warming,
    /// Scaling down: finishes outstanding work, receives nothing new.
    Draining,
    /// Off; session KV it held has been evicted to CPU DRAM.
    Parked,
}

/// Where a session's KV cache currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KvLoc {
    /// Resident in instance `i`'s HBM.
    On(usize),
    /// Evicted to CPU DRAM when its instance parked; the next turn pays
    /// the same protocol to fetch it back.
    Evicted,
}

/// The router component (always component id 0).
#[derive(Debug)]
pub struct Router {
    policy: Policy,
    queue_bound: usize,
    min_active: usize,
    autoscale: Option<AutoscaleConfig>,
    session_setup: Time,
    protocol: KvProtocol,
    kv_bytes_per_token: u64,
    /// Per-instance lifecycle state (index = fleet index).
    state: Vec<InstState>,
    /// Outstanding (dispatched, not yet completed) turns per instance.
    outstanding: Vec<u32>,
    /// Round-robin cursor.
    rr_cursor: usize,
    /// Session → KV location, updated at dispatch and on park.
    sessions: BTreeMap<u64, KvLoc>,
    /// Arrivals the run will see (for terminating the control loop).
    expected: u32,
    completed: u32,
    rejected: u32,
    /// Next autoscale sample, `Time::MAX` when disabled/finished.
    scale_wake: Time,
    // Handoff accounting.
    migrations: u64,
    migrated_bytes: u64,
    handoff_transfer: Time,
    handoff_setup: Time,
    handoff_exposed: Time,
    stats: StatSet,
    probe: SharedProbe,
}

impl Router {
    /// Creates the router for `cfg` with `expected` arrivals incoming.
    /// Instance component ids are fleet index + 1.
    pub fn new(
        cfg: &FleetConfig,
        kv_bytes_per_token: u64,
        protocol: KvProtocol,
        expected: u32,
    ) -> Self {
        let n = cfg.n_instances;
        let start_active = cfg.min_active.min(n).max(1);
        let mut state = vec![InstState::Parked; n];
        for s in state.iter_mut().take(start_active) {
            *s = InstState::Active;
        }
        let scale_wake = match (&cfg.autoscale, expected) {
            (Some(a), e) if e > 0 => a.interval,
            _ => Time::MAX,
        };
        Router {
            policy: cfg.policy,
            queue_bound: cfg.queue_bound,
            min_active: cfg.min_active.min(n).max(1),
            autoscale: cfg.autoscale,
            session_setup: cfg.session_setup,
            protocol,
            kv_bytes_per_token,
            state,
            outstanding: vec![0; n],
            rr_cursor: 0,
            sessions: BTreeMap::new(),
            expected,
            completed: 0,
            rejected: 0,
            scale_wake,
            migrations: 0,
            migrated_bytes: 0,
            handoff_transfer: Time::ZERO,
            handoff_setup: Time::ZERO,
            handoff_exposed: Time::ZERO,
            stats: StatSet::new("router"),
            probe: SharedProbe::Null,
        }
    }

    /// Installs an observability probe: routing, migration, eviction and
    /// autoscale decisions emit instants/spans; probes never change a
    /// decision.
    pub fn with_probe(mut self, probe: SharedProbe) -> Self {
        self.probe = probe;
        self
    }

    fn routable(&self, i: usize) -> bool {
        self.state[i] == InstState::Active && (self.outstanding[i] as usize) < self.queue_bound
    }

    /// Least-loaded routable instance (ties break to the lowest index).
    fn least_loaded(&self) -> Option<usize> {
        (0..self.state.len())
            .filter(|&i| self.routable(i))
            .min_by_key(|&i| self.outstanding[i])
    }

    /// Applies the placement policy for `req`.
    fn place(&mut self, req: &SessionRequest) -> Option<usize> {
        match self.policy {
            Policy::RoundRobin => {
                let n = self.state.len();
                for k in 0..n {
                    let i = (self.rr_cursor + k) % n;
                    if self.routable(i) {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            Policy::LeastLoaded => self.least_loaded(),
            Policy::KvAware => {
                if req.turn > 0 {
                    if let Some(KvLoc::On(home)) = self.sessions.get(&req.session) {
                        if self.routable(*home) {
                            return Some(*home);
                        }
                    }
                }
                self.least_loaded()
            }
        }
    }

    /// Routes one arrival: placement, migration pricing, dispatch.
    fn route(&mut self, now: Time, req: SessionRequest, ctx: &mut Ctx<'_, Msg>) {
        if self.probe.enabled() {
            // The frontend (host CPU) hands the turn to the router — the
            // same `CPU`-track arrival convention tee-serve uses.
            self.probe.instant("CPU", "arrival", now);
        }
        if req.turn > 0 {
            self.stats.bump("follow_up_turns");
        }
        let Some(dest) = self.place(&req) else {
            self.rejected += 1;
            self.stats.bump("rejected");
            if self.probe.enabled() {
                self.probe.instant("router", "reject", now);
                self.probe.count("fleet.rejected", 1);
            }
            return;
        };
        let dest_id = dest + 1;
        let home = self.sessions.get(&req.session).copied();
        let needs_handoff = req.turn > 0 && req.context_tokens > 0 && home != Some(KvLoc::On(dest));
        if needs_handoff {
            // Per-migration price: secure session establishment (secure
            // modes only) + the KV bytes over the mode's protocol. The
            // turn cannot start until its KV lands, so the dispatch is
            // delayed by the full handoff; only the non-overlappable part
            // stalls the destination's compute.
            let bytes = req.context_tokens * self.kv_bytes_per_token;
            let setup = match self.protocol {
                KvProtocol::Plain => Time::ZERO,
                KvProtocol::Staged | KvProtocol::Direct => self.session_setup,
            };
            let transfer = self.protocol.transfer_time(bytes);
            let exposed = if self.protocol.can_overlap_compute() {
                setup
            } else {
                setup + transfer
            };
            self.migrations += 1;
            self.migrated_bytes += bytes;
            self.handoff_transfer += transfer;
            self.handoff_setup += setup;
            self.handoff_exposed += exposed;
            if self.probe.enabled() {
                self.probe
                    .span("link", "kv_handoff", now, now + setup + transfer);
                if home == Some(KvLoc::Evicted) {
                    self.probe.instant("CPU", "kv_fetch", now);
                }
                self.probe.count("fleet.migrations", 1);
                self.probe.count("fleet.migrated_bytes", bytes);
            }
            if exposed > Time::ZERO {
                ctx.send(dest_id, Msg::Stall(exposed));
            }
            ctx.send_after(setup + transfer, dest_id, Msg::Dispatch(req));
        } else {
            if req.turn > 0 {
                self.stats.bump("local_turns");
            }
            ctx.send(dest_id, Msg::Dispatch(req));
        }
        if self.probe.enabled() {
            self.probe
                .instant("router", &format!("dispatch->NPU{dest}"), now);
            self.probe.count("fleet.dispatched", 1);
        }
        self.outstanding[dest] += 1;
        self.sessions.insert(req.session, KvLoc::On(dest));
    }

    /// Parks a drained instance, evicting its resident session KV.
    fn park(&mut self, now: Time, i: usize) {
        self.state[i] = InstState::Parked;
        self.stats.bump("parks");
        let mut evicted = 0u64;
        for loc in self.sessions.values_mut() {
            if *loc == KvLoc::On(i) {
                *loc = KvLoc::Evicted;
                evicted += 1;
            }
        }
        if self.probe.enabled() {
            self.probe.instant("router", &format!("park NPU{i}"), now);
            if evicted > 0 {
                self.probe.instant("CPU", "kv_evict", now);
                self.probe.count("fleet.kv_evictions", evicted);
            }
        }
    }

    fn finished(&self) -> bool {
        self.completed + self.rejected >= self.expected
    }

    /// One autoscale sample: compare mean outstanding per active
    /// instance against the thresholds.
    fn autoscale_sample(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        let Some(scale) = self.autoscale else { return };
        let active: Vec<usize> = (0..self.state.len())
            .filter(|&i| self.state[i] == InstState::Active)
            .collect();
        if active.is_empty() {
            return;
        }
        let total: u32 = active.iter().map(|&i| self.outstanding[i]).sum();
        let mean = f64::from(total) / active.len() as f64;
        if mean > scale.high_outstanding {
            if let Some(parked) =
                (0..self.state.len()).find(|&i| self.state[i] == InstState::Parked)
            {
                self.state[parked] = InstState::Warming;
                self.stats.bump("scale_up");
                if self.probe.enabled() {
                    self.probe
                        .instant("router", &format!("scale_up NPU{parked}"), now);
                    self.probe.count("fleet.scale_ups", 1);
                }
                ctx.send_after(scale.cold_start, ctx.self_id(), Msg::Warmed(parked));
            }
        } else if mean < scale.low_outstanding && active.len() > self.min_active {
            // Drain the least-loaded active instance.
            let drain = active
                .iter()
                .copied()
                .min_by_key(|&i| self.outstanding[i])
                .expect("active checked non-empty");
            self.state[drain] = InstState::Draining;
            self.stats.bump("scale_down");
            if self.probe.enabled() {
                self.probe
                    .instant("router", &format!("scale_down NPU{drain}"), now);
                self.probe.count("fleet.scale_downs", 1);
            }
            if self.outstanding[drain] == 0 {
                self.park(now, drain);
            }
        }
    }

    /// Drains accounting into the fleet report fields.
    pub fn accounting(&self) -> RouterAccounting {
        RouterAccounting {
            completed: self.completed,
            rejected: self.rejected,
            migrations: self.migrations,
            migrated_bytes: self.migrated_bytes,
            handoff_transfer: self.handoff_transfer,
            handoff_setup: self.handoff_setup,
            handoff_exposed: self.handoff_exposed,
            stats: self.stats.clone(),
        }
    }
}

/// Router-side numbers extracted after a run.
#[derive(Debug, Clone)]
pub struct RouterAccounting {
    pub completed: u32,
    pub rejected: u32,
    pub migrations: u64,
    pub migrated_bytes: u64,
    pub handoff_transfer: Time,
    pub handoff_setup: Time,
    pub handoff_exposed: Time,
    pub stats: StatSet,
}

impl Component for Router {
    type Msg = Msg;

    fn next_tick(&self) -> Time {
        self.scale_wake
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        self.autoscale_sample(now, ctx);
        self.scale_wake = if self.finished() {
            Time::MAX
        } else {
            let interval = self
                .autoscale
                .map(|a| a.interval)
                .expect("ticking implies autoscale");
            now + interval
        };
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Arrive(req) => self.route(now, req, ctx),
            Msg::Done {
                instance,
                session: _,
            } => {
                self.outstanding[instance] -= 1;
                self.completed += 1;
                if self.state[instance] == InstState::Draining && self.outstanding[instance] == 0 {
                    self.park(now, instance);
                }
                if self.finished() {
                    self.scale_wake = Time::MAX;
                }
            }
            Msg::Warmed(i) => {
                if self.state[i] == InstState::Warming {
                    self.state[i] = InstState::Active;
                    self.stats.bump("warmups");
                }
            }
            other => unreachable!("router got an instance message: {other:?}"),
        }
    }
}
