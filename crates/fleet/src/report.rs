//! Fleet-level run report: latency distributions merged across
//! instances, KV-handoff accounting, admission-control and autoscaling
//! counters.

use tee_sim::{Histogram, StatSet, Time};

/// Everything one fleet simulation produces. Field-for-field comparable,
/// so byte-identity tests can `assert_eq!` whole reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Requests (turns) in the offered trace.
    pub total_requests: u32,
    /// Turns that completed generation.
    pub completed_requests: u32,
    /// Turns rejected by admission control (every routable instance at
    /// its queue bound).
    pub rejected_requests: u32,
    /// Output tokens generated fleet-wide.
    pub output_tokens: u64,
    /// Completion time of the last turn.
    pub makespan: Time,
    /// Iterations launched fleet-wide.
    pub iterations: u64,
    /// Time-to-first-token per turn, ns (merged across instances).
    pub ttft_ns: Histogram,
    /// End-to-end turn latency, ns (merged across instances).
    pub latency_ns: Histogram,
    /// Time-per-output-token per turn, ns (merged across instances).
    pub tpot_ns: Histogram,
    /// Session-KV migrations the router priced (relocations that had to
    /// move a non-empty KV cache).
    pub migrations: u64,
    /// KV bytes moved by those migrations.
    pub migrated_bytes: u64,
    /// Serialized wire time of all migrations under the mode's protocol.
    pub handoff_transfer_time: Time,
    /// Secure-session-establishment time summed over migrations.
    pub handoff_setup_time: Time,
    /// Exposed (non-overlapped) handoff time summed over migrations —
    /// what actually blocked destination instances.
    pub handoff_exposed_time: Time,
    /// Router/autoscaler counters: `scale_up`, `scale_down`, `parks`,
    /// `warmups`, `follow_up_turns`, `local_turns`.
    pub router_stats: StatSet,
    /// DES events dispatched by the scheduler.
    pub events_processed: u64,
}

impl FleetReport {
    /// Goodput: completed output tokens per second of makespan.
    pub fn goodput_tps(&self) -> f64 {
        if self.makespan == Time::ZERO {
            return 0.0;
        }
        self.output_tokens as f64 / self.makespan.as_secs_f64()
    }

    /// A TTFT percentile in nanoseconds.
    pub fn ttft_percentile(&self, q: f64) -> Option<u64> {
        self.ttft_ns.percentile(q)
    }

    /// Mean time-per-output-token in nanoseconds.
    pub fn tpot_mean(&self) -> f64 {
        self.tpot_ns.mean()
    }

    /// Migrations as a fraction of follow-up turns (the KV-aware policy
    /// drives this toward zero; round-robin toward `1 - 1/M`).
    pub fn migration_rate(&self) -> f64 {
        let follow_ups = self.router_stats.get("follow_up_turns");
        if follow_ups == 0 {
            return 0.0;
        }
        self.migrations as f64 / follow_ups as f64
    }

    /// Mean exposed handoff time per migration, in nanoseconds.
    pub fn exposed_per_migration_ns(&self) -> f64 {
        if self.migrations == 0 {
            return 0.0;
        }
        self.handoff_exposed_time.as_ns_f64() / self.migrations as f64
    }
}
