//! # tee-fleet
//!
//! KV-cache-aware fleet serving simulator on the `tee-sim` discrete-event
//! core: M continuous-batching serving instances (each a [`des`]
//! component priced by a calibrated surrogate of the fused NPU
//! iteration) behind a cluster [`router::Router`] with
//!
//! * pluggable placement ([`Policy`]): round-robin, least-loaded, and
//!   KV-aware (follow-up turns of a session go home to the instance
//!   holding their KV; anything else pays a priced migration),
//! * **secure KV handoff**: a migration pays per-migration secure
//!   session establishment plus the mode's Plain/Staged/Direct transfer
//!   protocol for the session's KV bytes — the staged protocol
//!   serializes against the destination's compute, the direct protocol
//!   overlaps it (the paper's §3.3-vs-§4.4 gap, re-appearing at fleet
//!   scale),
//! * admission control with bounded per-instance queues, and
//! * threshold autoscaling: drained instances park (evicting session KV
//!   to CPU DRAM), reactivation pays a cold start.
//!
//! Traces come from `tee_serve::SessionTraceConfig` — deterministic
//! multi-tenant session mixes with optional diurnal modulation — so a
//! fleet run is a pure function of `(config, model, profile, trace)`.
//!
//! [`des`]: tee_sim::des
//!
//! ## Example
//!
//! ```
//! use tee_fleet::{simulate, FleetConfig, Policy};
//! use tee_serve::config::SecurityProfile;
//! use tee_serve::{ServeConfig, SessionTraceConfig};
//! use tee_workloads::zoo::by_name;
//!
//! let model = by_name("GPT").unwrap();
//! let serve = ServeConfig::for_model(&model, 4, 640);
//! let cfg = FleetConfig::new(serve, 2).with_policy(Policy::KvAware);
//! let trace = SessionTraceConfig::poisson(24, 12.0, 2, 42).generate();
//! let report = simulate(&cfg, &model, &SecurityProfile::tensor_tee(), &trace);
//! assert_eq!(report.completed_requests + report.rejected_requests, 24);
//! ```

pub mod config;
pub mod cost;
pub mod instance;
pub mod report;
pub mod router;
pub mod sim;

pub use config::{AutoscaleConfig, FleetConfig, Policy};
pub use cost::IterCost;
pub use report::FleetReport;
pub use sim::{simulate, simulate_probed, Msg, Node};
