//! Fleet simulation assembly: the message type, the component enum, and
//! the top-level [`simulate`] entry point.

use crate::config::FleetConfig;
use crate::cost::IterCost;
use crate::instance::Instance;
use crate::report::FleetReport;
use crate::router::Router;
use tee_serve::config::{KvSpec, SecurityProfile};
use tee_serve::SessionRequest;
use tee_sim::des::{Component, Ctx, Scheduler};
use tee_sim::probe::SharedProbe;
use tee_sim::{Histogram, Time};
use tee_workloads::zoo::ModelConfig;

/// Messages exchanged inside a fleet simulation.
#[derive(Debug, Clone, Copy)]
pub enum Msg {
    /// External stimulus: a trace turn reaches the router.
    Arrive(SessionRequest),
    /// Router → instance: an admitted turn (delayed by its KV handoff
    /// when the session migrated).
    Dispatch(SessionRequest),
    /// Router → instance: non-overlappable handoff time serializing
    /// against the destination's compute.
    Stall(Time),
    /// Instance → router: one turn finished generating.
    Done {
        /// Fleet index of the reporting instance.
        instance: usize,
        /// Session the finished turn belongs to.
        session: u64,
    },
    /// Router → router (delayed): a cold start finished.
    Warmed(usize),
}

/// The component universe of one fleet scheduler: component 0 is the
/// router, components `1..=M` are instances.
#[derive(Debug)]
pub enum Node {
    Router(Box<Router>),
    Instance(Box<Instance>),
}

impl Component for Node {
    type Msg = Msg;

    fn next_tick(&self) -> Time {
        match self {
            Node::Router(r) => r.next_tick(),
            Node::Instance(i) => i.next_tick(),
        }
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Node::Router(r) => r.tick(now, ctx),
            Node::Instance(i) => i.tick(now, ctx),
        }
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Node::Router(r) => r.receive(now, msg, ctx),
            Node::Instance(i) => i.receive(now, msg, ctx),
        }
    }

    fn label(&self) -> String {
        match self {
            Node::Router(_) => "router".to_string(),
            Node::Instance(i) => format!("NPU{}", i.index()),
        }
    }
}

/// Simulates serving `trace` on the fleet under one security profile.
///
/// Deterministic: same config + model + profile + trace → the same
/// [`FleetReport`], independent of anything outside the arguments.
///
/// # Panics
///
/// Panics if the fleet or trace configuration is internally
/// inconsistent (zero instances, zero batch slots).
pub fn simulate(
    cfg: &FleetConfig,
    model: &ModelConfig,
    profile: &SecurityProfile,
    trace: &[SessionRequest],
) -> FleetReport {
    simulate_probed(cfg, model, profile, trace, &SharedProbe::Null)
}

/// [`simulate`] with an observability probe: routing, migration and
/// autoscale decisions emit instants on the `router` track, KV handoffs
/// emit `link` spans and `CPU` evict/fetch instants, and each instance's
/// iterations emit spans on its `NPU<i>` track. The report is
/// byte-identical to the unprobed run — probes only observe.
///
/// # Panics
///
/// Panics if the fleet or trace configuration is internally
/// inconsistent (zero instances, zero batch slots).
pub fn simulate_probed(
    cfg: &FleetConfig,
    model: &ModelConfig,
    profile: &SecurityProfile,
    trace: &[SessionRequest],
    probe: &SharedProbe,
) -> FleetReport {
    let kv = KvSpec::of(model);
    let cost = IterCost::calibrate(model, profile);
    let mut sched: Scheduler<Node> = Scheduler::new();
    sched.set_probe(probe.clone());
    let router_id = sched.add(Node::Router(Box::new(
        Router::new(
            cfg,
            kv.bytes_per_token,
            profile.kv_protocol,
            trace.len() as u32,
        )
        .with_probe(probe.clone()),
    )));
    for i in 0..cfg.n_instances {
        sched.add(Node::Instance(Box::new(
            Instance::new(
                i,
                router_id,
                cost,
                cfg.serve.max_batch,
                cfg.serve.prefill_token_budget,
            )
            .with_probe(probe.clone()),
        )));
    }
    for r in trace {
        sched.send_at(r.request.arrival, router_id, Msg::Arrive(*r));
    }
    let makespan = sched.run();
    if probe.enabled() {
        // End-of-run sample of the aggregate KV-handoff wire time; keeps
        // the `link` track present (at zero) even for migration-free runs.
        let wire: Time = match &sched.components()[0] {
            Node::Router(r) => r.accounting().handoff_transfer,
            Node::Instance(_) => unreachable!("component 0 is the router"),
        };
        probe.gauge("link", "handoff_wire_ps", makespan, wire.as_ps());
    }

    let mut report = FleetReport {
        total_requests: trace.len() as u32,
        completed_requests: 0,
        rejected_requests: 0,
        output_tokens: 0,
        makespan,
        iterations: 0,
        ttft_ns: Histogram::new(),
        latency_ns: Histogram::new(),
        tpot_ns: Histogram::new(),
        migrations: 0,
        migrated_bytes: 0,
        handoff_transfer_time: Time::ZERO,
        handoff_setup_time: Time::ZERO,
        handoff_exposed_time: Time::ZERO,
        router_stats: tee_sim::StatSet::new("router"),
        events_processed: sched.events_processed(),
    };
    for node in sched.components() {
        match node {
            Node::Router(r) => {
                let acc = r.accounting();
                report.completed_requests = acc.completed;
                report.rejected_requests = acc.rejected;
                report.migrations = acc.migrations;
                report.migrated_bytes = acc.migrated_bytes;
                report.handoff_transfer_time = acc.handoff_transfer;
                report.handoff_setup_time = acc.handoff_setup;
                report.handoff_exposed_time = acc.handoff_exposed;
                report.router_stats = acc.stats;
            }
            Node::Instance(inst) => {
                let m = &inst.metrics;
                report.output_tokens += m.output_tokens;
                report.iterations += m.iterations;
                report.ttft_ns.merge(&m.ttft_ns);
                report.latency_ns.merge(&m.latency_ns);
                report.tpot_ns.merge(&m.tpot_ns);
            }
        }
    }
    report
}
