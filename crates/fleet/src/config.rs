//! Fleet-level configuration: how many instances, how the router places
//! sessions, how deep the admission queues are, when the fleet scales,
//! and what a KV-cache handoff costs.

use serde::Serialize;
use tee_serve::ServeConfig;
use tee_sim::Time;

/// Placement policy the router runs for every arriving turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Rotate over routable instances regardless of load or KV locality.
    RoundRobin,
    /// Pick the routable instance with the fewest outstanding requests.
    LeastLoaded,
    /// Route a follow-up turn to the instance already holding its
    /// session KV when that instance can take it; otherwise fall back to
    /// least-loaded and pay a priced KV migration.
    KvAware,
}

impl Policy {
    /// Short label for report tables and explore knobs.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::RoundRobin => "round_robin",
            Policy::LeastLoaded => "least_loaded",
            Policy::KvAware => "kv_aware",
        }
    }

    /// All policies, in presentation order.
    pub fn all() -> [Policy; 3] {
        [Policy::RoundRobin, Policy::LeastLoaded, Policy::KvAware]
    }

    /// Parses a label produced by [`Self::label`].
    pub fn parse(s: &str) -> Option<Policy> {
        Policy::all().into_iter().find(|p| p.label() == s)
    }
}

/// Threshold autoscaling: the router samples mean outstanding work per
/// active instance every `interval` and scales between `min_active` and
/// the provisioned fleet size. A scaled-down instance drains (finishes
/// its outstanding work, stops receiving new) and parks, evicting its
/// session KV to CPU DRAM; a scaled-up instance pays `cold_start` before
/// it becomes routable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutoscaleConfig {
    /// Sampling period of the control loop.
    pub interval: Time,
    /// Scale up when mean outstanding per active instance exceeds this.
    pub high_outstanding: f64,
    /// Scale (drain) down when mean outstanding falls below this.
    pub low_outstanding: f64,
    /// Delay before a parked instance becomes routable again (weights
    /// load + attestation + runtime warmup).
    pub cold_start: Time,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval: Time::from_ms(200),
            high_outstanding: 12.0,
            low_outstanding: 2.0,
            cold_start: Time::from_secs_f64(2.0),
        }
    }
}

/// Static configuration of one fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetConfig {
    /// Per-instance serving configuration (NPU shape, batching knobs).
    pub serve: ServeConfig,
    /// Provisioned instances (the autoscaling ceiling).
    pub n_instances: usize,
    /// Instances active at t = 0 (also the autoscaling floor).
    pub min_active: usize,
    /// Per-instance bound on outstanding (queued + running) requests;
    /// when every routable instance is at the bound, the arrival is
    /// rejected (admission control).
    pub queue_bound: usize,
    /// Placement policy.
    pub policy: Policy,
    /// Autoscaling control loop; `None` pins the fleet at `min_active`.
    pub autoscale: Option<AutoscaleConfig>,
    /// Per-migration secure-session-establishment cost (key exchange +
    /// attestation round trips) paid by the secure modes before any KV
    /// byte moves. The non-secure mode pays nothing.
    pub session_setup: Time,
}

impl FleetConfig {
    /// A fleet of `n_instances` identical instances, all active, KV-aware
    /// placement, no autoscaling.
    pub fn new(serve: ServeConfig, n_instances: usize) -> Self {
        assert!(n_instances >= 1, "a fleet needs at least one instance");
        FleetConfig {
            serve,
            n_instances,
            min_active: n_instances,
            queue_bound: 64,
            policy: Policy::KvAware,
            autoscale: None,
            session_setup: Time::from_us(50),
        }
    }

    /// Replaces the placement policy (builder form).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables threshold autoscaling with `min_active` as the floor
    /// (builder form).
    pub fn with_autoscale(mut self, min_active: usize, autoscale: AutoscaleConfig) -> Self {
        assert!(
            (1..=self.n_instances).contains(&min_active),
            "autoscaling floor {min_active} out of 1..={}",
            self.n_instances
        );
        self.min_active = min_active;
        self.autoscale = Some(autoscale);
        self
    }

    /// Replaces the per-instance admission bound (builder form).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound >= 1, "queue bound must admit at least one request");
        self.queue_bound = bound;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_serve::ServeConfig;
    use tee_workloads::zoo::by_name;

    fn serve() -> ServeConfig {
        let model = by_name("GPT").unwrap();
        ServeConfig::for_model(&model, 4, 640)
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in Policy::all() {
            assert_eq!(Policy::parse(p.label()), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn builders_validate() {
        let cfg = FleetConfig::new(serve(), 4)
            .with_policy(Policy::RoundRobin)
            .with_queue_bound(8)
            .with_autoscale(2, AutoscaleConfig::default());
        assert_eq!(cfg.min_active, 2);
        assert_eq!(cfg.queue_bound, 8);
        assert_eq!(cfg.policy, Policy::RoundRobin);
    }

    #[test]
    #[should_panic]
    fn empty_fleet_rejected() {
        FleetConfig::new(serve(), 0);
    }

    #[test]
    #[should_panic]
    fn floor_above_fleet_rejected() {
        FleetConfig::new(serve(), 2).with_autoscale(3, AutoscaleConfig::default());
    }
}
