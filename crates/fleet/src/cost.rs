//! Calibrated per-iteration cost surrogate for a fleet instance.
//!
//! A fleet run pushes 10^5–10^7 iterations through M instances; pricing
//! every iteration with a full [`tee_npu::NpuEngine`] stream simulation
//! (as `tee_serve::simulate` does per instance) would dominate wall
//! clock. Instead each `(model, profile)` pair is calibrated **once**
//! against the engine with a handful of probe iterations, fitting
//!
//! ```text
//! iter_time = base                         // weights + code stream
//!           + α·p + β·Σpᵢ²                 // prefill: linear + per-request
//!                                          //   quadratic attention
//!           + γ·r + δ·c                    // decode: per-request GEMV +
//!                                          //   per-context-token KV stream
//! ```
//!
//! with the same fused-iteration layer shape as the serve scheduler (the
//! AMLA-style memory-bound decode kernel). The fit is a pure function of
//! the probe timings, so the surrogate is exactly as deterministic as
//! the engine, and per-iteration pricing is O(batch) integer/float
//! arithmetic instead of a pipeline simulation.

use tee_npu::engine::{Layer, NpuEngine};
use tee_serve::config::SecurityProfile;
use tee_sim::Time;
use tee_workloads::zoo::ModelConfig;

const FP16: u64 = 2;

/// Probe prompt length for the prefill fit (the quadratic term is solved
/// from probes at `P` and `2P`).
const PROBE_P: u64 = 512;
/// Probe decode count for the per-request marginal.
const PROBE_R: u64 = 64;
/// Probe context length for the per-token KV-stream marginal.
const PROBE_C: u64 = 65_536;

/// The calibrated linear surrogate of one instance's fused iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterCost {
    /// Fixed per-iteration picoseconds (weight + code streams).
    base_ps: f64,
    /// Picoseconds per prefill prompt token (linear projections/streams).
    per_prefill_token_ps: f64,
    /// Picoseconds per prompt token squared (per-request attention).
    per_prefill_sq_ps: f64,
    /// Picoseconds per decode request (GEMV projections + KV append).
    per_decode_ps: f64,
    /// Picoseconds per cached context token streamed (decode attention).
    per_ctx_token_ps: f64,
}

impl IterCost {
    /// Calibrates the surrogate for `(model, profile)` by timing probe
    /// iterations on the real engine.
    pub fn calibrate(model: &ModelConfig, profile: &SecurityProfile) -> Self {
        let engine = NpuEngine::new(tee_npu::NpuConfig::default(), profile.mac);
        let probe = |prefill: &[u64], decode: &[u64]| -> f64 {
            engine
                .run(&[iteration_layer(model, prefill, decode)])
                .total
                .as_ps() as f64
        };
        let t0 = probe(&[], &[]);
        // Decode marginals: per-request at zero context, per-token on top.
        let per_decode = (probe(&[], &[0; PROBE_R as usize]) - t0).max(0.0) / PROBE_R as f64;
        let t_ctx0 = probe(&[], &[0]);
        let per_ctx = (probe(&[], &[PROBE_C]) - t_ctx0).max(0.0) / PROBE_C as f64;
        // Prefill: cost(p) = α·p + β·p², solved from probes at P and 2P.
        let t1 = probe(&[PROBE_P], &[]) - t0;
        let t2 = probe(&[2 * PROBE_P], &[]) - t0;
        let p = PROBE_P as f64;
        let beta = ((t2 - 2.0 * t1) / (2.0 * p * p)).max(0.0);
        let alpha = ((t1 - beta * p * p) / p).max(0.0);
        IterCost {
            base_ps: t0.max(1.0),
            per_prefill_token_ps: alpha,
            per_prefill_sq_ps: beta,
            per_decode_ps: per_decode,
            per_ctx_token_ps: per_ctx,
        }
    }

    /// Prices one iteration: `prefills` are the new prompt lengths being
    /// prefilled, `r` is the decode count and `ctx_sum` the total cached
    /// context streamed for attention (decode contexts plus any carried
    /// history the prefills attend to).
    pub fn iteration(&self, prefills: &[u64], r: u64, ctx_sum: u64) -> Time {
        let p_sum: u64 = prefills.iter().sum();
        let p_sq: f64 = prefills.iter().map(|&p| (p as f64) * (p as f64)).sum();
        let ps = self.base_ps
            + self.per_prefill_token_ps * p_sum as f64
            + self.per_prefill_sq_ps * p_sq
            + self.per_decode_ps * r as f64
            + self.per_ctx_token_ps * ctx_sum as f64;
        Time::from_ps((ps.round() as u64).max(1))
    }
}

/// The fused-iteration layer shape — mirrors the serve scheduler's
/// kernel: weights stream once, prefills add per-request quadratic
/// attention, decodes add memory-bound KV streaming.
fn iteration_layer(model: &ModelConfig, prefill_prompts: &[u64], decode_ctxs: &[u64]) -> Layer {
    let h = model.hidden;
    let layers = model.layers;
    let weight_bytes = 12 * h * h * FP16 * layers;
    let r = decode_ctxs.len() as u64;
    let ctx_sum: u64 = decode_ctxs.iter().sum();
    let p: u64 = prefill_prompts.iter().sum();
    let prefill_attn: u64 = prefill_prompts.iter().map(|&pi| pi * pi * 2 * h).sum();
    let macs =
        layers * (r * 12 * h * h + ctx_sum * 2 * h) + layers * (p * 12 * h * h + prefill_attn);
    let kv_per_layer = 2 * h * FP16;
    let in_bytes = ctx_sum * kv_per_layer * layers + r * h * FP16 * layers + p * h * FP16 * layers;
    let out_bytes = (r + p) * h * FP16 * layers + (r + p) * kv_per_layer * layers;
    Layer {
        macs: macs.max(1),
        in_bytes,
        w_bytes: weight_bytes,
        out_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_workloads::zoo::by_name;

    #[test]
    fn calibration_is_deterministic_and_positive() {
        let model = by_name("GPT").unwrap();
        let a = IterCost::calibrate(&model, &SecurityProfile::tensor_tee());
        let b = IterCost::calibrate(&model, &SecurityProfile::tensor_tee());
        assert_eq!(a, b);
        assert!(a.base_ps > 0.0);
        assert!(a.per_decode_ps >= 0.0 && a.per_ctx_token_ps >= 0.0);
    }

    #[test]
    fn cost_is_monotone_in_work() {
        let model = by_name("GPT").unwrap();
        let c = IterCost::calibrate(&model, &SecurityProfile::non_secure());
        let idle = c.iteration(&[], 0, 0);
        let one = c.iteration(&[], 1, 256);
        let eight = c.iteration(&[], 8, 8 * 256);
        let prefill = c.iteration(&[512], 0, 0);
        assert!(idle >= Time::from_ps(1));
        assert!(one > idle);
        assert!(eight > one);
        assert!(prefill > one, "{prefill} vs {one}");
        // Quadratic attention: one long prompt beats two half-prompts.
        let long = c.iteration(&[1024], 0, 0);
        let split = c.iteration(&[512, 512], 0, 0);
        assert!(long >= split);
    }

    #[test]
    fn secure_modes_cost_at_least_non_secure() {
        let model = by_name("GPT").unwrap();
        let ns = IterCost::calibrate(&model, &SecurityProfile::non_secure());
        let sgx = IterCost::calibrate(&model, &SecurityProfile::sgx_mgx());
        let work = |c: &IterCost| c.iteration(&[256], 8, 4096);
        assert!(work(&sgx) >= work(&ns), "{} vs {}", work(&sgx), work(&ns));
    }

    #[test]
    fn surrogate_tracks_engine_within_tolerance() {
        // The surrogate must stay close to the engine on a mixed batch it
        // was not calibrated on — this is a model, not an oracle, but a
        // 25% band keeps it honest.
        let model = by_name("GPT").unwrap();
        let profile = SecurityProfile::tensor_tee();
        let c = IterCost::calibrate(&model, &profile);
        let engine = NpuEngine::new(tee_npu::NpuConfig::default(), profile.mac);
        let prefills = [300u64, 700];
        let decodes = [100u64, 400, 900, 1600];
        let exact = engine
            .run(&[iteration_layer(&model, &prefills, &decodes)])
            .total
            .as_ps() as f64;
        let approx = c
            .iteration(&prefills, decodes.len() as u64, decodes.iter().sum())
            .as_ps() as f64;
        let err = (approx - exact).abs() / exact;
        assert!(err < 0.25, "surrogate off by {:.1}%", err * 100.0);
    }
}
