//! End-to-end fleet claims: determinism, KV-aware placement cutting
//! migrations, the staged-vs-direct exposed-handoff gap, admission
//! control, and threshold autoscaling.

use tee_fleet::{simulate, simulate_probed, AutoscaleConfig, FleetConfig, FleetReport, Policy};
use tee_serve::config::SecurityProfile;
use tee_serve::{Diurnal, ServeConfig, SessionRequest, SessionTraceConfig};
use tee_sim::probe::SharedProbe;
use tee_sim::Time;
use tee_workloads::zoo::{by_name, ModelConfig};

fn model() -> ModelConfig {
    by_name("GPT").unwrap()
}

fn fleet(n: usize) -> FleetConfig {
    let m = model();
    FleetConfig::new(ServeConfig::for_model(&m, 4, 640), n)
}

fn trace(n: u32, seed: u64) -> Vec<SessionRequest> {
    SessionTraceConfig::poisson(n, 24.0, 4, seed).generate()
}

fn run(cfg: &FleetConfig, profile: &SecurityProfile, trace: &[SessionRequest]) -> FleetReport {
    simulate(cfg, &model(), profile, trace)
}

#[test]
fn fleet_run_is_deterministic() {
    let cfg = fleet(3);
    let t = trace(96, 42);
    let profile = SecurityProfile::tensor_tee();
    let a = run(&cfg, &profile, &t);
    let b = run(&cfg, &profile, &t);
    assert_eq!(a, b);
    assert_eq!(a.completed_requests + a.rejected_requests, 96);
    assert!(a.events_processed > 0);
    assert!(a.goodput_tps() > 0.0);
}

#[test]
fn all_turns_complete_under_ample_capacity() {
    let cfg = fleet(4);
    let t = trace(64, 7);
    let r = run(&cfg, &SecurityProfile::non_secure(), &t);
    assert_eq!(r.rejected_requests, 0);
    assert_eq!(r.completed_requests, 64);
    assert_eq!(r.ttft_ns.count(), 64);
    assert_eq!(r.latency_ns.count(), 64);
    assert!(r.iterations > 0);
    assert!(r.output_tokens > 0);
}

#[test]
fn kv_aware_placement_cuts_migrations() {
    let t = trace(192, 11);
    let profile = SecurityProfile::tensor_tee();
    let rr = run(&fleet(4).with_policy(Policy::RoundRobin), &profile, &t);
    let ll = run(&fleet(4).with_policy(Policy::LeastLoaded), &profile, &t);
    let kv = run(&fleet(4).with_policy(Policy::KvAware), &profile, &t);
    assert!(
        kv.migrations < rr.migrations,
        "kv-aware {} vs round-robin {} migrations",
        kv.migrations,
        rr.migrations
    );
    assert!(kv.migration_rate() < rr.migration_rate());
    assert!(
        kv.migrations <= ll.migrations,
        "kv-aware never migrates more than least-loaded"
    );
    assert!(
        kv.router_stats.get("local_turns") > 0,
        "follow-up turns go home: {}",
        kv.router_stats
    );
}

#[test]
fn direct_handoff_strictly_beats_staged_on_exposure() {
    // Round-robin forces migrations; compare the secure modes' per-
    // migration exposed handoff time.
    let t = trace(128, 3);
    let cfg = fleet(4).with_policy(Policy::RoundRobin);
    let staged = run(&cfg, &SecurityProfile::sgx_mgx(), &t);
    let direct = run(&cfg, &SecurityProfile::tensor_tee(), &t);
    let plain = run(&cfg, &SecurityProfile::non_secure(), &t);
    assert!(staged.migrations > 0 && direct.migrations > 0);
    assert!(
        direct.exposed_per_migration_ns() < staged.exposed_per_migration_ns(),
        "direct {} vs staged {} exposed ns/migration",
        direct.exposed_per_migration_ns(),
        staged.exposed_per_migration_ns()
    );
    // Direct still pays session establishment; plain pays nothing.
    assert!(direct.handoff_setup_time > Time::ZERO);
    assert_eq!(plain.handoff_setup_time, Time::ZERO);
    assert_eq!(plain.handoff_exposed_time, Time::ZERO);
    assert!(
        plain.handoff_transfer_time > Time::ZERO,
        "plain still moves bytes"
    );
    // And the staged wire time itself is the most expensive.
    assert!(staged.handoff_transfer_time > direct.handoff_transfer_time);
}

#[test]
fn bounded_queues_reject_overload() {
    // One instance, tiny queue, a burst of co-arrivals: admission control
    // must shed load rather than queue unboundedly.
    let t = SessionTraceConfig::poisson(64, 400.0, 2, 9).generate();
    let cfg = fleet(1).with_queue_bound(4);
    let r = run(&cfg, &SecurityProfile::non_secure(), &t);
    assert!(r.rejected_requests > 0, "overload must reject");
    assert_eq!(r.completed_requests + r.rejected_requests, 64);
    assert_eq!(u64::from(r.completed_requests), r.latency_ns.count());
}

#[test]
fn autoscaling_rides_a_diurnal_wave() {
    // Start at 1 of 4 instances under a diurnally-modulated session mix;
    // the control loop must scale up through cold starts, and back down
    // once load fades (parks evict KV — visible as extra migrations for
    // evicted sessions under kv-aware placement).
    let t = SessionTraceConfig::poisson(160, 40.0, 4, 21)
        .with_diurnal(Diurnal::new(4.0, 0.8))
        .generate();
    let scale = AutoscaleConfig {
        interval: Time::from_ms(50),
        high_outstanding: 4.0,
        low_outstanding: 1.0,
        cold_start: Time::from_ms(200),
    };
    let cfg = fleet(4).with_autoscale(1, scale).with_queue_bound(64);
    let r = run(&cfg, &SecurityProfile::tensor_tee(), &t);
    assert!(
        r.router_stats.get("scale_up") > 0,
        "load must trigger scale-up: {}",
        r.router_stats
    );
    assert!(
        r.router_stats.get("warmups") > 0,
        "cold starts must finish: {}",
        r.router_stats
    );
    assert_eq!(r.completed_requests + r.rejected_requests, 160);
    // Autoscaled fleet with cold starts completes no faster than a fully
    // warm fleet of the same size.
    let warm = run(&fleet(4), &SecurityProfile::tensor_tee(), &t);
    assert!(r.makespan >= warm.makespan);
}

#[test]
fn tracing_does_not_perturb_the_fleet_report() {
    // An autoscaled, migration-heavy run under the chattiest probe must
    // reproduce the unprobed report exactly: probes observe time, they
    // never advance it.
    let t = SessionTraceConfig::poisson(160, 40.0, 4, 21)
        .with_diurnal(Diurnal::new(4.0, 0.8))
        .generate();
    let scale = AutoscaleConfig {
        interval: Time::from_ms(50),
        high_outstanding: 4.0,
        low_outstanding: 1.0,
        cold_start: Time::from_ms(200),
    };
    let cfg = fleet(4)
        .with_policy(Policy::RoundRobin)
        .with_autoscale(1, scale)
        .with_queue_bound(64);
    let profile = SecurityProfile::tensor_tee();
    let plain = run(&cfg, &profile, &t);
    let recorder = SharedProbe::recording();
    let probed = simulate_probed(&cfg, &model(), &profile, &t, &recorder);
    assert_eq!(plain, probed, "probe must not change a single field");

    let snap = recorder.snapshot().expect("recording probe");
    let m = snap.metrics();
    assert_eq!(m.get("fleet.migrations"), plain.migrations);
    assert_eq!(m.get("fleet.migrated_bytes"), plain.migrated_bytes);
    assert_eq!(m.get("fleet.iterations"), plain.iterations);
    assert_eq!(
        m.get("fleet.dispatched"),
        u64::from(plain.completed_requests)
    );
    assert!(m.get("fleet.scale_ups") > 0, "autoscale decisions traced");
    let tracks: std::collections::BTreeSet<&str> =
        snap.events().iter().map(|e| e.track()).collect();
    for want in ["router", "link", "NPU0", "CPU"] {
        assert!(tracks.contains(want), "missing track {want}: {tracks:?}");
    }
}

#[test]
fn single_instance_never_migrates() {
    let t = trace(48, 5);
    let r = run(&fleet(1), &SecurityProfile::sgx_mgx(), &t);
    assert_eq!(r.migrations, 0, "one instance, KV always home");
    assert_eq!(r.handoff_exposed_time, Time::ZERO);
}
