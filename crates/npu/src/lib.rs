//! # tee-npu
//!
//! The NPU side of the TensorTEE reproduction — a TPUv3-like accelerator
//! model with memory protection:
//!
//! * [`config`] — Table-1 NPU configuration (1 GHz, 512×512 PEs, 32 MB
//!   scratchpad, 128 GB/s GDDR5),
//! * [`mac`] — MAC granularity schemes (per-cacheline, MGX-style coarse
//!   blocks, TensorTEE per-tensor delayed),
//! * [`pipeline`] — the Figure-13 DRAM→decrypt→verify→compute pipeline
//!   with its bounded verification buffer (stall source),
//! * [`memory`] — functional encrypted GDDR with on-chip per-tensor
//!   VN/MAC tables (MGX-style VN generation) and direct-transfer
//!   import/export,
//! * [`verify`] — poison-bit tracing and the verification barrier
//!   guarding communication (Figure 14),
//! * [`engine`] — the layer-sequence runner behind Figure 20.
//!
//! ## Quick start
//!
//! ```
//! use tee_npu::config::NpuConfig;
//! use tee_npu::engine::{Layer, NpuEngine};
//! use tee_npu::mac::MacScheme;
//!
//! let engine = NpuEngine::new(NpuConfig::default(), MacScheme::TensorDelayed);
//! let slowdown = engine.slowdown(&[Layer::elementwise(1 << 20)]);
//! assert!(slowdown < 1.10);
//! ```

pub mod config;
pub mod engine;
pub mod mac;
pub mod memory;
pub mod pipeline;
pub mod verify;

pub use config::NpuConfig;
pub use engine::{Layer, NpuEngine, NpuRunReport};
pub use mac::MacScheme;
pub use memory::{NpuMemory, TensorMeta};
pub use verify::{BarrierError, PoisonTracker};
