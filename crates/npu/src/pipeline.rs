//! The Figure-13 verification pipeline, simulated block by block.
//!
//! A protected input stream flows DRAM → decrypt → MAC recompute →
//! verification → compute. The three schemes differ in when compute may
//! consume a line:
//!
//! * `PerBlock` (baseline): only after the line's whole block is verified.
//!   Unverified decrypted lines wait in a bounded MEE buffer
//!   ([`crate::config::NpuConfig::verify_buffer_bytes`]) — once the block
//!   size approaches the buffer size, fetching stalls behind verification
//!   and bubbles open in the compute stream (Figure 13b).
//! * `TensorDelayed` (TensorTEE): compute consumes lines as they decrypt;
//!   verification runs in parallel and a single barrier at the end of the
//!   tensor covers communication safety (Figure 13c).
//! * `None`: straight streaming.

use crate::config::NpuConfig;
use crate::mac::MacScheme;
use tee_sim::Time;

/// Timing breakdown of one protected stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTiming {
    /// End-to-end completion (including any final verification barrier).
    pub total: Time,
    /// Time computation spent stalled waiting on verification.
    pub verify_stall: Time,
    /// When the last byte of data had been fetched from DRAM.
    pub fetch_done: Time,
}

/// Simulates streaming `bytes` of protected input overlapped with
/// `compute_total` of computation, under `scheme`.
///
/// Returns the timing breakdown. Computation is modeled as rate-matched
/// consumption: each block carries `compute_total / n_blocks` of work.
///
/// # Example
///
/// ```
/// use tee_npu::config::NpuConfig;
/// use tee_npu::mac::MacScheme;
/// use tee_npu::pipeline::simulate_stream;
/// use tee_sim::Time;
///
/// let cfg = NpuConfig::default();
/// let plain = simulate_stream(&cfg, MacScheme::None, 1 << 20, Time::from_us(8));
/// let ours = simulate_stream(&cfg, MacScheme::TensorDelayed, 1 << 20, Time::from_us(8));
/// assert!(ours.total >= plain.total);
/// ```
pub fn simulate_stream(
    cfg: &NpuConfig,
    scheme: MacScheme,
    bytes: u64,
    compute_total: Time,
) -> StreamTiming {
    if bytes == 0 {
        return StreamTiming {
            total: compute_total,
            verify_stall: Time::ZERO,
            fetch_done: Time::ZERO,
        };
    }
    let clock = cfg.clock();
    let block = scheme.pipeline_block().min(bytes.next_power_of_two());
    let n_blocks = bytes.div_ceil(block);
    // The pipeline reaches steady state within a few buffer turnovers;
    // simulate a bounded prefix exactly and extrapolate the steady-state
    // period for the (identical) remaining blocks.
    const EXACT_BLOCKS: u64 = 4096;
    if n_blocks > EXACT_BLOCKS {
        let exact_bytes = EXACT_BLOCKS * block;
        let head = simulate_stream(
            cfg,
            scheme,
            exact_bytes,
            Time::from_ps(compute_total.as_ps() / n_blocks * EXACT_BLOCKS),
        );
        let half = simulate_stream(
            cfg,
            scheme,
            exact_bytes / 2,
            Time::from_ps(compute_total.as_ps() / n_blocks * (EXACT_BLOCKS / 2)),
        );
        let period = head.total.saturating_sub(half.total);
        let stall_period = head.verify_stall.saturating_sub(half.verify_stall);
        let remaining = n_blocks - EXACT_BLOCKS;
        let scale = |t: Time| Time::from_ps(t.as_ps() * remaining / (EXACT_BLOCKS / 2));
        return StreamTiming {
            total: head.total + scale(period),
            verify_stall: head.verify_stall + scale(stall_period),
            fetch_done: head.fetch_done + scale(period),
        };
    }
    let bw = cfg.dram_bandwidth() / (1.0 + scheme.traffic_overhead());
    let fetch_per_block = Time::from_secs_f64(block as f64 / bw);
    let compute_per_block = Time::from_ps(compute_total.as_ps() / n_blocks);
    // Fractional cycles: the hash datapath is pipelined, so per-block
    // recompute time is throughput-, not latency-, quantized.
    let recompute =
        Time::from_secs_f64((block as f64 / 64.0) / cfg.mac_lines_per_cycle / (cfg.freq_ghz * 1e9));
    let mac_lat = clock.cycles_to_time(cfg.mac_latency);
    let aes_lat = clock.cycles_to_time(cfg.aes_latency);
    let buffer_slots = (cfg.verify_buffer_bytes / block).max(1) as usize;

    // Ring of verify-completion times for buffer-slot release.
    let mut releases: Vec<Time> = vec![Time::ZERO; buffer_slots];
    let mut fetch_done = Time::ZERO;
    let mut verify_done = Time::ZERO;
    let mut compute_done = Time::ZERO;
    let mut stall = Time::ZERO;

    for k in 0..n_blocks as usize {
        let gate = if scheme.gates_compute() {
            releases[k % buffer_slots]
        } else {
            Time::ZERO
        };
        let fetch_start = fetch_done.max(gate);
        fetch_done = fetch_start + fetch_per_block;

        // Verification engine is pipelined but serial across blocks.
        verify_done = fetch_done.max(verify_done) + recompute;
        let block_verified = verify_done + mac_lat;
        if scheme.gates_compute() {
            releases[k % buffer_slots] = block_verified;
        }

        let data_ready = match scheme {
            MacScheme::PerBlock { .. } => block_verified + aes_lat,
            MacScheme::TensorDelayed => fetch_done + aes_lat,
            MacScheme::None => fetch_done,
        };
        let compute_start = data_ready.max(compute_done);
        if scheme.gates_compute() {
            // Bubble: time compute sat idle beyond pure data arrival.
            let unsecured_ready = fetch_done.max(compute_done);
            stall += compute_start.saturating_sub(unsecured_ready);
        }
        compute_done = compute_start + compute_per_block;
    }

    let total = match scheme {
        // Delayed verification: the barrier waits for the tensor MAC
        // comparison, which trails the last block's recompute.
        MacScheme::TensorDelayed => compute_done.max(verify_done + mac_lat),
        _ => compute_done,
    };
    StreamTiming {
        total,
        verify_stall: stall,
        fetch_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::default()
    }

    /// Memory-bound stream: compute much cheaper than fetch.
    fn mem_bound_compute(bytes: u64) -> Time {
        Time::from_secs_f64(bytes as f64 / 512.0e9)
    }

    #[test]
    fn non_secure_is_bandwidth_bound() {
        let c = cfg();
        let bytes = 4 << 20;
        let t = simulate_stream(&c, MacScheme::None, bytes, mem_bound_compute(bytes));
        let ideal = bytes as f64 / c.dram_bandwidth();
        assert!(t.total.as_secs_f64() <= ideal * 1.05);
        assert_eq!(t.verify_stall, Time::ZERO);
    }

    #[test]
    fn fine_granularity_costs_traffic_not_stalls() {
        let c = cfg();
        let bytes = 4 << 20;
        let plain = simulate_stream(&c, MacScheme::None, bytes, mem_bound_compute(bytes));
        let fine = simulate_stream(
            &c,
            MacScheme::PerBlock { granularity: 64 },
            bytes,
            mem_bound_compute(bytes),
        );
        let ratio = fine.total.as_secs_f64() / plain.total.as_secs_f64();
        assert!(
            ratio > 1.08 && ratio < 1.20,
            "64B overhead ≈ traffic 12.5%: {ratio}"
        );
    }

    #[test]
    fn coarse_granularity_stalls() {
        let c = cfg();
        let bytes = 4 << 20;
        let coarse = simulate_stream(
            &c,
            MacScheme::PerBlock { granularity: 4096 },
            bytes,
            mem_bound_compute(bytes),
        );
        assert!(
            coarse.verify_stall > Time::ZERO,
            "4 KB blocks must stall against the 8 KB verify buffer"
        );
        let mid = simulate_stream(
            &c,
            MacScheme::PerBlock { granularity: 512 },
            bytes,
            mem_bound_compute(bytes),
        );
        assert!(coarse.total > mid.total, "stalls dominate traffic savings");
    }

    #[test]
    fn delayed_verification_removes_stalls() {
        let c = cfg();
        let bytes = 4 << 20;
        let plain = simulate_stream(&c, MacScheme::None, bytes, mem_bound_compute(bytes));
        let ours = simulate_stream(
            &c,
            MacScheme::TensorDelayed,
            bytes,
            mem_bound_compute(bytes),
        );
        let overhead = ours.total.as_secs_f64() / plain.total.as_secs_f64() - 1.0;
        assert!(overhead < 0.05, "delayed verification ≈ free: {overhead}");
        assert_eq!(ours.verify_stall, Time::ZERO);
    }

    #[test]
    fn compute_bound_hides_everything() {
        let c = cfg();
        let bytes = 1 << 20;
        let heavy = Time::from_ms(10);
        let plain = simulate_stream(&c, MacScheme::None, bytes, heavy);
        let coarse = simulate_stream(&c, MacScheme::PerBlock { granularity: 4096 }, bytes, heavy);
        let ratio = coarse.total.as_secs_f64() / plain.total.as_secs_f64();
        assert!(
            ratio < 1.02,
            "compute-bound layers hide protection: {ratio}"
        );
    }

    #[test]
    fn zero_bytes_is_pure_compute() {
        let c = cfg();
        let t = simulate_stream(&c, MacScheme::TensorDelayed, 0, Time::from_us(3));
        assert_eq!(t.total, Time::from_us(3));
    }

    #[test]
    fn barrier_appears_at_stream_end() {
        let c = cfg();
        // Tiny stream, trivial compute: the delayed barrier (recompute +
        // mac check) is visible.
        let ours = simulate_stream(&c, MacScheme::TensorDelayed, 64, Time::ZERO);
        let plain = simulate_stream(&c, MacScheme::None, 64, Time::ZERO);
        assert!(ours.total > plain.total);
        let barrier = ours.total - plain.total;
        assert!(
            barrier < Time::from_ns(200),
            "barrier is a few cycles: {barrier}"
        );
    }
}
