//! Tensor poison tracing and the verification barrier (§4.3, Figure 14).
//!
//! Delayed verification lets computation consume unverified tensors; the
//! *poison bit* tracks which tensors (and everything computed from them)
//! might be tainted. The `verification_barrier` pragma compiles to a
//! synchronization that blocks communication until the poison bits of the
//! involved tensors clear. A bounded unverified-tensor counter prevents
//! unbounded wasted work after a failed verification.

use std::collections::HashSet;
use tee_sim::StatSet;

/// Identifies a tensor in flight (its GDDR base address).
pub type TensorId = u64;

/// Why a communication attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierError {
    /// A tensor involved in the communication is still poisoned — the
    /// barrier must wait for (or trigger) its verification.
    Poisoned {
        /// The offending tensor.
        tensor: TensorId,
    },
    /// Verification failed earlier: the enclave is compromised and must
    /// abort rather than emit data.
    VerificationFailed {
        /// The tensor whose MAC check failed.
        tensor: TensorId,
    },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::Poisoned { tensor } => {
                write!(f, "tensor {tensor:#x} unverified at barrier")
            }
            BarrierError::VerificationFailed { tensor } => {
                write!(f, "tensor {tensor:#x} failed integrity verification")
            }
        }
    }
}

impl std::error::Error for BarrierError {}

/// The poison-bit tracker.
///
/// # Example
///
/// ```
/// use tee_npu::verify::PoisonTracker;
///
/// let mut p = PoisonTracker::new(512);
/// p.load_unverified(0x1000);
/// p.compute(&[0x1000], 0x2000); // output inherits the poison
/// assert!(p.is_poisoned(0x2000));
/// p.verification_passed(0x1000);
/// p.verification_passed(0x2000);
/// assert!(p.barrier(&[0x2000]).is_ok());
/// ```
#[derive(Debug)]
pub struct PoisonTracker {
    poisoned: HashSet<TensorId>,
    failed: HashSet<TensorId>,
    limit: usize,
    stats: StatSet,
}

impl PoisonTracker {
    /// Creates a tracker that allows at most `limit` simultaneously
    /// unverified tensors (§6.5 sizes poison-bit storage for 512).
    pub fn new(limit: usize) -> Self {
        PoisonTracker {
            poisoned: HashSet::new(),
            failed: HashSet::new(),
            limit,
            stats: StatSet::new("poison"),
        }
    }

    /// Number of currently poisoned tensors.
    pub fn unverified_count(&self) -> usize {
        self.poisoned.len()
    }

    /// Whether the limit would stall a new unverified load (the counter of
    /// §4.3 that bounds post-failure wasted computation).
    pub fn at_limit(&self) -> bool {
        self.poisoned.len() >= self.limit
    }

    /// Statistics (`loads`, `propagations`, `cleared`, `failures`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// A tensor entered compute with verification still pending.
    pub fn load_unverified(&mut self, t: TensorId) {
        self.stats.bump("loads");
        self.poisoned.insert(t);
    }

    /// Whether a tensor is currently poisoned.
    pub fn is_poisoned(&self, t: TensorId) -> bool {
        self.poisoned.contains(&t)
    }

    /// An operation consumed `inputs` and produced `output`: poison
    /// propagates if any input is poisoned.
    pub fn compute(&mut self, inputs: &[TensorId], output: TensorId) {
        if inputs.iter().any(|i| self.poisoned.contains(i)) {
            self.stats.bump("propagations");
            self.poisoned.insert(output);
        } else {
            self.poisoned.remove(&output);
        }
        // Failure taint also propagates.
        if inputs.iter().any(|i| self.failed.contains(i)) {
            self.failed.insert(output);
        }
    }

    /// Delayed verification of `t` completed successfully: clear its bit.
    /// Derived tensors stay poisoned until their own inputs' verification
    /// results resolve (cleared transitively by re-running `compute`
    /// bookkeeping or by explicit per-tensor clears, as the hardware does
    /// when the barrier re-checks).
    pub fn verification_passed(&mut self, t: TensorId) {
        self.stats.bump("cleared");
        self.poisoned.remove(&t);
    }

    /// Delayed verification of `t` failed: mark the enclave compromised.
    pub fn verification_failed(&mut self, t: TensorId) {
        self.stats.bump("failures");
        self.failed.insert(t);
        self.poisoned.remove(&t);
    }

    /// The `#pragma verification_barrier` before communication: all the
    /// involved tensors must be verified and clean.
    ///
    /// # Errors
    ///
    /// [`BarrierError::VerificationFailed`] if any tensor's verification
    /// failed (abort), [`BarrierError::Poisoned`] if any is still pending
    /// (the caller stalls until verification completes).
    pub fn barrier(&self, tensors: &[TensorId]) -> Result<(), BarrierError> {
        for &t in tensors {
            if self.failed.contains(&t) {
                return Err(BarrierError::VerificationFailed { tensor: t });
            }
            if self.poisoned.contains(&t) {
                return Err(BarrierError::Poisoned { tensor: t });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_propagates_through_compute() {
        let mut p = PoisonTracker::new(8);
        p.load_unverified(1);
        p.compute(&[1, 2], 3);
        p.compute(&[3], 4);
        assert!(p.is_poisoned(3));
        assert!(p.is_poisoned(4));
        assert!(!p.is_poisoned(2));
    }

    #[test]
    fn clean_inputs_give_clean_output() {
        let mut p = PoisonTracker::new(8);
        p.compute(&[10, 11], 12);
        assert!(!p.is_poisoned(12));
    }

    #[test]
    fn barrier_blocks_until_verified() {
        let mut p = PoisonTracker::new(8);
        p.load_unverified(1);
        p.compute(&[1], 2);
        assert_eq!(p.barrier(&[2]), Err(BarrierError::Poisoned { tensor: 2 }));
        p.verification_passed(1);
        p.verification_passed(2);
        assert!(p.barrier(&[2]).is_ok());
    }

    #[test]
    fn failed_verification_aborts_communication() {
        let mut p = PoisonTracker::new(8);
        p.load_unverified(1);
        p.verification_failed(1);
        assert_eq!(
            p.barrier(&[1]),
            Err(BarrierError::VerificationFailed { tensor: 1 })
        );
        // Failure taints derived tensors too.
        p.compute(&[1], 2);
        assert_eq!(
            p.barrier(&[2]),
            Err(BarrierError::VerificationFailed { tensor: 2 })
        );
    }

    #[test]
    fn limit_counter() {
        let mut p = PoisonTracker::new(2);
        p.load_unverified(1);
        assert!(!p.at_limit());
        p.load_unverified(2);
        assert!(p.at_limit());
        p.verification_passed(1);
        assert!(!p.at_limit());
    }

    #[test]
    fn overwrite_with_clean_inputs_clears_poison() {
        let mut p = PoisonTracker::new(8);
        p.load_unverified(1);
        p.compute(&[1], 5);
        assert!(p.is_poisoned(5));
        // Tensor 5 recomputed from clean inputs.
        p.compute(&[2], 5);
        assert!(!p.is_poisoned(5));
    }
}
