//! Functional NPU memory: encrypted GDDR with MGX-style on-chip metadata.
//!
//! The NPU keeps *per-tensor* VNs (generated from execution state, as in
//! MGX/Securator — no off-chip VN storage at all) and, with TensorTEE,
//! per-tensor XOR MACs in an on-chip table (§4.3). Ciphertext lives in a
//! [`PhysMem`] image of the GDDR, which the security tests attack.

use std::collections::HashMap;
use tee_crypto::ctr::LINE_BYTES;
use tee_crypto::mac::{line_mac, MacKey, MacTag, TensorMac};
use tee_crypto::{CtrEngine, Key, LineCounter};
use tee_mem::PhysMem;

/// Integrity failure on a tensor read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorMacMismatch {
    /// Base GDDR address of the offending tensor.
    pub base: u64,
}

impl std::fmt::Display for TensorMacMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tensor MAC mismatch at {:#x}", self.base)
    }
}

impl std::error::Error for TensorMacMismatch {}

/// Metadata exported over the trusted channel during direct transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorMeta {
    /// Tensor base address (sender address space).
    pub base: u64,
    /// Tensor length in bytes (line-aligned).
    pub bytes: u64,
    /// Tensor VN.
    pub vn: u64,
    /// Tensor MAC.
    pub mac: MacTag,
}

/// The NPU's encrypted memory + on-chip metadata tables.
///
/// # Example
///
/// ```
/// use tee_crypto::Key;
/// use tee_npu::memory::NpuMemory;
///
/// let mut m = NpuMemory::new(Key::from_seed(7));
/// let data = vec![0xAB; 128];
/// m.write_tensor(0x1000, &data);
/// assert_eq!(m.read_tensor(0x1000).unwrap(), data);
/// ```
#[derive(Debug)]
pub struct NpuMemory {
    gddr: PhysMem,
    ctr: CtrEngine,
    mac_key: MacKey,
    /// On-chip per-tensor VN table (MGX-style).
    vns: HashMap<u64, u64>,
    /// On-chip per-tensor MAC table (TensorTEE §4.3).
    macs: HashMap<u64, MacTag>,
    /// Tensor lengths (line-aligned bytes).
    lens: HashMap<u64, u64>,
}

impl NpuMemory {
    /// Creates an empty memory bound to the enclave key. After the
    /// direct-transfer key exchange, the CPU enclave holds the same key.
    pub fn new(key: Key) -> Self {
        NpuMemory {
            gddr: PhysMem::new(),
            ctr: CtrEngine::new(key.derive("enc")),
            mac_key: MacKey::from(key),
            vns: HashMap::new(),
            macs: HashMap::new(),
            lens: HashMap::new(),
        }
    }

    /// Encrypts and stores a tensor, bumping its VN and recording its
    /// XOR-combined tensor MAC on-chip.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not line-aligned or `data` is empty.
    pub fn write_tensor(&mut self, base: u64, data: &[u8]) {
        assert_eq!(base % LINE_BYTES as u64, 0, "unaligned tensor base");
        assert!(!data.is_empty(), "empty tensor");
        let vn = self.vns.entry(base).or_insert(0);
        *vn += 1;
        let vn = *vn;
        let mut acc = TensorMac::new();
        let lines = data.len().div_ceil(LINE_BYTES);
        for l in 0..lines {
            let mut pt = [0u8; LINE_BYTES];
            let start = l * LINE_BYTES;
            let end = (start + LINE_BYTES).min(data.len());
            pt[..end - start].copy_from_slice(&data[start..end]);
            let pa = base + (l as u64) * LINE_BYTES as u64;
            let ct = self.ctr.encrypt_line(&pt, LineCounter { pa, vn });
            acc.absorb(line_mac(&self.mac_key, &ct, pa, vn));
            self.gddr.write_line(pa, ct);
        }
        self.macs.insert(base, acc.tag());
        self.lens.insert(base, (lines * LINE_BYTES) as u64);
    }

    /// Reads and verifies a tensor (non-delayed: verification before the
    /// data is returned).
    ///
    /// # Errors
    ///
    /// Returns [`TensorMacMismatch`] if the recomputed tensor MAC does not
    /// match the on-chip tag.
    ///
    /// # Panics
    ///
    /// Panics if the tensor was never written or imported.
    pub fn read_tensor(&mut self, base: u64) -> Result<Vec<u8>, TensorMacMismatch> {
        let (data, verify) = self.read_tensor_deferred(base);
        verify.map(|_| data)
    }

    /// Delayed-verification read: returns the decrypted data *and* the
    /// verification verdict separately, modeling §4.3 (compute may start
    /// on the data; the verdict must be checked before communication).
    ///
    /// # Panics
    ///
    /// Panics if the tensor was never written or imported.
    pub fn read_tensor_deferred(&mut self, base: u64) -> (Vec<u8>, Result<(), TensorMacMismatch>) {
        let bytes = *self.lens.get(&base).expect("unknown tensor");
        let vn = *self.vns.get(&base).expect("unknown tensor VN");
        let expect = *self.macs.get(&base).expect("unknown tensor MAC");
        let mut out = Vec::with_capacity(bytes as usize);
        let mut acc = TensorMac::new();
        let lines = bytes / LINE_BYTES as u64;
        for l in 0..lines {
            let pa = base + l * LINE_BYTES as u64;
            let ct = self.gddr.read_line(pa);
            acc.absorb(line_mac(&self.mac_key, &ct, pa, vn));
            out.extend_from_slice(&self.ctr.decrypt_line(&ct, LineCounter { pa, vn }));
        }
        let verdict = if acc.verify(expect) {
            Ok(())
        } else {
            Err(TensorMacMismatch { base })
        };
        (out, verdict)
    }

    /// Direct-transfer import: raw ciphertext lines land in GDDR via the
    /// direct channel; `(vn, mac)` arrive via the trusted channel. Because
    /// both enclaves share the key and the tensor granularity, the
    /// ciphertext is decryptable as-is — no re-encryption (§4.4).
    ///
    /// The ciphertext must have been produced under counters using *this*
    /// address space's line addresses (the protocol rebases counters by
    /// transferring `addr` metadata; we model matching layouts).
    pub fn import_ciphertext(&mut self, meta: TensorMeta, lines: &[[u8; LINE_BYTES]]) {
        for (l, ct) in lines.iter().enumerate() {
            self.gddr
                .write_line(meta.base + (l as u64) * LINE_BYTES as u64, *ct);
        }
        self.vns.insert(meta.base, meta.vn);
        self.macs.insert(meta.base, meta.mac);
        self.lens
            .insert(meta.base, (lines.len() * LINE_BYTES) as u64);
    }

    /// Direct-transfer export: ciphertext lines + trusted metadata.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is unknown.
    pub fn export_ciphertext(&mut self, base: u64) -> (TensorMeta, Vec<[u8; LINE_BYTES]>) {
        let bytes = *self.lens.get(&base).expect("unknown tensor");
        let meta = TensorMeta {
            base,
            bytes,
            vn: self.vns[&base],
            mac: self.macs[&base],
        };
        let lines = (0..bytes / LINE_BYTES as u64)
            .map(|l| self.gddr.read_line(base + l * LINE_BYTES as u64))
            .collect();
        (meta, lines)
    }

    /// The metadata that would cross the trusted channel.
    pub fn metadata(&self, base: u64) -> Option<TensorMeta> {
        Some(TensorMeta {
            base,
            bytes: *self.lens.get(&base)?,
            vn: *self.vns.get(&base)?,
            mac: *self.macs.get(&base)?,
        })
    }

    /// Adversarial access to the raw GDDR image (bus/DIMM control).
    pub fn gddr_mut(&mut self) -> &mut PhysMem {
        &mut self.gddr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> NpuMemory {
        NpuMemory::new(Key::from_seed(0xA11CE))
    }

    #[test]
    fn round_trip_multi_line() {
        let mut m = mem();
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        m.write_tensor(0x4000, &data);
        let back = m.read_tensor(0x4000).unwrap();
        assert_eq!(&back[..300], &data[..]);
        assert_eq!(back.len(), 320, "padded to whole lines");
    }

    #[test]
    fn ciphertext_at_rest() {
        let mut m = mem();
        m.write_tensor(0, &[0x77; 64]);
        assert_ne!(m.gddr_mut().snoop(0), [0x77; 64]);
    }

    #[test]
    fn rewrite_bumps_vn() {
        let mut m = mem();
        m.write_tensor(0, &[1; 64]);
        let v1 = m.metadata(0).unwrap().vn;
        m.write_tensor(0, &[2; 64]);
        let v2 = m.metadata(0).unwrap().vn;
        assert_eq!(v2, v1 + 1);
        assert_eq!(m.read_tensor(0).unwrap(), vec![2; 64]);
    }

    #[test]
    fn tamper_detected_even_with_xor_mac() {
        let mut m = mem();
        m.write_tensor(0, &vec![5u8; 4 * 64]);
        m.gddr_mut().tamper_byte(128, 7, 0x01);
        assert_eq!(m.read_tensor(0), Err(TensorMacMismatch { base: 0 }));
    }

    #[test]
    fn swap_two_lines_detected() {
        // XOR MACs are order-insensitive but PA-bound: swapping two
        // ciphertext lines changes each line's MAC, so the XOR differs.
        let mut m = mem();
        m.write_tensor(0, &(0..128u8).collect::<Vec<_>>());
        let a = m.gddr_mut().capture(0);
        let b = m.gddr_mut().capture(64);
        m.gddr_mut().replay(0, b);
        m.gddr_mut().replay(64, a);
        assert!(m.read_tensor(0).is_err());
    }

    #[test]
    fn replay_stale_tensor_detected() {
        let mut m = mem();
        m.write_tensor(0, &[1; 128]);
        let stale0 = m.gddr_mut().capture(0);
        let stale1 = m.gddr_mut().capture(64);
        m.write_tensor(0, &[2; 128]);
        m.gddr_mut().replay(0, stale0);
        m.gddr_mut().replay(64, stale1);
        // VN advanced on-chip; stale ciphertext fails the tensor MAC.
        assert!(m.read_tensor(0).is_err());
    }

    #[test]
    fn deferred_read_returns_data_and_verdict() {
        let mut m = mem();
        m.write_tensor(0, &[9; 64]);
        m.gddr_mut().tamper_byte(0, 0, 0xFF);
        let (data, verdict) = m.read_tensor_deferred(0);
        assert_eq!(data.len(), 64, "data available before verification");
        assert!(verdict.is_err(), "verdict reports tampering");
    }

    #[test]
    fn export_import_between_enclaves() {
        let key = Key::from_seed(0x5EC);
        let mut a = NpuMemory::new(key);
        let mut b = NpuMemory::new(key); // shared key after attestation
        let data = vec![0x3C; 256];
        a.write_tensor(0x1000, &data);
        let (meta, lines) = a.export_ciphertext(0x1000);
        b.import_ciphertext(meta, &lines);
        assert_eq!(b.read_tensor(0x1000).unwrap(), data);
    }

    #[test]
    fn import_with_wrong_key_fails_verification() {
        let mut a = NpuMemory::new(Key::from_seed(1));
        let mut b = NpuMemory::new(Key::from_seed(2));
        a.write_tensor(0, &[7; 128]);
        let (meta, lines) = a.export_ciphertext(0);
        b.import_ciphertext(meta, &lines);
        assert!(b.read_tensor(0).is_err(), "key mismatch must not verify");
    }
}
