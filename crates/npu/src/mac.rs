//! MAC granularity schemes for NPU memory integrity (§3.2, §4.3, Fig. 20).
//!
//! The granularity of the MAC trades storage (8 B of tag per protected
//! block) against verification behaviour:
//!
//! * fine blocks (64 B) cost ~12.5 % extra storage and DRAM traffic,
//! * coarse blocks (512 B–4 KB, MGX/GuardNN style) shrink storage but make
//!   verification *late*, stalling computation on already-decrypted lines,
//! * TensorTEE's per-tensor MAC with delayed verification stores one tag
//!   per tensor on-chip (§6.5) and removes the stall by verifying in
//!   parallel with computation.

use serde::{Deserialize, Serialize};
use tee_mem::LINE_BYTES;

/// Bytes of MAC tag per protected block (56-bit tag padded to 8 B).
pub const MAC_TAG_BYTES: u64 = 8;

/// A MAC management scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MacScheme {
    /// No integrity protection (non-secure reference).
    None,
    /// One MAC per `granularity`-byte block, verified before compute may
    /// consume any line of the block (MGX/GuardNN-style for ≥512 B;
    /// classic per-cacheline for 64 B).
    PerBlock {
        /// Protected block size in bytes (64 B … 4 KB).
        granularity: u64,
    },
    /// TensorTEE: one XOR-combined MAC per tensor, stored on-chip,
    /// verified *after* compute starts (delayed verification, §4.3).
    TensorDelayed,
}

impl MacScheme {
    /// Storage overhead as a fraction of protected data
    /// (Figure 20's right axis).
    pub fn storage_overhead(&self, tensor_bytes: u64) -> f64 {
        match *self {
            MacScheme::None => 0.0,
            MacScheme::PerBlock { granularity } => MAC_TAG_BYTES as f64 / granularity as f64,
            MacScheme::TensorDelayed => {
                if tensor_bytes == 0 {
                    0.0
                } else {
                    // One on-chip tag per tensor; off-chip storage is zero.
                    // Report the on-chip share for completeness.
                    MAC_TAG_BYTES as f64 / tensor_bytes as f64
                }
            }
        }
    }

    /// Extra DRAM bytes fetched per data byte (MAC tags are packed eight
    /// to a metadata line; per-tensor tags live on-chip).
    pub fn traffic_overhead(&self) -> f64 {
        match *self {
            MacScheme::None | MacScheme::TensorDelayed => 0.0,
            MacScheme::PerBlock { granularity } => MAC_TAG_BYTES as f64 / granularity as f64,
        }
    }

    /// Whether compute must wait for block verification.
    pub fn gates_compute(&self) -> bool {
        matches!(self, MacScheme::PerBlock { .. })
    }

    /// The block size the verification pipeline operates on (tensor mode
    /// streams at line granularity).
    pub fn pipeline_block(&self) -> u64 {
        match *self {
            MacScheme::PerBlock { granularity } => granularity,
            _ => LINE_BYTES,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            MacScheme::None => "non-secure".into(),
            MacScheme::PerBlock { granularity } if granularity >= 1024 => {
                format!("{}kB", granularity / 1024)
            }
            MacScheme::PerBlock { granularity } => format!("{granularity}B"),
            MacScheme::TensorDelayed => "tensor-delayed".into(),
        }
    }
}

/// The granularity sweep of Figure 20.
pub fn figure20_sweep() -> Vec<MacScheme> {
    [64u64, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .map(|granularity| MacScheme::PerBlock { granularity })
        .chain([MacScheme::TensorDelayed])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_overhead_shrinks_with_granularity() {
        let fine = MacScheme::PerBlock { granularity: 64 };
        let coarse = MacScheme::PerBlock { granularity: 4096 };
        assert!((fine.storage_overhead(1 << 20) - 0.125).abs() < 1e-12);
        assert!(coarse.storage_overhead(1 << 20) < 0.01);
    }

    #[test]
    fn tensor_scheme_negligible_storage() {
        let t = MacScheme::TensorDelayed;
        assert!(t.storage_overhead(1 << 20) < 1e-4);
        assert_eq!(t.traffic_overhead(), 0.0);
        assert!(!t.gates_compute());
    }

    #[test]
    fn per_block_gates_compute() {
        assert!(MacScheme::PerBlock { granularity: 512 }.gates_compute());
        assert!(!MacScheme::None.gates_compute());
    }

    #[test]
    fn sweep_matches_figure() {
        let s = figure20_sweep();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], MacScheme::PerBlock { granularity: 64 });
        assert_eq!(*s.last().unwrap(), MacScheme::TensorDelayed);
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(MacScheme::PerBlock { granularity: 64 }.label(), "64B");
        assert_eq!(MacScheme::PerBlock { granularity: 4096 }.label(), "4kB");
        assert_eq!(MacScheme::TensorDelayed.label(), "tensor-delayed");
    }
}
