//! The NPU layer-execution engine.
//!
//! Runs a sequence of [`Layer`]s (forward/backward phases of a transformer
//! step) under a [`MacScheme`], composing per-layer stream timings from
//! the Figure-13 pipeline model and accounting output write-back and
//! (non-delayed) code-fetch verification.

use crate::config::NpuConfig;
use crate::mac::MacScheme;
use crate::pipeline::{simulate_stream, StreamTiming};
use serde::{Deserialize, Serialize};
use tee_sim::Time;

/// One NPU-executed layer (or fused group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Input activation bytes streamed from GDDR.
    pub in_bytes: u64,
    /// Weight bytes streamed from GDDR.
    pub w_bytes: u64,
    /// Output bytes written back to GDDR.
    pub out_bytes: u64,
}

impl Layer {
    /// A GEMM layer `M×K × K×N` with the given element size.
    pub fn gemm(m: u64, k: u64, n: u64, elem: u64) -> Self {
        Layer {
            macs: m * k * n,
            in_bytes: m * k * elem,
            w_bytes: k * n * elem,
            out_bytes: m * n * elem,
        }
    }

    /// An element-wise layer over `bytes` of data (memory-bound).
    pub fn elementwise(bytes: u64) -> Self {
        Layer {
            macs: bytes / 2, // ~1 op per element
            in_bytes: bytes,
            w_bytes: 0,
            out_bytes: bytes,
        }
    }

    /// Ideal compute time on the PE array.
    pub fn compute_time(&self, cfg: &NpuConfig) -> Time {
        let cycles = self.macs.div_ceil(cfg.macs_per_cycle());
        cfg.clock().cycles_to_time(cycles.max(1))
    }

    /// Total streamed input bytes.
    pub fn stream_bytes(&self) -> u64 {
        self.in_bytes + self.w_bytes
    }
}

/// Timing report for one layer sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpuRunReport {
    /// End-to-end time.
    pub total: Time,
    /// Aggregate compute-stall time attributable to verification.
    pub verify_stall: Time,
    /// Bytes moved (inputs + outputs, data only).
    pub data_bytes: u64,
}

/// The NPU engine.
///
/// # Example
///
/// ```
/// use tee_npu::config::NpuConfig;
/// use tee_npu::engine::{Layer, NpuEngine};
/// use tee_npu::mac::MacScheme;
///
/// let engine = NpuEngine::new(NpuConfig::default(), MacScheme::TensorDelayed);
/// let report = engine.run(&[Layer::gemm(512, 512, 512, 2)]);
/// assert!(report.total > tee_sim::Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct NpuEngine {
    cfg: NpuConfig,
    scheme: MacScheme,
    /// Per-layer code image fetched and verified non-delayed (§4.3).
    code_bytes_per_layer: u64,
}

impl NpuEngine {
    /// Creates an engine under the given protection scheme.
    pub fn new(cfg: NpuConfig, scheme: MacScheme) -> Self {
        NpuEngine {
            cfg,
            scheme,
            code_bytes_per_layer: 16 << 10,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NpuConfig {
        &self.cfg
    }

    /// The active MAC scheme.
    pub fn scheme(&self) -> MacScheme {
        self.scheme
    }

    /// Simulates one layer; returns its stream timing and total layer time.
    fn run_layer(&self, layer: &Layer) -> (StreamTiming, Time) {
        let stream = simulate_stream(
            &self.cfg,
            self.scheme,
            layer.stream_bytes(),
            layer.compute_time(&self.cfg),
        );
        // Instruction fetches always take the *non-delayed* path: even in
        // TensorTEE mode code is verified per-cacheline before issue.
        let code_scheme = match self.scheme {
            MacScheme::None => MacScheme::None,
            _ => MacScheme::PerBlock { granularity: 64 },
        };
        let code = simulate_stream(
            &self.cfg,
            code_scheme,
            self.code_bytes_per_layer,
            Time::ZERO,
        );
        // Output drain at (MAC-inflated) bandwidth; MAC generation for
        // writes is pipelined and adds no stall.
        let out_bw = self.cfg.dram_bandwidth() / (1.0 + self.scheme.traffic_overhead());
        let out_time = Time::from_secs_f64(layer.out_bytes as f64 / out_bw);
        (stream, stream.total + code.total + out_time)
    }

    /// Runs a layer sequence to completion.
    ///
    /// Transformer steps repeat the same dozen-layer block once per model
    /// layer, so identical [`Layer`] shapes are priced once and reused:
    /// [`Time`] is integer picoseconds and the accumulation loop is
    /// unchanged, so the deduplicated run is bit-identical to pricing
    /// every layer from scratch — just ~`L`× cheaper on an `L`-block
    /// model.
    pub fn run(&self, layers: &[Layer]) -> NpuRunReport {
        let mut priced: Vec<(Layer, (StreamTiming, Time))> = Vec::new();
        let mut total = Time::ZERO;
        let mut stall = Time::ZERO;
        let mut bytes = 0u64;
        for layer in layers {
            let (stream, layer_time) = match priced.iter().find(|(l, _)| l == layer) {
                Some((_, cached)) => *cached,
                None => {
                    let fresh = self.run_layer(layer);
                    priced.push((*layer, fresh));
                    fresh
                }
            };
            total += layer_time;
            stall += stream.verify_stall;
            bytes += layer.stream_bytes() + layer.out_bytes;
        }
        NpuRunReport {
            total,
            verify_stall: stall,
            data_bytes: bytes,
        }
    }

    /// Normalized slowdown of this scheme against a non-secure run of the
    /// same layers.
    pub fn slowdown(&self, layers: &[Layer]) -> f64 {
        let secure = self.run(layers).total;
        let plain = NpuEngine::new(self.cfg.clone(), MacScheme::None)
            .run(layers)
            .total;
        secure.as_secs_f64() / plain.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::figure20_sweep;

    /// A transformer-ish mix: large GEMMs (compute-bound) plus
    /// element-wise layers (memory-bound).
    fn layer_mix() -> Vec<Layer> {
        let mut layers = Vec::new();
        for _ in 0..4 {
            layers.push(Layer::gemm(1024, 1024, 1024, 2));
            layers.push(Layer::elementwise(4 << 20));
        }
        layers
    }

    #[test]
    fn gemm_is_compute_bound() {
        // The 512×512 array at 1 GHz delivers ~524 TFLOP/s against only
        // 128 GB/s of GDDR, so GEMMs need very high arithmetic intensity
        // to go compute-bound (dim ≳ 8K at fp16 with ideal reuse).
        let cfg = NpuConfig::default();
        let l = Layer::gemm(16384, 16384, 16384, 2);
        let compute = l.compute_time(&cfg).as_secs_f64();
        let fetch = l.stream_bytes() as f64 / cfg.dram_bandwidth();
        assert!(compute > fetch, "large GEMM should be compute-bound");
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let cfg = NpuConfig::default();
        let l = Layer::elementwise(8 << 20);
        let compute = l.compute_time(&cfg).as_secs_f64();
        let fetch = l.stream_bytes() as f64 / cfg.dram_bandwidth();
        assert!(compute < fetch);
    }

    #[test]
    fn figure20_shape() {
        let cfg = NpuConfig::default();
        let layers = layer_mix();
        let mut slowdowns = Vec::new();
        for scheme in figure20_sweep() {
            let s = NpuEngine::new(cfg.clone(), scheme).slowdown(&layers);
            slowdowns.push((scheme.label(), s));
        }
        let get = |label: &str| {
            slowdowns
                .iter()
                .find(|(l, _)| l == label)
                .map(|&(_, s)| s)
                .unwrap()
        };
        // Fine granularity pays traffic; mid is the sweet spot; coarse
        // stalls; ours is near-free.
        assert!(get("64B") > get("512B"), "64B worse than 512B");
        assert!(get("4kB") > get("512B"), "4kB stalls exceed 512B");
        assert!(get("tensor-delayed") < get("64B"));
        assert!(
            get("tensor-delayed") < 1.05,
            "delayed verification ≈ free: {}",
            get("tensor-delayed")
        );
    }

    #[test]
    fn slowdown_of_none_is_one() {
        let cfg = NpuConfig::default();
        let s = NpuEngine::new(cfg, MacScheme::None).slowdown(&layer_mix());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dedup_is_bit_identical_to_per_layer_pricing() {
        // `run` prices each distinct shape once; a sequence's report must
        // still equal the layer-by-layer composition (per-layer runs hit
        // no cache), including across repeated shapes — the property the
        // explore sweeps rely on for byte-identical output.
        for scheme in figure20_sweep() {
            let engine = NpuEngine::new(NpuConfig::default(), scheme);
            let mut layers = layer_mix();
            layers.extend(layer_mix()); // repeats of every shape
            let whole = engine.run(&layers);
            let mut total = Time::ZERO;
            let mut stall = Time::ZERO;
            let mut bytes = 0u64;
            for l in &layers {
                let one = engine.run(std::slice::from_ref(l));
                total += one.total;
                stall += one.verify_stall;
                bytes += one.data_bytes;
            }
            assert_eq!(whole.total, total, "{}", scheme.label());
            assert_eq!(whole.verify_stall, stall, "{}", scheme.label());
            assert_eq!(whole.data_bytes, bytes, "{}", scheme.label());
        }
    }

    #[test]
    fn run_accumulates_bytes() {
        let cfg = NpuConfig::default();
        let layers = vec![Layer::elementwise(1 << 20); 3];
        let r = NpuEngine::new(cfg, MacScheme::TensorDelayed).run(&layers);
        assert_eq!(r.data_bytes, 3 * (2 << 20));
        assert_eq!(r.verify_stall, Time::ZERO);
    }

    #[test]
    fn code_fetch_verified_non_delayed() {
        // Even the tensor-delayed engine pays the per-cacheline path for
        // instruction fetches — visible as a tiny constant per layer.
        let cfg = NpuConfig::default();
        let layers = vec![Layer::elementwise(1 << 20)];
        let ours = NpuEngine::new(cfg.clone(), MacScheme::TensorDelayed).run(&layers);
        let plain = NpuEngine::new(cfg, MacScheme::None).run(&layers);
        assert!(ours.total > plain.total);
    }
}
