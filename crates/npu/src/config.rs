//! NPU configuration (Table 1).

use serde::{Deserialize, Serialize};
use tee_mem::DramConfig;
use tee_sim::ClockDomain;

/// Static configuration of the simulated discrete NPU (TPUv3-like,
/// output-stationary dataflow, §5.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Core frequency in GHz (Table 1: 1 GHz).
    pub freq_ghz: f64,
    /// PE array dimension (Table 1: 512×512).
    pub pe_dim: u64,
    /// Scratchpad capacity in bytes (Table 1: 32 MB).
    pub scratchpad_bytes: u64,
    /// GDDR memory size in bytes (Table 1: 40 GB).
    pub dram_bytes: u64,
    /// GDDR configuration (128 GB/s).
    pub dram: DramConfig,
    /// AES latency in NPU cycles (Table 1: 40).
    pub aes_latency: u64,
    /// MAC (hash) latency in NPU cycles.
    pub mac_latency: u64,
    /// MAC recompute throughput in 64 B lines per cycle.
    pub mac_lines_per_cycle: f64,
    /// MEE-side buffer holding decrypted-but-unverified data. Bounded —
    /// unverified lines may not enter the scratchpad in non-delayed
    /// schemes, which is what creates the Figure-13(b) stalls.
    pub verify_buffer_bytes: u64,
    /// Element size in bytes (fp16 activations/weights on the NPU).
    pub elem_bytes: u64,
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig {
            freq_ghz: 1.0,
            pe_dim: 512,
            scratchpad_bytes: 32 << 20,
            dram_bytes: 40 << 30,
            dram: DramConfig::gddr5_128gbs(),
            aes_latency: 40,
            mac_latency: 40,
            mac_lines_per_cycle: 2.0,
            verify_buffer_bytes: 8 << 10,
            elem_bytes: 2,
        }
    }
}

impl NpuConfig {
    /// The NPU clock domain.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::from_ghz(self.freq_ghz)
    }

    /// Peak MAC (multiply-accumulate) operations per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        self.pe_dim * self.pe_dim
    }

    /// Aggregate DRAM bandwidth in bytes/second.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram.total_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = NpuConfig::default();
        assert_eq!(c.freq_ghz, 1.0);
        assert_eq!(c.pe_dim, 512);
        assert_eq!(c.scratchpad_bytes, 32 << 20);
        assert_eq!(c.dram_bytes, 40 << 30);
        assert!((c.dram_bandwidth() - 128.0e9).abs() < 1e6);
        assert_eq!(c.macs_per_cycle(), 512 * 512);
    }
}
