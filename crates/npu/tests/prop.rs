//! Property-based tests for the NPU simulator.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_crypto::Key;
use tee_npu::config::NpuConfig;
use tee_npu::engine::{Layer, NpuEngine};
use tee_npu::mac::MacScheme;
use tee_npu::memory::NpuMemory;
use tee_npu::pipeline::simulate_stream;
use tee_npu::verify::PoisonTracker;
use tee_sim::Time;

proptest! {
    // Shared CI configuration: deterministic per-test seeds, bounded case
    // count, both overridable via PROPTEST_CASES / PROPTEST_RNG_SEED when
    // replaying a regression (see proptest-regressions/README.md).
    #![proptest_config(ProptestConfig::ci())]
    /// Tensor round trips for arbitrary contents and sizes.
    #[test]
    fn npu_memory_round_trip(seed in any::<u64>(), data in vec(any::<u8>(), 1..2048)) {
        let mut m = NpuMemory::new(Key::from_seed(seed));
        m.write_tensor(0x1000, &data);
        let back = m.read_tensor(0x1000).unwrap();
        prop_assert_eq!(&back[..data.len()], &data[..]);
    }

    /// Any single-byte tamper anywhere in a tensor is detected.
    #[test]
    fn npu_memory_tamper_detected(data in vec(any::<u8>(), 64..1024),
                                  byte in any::<proptest::sample::Index>(),
                                  flip in 1u8..=255) {
        let mut m = NpuMemory::new(Key::from_seed(7));
        m.write_tensor(0, &data);
        let lines = data.len().div_ceil(64);
        let victim = byte.index(lines * 64);
        m.gddr_mut().tamper_byte((victim as u64 / 64) * 64, victim % 64, flip);
        prop_assert!(m.read_tensor(0).is_err());
    }

    /// Export/import between same-key enclaves preserves content; any
    /// in-flight line corruption is caught by the receiver.
    #[test]
    fn transfer_integrity(seed in any::<u64>(), data in vec(any::<u8>(), 64..512),
                          corrupt in proptest::option::of(any::<proptest::sample::Index>())) {
        let key = Key::from_seed(seed);
        let mut a = NpuMemory::new(key);
        let mut b = NpuMemory::new(key);
        a.write_tensor(0x2000, &data);
        let (meta, mut lines) = a.export_ciphertext(0x2000);
        if let Some(idx) = corrupt {
            let l = idx.index(lines.len());
            lines[l][0] ^= 1;
        }
        b.import_ciphertext(meta, &lines);
        match corrupt {
            None => prop_assert!(b.read_tensor(0x2000).is_ok()),
            Some(_) => prop_assert!(b.read_tensor(0x2000).is_err()),
        }
    }

    /// The stream pipeline is monotone in bytes: more data never finishes
    /// earlier, for every scheme.
    #[test]
    fn pipeline_monotone_in_bytes(kb in 1u64..64) {
        let cfg = NpuConfig::default();
        for scheme in [
            MacScheme::None,
            MacScheme::PerBlock { granularity: 512 },
            MacScheme::TensorDelayed,
        ] {
            let small = simulate_stream(&cfg, scheme, kb << 10, Time::ZERO);
            let large = simulate_stream(&cfg, scheme, (kb + 1) << 10, Time::ZERO);
            prop_assert!(large.total >= small.total, "{scheme:?}");
        }
    }

    /// Protection never makes a layer run *faster* than non-secure.
    #[test]
    fn protection_never_negative_cost(macs in 1u64..(1 << 30), kb in 1u64..512) {
        let cfg = NpuConfig::default();
        let layer = Layer { macs, in_bytes: kb << 10, w_bytes: 0, out_bytes: 1 << 10 };
        let plain = NpuEngine::new(cfg.clone(), MacScheme::None).run(&[layer]).total;
        for scheme in [
            MacScheme::PerBlock { granularity: 64 },
            MacScheme::PerBlock { granularity: 4096 },
            MacScheme::TensorDelayed,
        ] {
            let secure = NpuEngine::new(cfg.clone(), scheme).run(&[layer]).total;
            prop_assert!(secure >= plain, "{scheme:?}");
        }
    }

    /// Poison propagation is transitive through arbitrary DAGs.
    #[test]
    fn poison_transitive(edges in vec((0u64..16, 0u64..16), 1..64), src in 0u64..16) {
        let mut p = PoisonTracker::new(64);
        p.load_unverified(src);
        let mut tainted: std::collections::HashSet<u64> = [src].into();
        for &(from, to) in &edges {
            if from == to {
                continue;
            }
            p.compute(&[from], to);
            if tainted.contains(&from) {
                tainted.insert(to);
            } else {
                tainted.remove(&to);
            }
        }
        for t in 0..16 {
            prop_assert_eq!(p.is_poisoned(t), tainted.contains(&t), "tensor {}", t);
        }
    }
}
