//! Functional backing store: the off-chip DRAM image.
//!
//! Everything outside the chip is attacker territory (threat model, §2.4).
//! [`PhysMem`] therefore stores what is *physically* in DRAM — ciphertext
//! for protected regions — and exposes the same interface an adversary
//! with bus access has: arbitrary reads (snooping), arbitrary writes
//! (corruption) and replay of previously captured lines.

use crate::LINE_BYTES;
use std::collections::HashMap;

/// One 64 B line as stored in DRAM.
pub type LineData = [u8; LINE_BYTES as usize];

/// A sparse physical-memory image addressed by line-aligned physical
/// addresses.
///
/// # Example
///
/// ```
/// use tee_mem::PhysMem;
///
/// let mut dram = PhysMem::new();
/// dram.write_line(0x40, [7u8; 64]);
/// assert_eq!(dram.read_line(0x40), [7u8; 64]);
/// assert_eq!(dram.read_line(0x80), [0u8; 64], "untouched memory reads zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMem {
    lines: HashMap<u64, LineData>,
    reads: u64,
    writes: u64,
}

impl PhysMem {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a line; unwritten memory reads as zeros.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not line-aligned.
    pub fn read_line(&mut self, pa: u64) -> LineData {
        assert_eq!(pa % LINE_BYTES, 0, "unaligned line read at {pa:#x}");
        self.reads += 1;
        self.lines.get(&pa).copied().unwrap_or([0u8; 64])
    }

    /// Writes a line.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not line-aligned.
    pub fn write_line(&mut self, pa: u64, data: LineData) {
        assert_eq!(pa % LINE_BYTES, 0, "unaligned line write at {pa:#x}");
        self.writes += 1;
        self.lines.insert(pa, data);
    }

    /// Number of distinct lines resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Addresses of all resident lines, sorted (attack-surface enumeration
    /// for the security tests).
    pub fn resident_addrs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.lines.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total line reads served (includes adversarial snoops).
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total line writes absorbed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    // ------------------------------------------------------------------
    // Adversarial interface (threat model §2.4): the attacker controls the
    // bus and the DIMMs, so these are just aliases with intent-revealing
    // names used by the attack tests.
    // ------------------------------------------------------------------

    /// Bus snoop: observe the raw stored bytes without disturbing counters.
    pub fn snoop(&self, pa: u64) -> LineData {
        self.lines.get(&pa).copied().unwrap_or([0u8; 64])
    }

    /// Physical corruption: flip one byte of a stored line.
    pub fn tamper_byte(&mut self, pa: u64, offset: usize, xor: u8) {
        let line = self.lines.entry(pa).or_insert([0u8; 64]);
        line[offset % LINE_BYTES as usize] ^= xor;
    }

    /// Replay attack: capture a line now, restore it later.
    pub fn capture(&self, pa: u64) -> LineData {
        self.snoop(pa)
    }

    /// Replay attack, step 2: overwrite the current line with a stale copy.
    pub fn replay(&mut self, pa: u64, stale: LineData) {
        self.lines.insert(pa, stale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mut m = PhysMem::new();
        assert_eq!(m.read_line(0), [0u8; 64]);
        assert_eq!(m.resident_lines(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = PhysMem::new();
        let mut data = [0u8; 64];
        data[13] = 0xEE;
        m.write_line(0x1000, data);
        assert_eq!(m.read_line(0x1000), data);
        assert_eq!(m.resident_lines(), 1);
    }

    #[test]
    fn counters_track_traffic() {
        let mut m = PhysMem::new();
        m.write_line(0, [1; 64]);
        m.read_line(0);
        m.read_line(64);
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 2);
    }

    #[test]
    fn snoop_does_not_count() {
        let mut m = PhysMem::new();
        m.write_line(0, [1; 64]);
        let _ = m.snoop(0);
        assert_eq!(m.read_count(), 0);
    }

    #[test]
    fn tamper_flips_byte() {
        let mut m = PhysMem::new();
        m.write_line(0, [0xAA; 64]);
        m.tamper_byte(0, 5, 0xFF);
        assert_eq!(m.read_line(0)[5], 0x55);
        assert_eq!(m.read_line(0)[4], 0xAA);
    }

    #[test]
    fn capture_replay_round_trip() {
        let mut m = PhysMem::new();
        m.write_line(0, [1; 64]);
        let stale = m.capture(0);
        m.write_line(0, [2; 64]);
        m.replay(0, stale);
        assert_eq!(m.read_line(0), [1; 64]);
    }

    #[test]
    #[should_panic]
    fn unaligned_read_panics() {
        PhysMem::new().read_line(1);
    }
}
