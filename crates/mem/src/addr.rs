//! Virtual→physical page mapping.
//!
//! Figure 9 of the paper shows why TenAnalyzer observes *virtual*
//! addresses: the core's VA stream over a tensor is regular and continuous,
//! while the physical pages backing it are scattered by the OS allocator.
//! [`PageMapper`] reproduces that scattering deterministically so the
//! memory controller sees realistic discontinuous physical traffic.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tee_sim::SplitMix64;

/// Page size (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

/// A demand-paged VA→PA mapper with deterministic pseudo-random frame
/// assignment.
///
/// # Example
///
/// ```
/// use tee_mem::{PageMapper, PAGE_BYTES};
///
/// let mut m = PageMapper::new(42);
/// let pa1 = m.translate(0x1000);
/// let pa2 = m.translate(0x1008);
/// assert_eq!(pa2 - pa1, 8, "offsets within a page are preserved");
/// // Consecutive pages are (almost surely) not physically adjacent.
/// let next_page = m.translate(0x1000 + PAGE_BYTES);
/// assert_ne!(next_page, pa1 + PAGE_BYTES);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageMapper {
    table: HashMap<u64, u64>,
    rng: SplitMix64,
    next_sequential_frame: u64,
    scatter: bool,
}

impl PageMapper {
    /// Creates a mapper that scatters frames pseudo-randomly (the realistic
    /// default, per Figure 9).
    pub fn new(seed: u64) -> Self {
        PageMapper {
            table: HashMap::new(),
            rng: SplitMix64::new(seed),
            next_sequential_frame: 0,
            scatter: true,
        }
    }

    /// Creates an identity-like mapper that hands out frames sequentially —
    /// useful for tests that need predictable physical addresses.
    pub fn sequential() -> Self {
        PageMapper {
            table: HashMap::new(),
            rng: SplitMix64::new(0),
            next_sequential_frame: 0,
            scatter: false,
        }
    }

    /// Translates a virtual byte address, allocating a frame on first touch.
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        let vpn = vaddr / PAGE_BYTES;
        let offset = vaddr % PAGE_BYTES;
        let frame = match self.table.get(&vpn) {
            Some(&f) => f,
            None => {
                let f = if self.scatter {
                    // 2^20 frames = 4 GiB of physical space; collisions are
                    // harmless for simulation (two VPNs sharing a frame would
                    // only make traffic *more* regular, never less).
                    self.rng.next_below(1 << 20)
                } else {
                    let f = self.next_sequential_frame;
                    self.next_sequential_frame += 1;
                    f
                };
                self.table.insert(vpn, f);
                f
            }
        };
        frame * PAGE_BYTES + offset
    }

    /// Number of pages touched so far.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Whether translating `vaddr` would hit an existing mapping.
    pub fn is_mapped(&self, vaddr: u64) -> bool {
        self.table.contains_key(&(vaddr / PAGE_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut m = PageMapper::new(1);
        let a = m.translate(0x5000);
        let b = m.translate(0x5000);
        assert_eq!(a, b);
    }

    #[test]
    fn offsets_preserved_within_page() {
        let mut m = PageMapper::new(1);
        let base = m.translate(0x7000);
        for off in [0u64, 64, 128, 4095] {
            assert_eq!(m.translate(0x7000 + off), base + off);
        }
    }

    #[test]
    fn scattered_pages_break_contiguity() {
        let mut m = PageMapper::new(7);
        let mut contiguous = 0;
        let n = 64;
        let mut prev = m.translate(0);
        for p in 1..n {
            let pa = m.translate(p * PAGE_BYTES);
            if pa == prev + PAGE_BYTES {
                contiguous += 1;
            }
            prev = pa;
        }
        assert!(
            contiguous < n / 8,
            "scattered mapping should rarely be contiguous ({contiguous}/{n})"
        );
    }

    #[test]
    fn sequential_mapper_is_contiguous() {
        let mut m = PageMapper::sequential();
        let a = m.translate(0);
        let b = m.translate(PAGE_BYTES);
        assert_eq!(b, a + PAGE_BYTES);
    }

    #[test]
    fn mapped_pages_counts_unique_pages() {
        let mut m = PageMapper::new(3);
        m.translate(0);
        m.translate(64);
        m.translate(PAGE_BYTES);
        assert_eq!(m.mapped_pages(), 2);
        assert!(m.is_mapped(32));
        assert!(!m.is_mapped(10 * PAGE_BYTES));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = PageMapper::new(9);
        let mut b = PageMapper::new(9);
        for p in 0..32 {
            assert_eq!(a.translate(p * PAGE_BYTES), b.translate(p * PAGE_BYTES));
        }
    }
}
