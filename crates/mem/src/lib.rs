//! # tee-mem
//!
//! The memory substrate shared by the CPU and NPU simulators. This is the
//! layer the paper's threat model attacks (§2.2: a physical adversary
//! snooping and tampering with off-chip DRAM and the memory bus) and the
//! layer whose timing the TEE overheads of §3.1–§3.2 emerge from:
//!
//! * [`addr`] — virtual→physical page mapping. Pages are deliberately
//!   scattered (Figure 9): physical-address streams are *not* contiguous
//!   across page boundaries, which is why TenAnalyzer must observe virtual
//!   addresses.
//! * [`store`] — the functional backing store ("off-chip DRAM image")
//!   holding ciphertext at rest, with adversarial tamper/replay hooks used
//!   by the security tests.
//! * [`cache`] — set-associative write-back caches with LRU replacement
//!   and a composable [`cache::CacheHierarchy`] (L1/L2 private, L3 shared)
//!   matching Table 1.
//! * [`dram`] — DRAM channel/bank timing (row-buffer hits vs. conflicts,
//!   per-channel data-bus occupancy) for DDR4-2400 (CPU) and GDDR5 (NPU).
//! * [`mc`] — the memory-controller front end: PA→channel interleaving and
//!   request scheduling on top of [`dram`].
//! * [`metadata`] — the small on-chip metadata cache (32 KB, Table 1) that
//!   the SGX-like MEE uses for VNs/MACs/Merkle nodes.

pub mod addr;
pub mod cache;
pub mod dram;
pub mod mc;
pub mod metadata;
pub mod store;

pub use addr::{PageMapper, PAGE_BYTES};
pub use cache::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig};
pub use dram::{DramConfig, DramModel};
pub use mc::MemoryController;
pub use metadata::MetadataCache;
pub use store::PhysMem;

/// Cacheline size used throughout (64 B, Table 1).
pub const LINE_BYTES: u64 = 64;
