//! The on-chip metadata cache of the SGX-like MEE (Table 1: 32 KB).
//!
//! VNs, MACs and Merkle nodes live in dedicated DRAM regions; the MEE keeps
//! a small cache of recently used metadata lines so that hot Merkle paths
//! do not re-traverse DRAM. Its hit rate is what keeps the SGX baseline
//! merely *slow* instead of unusable — and it is the component TenAnalyzer
//! replaces with the Meta Table.

use crate::cache::{Cache, CacheConfig};
use crate::LINE_BYTES;

/// Kinds of metadata lines, mapped into disjoint address regions so they
/// contend realistically inside the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// Version-number lines (8 VNs of 8 B per 64 B line).
    Vn,
    /// MAC lines (8 MACs per line).
    Mac,
    /// Merkle-tree node lines, parameterized by tree level.
    Merkle(u8),
}

impl MetaKind {
    fn region_base(self) -> u64 {
        match self {
            MetaKind::Vn => 0x4000_0000_0000,
            MetaKind::Mac => 0x5000_0000_0000,
            MetaKind::Merkle(level) => 0x6000_0000_0000 + (level as u64) * 0x0100_0000_0000,
        }
    }
}

/// A small set-associative cache over metadata lines.
///
/// # Example
///
/// ```
/// use tee_mem::metadata::{MetaKind, MetadataCache};
///
/// let mut mc = MetadataCache::table1_default();
/// assert!(!mc.access(MetaKind::Vn, 0));   // cold miss
/// assert!(mc.access(MetaKind::Vn, 0));    // now cached
/// assert!(mc.access(MetaKind::Vn, 1));    // same 64 B VN line (8 VNs/line)
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    cache: Cache,
    entries_per_line: u64,
}

impl MetadataCache {
    /// Creates the Table-1 default: 32 KB, 8-way, 64 B lines, 8 B entries.
    pub fn table1_default() -> Self {
        Self::new(32 << 10, 8)
    }

    /// Creates a metadata cache of `size_bytes` with `ways` associativity.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        MetadataCache {
            cache: Cache::new(CacheConfig {
                size_bytes,
                ways,
                line_bytes: LINE_BYTES,
            }),
            entries_per_line: LINE_BYTES / 8,
        }
    }

    /// Looks up the metadata line holding entry `index` of `kind`.
    /// Returns `true` on hit; on miss the line is filled.
    pub fn access(&mut self, kind: MetaKind, index: u64) -> bool {
        let line = kind.region_base() + (index / self.entries_per_line) * LINE_BYTES;
        self.cache.access(line, false).is_hit()
    }

    /// Marks the metadata line holding entry `index` dirty (a VN update).
    /// Returns `true` on hit.
    pub fn update(&mut self, kind: MetaKind, index: u64) -> bool {
        let line = kind.region_base() + (index / self.entries_per_line) * LINE_BYTES;
        self.cache.access(line, true).is_hit()
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.cache.stats().get("hit")
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.cache.stats().get("miss")
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_share_lines() {
        let mut mc = MetadataCache::table1_default();
        assert!(!mc.access(MetaKind::Vn, 0));
        for i in 1..8 {
            assert!(mc.access(MetaKind::Vn, i), "entry {i} shares the line");
        }
        assert!(!mc.access(MetaKind::Vn, 8), "next line is cold");
    }

    #[test]
    fn kinds_do_not_alias() {
        let mut mc = MetadataCache::table1_default();
        mc.access(MetaKind::Vn, 0);
        assert!(!mc.access(MetaKind::Mac, 0));
        assert!(!mc.access(MetaKind::Merkle(0), 0));
        assert!(!mc.access(MetaKind::Merkle(1), 0));
    }

    #[test]
    fn capacity_pressure_evicts() {
        // 1 KB cache: 16 lines. Stream 64 distinct VN lines, re-touch the first.
        let mut mc = MetadataCache::new(1024, 2);
        mc.access(MetaKind::Vn, 0);
        for i in 1..64 {
            mc.access(MetaKind::Vn, i * 8);
        }
        assert!(!mc.access(MetaKind::Vn, 0), "first line must be evicted");
    }

    #[test]
    fn hit_rate_reports() {
        let mut mc = MetadataCache::table1_default();
        mc.access(MetaKind::Vn, 0);
        mc.access(MetaKind::Vn, 1);
        assert!((mc.hit_rate() - 0.5).abs() < 1e-12);
    }
}
