//! Set-associative write-back caches and the Table-1 hierarchy.
//!
//! The cache model is *traffic-accurate*: what reaches the memory
//! controller (demand misses and dirty write-backs) is exactly what the
//! MEE must decrypt/verify, which is where all of the SGX overhead in
//! Figures 3 and 19 comes from. Request data payloads are not stored here —
//! the functional ciphertext lives in [`crate::store::PhysMem`].

use serde::{Deserialize, Serialize};
use tee_sim::StatSet;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// set count, capacity not divisible by `ways * line_bytes`).
    pub fn sets(&self) -> u64 {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WayState {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of a single-level cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `victim` carries a dirty line that had to be
    /// written back (its line address), if any.
    Miss {
        /// Dirty line evicted to make room, if any.
        victim: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether this access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// One set-associative, write-allocate, write-back cache level with LRU
/// replacement.
///
/// # Example
///
/// ```
/// use tee_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 });
/// assert!(!c.access(0x40, false).is_hit());
/// assert!(c.access(0x40, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<WayState>>,
    tick: u64,
    stats: StatSet,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        Cache {
            cfg,
            sets: vec![vec![WayState::default(); cfg.ways as usize]; sets],
            tick: 0,
            stats: StatSet::new("cache"),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access statistics (`hit`, `miss`, `writeback`).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    #[inline]
    fn index_tag(&self, line_addr: u64) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        let idx = (line_addr / self.cfg.line_bytes) & (sets - 1);
        let tag = (line_addr / self.cfg.line_bytes) / sets;
        (idx as usize, tag)
    }

    /// Looks up (and on miss, fills) the line containing `line_addr`.
    /// `is_write` marks the line dirty on hit/fill.
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let sets_count = self.sets.len() as u64;
        let (idx, tag) = self.index_tag(line_addr);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            way.dirty |= is_write;
            self.stats.bump("hit");
            return AccessOutcome::Hit;
        }
        self.stats.bump("miss");
        // Choose victim: first invalid way, else LRU.
        let victim_idx = set.iter().position(|w| !w.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        let victim = &set[victim_idx];
        let evicted = if victim.valid && victim.dirty {
            self.stats.bump("writeback");
            Some((victim.tag * sets_count + idx as u64) * self.cfg.line_bytes)
        } else {
            None
        };
        let victim = &mut self.sets[idx][victim_idx];
        victim.valid = true;
        victim.dirty = is_write;
        victim.tag = tag;
        victim.lru = self.tick;
        AccessOutcome::Miss { victim: evicted }
    }

    /// If the line is resident and dirty, clears its dirty bit and
    /// returns `true` (dirty-ownership migration during fills).
    pub fn take_dirty(&mut self, line_addr: u64) -> bool {
        let (idx, tag) = self.index_tag(line_addr);
        if let Some(w) = self.sets[idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag && w.dirty)
        {
            w.dirty = false;
            return true;
        }
        false
    }

    /// Marks a resident line dirty (receiving migrated ownership).
    pub fn mark_dirty(&mut self, line_addr: u64) {
        let (idx, tag) = self.index_tag(line_addr);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.valid && w.tag == tag) {
            w.dirty = true;
        }
    }

    /// Whether the line is currently resident.
    pub fn contains(&self, line_addr: u64) -> bool {
        let (idx, tag) = self.index_tag(line_addr);
        self.sets[idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything, returning the line addresses of dirty lines
    /// (which must be written back).
    pub fn flush(&mut self) -> Vec<u64> {
        let sets = self.sets.len() as u64;
        let line = self.cfg.line_bytes;
        let mut dirty = Vec::new();
        for (idx, set) in self.sets.iter_mut().enumerate() {
            for w in set.iter_mut() {
                if w.valid && w.dirty {
                    dirty.push((w.tag * sets + idx as u64) * line);
                }
                w.valid = false;
                w.dirty = false;
            }
        }
        dirty
    }
}

/// Geometry of the Table-1 three-level hierarchy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (private L1/L2 pairs).
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
}

impl Default for HierarchyConfig {
    /// Table 1: 32 KB 8-way L1, 256 KB 8-way L2, 9 MB 8-way shared L3,
    /// 64 B lines, 8 cores.
    fn default() -> Self {
        HierarchyConfig {
            cores: 8,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l3: CacheConfig {
                // 9 MB is not a power-of-two set count at 8 ways; use the
                // nearest power-of-two capacity (8 MiB) as gem5 configs do.
                size_bytes: 8 << 20,
                ways: 8,
                line_bytes: 64,
            },
        }
    }
}

/// Where a hierarchy access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Private L1.
    L1,
    /// Private L2.
    L2,
    /// Shared L3.
    L3,
    /// Off-chip memory.
    Memory,
}

/// Result of one access through the full hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyOutcome {
    /// Deepest level that supplied the data.
    pub served_by: HitLevel,
    /// Dirty lines pushed out of the L3 to memory by this access.
    pub mem_writebacks: Vec<u64>,
}

/// A multi-core cache hierarchy: private L1/L2 per core, shared L3.
///
/// Non-inclusive: each level is looked up independently; dirty victims
/// cascade one level down, and dirty L3 victims surface as memory
/// write-backs (what the MEE must encrypt + MAC).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
}

impl CacheHierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        CacheHierarchy {
            cfg,
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            l3: Cache::new(cfg.l3),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Issues one line access from `core`.
    ///
    /// Misses allocate at every level on the way down; dirty victims
    /// cascade one level (L1→L2, L2→L3, L3→memory).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: u32, line_addr: u64, is_write: bool) -> HierarchyOutcome {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let c = core as usize;
        let mut mem_writebacks = Vec::new();

        let l1_out = self.l1[c].access(line_addr, is_write);
        if l1_out.is_hit() {
            return HierarchyOutcome {
                served_by: HitLevel::L1,
                mem_writebacks,
            };
        }
        if let AccessOutcome::Miss { victim: Some(v) } = l1_out {
            self.insert_l2(c, v, &mut mem_writebacks);
        }

        let l2_out = self.l2[c].access(line_addr, false);
        if let AccessOutcome::Miss { victim: Some(v) } = l2_out {
            self.insert_l3(v, &mut mem_writebacks);
        }
        if l2_out.is_hit() {
            // Dirty ownership migrates with the data: a stale dirty copy
            // left below would otherwise write back twice.
            if self.l2[c].take_dirty(line_addr) {
                self.l1[c].mark_dirty(line_addr);
            }
            return HierarchyOutcome {
                served_by: HitLevel::L2,
                mem_writebacks,
            };
        }

        let l3_out = self.l3.access(line_addr, false);
        if let AccessOutcome::Miss { victim: Some(v) } = l3_out {
            mem_writebacks.push(v);
        }
        if l3_out.is_hit() && self.l3.take_dirty(line_addr) {
            self.l1[c].mark_dirty(line_addr);
        }
        let served_by = if l3_out.is_hit() {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        HierarchyOutcome {
            served_by,
            mem_writebacks,
        }
    }

    /// Installs a dirty L1 victim into L2, cascading further victims.
    fn insert_l2(&mut self, core: usize, line_addr: u64, mem_writebacks: &mut Vec<u64>) {
        if let AccessOutcome::Miss { victim: Some(v) } = self.l2[core].access(line_addr, true) {
            self.insert_l3(v, mem_writebacks);
        }
    }

    /// Installs a dirty L2 victim into the shared L3.
    fn insert_l3(&mut self, line_addr: u64, mem_writebacks: &mut Vec<u64>) {
        if let AccessOutcome::Miss { victim: Some(v) } = self.l3.access(line_addr, true) {
            mem_writebacks.push(v);
        }
    }

    /// Drains every dirty line to memory (end-of-kernel flush). Returns the
    /// line addresses written back.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for c in 0..self.cfg.cores as usize {
            for line in self.l1[c].flush() {
                out.push(line);
            }
            for line in self.l2[c].flush() {
                out.push(line);
            }
        }
        out.extend(self.l3.flush());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Aggregate L3 statistics.
    pub fn l3_stats(&self) -> &StatSet {
        self.l3.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        }) // 8 sets
    }

    #[test]
    fn geometry() {
        assert_eq!(small().config().sets(), 8);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert_eq!(c.stats().get("hit"), 1);
        assert_eq!(c.stats().get("miss"), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0 in a 2-way cache: stride = 8 sets * 64.
        let s = 8 * 64;
        c.access(0, false);
        c.access(s, false);
        c.access(0, false); // refresh line 0
        c.access(2 * s, false); // evicts line `s`
        assert!(c.contains(0));
        assert!(!c.contains(s));
        assert!(c.contains(2 * s));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = small();
        let s = 8 * 64;
        c.access(0, true); // dirty
        c.access(s, false);
        let out = c.access(2 * s, false); // evicts line 0 (LRU, dirty)
        match out {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v, 0),
            other => panic!("expected dirty victim, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = small();
        let s = 8 * 64;
        c.access(0, false);
        c.access(s, false);
        let out = c.access(2 * s, false);
        assert_eq!(out, AccessOutcome::Miss { victim: None });
    }

    #[test]
    fn flush_returns_only_dirty() {
        let mut c = small();
        c.access(0, true);
        c.access(64, false);
        let mut d = c.flush();
        d.sort_unstable();
        assert_eq!(d, vec![0]);
        assert!(!c.contains(0));
    }

    fn tiny_hierarchy() -> CacheHierarchy {
        let line = CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        }; // 4 sets
        CacheHierarchy::new(HierarchyConfig {
            cores: 2,
            l1: line,
            l2: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
            },
            l3: CacheConfig {
                size_bytes: 2048,
                ways: 2,
                line_bytes: 64,
            },
        })
    }

    #[test]
    fn hierarchy_first_touch_goes_to_memory() {
        let mut h = tiny_hierarchy();
        let out = h.access(0, 0x40, false);
        assert_eq!(out.served_by, HitLevel::Memory);
        let out = h.access(0, 0x40, false);
        assert_eq!(out.served_by, HitLevel::L1);
    }

    #[test]
    fn hierarchy_l3_shared_across_cores() {
        let mut h = tiny_hierarchy();
        h.access(0, 0x40, false);
        // Other core finds it in shared L3, not its private caches.
        let out = h.access(1, 0x40, false);
        assert_eq!(out.served_by, HitLevel::L3);
    }

    #[test]
    fn hierarchy_flush_reports_dirty_lines_once() {
        let mut h = tiny_hierarchy();
        h.access(0, 0x40, true);
        h.access(0, 0x80, false);
        let dirty = h.flush_all();
        assert_eq!(dirty, vec![0x40]);
    }

    #[test]
    fn hierarchy_streaming_writes_eventually_write_back() {
        let mut h = tiny_hierarchy();
        // Stream far more dirty lines than total capacity.
        let mut wb = 0usize;
        for i in 0..512u64 {
            wb += h.access(0, i * 64, true).mem_writebacks.len();
        }
        let wb_total = wb + h.flush_all().len();
        assert_eq!(
            wb_total, 512,
            "every dirty line must reach memory exactly once"
        );
    }

    #[test]
    #[should_panic]
    fn hierarchy_bad_core_panics() {
        tiny_hierarchy().access(9, 0, false);
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = small();
        let addr = 0x1234 & !63u64;
        c.access(addr, true);
        // Force eviction by filling the same set.
        let s = 8 * 64;
        let mut victims = Vec::new();
        for i in 1..=2 {
            if let AccessOutcome::Miss { victim: Some(v) } = c.access(addr + i * s, false) {
                victims.push(v);
            }
        }
        assert_eq!(victims, vec![addr]);
    }
}
