//! Memory-controller front end.
//!
//! Sits between the last-level cache (or NPU DMA engines) and [`DramModel`],
//! adding a fixed queueing/scheduling latency and separating demand traffic
//! from metadata traffic in its statistics — the split that Figures 3
//! and 19 are built from.

use crate::dram::{DramConfig, DramModel};
use tee_sim::{StatSet, Time};

/// The class of a memory request, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Application data (cache fill or write-back).
    Demand,
    /// TEE metadata: VNs, MACs, Merkle-tree nodes.
    Metadata,
}

/// A memory controller wrapping one DRAM device.
///
/// # Example
///
/// ```
/// use tee_mem::{DramConfig, MemoryController};
/// use tee_mem::mc::RequestClass;
/// use tee_sim::Time;
///
/// let mut mc = MemoryController::new(DramConfig::ddr4_2400_2ch());
/// let done = mc.request(0x40, RequestClass::Demand, Time::ZERO);
/// assert!(done > Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: DramModel,
    queue_latency: Time,
    stats: StatSet,
}

impl MemoryController {
    /// Creates a controller with a default 10 ns queue/scheduling latency.
    pub fn new(cfg: DramConfig) -> Self {
        MemoryController {
            dram: DramModel::new(cfg),
            queue_latency: Time::from_ns(10),
            stats: StatSet::new("mc"),
        }
    }

    /// Overrides the fixed queue latency.
    pub fn with_queue_latency(mut self, lat: Time) -> Self {
        self.queue_latency = lat;
        self
    }

    /// Issues one 64 B request; returns completion time.
    pub fn request(&mut self, pa: u64, class: RequestClass, at: Time) -> Time {
        match class {
            RequestClass::Demand => self.stats.bump("demand"),
            RequestClass::Metadata => self.stats.bump("metadata"),
        }
        self.dram.access(pa, at + self.queue_latency)
    }

    /// Demand/metadata/access statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// The underlying DRAM model (row-hit stats, idle horizon).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Total bytes moved (demand + metadata).
    pub fn total_bytes(&self) -> u64 {
        self.dram.total_bytes()
    }

    /// Time when all channels drain.
    pub fn idle_at(&self) -> Time {
        self.dram.all_idle_at()
    }

    /// Ratio of metadata requests to all requests.
    pub fn metadata_fraction(&self) -> f64 {
        let m = self.stats.get("metadata");
        let d = self.stats.get("demand");
        if m + d == 0 {
            0.0
        } else {
            m as f64 / (m + d) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_counted_separately() {
        let mut mc = MemoryController::new(DramConfig::ddr4_2400_2ch());
        mc.request(0, RequestClass::Demand, Time::ZERO);
        mc.request(64, RequestClass::Metadata, Time::ZERO);
        mc.request(128, RequestClass::Metadata, Time::ZERO);
        assert_eq!(mc.stats().get("demand"), 1);
        assert_eq!(mc.stats().get("metadata"), 2);
        assert!((mc.metadata_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_latency_delays_completion() {
        let fast =
            MemoryController::new(DramConfig::ddr4_2400_2ch()).with_queue_latency(Time::ZERO);
        let mut fast = fast;
        let mut slow = MemoryController::new(DramConfig::ddr4_2400_2ch())
            .with_queue_latency(Time::from_ns(100));
        let t_fast = fast.request(0, RequestClass::Demand, Time::ZERO);
        let t_slow = slow.request(0, RequestClass::Demand, Time::ZERO);
        assert_eq!(t_slow - t_fast, Time::from_ns(100));
    }

    #[test]
    fn empty_controller_fraction_zero() {
        let mc = MemoryController::new(DramConfig::gddr5_128gbs());
        assert_eq!(mc.metadata_fraction(), 0.0);
    }
}
