//! DRAM channel/bank timing model.
//!
//! A deliberately compact Ramulator stand-in: per-channel data buses with
//! finite bandwidth, per-bank open-row state with row-hit vs. row-conflict
//! latencies, and line-interleaved address mapping. This captures the two
//! effects the paper's results hinge on:
//!
//! 1. extra metadata accesses (VN/MAC/Merkle) consume *data-bus bandwidth*,
//!    which is what throttles multi-threaded Adam under SGX (Figure 3), and
//! 2. streaming tensor traffic is row-buffer friendly, so the demand stream
//!    itself runs near peak bandwidth.

use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};
use tee_sim::{BandwidthResource, StatSet, Time};

/// Static DRAM geometry and timing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Per-channel data-bus bandwidth in bytes/second.
    pub channel_bytes_per_sec: f64,
    /// Column access latency (row already open).
    pub t_cas: Time,
    /// Row activation latency.
    pub t_rcd: Time,
    /// Precharge latency (closing a conflicting row).
    pub t_rp: Time,
}

impl DramConfig {
    /// Table 1 CPU memory: DDR4-2400, 2 channels (19.2 GB/s each).
    pub fn ddr4_2400_2ch() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 8 << 10,
            channel_bytes_per_sec: 19.2e9,
            t_cas: Time::from_ps(14_160),
            t_rcd: Time::from_ps(14_160),
            t_rp: Time::from_ps(14_160),
        }
    }

    /// Table 1 NPU memory: GDDR5, 128 GB/s aggregate over 8 channels.
    pub fn gddr5_128gbs() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2 << 10,
            channel_bytes_per_sec: 16.0e9,
            t_cas: Time::from_ps(12_000),
            t_rcd: Time::from_ps(12_000),
            t_rp: Time::from_ps(12_000),
        }
    }

    /// Aggregate peak bandwidth across channels.
    pub fn total_bytes_per_sec(&self) -> f64 {
        self.channel_bytes_per_sec * self.channels as f64
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
}

/// The decomposed location of a physical line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramLoc {
    /// Channel index.
    pub channel: u32,
    /// Bank index within the channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
}

/// A timed DRAM model.
///
/// # Example
///
/// ```
/// use tee_mem::{DramConfig, DramModel};
/// use tee_sim::Time;
///
/// let mut d = DramModel::new(DramConfig::ddr4_2400_2ch());
/// let t1 = d.access(0x0, Time::ZERO);
/// let t2 = d.access(0x40, t1); // same row: faster (row hit)
/// assert!(t2 - t1 <= t1 - Time::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    buses: Vec<BandwidthResource>,
    banks: Vec<BankState>,
    stats: StatSet,
}

impl DramModel {
    /// Creates a model with all rows closed.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel {
            cfg,
            buses: (0..cfg.channels)
                .map(|_| BandwidthResource::new(cfg.channel_bytes_per_sec, Time::ZERO))
                .collect(),
            banks: vec![BankState::default(); (cfg.channels * cfg.banks_per_channel) as usize],
            stats: StatSet::new("dram"),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Row-hit/miss and access statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Maps a physical line address onto (channel, bank, row).
    ///
    /// Lines are interleaved across channels, then rows across banks, so
    /// streaming traffic spreads over every channel.
    pub fn locate(&self, pa: u64) -> DramLoc {
        let line = pa / LINE_BYTES;
        let channel = (line % self.cfg.channels as u64) as u32;
        let chan_line = line / self.cfg.channels as u64;
        let lines_per_row = self.cfg.row_bytes / LINE_BYTES;
        let row_global = chan_line / lines_per_row;
        let bank = (row_global % self.cfg.banks_per_channel as u64) as u32;
        let row = row_global / self.cfg.banks_per_channel as u64;
        DramLoc { channel, bank, row }
    }

    /// Serves one 64 B line access issued at `at`; returns its completion
    /// time. Reads and writes occupy the bus identically at this fidelity.
    pub fn access(&mut self, pa: u64, at: Time) -> Time {
        let loc = self.locate(pa);
        let bank_idx = (loc.channel * self.cfg.banks_per_channel + loc.bank) as usize;
        let bank = &mut self.banks[bank_idx];
        let array_latency = match bank.open_row {
            Some(r) if r == loc.row => {
                self.stats.bump("row_hit");
                self.cfg.t_cas
            }
            Some(_) => {
                self.stats.bump("row_conflict");
                bank.open_row = Some(loc.row);
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.stats.bump("row_empty");
                bank.open_row = Some(loc.row);
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        self.stats.bump("access");
        let grant = self.buses[loc.channel as usize].acquire(at, LINE_BYTES);
        grant.free + array_latency
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let hits = self.stats.get("row_hit");
        let total = self.stats.get("access");
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The time at which every channel becomes idle (end of a drain).
    pub fn all_idle_at(&self) -> Time {
        self.buses
            .iter()
            .map(|b| b.busy_until())
            .fold(Time::ZERO, Time::max)
    }

    /// Total bytes moved across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.buses.iter().map(|b| b.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_interleaves_channels() {
        let d = DramModel::new(DramConfig::ddr4_2400_2ch());
        assert_eq!(d.locate(0).channel, 0);
        assert_eq!(d.locate(64).channel, 1);
        assert_eq!(d.locate(128).channel, 0);
    }

    #[test]
    fn row_hits_after_first_touch() {
        let mut d = DramModel::new(DramConfig::ddr4_2400_2ch());
        // Stream within one row of one channel: lines 0,128,256… map to
        // channel 0 and share rows.
        let mut t = Time::ZERO;
        for i in 0..32u64 {
            t = d.access(i * 128, t);
        }
        assert!(d.row_hit_rate() > 0.7, "streaming should mostly row-hit");
    }

    #[test]
    fn row_conflict_costs_more() {
        let mut d = DramModel::new(DramConfig::ddr4_2400_2ch());
        let cfg = d.config();
        // Two rows in the same bank of the same channel.
        let lines_per_row = cfg.row_bytes / LINE_BYTES;
        let same_bank_stride =
            lines_per_row * cfg.channels as u64 * cfg.banks_per_channel as u64 * LINE_BYTES;
        let t1 = d.access(0, Time::ZERO);
        let t2 = d.access(same_bank_stride, t1) - t1;
        let t3 = d.access(0, t1 + t2) - (t1 + t2);
        // Both follow-on accesses conflict; both are slower than a CAS-only hit.
        assert!(t2 > cfg.t_cas);
        assert!(t3 > cfg.t_cas);
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        let mut d = DramModel::new(DramConfig::ddr4_2400_2ch());
        let n = 10_000u64;
        let mut done = Time::ZERO;
        for i in 0..n {
            done = d.access(i * 64, Time::ZERO).max(done);
        }
        let bytes = n * 64;
        let secs = d.all_idle_at().as_secs_f64();
        let achieved = bytes as f64 / secs;
        let peak = d.config().total_bytes_per_sec();
        assert!(achieved <= peak * 1.001, "{achieved} > {peak}");
        assert!(achieved > peak * 0.9, "streaming should approach peak");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramModel::new(DramConfig::gddr5_128gbs());
        d.access(0, Time::ZERO);
        d.access(0, Time::ZERO);
        assert_eq!(d.stats().get("access"), 2);
        assert_eq!(d.total_bytes(), 128);
    }
}
