//! Property-based tests for the memory substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_mem::cache::{AccessOutcome, Cache, CacheConfig, CacheHierarchy, HierarchyConfig};
use tee_mem::{DramConfig, DramModel, PageMapper, PhysMem};
use tee_sim::Time;

fn tiny_hierarchy() -> CacheHierarchy {
    CacheHierarchy::new(HierarchyConfig {
        cores: 2,
        l1: CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        },
        l2: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        },
        l3: CacheConfig {
            size_bytes: 2048,
            ways: 2,
            line_bytes: 64,
        },
    })
}

proptest! {
    // Shared CI configuration: deterministic per-test seeds, bounded case
    // count, both overridable via PROPTEST_CASES / PROPTEST_RNG_SEED when
    // replaying a regression (see proptest-regressions/README.md).
    #![proptest_config(ProptestConfig::ci())]
    /// Backing store: last write wins for any interleaving of lines.
    #[test]
    fn store_last_write_wins(ops in vec((0u64..64, any::<u8>()), 1..100)) {
        let mut mem = PhysMem::new();
        let mut model = std::collections::HashMap::new();
        for &(line, fill) in &ops {
            let pa = line * 64;
            mem.write_line(pa, [fill; 64]);
            model.insert(pa, fill);
        }
        for (&pa, &fill) in &model {
            prop_assert_eq!(mem.read_line(pa), [fill; 64]);
        }
    }

    /// A single-level cache never exceeds its capacity in resident lines
    /// and hits anything accessed twice in a row.
    #[test]
    fn cache_capacity_respected(addrs in vec(0u64..(1 << 14), 1..300)) {
        let cfg = CacheConfig { size_bytes: 2048, ways: 4, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            let line = a & !63;
            c.access(line, false);
            prop_assert!(c.contains(line));
            prop_assert!(c.access(line, false).is_hit());
        }
        // Flush yields no dirty lines for a read-only stream.
        prop_assert!(c.flush().is_empty());
    }

    /// Write-back conservation through the full hierarchy: dirty lines
    /// reaching memory plus dirty lines still cached equals lines written.
    #[test]
    fn hierarchy_writeback_conservation(lines in vec(0u64..512, 1..200)) {
        let mut h = tiny_hierarchy();
        let mut written = std::collections::HashSet::new();
        let mut wb = std::collections::HashSet::new();
        for &l in &lines {
            let pa = l * 64;
            written.insert(pa);
            for v in h.access(0, pa, true).mem_writebacks {
                prop_assert!(written.contains(&v), "phantom write-back {v:#x}");
                prop_assert!(wb.insert(v), "double write-back of {v:#x} while clean");
            }
            // A re-written line may legitimately write back again later.
            wb.remove(&pa);
        }
        for v in h.flush_all() {
            prop_assert!(written.contains(&v));
        }
    }

    /// DRAM data-bus occupancy is strictly ordered (completion times may
    /// legitimately reorder: a row hit after a row miss finishes sooner),
    /// and channel bandwidth is never exceeded.
    #[test]
    fn dram_bus_ordered_and_bounded(n in 1u64..500) {
        let mut d = DramModel::new(DramConfig::ddr4_2400_2ch());
        let worst = d.config().t_rp + d.config().t_rcd + d.config().t_cas;
        let mut last = Time::ZERO;
        for i in 0..n {
            let done = d.access(i * 128, Time::ZERO); // one channel
            // Bus grants are FIFO, so completions can only reorder within
            // one worst-case array latency.
            prop_assert!(done + worst >= last);
            last = last.max(done);
        }
        let secs = d.all_idle_at().as_secs_f64();
        let bytes = (n * 64) as f64;
        prop_assert!(bytes / secs <= d.config().channel_bytes_per_sec * 1.001);
    }

    /// Page mapper: distinct pages never collide in their low bits with
    /// their own offsets, and sequential mode is identity-shaped.
    #[test]
    fn sequential_mapper_monotone(pages in 1u64..64) {
        let mut m = PageMapper::sequential();
        let mut last = None;
        for p in 0..pages {
            let pa = m.translate(p * 4096);
            if let Some(prev) = last {
                prop_assert_eq!(pa, prev + 4096);
            }
            last = Some(pa);
        }
    }

    /// Victim addresses reported by a cache always reconstruct to a line
    /// previously inserted (no address corruption in tag math).
    #[test]
    fn victim_reconstruction(addrs in vec(0u64..(1 << 20), 1..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
        let mut seen = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a & !63;
            seen.insert(line);
            if let AccessOutcome::Miss { victim: Some(v) } = c.access(line, true) {
                prop_assert!(seen.contains(&v), "victim {v:#x} never inserted");
            }
        }
    }
}
