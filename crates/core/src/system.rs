//! The end-to-end training-step simulator.
//!
//! Composes the three phase simulators exactly as the paper's evaluation
//! couples gem5 + the NPU simulator + the communication model (§5.1):
//!
//! * NPU forward/backward — `tee-npu` layer engine under the mode's MAC
//!   scheme,
//! * gradient transfer — `tee-comm` protocol (staged vs. direct), with
//!   overlap against the backward phase when the protocol permits,
//! * CPU Adam — `tee-cpu` cacheline-level engine (scaled, then linearly
//!   extrapolated — the phase is bandwidth-bound),
//! * weight transfer — protocol again, overlapping the CPU phase for the
//!   direct protocol (per-tensor pipelining, §4.4).

use crate::config::{SecureMode, SystemConfig};
use tee_comm::protocol::{DirectProtocol, StagingProtocol, TransferBreakdown};
use tee_comm::PcieLink;
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{AdamWorkload, CpuEngine, TeeMode};
use tee_npu::engine::Layer as NpuLayer;
use tee_npu::{MacScheme, NpuEngine};
use tee_sim::Time;
use tee_workloads::layers::LayerSpec;
use tee_workloads::zoo::ModelConfig;
use tee_workloads::StepSchedule;

/// Per-phase breakdown of one training step (Figures 5 and 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBreakdown {
    /// NPU forward + backward.
    pub npu: Time,
    /// CPU optimizer (Adam).
    pub cpu: Time,
    /// Exposed (non-overlapped) weight-transfer time.
    pub comm_w: Time,
    /// Exposed (non-overlapped) gradient-transfer time.
    pub comm_g: Time,
}

impl StepBreakdown {
    /// Total step latency.
    pub fn total(&self) -> Time {
        self.npu + self.cpu + self.comm_w + self.comm_g
    }

    /// Phase fractions `(npu, cpu, comm_w, comm_g)` summing to 1.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().as_ps().max(1) as f64;
        (
            self.npu.as_ps() as f64 / t,
            self.cpu.as_ps() as f64 / t,
            self.comm_w.as_ps() as f64 / t,
            self.comm_g.as_ps() as f64 / t,
        )
    }
}

/// Raw (un-overlapped) transfer costs for one step, used by Figure 21.
#[derive(Debug, Clone, Copy)]
pub struct CommCosts {
    /// Gradient-transfer breakdown.
    pub grad: TransferBreakdown,
    /// Weight-transfer breakdown.
    pub weight: TransferBreakdown,
}

/// The end-to-end system under one security mode.
#[derive(Debug)]
pub struct TrainingSystem {
    cfg: SystemConfig,
    mode: SecureMode,
}

impl TrainingSystem {
    /// Creates a system.
    pub fn new(cfg: SystemConfig, mode: SecureMode) -> Self {
        TrainingSystem { cfg, mode }
    }

    /// The active mode.
    pub fn mode(&self) -> SecureMode {
        self.mode
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn npu_scheme(&self) -> MacScheme {
        match self.mode {
            SecureMode::NonSecure => MacScheme::None,
            // MGX-style: 512 B MAC granularity (§3.2).
            SecureMode::SgxMgx => MacScheme::PerBlock { granularity: 512 },
            SecureMode::TensorTee => MacScheme::TensorDelayed,
        }
    }

    fn cpu_mode(&self) -> TeeMode {
        match self.mode {
            SecureMode::NonSecure => TeeMode::NonSecure,
            SecureMode::SgxMgx => TeeMode::Sgx,
            SecureMode::TensorTee => TeeMode::TensorTee(TenAnalyzerConfig::default()),
        }
    }

    /// Converts workload layer specs into NPU engine layers.
    fn npu_layers(specs: &[LayerSpec]) -> Vec<NpuLayer> {
        specs
            .iter()
            .map(|l| NpuLayer {
                macs: l.macs,
                in_bytes: l.in_bytes,
                w_bytes: l.w_bytes,
                out_bytes: l.out_bytes,
            })
            .collect()
    }

    /// Simulates the NPU forward+backward phase (unscaled — analytic).
    pub fn npu_time(&self, schedule: &StepSchedule) -> Time {
        let engine = NpuEngine::new(self.cfg.npu.clone(), self.npu_scheme());
        engine.run(&Self::npu_layers(&schedule.npu_layers)).total
    }

    /// Simulates the CPU Adam phase: runs the scaled cacheline-level
    /// engine to steady state and extrapolates linearly.
    pub fn cpu_time(&self, schedule: &StepSchedule) -> Time {
        let scaled = schedule.scaled(self.cfg.sim_scale);
        let workload = AdamWorkload::from_tensor_sizes(&scaled.adam_tensor_sizes);
        let mut engine = CpuEngine::new(self.cfg.cpu.clone(), self.cpu_mode());
        if matches!(self.mode, SecureMode::TensorTee) {
            // Transfer instructions preload the Meta Table (§4.2), so the
            // collaborative steady state has no detection warm-up.
            let descs: Vec<tee_cpu::TensorDesc> = workload
                .tensors
                .iter()
                .flat_map(|s| [s.w, s.g, s.m, s.v])
                .collect();
            engine.preload_tensors(&descs);
        }
        let report = engine.run_adam(&workload, self.cfg.cpu_threads, self.cfg.cpu_iterations);
        let steady = report
            .iterations
            .last()
            .map(|i| i.latency)
            .unwrap_or(Time::ZERO);
        // Extrapolate by the *actual* byte ratio: small tensors are
        // clamped during scaling, so the realized scale can be far below
        // `sim_scale` (the phase is bandwidth-bound, hence linear).
        let ratio = schedule.adam_bytes() as f64 / scaled.adam_bytes().max(1) as f64;
        Time::from_secs_f64(steady.as_secs_f64() * ratio)
    }

    /// Raw transfer costs under this mode's protocol (no overlap applied).
    pub fn comm_costs(&self, schedule: &StepSchedule) -> CommCosts {
        match self.mode {
            SecureMode::SgxMgx => {
                let mut p = StagingProtocol::new();
                let grad = p.transfer(Time::ZERO, schedule.grad_bytes);
                let mut p2 = StagingProtocol::new();
                let weight = p2.transfer(Time::ZERO, schedule.weight_bytes);
                CommCosts { grad, weight }
            }
            SecureMode::TensorTee => {
                let mut p = DirectProtocol::new();
                let grad = p.transfer(Time::ZERO, schedule.grad_bytes);
                let mut p2 = DirectProtocol::new();
                let weight = p2.transfer(Time::ZERO, schedule.weight_bytes);
                CommCosts { grad, weight }
            }
            SecureMode::NonSecure => {
                let plain = |bytes: u64| TransferBreakdown {
                    re_encryption: Time::ZERO,
                    comm: PcieLink::gen4_x16().transfer(Time::ZERO, bytes),
                    decryption: Time::ZERO,
                };
                CommCosts {
                    grad: plain(schedule.grad_bytes),
                    weight: plain(schedule.weight_bytes),
                }
            }
        }
    }

    /// Whether this mode's transfers overlap computation.
    fn overlaps(&self) -> bool {
        // The staging protocol serializes against compute (AES/DRAM
        // contention, §3.3). Plain (non-secure) DMA and the direct
        // protocol overlap.
        !matches!(self.mode, SecureMode::SgxMgx)
    }

    /// Simulates one full training step of `model`.
    pub fn simulate_step(&mut self, model: &ModelConfig) -> StepBreakdown {
        let schedule = StepSchedule::of(model);
        self.simulate_schedule(&schedule)
    }

    /// Simulates one step from an explicit schedule (tests use scaled
    /// schedules).
    pub fn simulate_schedule(&mut self, schedule: &StepSchedule) -> StepBreakdown {
        let npu = self.npu_time(schedule);
        let cpu = self.cpu_time(schedule);
        let comm = self.comm_costs(schedule);
        let (comm_g, comm_w) = if self.overlaps() {
            // Gradients hide behind the backward ~2/3 of the NPU phase;
            // weights pipeline behind the CPU optimizer (§4.4, Figure 15).
            let bwd_window = Time::from_ps(npu.as_ps() * 2 / 3);
            let g = comm.grad.total().saturating_sub(bwd_window);
            let w = comm.weight.total().saturating_sub(cpu);
            (g, w)
        } else {
            (comm.grad.total(), comm.weight.total())
        };
        StepBreakdown {
            npu,
            cpu,
            comm_w,
            comm_g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_workloads::zoo::by_name;

    fn fast() -> SystemConfig {
        SystemConfig::fast_sim()
    }

    #[test]
    fn tensortee_beats_sgx_mgx() {
        let model = by_name("GPT2-M").unwrap();
        let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&model);
        let speedup = base.total().as_secs_f64() / ours.total().as_secs_f64();
        assert!(speedup > 1.5, "expected a clear win, got {speedup:.2}x");
    }

    #[test]
    fn tensortee_close_to_non_secure() {
        let model = by_name("GPT2-M").unwrap();
        let ns = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&model);
        let overhead = ours.total().as_secs_f64() / ns.total().as_secs_f64() - 1.0;
        assert!(
            overhead < 0.20,
            "TensorTEE should be near non-secure (paper: 2.1%), got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn sgx_mgx_comm_dominates() {
        // Figure 5: communication grows from ~12% to ~50%+ under SGX+MGX.
        let model = by_name("GPT2-M").unwrap();
        let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let (_, _, w, g) = base.fractions();
        assert!(
            w + g > 0.3,
            "staged communication should dominate: {:.2}",
            w + g
        );
        let ns = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let (_, _, w_ns, g_ns) = ns.fractions();
        assert!(w_ns + g_ns < w + g, "non-secure comm share is smaller");
    }

    #[test]
    fn fractions_sum_to_one() {
        let model = by_name("GPT").unwrap();
        let b = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let (a, c, w, g) = b.fractions();
        assert!((a + c + w + g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_grows_with_model_size() {
        // Figure 16's trend: larger models benefit more.
        let small = by_name("GPT").unwrap();
        let large = by_name("OPT-2.7B").unwrap();
        let speedup = |m| {
            let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&m);
            let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&m);
            base.total().as_secs_f64() / ours.total().as_secs_f64()
        };
        let s_small = speedup(small);
        let s_large = speedup(large);
        assert!(
            s_large > s_small,
            "speedup should grow with model size: {s_small:.2} -> {s_large:.2}"
        );
    }
}
