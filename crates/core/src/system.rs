//! The end-to-end training-step simulator.
//!
//! Composes the three phase simulators exactly as the paper's evaluation
//! couples gem5 + the NPU simulator + the communication model (§5.1):
//!
//! * NPU forward/backward — `tee-npu` layer engine under the mode's MAC
//!   scheme,
//! * gradient transfer — `tee-comm` protocol (staged vs. direct), with
//!   overlap against the backward phase when the protocol permits,
//! * CPU Adam — `tee-cpu` cacheline-level engine (scaled, then linearly
//!   extrapolated — the phase is bandwidth-bound),
//! * weight transfer — protocol again, overlapping the CPU phase for the
//!   direct protocol (per-tensor pipelining, §4.4).
//!
//! [`ClusterSystem`] extends the composition to N-way data parallelism:
//! it fans one [`StepSchedule`] out over N lockstep NPU replicas, swaps
//! the single backward's gradient production for a secure ring all-reduce
//! ([`tee_comm::ring`]) and accounts the collective as its own `comm_ar`
//! phase in [`ClusterStepBreakdown`]. A one-replica cluster reproduces
//! [`TrainingSystem`] bit-for-bit.

use crate::config::{ClusterConfig, SecureMode, SystemConfig};
use crate::report::PhaseLedger;
use tee_comm::protocol::{DirectProtocol, StagingProtocol, TransferBreakdown};
use tee_comm::ring::{AllReduceBreakdown, RingAllReduce};
use tee_comm::schedule::exposed_time;
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{AdamWorkload, CpuEngine, TeeMode};
use tee_npu::engine::Layer as NpuLayer;
use tee_npu::{MacScheme, NpuEngine};
use tee_sim::Time;
use tee_workloads::layers::LayerSpec;
use tee_workloads::zoo::ModelConfig;
use tee_workloads::StepSchedule;

/// Per-phase breakdown of one training step (Figures 5 and 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBreakdown {
    /// NPU forward + backward.
    pub npu: Time,
    /// CPU optimizer (Adam).
    pub cpu: Time,
    /// Exposed (non-overlapped) weight-transfer time.
    pub comm_w: Time,
    /// Exposed (non-overlapped) gradient-transfer time.
    pub comm_g: Time,
}

impl StepBreakdown {
    /// The phase labels, in ledger/report order.
    pub const PHASES: [&'static str; 4] = ["NPU", "CPU", "Comm W", "Comm G"];

    /// The ordered phase ledger behind this breakdown; `total()` and
    /// `fractions()` delegate here, and [`crate::report::Report`] ingests
    /// it directly.
    pub fn ledger(&self) -> PhaseLedger {
        PhaseLedger::from_entries([
            (Self::PHASES[0], self.npu),
            (Self::PHASES[1], self.cpu),
            (Self::PHASES[2], self.comm_w),
            (Self::PHASES[3], self.comm_g),
        ])
    }

    /// Total step latency.
    pub fn total(&self) -> Time {
        self.ledger().total()
    }

    /// Phase fractions `(npu, cpu, comm_w, comm_g)` summing to 1.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let f = self.ledger().fractions();
        (f[0].1, f[1].1, f[2].1, f[3].1)
    }
}

/// Raw (un-overlapped) transfer costs for one step, used by Figure 21.
#[derive(Debug, Clone, Copy)]
pub struct CommCosts {
    /// Gradient-transfer breakdown.
    pub grad: TransferBreakdown,
    /// Weight-transfer breakdown.
    pub weight: TransferBreakdown,
}

/// The end-to-end system under one security mode.
#[derive(Debug)]
pub struct TrainingSystem {
    cfg: SystemConfig,
    mode: SecureMode,
}

impl TrainingSystem {
    /// Creates a system.
    pub fn new(cfg: SystemConfig, mode: SecureMode) -> Self {
        TrainingSystem { cfg, mode }
    }

    /// The active mode.
    pub fn mode(&self) -> SecureMode {
        self.mode
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn npu_scheme(&self) -> MacScheme {
        match self.mode {
            SecureMode::NonSecure => MacScheme::None,
            // MGX-style coarse MAC blocks (§3.2; Table 1 uses 512 B — the
            // granularity is a design-space knob).
            SecureMode::SgxMgx => MacScheme::PerBlock {
                granularity: self.cfg.mgx_mac_granularity,
            },
            SecureMode::TensorTee => MacScheme::TensorDelayed,
        }
    }

    fn cpu_mode(&self) -> TeeMode {
        match self.mode {
            SecureMode::NonSecure => TeeMode::NonSecure,
            SecureMode::SgxMgx => TeeMode::Sgx,
            SecureMode::TensorTee => TeeMode::TensorTee(TenAnalyzerConfig::default()),
        }
    }

    /// Converts workload layer specs into NPU engine layers.
    fn npu_layers(specs: &[LayerSpec]) -> Vec<NpuLayer> {
        specs
            .iter()
            .map(|l| NpuLayer {
                macs: l.macs,
                in_bytes: l.in_bytes,
                w_bytes: l.w_bytes,
                out_bytes: l.out_bytes,
            })
            .collect()
    }

    /// Simulates the NPU forward+backward phase (unscaled — analytic).
    pub fn npu_time(&self, schedule: &StepSchedule) -> Time {
        self.npu_report(schedule).total
    }

    /// The full NPU-engine report for the forward+backward phase — the
    /// design-space explorer reads `verify_stall` off it for the
    /// crypto-overhead objective.
    pub fn npu_report(&self, schedule: &StepSchedule) -> tee_npu::engine::NpuRunReport {
        let engine = NpuEngine::new(self.cfg.npu.clone(), self.npu_scheme());
        engine.run(&Self::npu_layers(&schedule.npu_layers))
    }

    /// Simulates the CPU Adam phase: runs the scaled cacheline-level
    /// engine to steady state and extrapolates linearly.
    pub fn cpu_time(&self, schedule: &StepSchedule) -> Time {
        let scaled = schedule.scaled(self.cfg.sim_scale);
        let workload = AdamWorkload::from_tensor_sizes(&scaled.adam_tensor_sizes);
        let mut engine = CpuEngine::new(self.cfg.cpu.clone(), self.cpu_mode());
        if matches!(self.mode, SecureMode::TensorTee) {
            // Transfer instructions preload the Meta Table (§4.2), so the
            // collaborative steady state has no detection warm-up.
            let descs: Vec<tee_cpu::TensorDesc> = workload
                .tensors
                .iter()
                .flat_map(|s| [s.w, s.g, s.m, s.v])
                .collect();
            engine.preload_tensors(&descs);
        }
        let report = engine.run_adam(&workload, self.cfg.cpu_threads, self.cfg.cpu_iterations);
        let steady = report
            .iterations
            .last()
            .map(|i| i.latency)
            .unwrap_or(Time::ZERO);
        // Extrapolate by the *actual* byte ratio: small tensors are
        // clamped during scaling, so the realized scale can be far below
        // `sim_scale` (the phase is bandwidth-bound, hence linear).
        let ratio = schedule.adam_bytes() as f64 / scaled.adam_bytes().max(1) as f64;
        Time::from_secs_f64(steady.as_secs_f64() * ratio)
    }

    /// Raw transfer costs under this mode's protocol (no overlap
    /// applied). The protocols run on the configuration's CPU↔NPU link
    /// ([`SystemConfig::pcie_link`]) so the bus bandwidth is a
    /// design-space knob; the Table-1 default reproduces the Gen4-×16
    /// numbers bit-for-bit.
    pub fn comm_costs(&self, schedule: &StepSchedule) -> CommCosts {
        match self.mode {
            SecureMode::SgxMgx => {
                let mut p = StagingProtocol::on_link(self.cfg.pcie_link());
                let grad = p.transfer(Time::ZERO, schedule.grad_bytes);
                let mut p2 = StagingProtocol::on_link(self.cfg.pcie_link());
                let weight = p2.transfer(Time::ZERO, schedule.weight_bytes);
                CommCosts { grad, weight }
            }
            SecureMode::TensorTee => {
                let mut p = DirectProtocol::on_link(self.cfg.pcie_link());
                let grad = p.transfer(Time::ZERO, schedule.grad_bytes);
                let mut p2 = DirectProtocol::on_link(self.cfg.pcie_link());
                let weight = p2.transfer(Time::ZERO, schedule.weight_bytes);
                CommCosts { grad, weight }
            }
            SecureMode::NonSecure => {
                let plain = |bytes: u64| TransferBreakdown {
                    re_encryption: Time::ZERO,
                    comm: self.cfg.pcie_link().transfer(Time::ZERO, bytes),
                    decryption: Time::ZERO,
                };
                CommCosts {
                    grad: plain(schedule.grad_bytes),
                    weight: plain(schedule.weight_bytes),
                }
            }
        }
    }

    /// Whether this mode's transfers overlap computation (shared with the
    /// discrete-event engine so both paths apply one overlap policy).
    pub(crate) fn overlaps(&self) -> bool {
        // The staging protocol serializes against compute (AES/DRAM
        // contention, §3.3). Plain (non-secure) DMA and the direct
        // protocol overlap.
        !matches!(self.mode, SecureMode::SgxMgx)
    }

    /// Simulates one full training step of `model`.
    pub fn simulate_step(&mut self, model: &ModelConfig) -> StepBreakdown {
        let schedule = StepSchedule::of(model);
        self.simulate_schedule(&schedule)
    }

    /// Simulates one step from an explicit schedule (tests use scaled
    /// schedules).
    pub fn simulate_schedule(&mut self, schedule: &StepSchedule) -> StepBreakdown {
        let cpu = self.cpu_time(schedule);
        self.simulate_schedule_with_cpu_time(schedule, cpu)
    }

    /// [`Self::simulate_schedule`] with the CPU Adam phase supplied by
    /// the caller. The cacheline-level CPU simulation dominates a step's
    /// wall-clock but depends only on `(cpu config, mode, model)` — the
    /// design-space explorer computes it once per `(model, mode)` pair
    /// and re-prices the NPU/transfer phases per point.
    pub fn simulate_schedule_with_cpu_time(
        &mut self,
        schedule: &StepSchedule,
        cpu: Time,
    ) -> StepBreakdown {
        let npu = self.npu_time(schedule);
        let comm = self.comm_costs(schedule);
        self.compose_step(npu, cpu, &comm)
    }

    /// Composes a step breakdown from already-priced phases — the single
    /// place the mode's overlap policy is applied. Callers that need the
    /// phase components anyway (the design-space explorer reads
    /// `verify_stall` and the transfer crypto terms) price them once and
    /// compose here instead of paying the NPU engine and the protocols a
    /// second time inside [`Self::simulate_schedule_with_cpu_time`].
    pub fn compose_step(&self, npu: Time, cpu: Time, comm: &CommCosts) -> StepBreakdown {
        let (comm_g, comm_w) = if self.overlaps() {
            // Gradients hide behind the backward ~2/3 of the NPU phase;
            // weights pipeline behind the CPU optimizer (§4.4, Figure 15).
            let bwd_window = Time::from_ps(npu.as_ps() * 2 / 3);
            let g = exposed_time(bwd_window, comm.grad.total());
            let w = exposed_time(cpu, comm.weight.total());
            (g, w)
        } else {
            (comm.grad.total(), comm.weight.total())
        };
        StepBreakdown {
            npu,
            cpu,
            comm_w,
            comm_g,
        }
    }

    /// The NPU MAC scheme this mode runs under (the design-space
    /// explorer reads its traffic overhead for the crypto objective).
    pub fn mac_scheme(&self) -> MacScheme {
        self.npu_scheme()
    }
}

/// Per-phase breakdown of one data-parallel training step: the
/// [`StepBreakdown`] phases plus the exposed ring all-reduce time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStepBreakdown {
    /// Per-replica NPU forward + backward (replicas run in lockstep).
    pub npu: Time,
    /// CPU optimizer (Adam) on the reduced gradients.
    pub cpu: Time,
    /// Exposed (non-overlapped) weight-transfer time.
    pub comm_w: Time,
    /// Exposed (non-overlapped) gradient NPU→CPU transfer time.
    pub comm_g: Time,
    /// Exposed (non-overlapped) ring all-reduce time.
    pub comm_ar: Time,
}

impl ClusterStepBreakdown {
    /// The phase labels, in ledger/report order: the single-system phases
    /// plus the ring all-reduce.
    pub const PHASES: [&'static str; 5] = ["NPU", "CPU", "Comm W", "Comm G", "Comm AR"];

    /// The ordered phase ledger behind this breakdown; `total()` and
    /// `fractions()` delegate here, and [`crate::report::Report`] ingests
    /// it directly.
    pub fn ledger(&self) -> PhaseLedger {
        PhaseLedger::from_entries([
            (Self::PHASES[0], self.npu),
            (Self::PHASES[1], self.cpu),
            (Self::PHASES[2], self.comm_w),
            (Self::PHASES[3], self.comm_g),
            (Self::PHASES[4], self.comm_ar),
        ])
    }

    /// Total step latency.
    pub fn total(&self) -> Time {
        self.ledger().total()
    }

    /// Phase fractions `(npu, cpu, comm_w, comm_g, comm_ar)` summing to 1.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let f = self.ledger().fractions();
        (f[0].1, f[1].1, f[2].1, f[3].1, f[4].1)
    }

    /// Fraction of the step spent on exposed communication
    /// (`comm_w + comm_g + comm_ar`) — the strong-scaling bottleneck
    /// metric of the `scaling_1_2_4_8` bench.
    pub fn exposed_comm_fraction(&self) -> f64 {
        let (_, _, w, g, ar) = self.fractions();
        w + g + ar
    }

    /// The single-system view of this step (drops `comm_ar`); for a
    /// one-replica cluster this *is* the [`TrainingSystem`] breakdown.
    pub fn single(&self) -> StepBreakdown {
        StepBreakdown {
            npu: self.npu,
            cpu: self.cpu,
            comm_w: self.comm_w,
            comm_g: self.comm_g,
        }
    }
}

/// N-way data-parallel training: one CPU TEE, N lockstep NPU TEEs, and a
/// secure ring all-reduce for gradient aggregation.
///
/// The composition per step:
///
/// 1. every replica runs forward + backward on its `1/N` batch shard
///    (same wall-clock on a homogeneous cluster),
/// 2. gradients ring-all-reduce across the NPUs under the mode's protocol
///    ([`RingAllReduce::staged`] vs [`RingAllReduce::direct`]); the direct
///    protocol overlaps the backward window, the staging protocol
///    serializes (§3.3),
/// 3. the reduced fp32 gradient shards stream NPU → CPU (each rank sends
///    its shard, so the CPU link still carries exactly `grad_bytes`),
/// 4. the CPU runs Adam on the reduced gradients — optimizer state is not
///    replicated, so this phase is independent of N,
/// 5. fp16 weights stream CPU → NPU, then re-broadcast over the ring
///    pipelined with the CPU→NPU stream: the weight path costs the
///    *slower* of the two traversals ([`RingAllReduce::broadcast_plain`]
///    and friends), which collapses to today's CPU-link cost whenever the
///    ring is at least as fast — and surfaces the fabric as the
///    bottleneck when it is not (e.g. a slow `Interconnect::Custom`).
#[derive(Debug)]
pub struct ClusterSystem {
    sys: TrainingSystem,
    cluster: ClusterConfig,
}

impl ClusterSystem {
    /// Creates a cluster system.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has zero NPUs.
    pub fn new(cfg: SystemConfig, cluster: ClusterConfig, mode: SecureMode) -> Self {
        assert!(cluster.n_npus > 0, "a cluster needs at least one NPU");
        ClusterSystem {
            sys: TrainingSystem::new(cfg, mode),
            cluster,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> SecureMode {
        self.sys.mode()
    }

    /// The per-node configuration.
    pub fn config(&self) -> &SystemConfig {
        self.sys.config()
    }

    /// The cluster shape.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Cost of ring-all-reducing `grad_bytes` under this mode's protocol.
    pub fn all_reduce_cost(&self, grad_bytes: u64) -> AllReduceBreakdown {
        let ring = RingAllReduce::new(self.cluster.n_npus, self.cluster.interconnect);
        match self.mode() {
            SecureMode::NonSecure => ring.plain(grad_bytes),
            SecureMode::SgxMgx => ring.staged(grad_bytes),
            SecureMode::TensorTee => ring.direct(grad_bytes),
        }
    }

    /// Cost of re-broadcasting the `weight_bytes` fp16 update from the
    /// CPU-attached rank to the other replicas (pipelined ring traversal;
    /// zero for a single replica).
    pub fn weight_broadcast_cost(&self, weight_bytes: u64) -> Time {
        let ring = RingAllReduce::new(self.cluster.n_npus, self.cluster.interconnect);
        match self.mode() {
            SecureMode::NonSecure => ring.broadcast_plain(weight_bytes),
            SecureMode::SgxMgx => ring.broadcast_staged(weight_bytes),
            SecureMode::TensorTee => ring.broadcast_direct(weight_bytes),
        }
        .total()
    }

    /// Simulates one full data-parallel training step of `model`.
    pub fn simulate_step(&mut self, model: &ModelConfig) -> ClusterStepBreakdown {
        let schedule = StepSchedule::of(model);
        self.simulate_schedule(&schedule)
    }

    /// Simulates one step from an explicit (global-batch) schedule.
    pub fn simulate_schedule(&mut self, schedule: &StepSchedule) -> ClusterStepBreakdown {
        let replica = schedule.data_parallel_replica(self.cluster.n_npus);
        let cpu = self.sys.cpu_time(&replica);
        self.simulate_with_cpu_time(schedule, cpu)
    }

    /// [`Self::simulate_schedule`] with the CPU Adam phase supplied by
    /// the caller (see
    /// [`TrainingSystem::simulate_schedule_with_cpu_time`]; the optimizer
    /// runs on the reduced gradients, so its cost is independent of the
    /// replica count).
    pub fn simulate_with_cpu_time(
        &mut self,
        schedule: &StepSchedule,
        cpu: Time,
    ) -> ClusterStepBreakdown {
        let replica = schedule.data_parallel_replica(self.cluster.n_npus);
        let npu = self.sys.npu_time(&replica);
        let comm = self.sys.comm_costs(&replica);
        let ar = self.all_reduce_cost(replica.grad_bytes);
        let bcast = self.weight_broadcast_cost(replica.weight_bytes);
        self.compose_step(npu, cpu, &comm, &ar, bcast)
    }

    /// Composes a cluster step from already-priced phases (the replica
    /// transfers, the ring collective, and the weight re-broadcast) —
    /// the cluster analogue of [`TrainingSystem::compose_step`].
    pub fn compose_step(
        &self,
        npu: Time,
        cpu: Time,
        comm: &CommCosts,
        ar: &AllReduceBreakdown,
        weight_broadcast: Time,
    ) -> ClusterStepBreakdown {
        // The ring re-broadcast pipelines with the CPU→NPU weight stream,
        // so the weight path is bounded by the slower traversal.
        let weight_path = comm.weight.total().max(weight_broadcast);
        let (comm_ar, comm_g, comm_w) = if self.sys.overlaps() {
            // The all-reduce starts as backward produces gradient buckets,
            // hiding in the same ~2/3 backward window the point-to-point
            // transfer used; the reduced-shard NPU→CPU stream then hides
            // in whatever window remains (§4.4, Figure 15).
            let bwd_window = Time::from_ps(npu.as_ps() * 2 / 3);
            let ar_exposed = exposed_time(bwd_window, ar.total());
            let window_left = bwd_window.saturating_sub(ar.total());
            let g = exposed_time(window_left, comm.grad.total());
            let w = exposed_time(cpu, weight_path);
            (ar_exposed, g, w)
        } else {
            (ar.total(), comm.grad.total(), weight_path)
        };
        ClusterStepBreakdown {
            npu,
            cpu,
            comm_w,
            comm_g,
            comm_ar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_workloads::zoo::by_name;

    fn fast() -> SystemConfig {
        SystemConfig::fast_sim()
    }

    #[test]
    fn tensortee_beats_sgx_mgx() {
        let model = by_name("GPT2-M").unwrap();
        let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&model);
        let speedup = base.total().as_secs_f64() / ours.total().as_secs_f64();
        assert!(speedup > 1.5, "expected a clear win, got {speedup:.2}x");
    }

    #[test]
    fn tensortee_close_to_non_secure() {
        let model = by_name("GPT2-M").unwrap();
        let ns = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&model);
        let overhead = ours.total().as_secs_f64() / ns.total().as_secs_f64() - 1.0;
        assert!(
            overhead < 0.20,
            "TensorTEE should be near non-secure (paper: 2.1%), got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn sgx_mgx_comm_dominates() {
        // Figure 5: communication grows from ~12% to ~50%+ under SGX+MGX.
        let model = by_name("GPT2-M").unwrap();
        let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let (_, _, w, g) = base.fractions();
        assert!(
            w + g > 0.3,
            "staged communication should dominate: {:.2}",
            w + g
        );
        let ns = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let (_, _, w_ns, g_ns) = ns.fractions();
        assert!(w_ns + g_ns < w + g, "non-secure comm share is smaller");
    }

    #[test]
    fn fractions_sum_to_one() {
        let model = by_name("GPT").unwrap();
        let b = TrainingSystem::new(fast(), SecureMode::NonSecure).simulate_step(&model);
        let (a, c, w, g) = b.fractions();
        assert!((a + c + w + g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_replica_cluster_matches_single_system() {
        // The N=1 cluster must reproduce TrainingSystem bit-for-bit in
        // every mode, with a zero all-reduce phase.
        let model = by_name("GPT").unwrap();
        for mode in SecureMode::all() {
            let single = TrainingSystem::new(fast(), mode).simulate_step(&model);
            let cluster =
                ClusterSystem::new(fast(), ClusterConfig::single(), mode).simulate_step(&model);
            assert_eq!(cluster.comm_ar, Time::ZERO, "{}", mode.label());
            assert_eq!(cluster.single(), single, "{}", mode.label());
        }
    }

    #[test]
    fn cluster_fractions_sum_to_one() {
        let model = by_name("GPT").unwrap();
        let b = ClusterSystem::new(fast(), ClusterConfig::of(4), SecureMode::TensorTee)
            .simulate_step(&model);
        let (n, c, w, g, ar) = b.fractions();
        assert!((n + c + w + g + ar - 1.0).abs() < 1e-9);
        assert!((b.exposed_comm_fraction() - (w + g + ar)).abs() < 1e-12);
    }

    #[test]
    fn ledger_matches_fields_bit_for_bit() {
        // The shared PhaseLedger must reproduce the hand-summed totals
        // exactly (same Time addition, same order).
        let model = by_name("GPT2-M").unwrap();
        let b = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let l = b.ledger();
        assert_eq!(l.total(), b.npu + b.cpu + b.comm_w + b.comm_g);
        assert_eq!(l.get("NPU"), Some(b.npu));
        assert_eq!(l.entries().len(), StepBreakdown::PHASES.len());
        let c = ClusterSystem::new(fast(), ClusterConfig::of(4), SecureMode::SgxMgx)
            .simulate_step(&model);
        let cl = c.ledger();
        assert_eq!(cl.total(), c.npu + c.cpu + c.comm_w + c.comm_g + c.comm_ar);
        assert_eq!(cl.get("Comm AR"), Some(c.comm_ar));
        // A one-replica cluster's ledger is the single-system ledger plus
        // a zero all-reduce entry.
        let one = ClusterSystem::new(fast(), ClusterConfig::single(), SecureMode::SgxMgx)
            .simulate_step(&model);
        assert_eq!(
            one.single().ledger().total() + one.comm_ar,
            one.ledger().total()
        );
    }

    #[test]
    fn supplied_cpu_time_reproduces_the_step_bit_for_bit() {
        // The explorer's (model, mode)-cached CPU phase must compose into
        // exactly the same breakdown as the all-in-one path.
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        for mode in SecureMode::all() {
            let mut sys = TrainingSystem::new(fast(), mode);
            let cpu = sys.cpu_time(&schedule);
            let direct = sys.simulate_schedule(&schedule);
            let composed = sys.simulate_schedule_with_cpu_time(&schedule, cpu);
            assert_eq!(direct, composed, "{}", mode.label());
            // Composing from separately priced components (the
            // explorer's path) is also bit-for-bit identical.
            let composed_parts = {
                let sys = TrainingSystem::new(fast(), mode);
                sys.compose_step(
                    sys.npu_report(&schedule).total,
                    cpu,
                    &sys.comm_costs(&schedule),
                )
            };
            assert_eq!(direct, composed_parts, "{}", mode.label());
            let mut cluster = ClusterSystem::new(fast(), ClusterConfig::of(4), mode);
            let replica = schedule.data_parallel_replica(4);
            let cpu = TrainingSystem::new(fast(), mode).cpu_time(&replica);
            let via_sim = cluster.simulate_schedule(&schedule);
            assert_eq!(
                via_sim,
                cluster.simulate_with_cpu_time(&schedule, cpu),
                "{}",
                mode.label()
            );
            let inner = TrainingSystem::new(fast(), mode);
            let ar = cluster.all_reduce_cost(replica.grad_bytes);
            let bcast = cluster.weight_broadcast_cost(replica.weight_bytes);
            assert_eq!(
                via_sim,
                cluster.compose_step(
                    inner.npu_report(&replica).total,
                    cpu,
                    &inner.comm_costs(&replica),
                    &ar,
                    bcast
                ),
                "{}",
                mode.label()
            );
        }
    }

    #[test]
    fn pcie_and_mac_granularity_knobs_move_the_step() {
        let model = by_name("GPT2-M").unwrap();
        // Halving the bus bandwidth slows the staged (serialized) step.
        let mut slow_bus = fast();
        slow_bus.pcie_bytes_per_sec /= 2.0;
        let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&model);
        let slowed = TrainingSystem::new(slow_bus, SecureMode::SgxMgx).simulate_step(&model);
        assert!(slowed.total() > base.total());
        // A coarser MGX MAC block stalls the NPU verify pipeline harder.
        let mut coarse = fast();
        coarse.mgx_mac_granularity = 4096;
        let stalled = TrainingSystem::new(coarse, SecureMode::SgxMgx).simulate_step(&model);
        assert!(stalled.npu > base.npu, "{} vs {}", stalled.npu, base.npu);
        // Neither knob touches the other modes' NPU phase.
        let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&model);
        let mut both = fast();
        both.mgx_mac_granularity = 4096;
        let ours_knobbed = TrainingSystem::new(both, SecureMode::TensorTee).simulate_step(&model);
        assert_eq!(ours.npu, ours_knobbed.npu);
    }

    #[test]
    fn speedup_grows_with_model_size() {
        // Figure 16's trend: larger models benefit more.
        let small = by_name("GPT").unwrap();
        let large = by_name("OPT-2.7B").unwrap();
        let speedup = |m| {
            let base = TrainingSystem::new(fast(), SecureMode::SgxMgx).simulate_step(&m);
            let ours = TrainingSystem::new(fast(), SecureMode::TensorTee).simulate_step(&m);
            base.total().as_secs_f64() / ours.total().as_secs_f64()
        };
        let s_small = speedup(small);
        let s_large = speedup(large);
        assert!(
            s_large > s_small,
            "speedup should grow with model size: {s_small:.2} -> {s_large:.2}"
        );
    }
}
