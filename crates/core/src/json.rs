//! Hand-rolled JSON writing and well-formedness checking.
//!
//! The vendored `serde` stand-in only provides no-op derives (the build
//! environment has no network access), so the [`crate::report::Report`]
//! JSON export is written by hand: a small ordered [`Json`] value type, a
//! writer that follows RFC 8259 (string escaping, `null` for non-finite
//! floats), and a validator the CLI smoke tests use to keep the emitted
//! bytes honest without a full parser dependency.

use std::fmt;

/// An owned JSON value.
///
/// Object keys keep insertion order so two identical [`Json`] trees always
/// serialize to identical bytes (the registry determinism invariant).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point.
    Int(i64),
    /// A float, printed with enough digits to round-trip; non-finite
    /// values (NaN, ±inf) have no JSON representation and are normalized
    /// to `null`.
    Float(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Appends the compact serialization to `out` (the `Display` impl —
    /// and therefore `.to_string()` — goes through this).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact (no-whitespace) JSON serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a float as a JSON number.
///
/// Finite values use Rust's shortest round-trip formatting, forced to keep
/// a decimal point (`3` prints as `3.0`) so readers can tell metric floats
/// from counts. NaN and ±infinity are normalized to `null` — JSON has no
/// spelling for them, and a crashing exporter is worse than an absent
/// metric.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes `s` as a quoted JSON string, escaping `"` and `\`, the short
/// forms `\n` `\r` `\t`, and all other control characters as `\u00XX`.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `s` is one well-formed JSON value (with optional
/// surrounding whitespace).
///
/// This is a structural validator, not a parser: it verifies string
/// escapes, number syntax, and bracket/comma/colon structure, which is
/// exactly what the CI smoke test needs to assert about the CLI's
/// `--json` output.
pub fn is_well_formed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !check_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn check_value(b: &[u8], pos: &mut usize) -> bool {
    match b.get(*pos) {
        Some(b'{') => check_object(b, pos),
        Some(b'[') => check_array(b, pos),
        Some(b'"') => check_string(b, pos),
        Some(b't') => check_lit(b, pos, b"true"),
        Some(b'f') => check_lit(b, pos, b"false"),
        Some(b'n') => check_lit(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => check_number(b, pos),
        _ => false,
    }
}

fn check_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn check_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !check_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        skip_ws(b, pos);
        if !check_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn check_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !check_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn check_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6);
                    match hex {
                        Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                        _ => return false,
                    }
                }
                _ => return false,
            },
            0x00..=0x1f => return false, // raw control char
            _ => *pos += 1,
        }
    }
    false
}

fn check_number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: `0` or a nonzero digit followed by digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::Int(-42).to_string(), "-42");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn integers_and_floats_format_distinctly() {
        // Int never grows a decimal point; Float always keeps one so a
        // reader can tell a count from a metric.
        assert_eq!(Json::Int(3).to_string(), "3");
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(-0.25).to_string(), "-0.25");
        // Shortest round-trip formatting, not fixed precision.
        assert_eq!(Json::Float(0.1).to_string(), "0.1");
        let tiny = Json::Float(1e-300).to_string();
        assert!(tiny.parse::<f64>().unwrap() == 1e-300, "{tiny}");
    }

    #[test]
    fn non_finite_floats_normalize_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_string(), "null");
        // Inside containers too.
        let arr = Json::Array(vec![Json::Float(f64::NAN), Json::Int(1)]);
        assert_eq!(arr.to_string(), "[null,1]");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b").to_string(), r#""a\"b""#);
        assert_eq!(Json::str("a\\b").to_string(), r#""a\\b""#);
        assert_eq!(Json::str("a\nb\tc\rd").to_string(), r#""a\nb\tc\rd""#);
        assert_eq!(Json::str("\u{1}\u{1f}").to_string(), r#""\u0001\u001f""#);
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(Json::str("§6.2 — 2×").to_string(), "\"§6.2 — 2×\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::object([
            ("b", Json::Int(1)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[null,false]}"#);
        assert_eq!(Json::Array(vec![]).to_string(), "[]");
        assert_eq!(Json::Object(vec![]).to_string(), "{}");
    }

    #[test]
    fn writer_output_is_well_formed() {
        let v = Json::object([
            ("title", Json::str("quote \" backslash \\ newline \n")),
            ("metrics", Json::object([("x", Json::Float(1.25))])),
            ("nan", Json::Float(f64::NAN)),
            (
                "rows",
                Json::Array(vec![Json::Int(0), Json::Float(2.0), Json::str("§")]),
            ),
        ]);
        assert!(is_well_formed(&v.to_string()));
    }

    #[test]
    fn validator_accepts_valid() {
        for s in [
            "null",
            " true ",
            "-12.5e+3",
            "0",
            "[]",
            "{}",
            r#"{"a":[1,2,{"b":null}],"c":"d\u00e9"}"#,
            "[1, 2 , 3]",
        ] {
            assert!(is_well_formed(s), "{s}");
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for s in [
            "",
            "nul",
            "01",        // leading zero
            "1.",        // bare decimal point
            "+1",        // leading plus
            "[1,]",      // trailing comma
            "{\"a\":}",  // missing value
            "{\"a\" 1}", // missing colon
            "\"abc",     // unterminated string
            "\"\\x\"",   // bad escape
            "\"\u{1}\"", // raw control char
            "1 2",       // trailing garbage
            "{'a':1}",   // single quotes
            "NaN",
        ] {
            assert!(!is_well_formed(s), "{s:?} should be rejected");
        }
    }
}
