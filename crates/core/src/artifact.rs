//! The artifact registry: every paper table/figure as a named, runnable
//! [`Artifact`] returning a structured [`Report`].
//!
//! This is the programmatic front door to the evaluation (§6): the
//! `tensortee` CLI, the benches in `crates/bench` and the examples all
//! resolve artifacts here instead of hand-wiring experiment calls. The
//! runner implementations live in [`crate::experiments`]; a shared
//! [`RunContext`] bundles the configuration knobs they used to duplicate.

use crate::config::{ClusterConfig, SecureMode, SystemConfig};
use crate::experiments;
use crate::report::Report;
use crate::system::StepBreakdown;
use crate::TrainingSystem;
use tee_sim::probe::SharedProbe;
use tee_workloads::zoo::{ModelConfig, TABLE2};

/// Everything an artifact runner needs: the system/cluster configuration
/// plus the sweep knobs (mode list, model subset, thread counts, …) that
/// each bench used to hard-code.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Table-1 system configuration.
    pub cfg: SystemConfig,
    /// Base cluster shape; `cluster_sizes` sweeps override `n_npus` but
    /// inherit its interconnect.
    pub cluster: ClusterConfig,
    /// Security modes to sweep, in presentation order.
    pub modes: Vec<SecureMode>,
    /// Model subset (of the Table-2 zoo) the per-model artifacts cover.
    pub models: Vec<ModelConfig>,
    /// Thread counts for the CPU sweeps (Figures 3 and 19).
    pub threads: Vec<u32>,
    /// Iteration checkpoints for Figure 19.
    pub checkpoints: Vec<u32>,
    /// Cluster sizes for the strong-scaling sweep.
    pub cluster_sizes: Vec<u32>,
    /// Iterations sampled by the Figure-18 hit-rate run.
    pub hit_iterations: u32,
    /// Seed for every stochastic artifact (the serving traces); the CLI
    /// plumbs `--seed` here so runs stay reproducible from the command
    /// line.
    pub seed: u64,
    /// Requests per serving trace (`serve_latency` / `serve_sweep`).
    pub serve_requests: u32,
    /// Nominal serving arrival rate in requests per second.
    pub serve_rate_rps: f64,
    /// Load multipliers of the nominal rate swept by `serve_sweep`.
    pub serve_load_factors: Vec<f64>,
    /// Serving instances in the fleet artifacts (`fleet_latency` /
    /// `fleet_handoff`).
    pub fleet_instances: usize,
    /// Session turns per fleet trace.
    pub fleet_requests: u32,
    /// Nominal fleet arrival rate in turns per second.
    pub fleet_rate_rps: f64,
    /// Tenants mixed into the fleet trace.
    pub fleet_tenants: u32,
    /// Worker threads the design-space explorer fans points across (the
    /// CLI plumbs `--threads` here). Results are bit-identical for any
    /// value — the workers draw per-point RNG sub-streams.
    pub worker_threads: u32,
    /// Point budget per exploration scenario (the CLI plumbs `--points`
    /// here): the full knob grid when it fits, otherwise a seeded
    /// Latin-hypercube sample of this size.
    pub explore_points: u32,
    /// Straggler slowdown factors the discrete-event cluster artifacts
    /// sweep (1.0 = homogeneous lockstep).
    pub straggler_factors: Vec<f64>,
    /// Microbatch counts the pipeline-parallel DES artifact sweeps.
    pub pipeline_microbatches: Vec<u32>,
    /// Whether this is the reduced (`--fast`) context; runners gate their
    /// most expensive sweeps on it.
    pub fast: bool,
    /// Observability sink the runners hand to their simulators
    /// ([`SharedProbe::Null`] by default). Probes only observe simulated
    /// time, so reports are byte-identical whether or not a recording
    /// probe is installed (pinned by a differential test over the
    /// registry).
    pub probe: SharedProbe,
}

impl RunContext {
    /// The full paper-fidelity context the benches print.
    pub fn full() -> Self {
        RunContext {
            cfg: SystemConfig::default(),
            cluster: ClusterConfig::default(),
            modes: SecureMode::all().to_vec(),
            models: TABLE2.to_vec(),
            threads: vec![1, 2, 4, 8],
            checkpoints: vec![1, 2, 5, 10, 20, 30, 40],
            cluster_sizes: vec![1, 2, 4, 8],
            hit_iterations: 20,
            seed: 42,
            serve_requests: 48,
            serve_rate_rps: 8.0,
            serve_load_factors: vec![0.5, 1.0, 2.0],
            fleet_instances: 4,
            fleet_requests: 192,
            fleet_rate_rps: 24.0,
            fleet_tenants: 4,
            worker_threads: 4,
            explore_points: 96,
            straggler_factors: vec![1.0, 1.1, 1.25, 1.5],
            pipeline_microbatches: vec![1, 2, 4, 8],
            fast: false,
            probe: SharedProbe::Null,
        }
    }

    /// The reduced context (`tensortee run --fast`, registry tests): a
    /// coarser simulation scale and a small/large model pair so every
    /// artifact finishes in seconds while keeping its shape.
    pub fn fast() -> Self {
        RunContext {
            cfg: SystemConfig::fast_sim(),
            models: vec![TABLE2[0], TABLE2[1]], // GPT, GPT2-M
            threads: vec![1, 4],
            checkpoints: vec![1, 2, 5],
            cluster_sizes: vec![1, 4],
            hit_iterations: 6,
            serve_requests: 16,
            serve_load_factors: vec![1.0, 2.0],
            fleet_instances: 2,
            fleet_requests: 64,
            fleet_rate_rps: 16.0,
            explore_points: 32,
            straggler_factors: vec![1.0, 1.5],
            pipeline_microbatches: vec![2, 8],
            fast: true,
            ..Self::full()
        }
    }

    /// Replaces the model subset (builder form).
    pub fn with_models(mut self, models: Vec<ModelConfig>) -> Self {
        self.models = models;
        self
    }

    /// Replaces the mode sweep (builder form).
    pub fn with_modes(mut self, modes: Vec<SecureMode>) -> Self {
        self.modes = modes;
        self
    }

    /// Replaces the system configuration (builder form).
    pub fn with_cfg(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replaces the stochastic-artifact seed (builder form; the CLI's
    /// `--seed` lands here).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the explorer's worker-thread count (builder form; the
    /// CLI's `--threads` lands here). Never changes results — only
    /// wall-clock.
    pub fn with_worker_threads(mut self, threads: u32) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Replaces the explorer's point budget (builder form; the CLI's
    /// `--points` lands here).
    pub fn with_explore_points(mut self, points: u32) -> Self {
        self.explore_points = points.max(1);
        self
    }

    /// Installs an observability probe (builder form; the CLI's `trace`
    /// subcommand and `--trace` flag land here). Never changes results —
    /// only what gets recorded alongside them.
    pub fn with_probe(mut self, probe: SharedProbe) -> Self {
        self.probe = probe;
        self
    }

    /// The paper's motivating model: GPT2-M when it is in the model
    /// subset, otherwise the first model.
    ///
    /// # Panics
    ///
    /// Panics if the context has no models.
    pub fn primary_model(&self) -> ModelConfig {
        assert!(!self.models.is_empty(), "RunContext has no models");
        self.models
            .iter()
            .copied()
            .find(|m| m.name == "GPT2-M")
            .unwrap_or(self.models[0])
    }

    /// The cluster shape for `n_npus` replicas on this context's
    /// interconnect.
    pub fn cluster_of(&self, n_npus: u32) -> ClusterConfig {
        ClusterConfig {
            n_npus,
            ..self.cluster
        }
    }

    /// Simulates one step of `model` under each mode of the sweep — the
    /// mode-loop boilerplate the examples share. When a recording probe
    /// is installed, each step's phases are laid over it as spans *after*
    /// pricing (see [`crate::obs::emit_step_phases`]); the breakdowns are
    /// identical either way.
    pub fn step_sweep(&self, model: &ModelConfig) -> Vec<(SecureMode, StepBreakdown)> {
        self.modes
            .iter()
            .map(|&mode| {
                let step = TrainingSystem::new(self.cfg.clone(), mode).simulate_step(model);
                crate::obs::emit_step_phases(&self.probe, mode, &step);
                (mode, step)
            })
            .collect()
    }
}

impl Default for RunContext {
    fn default() -> Self {
        Self::full()
    }
}

/// A registered paper artifact: a stable id, display metadata, and the
/// runner that regenerates it.
#[derive(Debug, Clone, Copy)]
pub struct Artifact {
    /// Stable id (`fig16`, `tab2`, `sec62`, `scaling_strong`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Paper anchor (`Figure 16`, `Table 2`, `§6.2`, …).
    pub paper_anchor: &'static str,
    /// The paper's quantitative claim this artifact reproduces (as a
    /// shape; see EXPERIMENTS.md).
    pub claim: &'static str,
    runner: fn(&RunContext) -> Report,
}

impl Artifact {
    /// Runs the artifact under `ctx`.
    pub fn run(&self, ctx: &RunContext) -> Report {
        (self.runner)(ctx)
    }

    /// An empty [`Report`] pre-filled with this artifact's metadata — the
    /// runners build on this so ids/titles have a single source of truth.
    pub fn new_report(&self) -> Report {
        Report::new(self.id, self.title, self.paper_anchor)
    }
}

/// The registry, in paper presentation order.
static REGISTRY: [Artifact; 28] = [
    Artifact {
        id: "fig03",
        title: "CPU TEE slowdown vs. thread count",
        paper_anchor: "Figure 3",
        claim: "up to 3.7x SGX slowdown; workload turns memory-bound as threads grow",
        runner: |ctx| experiments::fig03_cpu_slowdown(ctx).1,
    },
    Artifact {
        id: "fig04",
        title: "Tensor census",
        paper_anchor: "Figure 4",
        claim: "tensor sizes grow to MBytes; tensor counts stay at a few hundred",
        runner: experiments::fig04_tensor_census,
    },
    Artifact {
        id: "fig05",
        title: "GPT2-M phase breakdown",
        paper_anchor: "Figure 5",
        claim: "communication 12% non-secure -> 53% under SGX+MGX",
        runner: experiments::fig05_breakdown,
    },
    Artifact {
        id: "fig15",
        title: "Compute/communication overlap",
        paper_anchor: "Figures 7 & 15",
        claim: "baseline serializes behind AES; unified granularity overlaps transfer with compute",
        runner: experiments::fig15_overlap,
    },
    Artifact {
        id: "fig16",
        title: "Overall performance",
        paper_anchor: "Figure 16",
        claim: "TensorTEE 2.1-5.5x over SGX+MGX (avg 4.0x); 2.1% over non-secure",
        runner: |ctx| experiments::fig16_overall(ctx).1,
    },
    Artifact {
        id: "fig17",
        title: "Bottleneck analysis (per-model breakdown)",
        paper_anchor: "Figure 17",
        claim: "TensorTEE eliminates CPU metadata overhead and exposed transfer time",
        runner: experiments::fig17_breakdown,
    },
    Artifact {
        id: "fig18",
        title: "Meta Table hit rate vs. iteration",
        paper_anchor: "Figure 18",
        claim: "hit_all high after 1 iteration; hit_in 80% by iter 5, 95% by iter 20",
        runner: |ctx| experiments::fig18_hit_rate(ctx).1,
    },
    Artifact {
        id: "fig19",
        title: "CPU performance comparison",
        paper_anchor: "Figure 19",
        claim: "SGX 3.65x @8T; TensorTEE converges to SoftVN-comparable within ~10 iterations",
        runner: |ctx| experiments::fig19_cpu_perf(ctx).1,
    },
    Artifact {
        id: "fig20",
        title: "MAC granularity: performance + storage",
        paper_anchor: "Figure 20",
        claim:
            "fine pays traffic (~12%); coarse pays stalls (13% @4KB); ours ~2.5% and ~zero storage",
        runner: |ctx| experiments::fig20_mac_granularity(ctx).1,
    },
    Artifact {
        id: "fig21",
        title: "Gradient-transfer breakdown",
        paper_anchor: "Figure 21",
        claim: "re-encryption/decryption eliminated; 18.7x communication improvement",
        runner: |ctx| experiments::fig21_comm_breakdown(ctx).1,
    },
    Artifact {
        id: "tab2",
        title: "Workloads and parameters",
        paper_anchor: "Table 2",
        claim: "12 models, 117M-6.7B params",
        runner: experiments::tab2_workloads,
    },
    Artifact {
        id: "sec62",
        title: "GEMM tensor detection via entry merging",
        paper_anchor: "\u{a7}6.2",
        claim: "98.8% hit_in after a single GEMM builds the structures",
        runner: |ctx| experiments::sec62_gemm_detection(ctx).1,
    },
    Artifact {
        id: "sec65",
        title: "TenAnalyzer hardware overhead",
        paper_anchor: "\u{a7}6.5",
        claim:
            "512-entry Meta Table + filter + bitmap cache + poison bits = 24 KB, 0.0072 mm2 @ 7 nm",
        runner: experiments::sec65_hw_overhead,
    },
    Artifact {
        id: "scaling_strong",
        title: "Multi-NPU strong scaling with secure ring all-reduce",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.4 at N NPUs)",
        claim: "staging's exposed comm grows with N; direct hides the collective and keeps scaling",
        runner: |ctx| experiments::scaling_strong(ctx).1,
    },
    Artifact {
        id: "des_parity",
        title: "Discrete-event engine vs. analytic model (differential)",
        paper_anchor: "extension (\u{a7}5.1 as a discrete-event simulation)",
        claim: "lockstep data-parallel DES reproduces the analytic breakdown bit-for-bit \
                (max divergence 0 ps across every cluster size and mode)",
        runner: |ctx| experiments::des_parity(ctx).1,
    },
    Artifact {
        id: "des_straggler",
        title: "Heterogeneous NPUs: straggler skew under each protocol",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.4, heterogeneous cluster)",
        claim: "a straggler stretches the backward window, so direct overlap hides more of \
                the collective while staging's serialized hops stay fully exposed",
        runner: |ctx| experiments::des_straggler(ctx).1,
    },
    Artifact {
        id: "des_pipeline",
        title: "Pipeline parallelism: fabric contention per protocol",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.4, pipeline schedules)",
        claim:
            "more microbatches shrink the fill/drain bubble toward (S\u{2212}1)/(M+S\u{2212}1); \
                staging pays a conversion on every boundary hop that direct eliminates",
        runner: |ctx| experiments::des_pipeline(ctx).1,
    },
    Artifact {
        id: "ablations",
        title: "Design-choice ablations",
        paper_anchor: "\u{a7}6.2",
        claim: "Meta Table capacity, filter threshold, metadata cache and AES bandwidth sweeps",
        runner: experiments::ablations,
    },
    Artifact {
        id: "serve_latency",
        title: "Inference serving: latency and goodput per mode",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.3 under serving)",
        claim:
            "staging exposes KV migration and inflates TTFT/TPOT; TensorTEE stays near non-secure",
        runner: |ctx| experiments::serve_latency(ctx).1,
    },
    Artifact {
        id: "serve_sweep",
        title: "Inference serving: load/burstiness sweep",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.3 under serving)",
        claim: "TensorTEE goodput tracks offered load; staging saturates early, worse under bursts",
        runner: |ctx| experiments::serve_sweep(ctx).1,
    },
    Artifact {
        id: "fleet_latency",
        title: "Fleet serving: latency and goodput per mode",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.3 at fleet scale)",
        claim: "staged KV handoff serializes migrations against destination compute; \
                TensorTEE's direct handoff keeps fleet TTFT/goodput near non-secure",
        runner: |ctx| experiments::fleet_latency(ctx).1,
    },
    Artifact {
        id: "fleet_handoff",
        title: "Fleet serving: placement policy \u{d7} handoff protocol",
        paper_anchor: "extension (\u{a7}3.3/\u{a7}4.3 at fleet scale)",
        claim: "KV-aware placement cuts migrations vs round-robin; among forced migrations \
                the direct protocol strictly beats staged on exposed handoff time",
        runner: |ctx| experiments::fleet_handoff(ctx).1,
    },
    Artifact {
        id: "obs_utilization",
        title: "Observability: component utilization and counter rollup",
        paper_anchor: "extension (instrumented \u{a7}5.1/\u{a7}4.3 runs)",
        claim: "per-component busy fractions, link queued-time, and KV/crypto counters \
                rolled up from a recorded trace, without perturbing a single report byte",
        runner: |ctx| crate::obs::obs_utilization(ctx),
    },
    Artifact {
        id: "explore_pareto",
        title: "Design-space exploration: Pareto frontier",
        paper_anchor: "extension (\u{a7}6 across the hardware space)",
        claim: "TensorTEE holds the throughput/exposure/crypto frontier across swept bus, HBM, \
                PE and MAC-granularity knobs; the report explains any mode that never does",
        runner: |ctx| crate::explore::explore_pareto(ctx).1,
    },
    Artifact {
        id: "explore_sensitivity",
        title: "Design-space exploration: knob sensitivity (tornado)",
        paper_anchor: "extension (\u{a7}6 across the hardware space)",
        claim: "one-at-a-time swings rank which hardware knob moves each mode's throughput most",
        runner: |ctx| crate::explore::explore_sensitivity(ctx).1,
    },
    Artifact {
        id: "attack_traffic",
        title: "Adversary: traffic analysis on the CPU\u{2013}NPU link",
        paper_anchor: "extension (\u{a7}2.2 threat model, made quantitative)",
        claim: "ciphertext sizes alone name the model behind a held-out trace above chance; \
                the plug-in MI bounds the bits of model identity each transfer gives away",
        runner: |ctx| crate::attack::attack_traffic(ctx),
    },
    Artifact {
        id: "attack_kv_residency",
        title: "Adversary: KV-residency linkage of spilled sessions",
        paper_anchor: "extension (\u{a7}2.2 threat model at serving scale)",
        claim: "plain-spilled KV object sizes link transfers back to the sessions that share \
                prefixes; shielding at rest collapses the channel to ~0 bits for a priced \
                re-encrypt/verify bill",
        runner: |ctx| crate::attack::attack_kv_residency(ctx),
    },
    Artifact {
        id: "attack_defended",
        title: "Priced defenses: leakage vs. overhead",
        paper_anchor: "extension (\u{a7}2.2 threat model, defenses priced)",
        claim: "leakage orders strictly unshaped > padded > constant-rate (exactly 0) and \
                plain spill > shielded at rest, with each defense's padding/re-encryption \
                cost priced in the same report",
        runner: |ctx| crate::attack::attack_defended(ctx),
    },
];

/// All registered artifacts, in paper presentation order.
pub fn registry() -> &'static [Artifact] {
    &REGISTRY
}

/// Looks up an artifact by id.
pub fn find(id: &str) -> Option<Artifact> {
    REGISTRY.iter().copied().find(|a| a.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_evaluation() {
        assert!(registry().len() >= 28);
        for id in [
            "fig03",
            "fig04",
            "fig05",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "tab2",
            "sec62",
            "sec65",
            "scaling_strong",
            "des_parity",
            "des_straggler",
            "des_pipeline",
            "ablations",
            "serve_latency",
            "serve_sweep",
            "fleet_latency",
            "fleet_handoff",
            "obs_utilization",
            "explore_pareto",
            "explore_sensitivity",
            "attack_traffic",
            "attack_kv_residency",
            "attack_defended",
        ] {
            assert!(find(id).is_some(), "{id} missing from registry");
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn contexts_are_runnable_shapes() {
        let full = RunContext::full();
        assert!(!full.fast);
        assert_eq!(full.models.len(), TABLE2.len());
        let fast = RunContext::fast();
        assert!(fast.fast);
        assert!(fast.models.len() < full.models.len());
        assert_eq!(fast.primary_model().name, "GPT2-M");
        assert_eq!(fast.cluster_of(4).n_npus, 4);
        // Without GPT2-M the primary falls back to the first model.
        let custom = RunContext::fast().with_models(vec![TABLE2[0]]);
        assert_eq!(custom.primary_model().name, "GPT");
        // The fast context thins the serving trace but keeps the seed.
        assert!(fast.serve_requests < full.serve_requests);
        assert!(fast.fleet_requests < full.fleet_requests);
        assert!(fast.fleet_instances <= full.fleet_instances);
        assert_eq!(fast.seed, full.seed);
        assert_eq!(RunContext::fast().with_seed(7).seed, 7);
        // The explorer knobs: fast thins the point budget, keeps the
        // worker count, and the builders clamp to at least one.
        assert!(fast.explore_points < full.explore_points);
        assert_eq!(fast.worker_threads, full.worker_threads);
        assert_eq!(RunContext::fast().with_worker_threads(0).worker_threads, 1);
        assert_eq!(RunContext::fast().with_worker_threads(8).worker_threads, 8);
        assert_eq!(
            RunContext::fast().with_explore_points(12).explore_points,
            12
        );
    }

    #[test]
    fn step_sweep_covers_all_modes() {
        let ctx = RunContext::fast();
        let sweep = ctx.step_sweep(&TABLE2[0]);
        assert_eq!(sweep.len(), ctx.modes.len());
        assert_eq!(sweep[0].0, SecureMode::NonSecure);
        assert!(sweep.iter().all(|(_, b)| b.total() > tee_sim::Time::ZERO));
    }
}
