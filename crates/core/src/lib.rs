//! # tensortee
//!
//! The top-level TensorTEE system model: composes the CPU engine
//! (`tee-cpu`), the NPU engine (`tee-npu`) and the interconnect protocols
//! (`tee-comm`) into end-to-end ZeRO-Offload training steps, and provides
//! the experiment runners that regenerate every table and figure of the
//! paper (see EXPERIMENTS.md for the experiment index).
//!
//! ## Quick start
//!
//! ```
//! use tensortee::{SecureMode, SystemConfig, TrainingSystem};
//! use tee_workloads::zoo::by_name;
//!
//! let cfg = SystemConfig::fast_sim();
//! let model = by_name("GPT").expect("Table-2 model");
//! let mut sys = TrainingSystem::new(cfg, SecureMode::TensorTee);
//! let step = sys.simulate_step(&model);
//! assert!(step.total() > tee_sim::Time::ZERO);
//! ```
//!
//! ## The artifact registry
//!
//! Every paper table/figure is a named [`artifact::Artifact`] returning a
//! structured [`report::Report`] (markdown + JSON):
//!
//! ```
//! use tensortee::artifact::{find, RunContext};
//!
//! let report = find("sec65").unwrap().run(&RunContext::fast());
//! assert!(report.to_markdown().contains("Meta Table"));
//! assert!(tensortee::json::is_well_formed(&report.to_json().to_string()));
//! ```
//!
//! The `tensortee` CLI (`cargo run --release --bin tensortee -- list`)
//! drives the same registry from the command line.

pub mod artifact;
pub mod attack;
pub mod config;
pub mod des_cluster;
pub mod experiments;
pub mod explore;
pub mod hw;
pub mod json;
pub mod obs;
pub mod perf;
pub mod report;
pub mod session;
pub mod system;

pub use artifact::{Artifact, RunContext};
pub use config::{ClusterConfig, SecureMode, SystemConfig};
pub use des_cluster::{DesClusterConfig, DesClusterSystem, DesStepReport, Parallelism};
pub use hw::HardwareBudget;
pub use report::{PhaseLedger, Report};
pub use session::SecureSession;
pub use system::{ClusterStepBreakdown, ClusterSystem, StepBreakdown, TrainingSystem};
