//! Experiment runners — one per registered artifact.
//!
//! Every runner takes a [`RunContext`] (configuration + sweep knobs) and
//! returns a structured [`Report`] — named metrics, typed tables, notes —
//! alongside its typed rows where tests and benches want the raw numbers.
//! The runners are addressed through [`crate::artifact::registry`]; the
//! artifact index lives in EXPERIMENTS.md.

use crate::artifact::RunContext;
use crate::des_cluster::{DesClusterConfig, DesClusterSystem, DesStepReport};
use crate::hw::HardwareBudget;
use crate::report::{f2, pct, Report, Table};
use crate::system::{ClusterStepBreakdown, ClusterSystem, StepBreakdown, TrainingSystem};
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_comm::schedule::{overlapped_time, serialized_time, Timeline};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{AdamWorkload, CpuEngine, GemmWorkload, SoftVnConfig, TeeMode};
use tee_fleet::{simulate_probed as fleet_simulate, FleetConfig, FleetReport, Policy};
use tee_npu::engine::Layer as NpuLayer;
use tee_npu::mac::figure20_sweep;
use tee_npu::NpuEngine;
use tee_serve::{
    simulate_probed, SecurityProfile, ServeConfig, ServeReport, SessionTraceConfig, TraceConfig,
};
use tee_sim::Time;
use tee_workloads::census::TensorCensus;
use tee_workloads::zoo::{ModelConfig, TABLE2};
use tee_workloads::StepSchedule;

/// The registry-backed empty report for artifact `id` — metadata has a
/// single source of truth in [`crate::artifact`].
fn report_for(id: &str) -> Report {
    crate::artifact::find(id)
        .unwrap_or_else(|| panic!("artifact {id:?} not registered"))
        .new_report()
}

/// A benchmark-scale Adam workload derived from a model's census,
/// shrunk so the cacheline-level simulation stays fast while remaining
/// memory-bound against the scaled cache hierarchy.
pub fn bench_adam_workload(model: &ModelConfig, scale: u64) -> AdamWorkload {
    let census = TensorCensus::of(model).scaled(scale);
    AdamWorkload::from_tensor_sizes(&census.sizes())
}

// ---------------------------------------------------------------------
// Figure 3 — CPU TEE slowdown vs. thread count.
// ---------------------------------------------------------------------

/// One Figure-3 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Worker threads.
    pub threads: u32,
    /// Non-secure steady iteration latency.
    pub non_secure: Time,
    /// SGX steady iteration latency.
    pub sgx: Time,
}

impl Fig3Row {
    /// SGX / non-secure.
    pub fn slowdown(&self) -> f64 {
        self.sgx.as_secs_f64() / self.non_secure.as_secs_f64()
    }
}

/// Runs the Figure-3 sweep (Adam on the primary model, non-secure vs SGX,
/// over `ctx.threads`).
pub fn fig03_cpu_slowdown(ctx: &RunContext) -> (Vec<Fig3Row>, Report) {
    let model = ctx.primary_model();
    let workload = bench_adam_workload(&model, ctx.cfg.sim_scale);
    let iters = ctx.cfg.cpu_iterations.max(2);
    let rows: Vec<Fig3Row> = ctx
        .threads
        .iter()
        .map(|&t| {
            let mut ns = CpuEngine::new(ctx.cfg.cpu.clone(), TeeMode::NonSecure);
            let mut sgx = CpuEngine::new(ctx.cfg.cpu.clone(), TeeMode::Sgx);
            Fig3Row {
                threads: t,
                non_secure: ns.run_adam(&workload, t, iters).steady_latency(1),
                sgx: sgx.run_adam(&workload, t, iters).steady_latency(1),
            }
        })
        .collect();
    let mut table = Table::new(["threads", "non-secure", "SGX", "slowdown"]);
    for r in &rows {
        table.row([
            r.threads.to_string(),
            r.non_secure.to_string(),
            r.sgx.to_string(),
            format!("{:.2}x", r.slowdown()),
        ]);
    }
    let mut report = report_for("fig03");
    report.table(table);
    report.metric(
        "max_slowdown",
        rows.iter().map(Fig3Row::slowdown).fold(0.0, f64::max),
    );
    (rows, report)
}

// ---------------------------------------------------------------------
// Figure 4 — tensor census.
// ---------------------------------------------------------------------

/// Renders the Figure-4 census across `ctx.models`.
pub fn fig04_tensor_census(ctx: &RunContext) -> Report {
    let mut table = Table::new(["model", "tensor count", "max tensor", "total fp32"]);
    let mut max_bytes = 0u64;
    for m in &ctx.models {
        let c = TensorCensus::of(m);
        max_bytes = max_bytes.max(c.max_bytes());
        table.row([
            m.name.to_string(),
            c.count().to_string(),
            tee_sim::util::fmt_bytes(c.max_bytes()),
            tee_sim::util::fmt_bytes(c.total_bytes()),
        ]);
    }
    let mut report = report_for("fig04");
    report.table(table);
    report.metric("models", ctx.models.len() as f64);
    report.metric("max_tensor_bytes", max_bytes as f64);
    report
}

// ---------------------------------------------------------------------
// Figures 5 & 17 — phase breakdowns.
// ---------------------------------------------------------------------

/// Phase-fraction rows for the given models under every context mode,
/// with columns taken from the shared [`StepBreakdown`] phase ledger.
pub fn breakdown_table(ctx: &RunContext, models: &[ModelConfig]) -> Table {
    let mut header = vec!["model".to_string(), "mode".to_string()];
    header.extend(StepBreakdown::PHASES.iter().map(|p| p.to_string()));
    let mut table = Table::new(header);
    for m in models {
        for &mode in &ctx.modes {
            let b = TrainingSystem::new(ctx.cfg.clone(), mode).simulate_step(m);
            let mut row = vec![m.name.to_string(), mode.label().to_string()];
            row.extend(b.ledger().fractions().into_iter().map(|(_, f)| pct(f)));
            table.row(row);
        }
    }
    table
}

/// Figure 5: the primary-model breakdown.
pub fn fig05_breakdown(ctx: &RunContext) -> Report {
    let model = ctx.primary_model();
    let mut report = report_for("fig05");
    report.table(breakdown_table(ctx, &[model]));
    report
}

/// Figure 17: breakdown across the context's model subset.
pub fn fig17_breakdown(ctx: &RunContext) -> Report {
    let mut report = report_for("fig17");
    report.table(breakdown_table(ctx, &ctx.models));
    report
}

// ---------------------------------------------------------------------
// Figure 15 (and 7) — overlap timelines.
// ---------------------------------------------------------------------

/// Renders the serialized-vs-overlapped timelines for the primary model's
/// gradient transfer against a backward phase.
pub fn fig15_overlap(ctx: &RunContext) -> Report {
    let model = ctx.primary_model();
    let grad_bytes = model.grad_bytes();
    // Backward window for the primary model at our NPU's pace: ~2/3 of
    // the simulated fwd+bwd phase (same derivation as Figure 21).
    let schedule = StepSchedule::of(&model);
    let npu =
        TrainingSystem::new(ctx.cfg.clone(), crate::SecureMode::TensorTee).npu_time(&schedule);
    let bwd = Time::from_ps(npu.as_ps() * 2 / 3);
    let staged = StagingProtocol::new().transfer(Time::ZERO, grad_bytes);
    let direct = DirectProtocol::new().transfer(Time::ZERO, grad_bytes);

    let mut base = Timeline::new();
    base.push(0, "backward", Time::ZERO, bwd);
    base.push(1, "re-enc", bwd, bwd + staged.re_encryption);
    base.push(
        1,
        "comm",
        bwd + staged.re_encryption,
        bwd + staged.re_encryption + staged.comm,
    );
    base.push(
        1,
        "dec",
        bwd + staged.re_encryption + staged.comm,
        bwd + staged.total(),
    );

    let mut ours = Timeline::new();
    ours.push(0, "backward", Time::ZERO, bwd);
    ours.push(1, "comm", Time::ZERO, direct.comm.min(bwd));

    let serialized = serialized_time(bwd, staged.total());
    let overlapped = overlapped_time(bwd, direct.comm);
    let mut report = report_for("fig15");
    report.note(format!(
        "Baseline (Figure 7): serialized, total {serialized}\n{}",
        base.render(64)
    ));
    report.note(format!(
        "\nTensorTEE (Figure 15): overlapped, total {overlapped}\n{}",
        ours.render(64)
    ));
    report.metric("serialized_total_secs", serialized.as_secs_f64());
    report.metric("overlapped_total_secs", overlapped.as_secs_f64());
    report
}

// ---------------------------------------------------------------------
// Figure 16 — overall performance.
// ---------------------------------------------------------------------

/// One Figure-16 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Row {
    /// Model.
    pub model: ModelConfig,
    /// Latency per batch, non-secure.
    pub non_secure: Time,
    /// Latency per batch, SGX+MGX.
    pub sgx_mgx: Time,
    /// Latency per batch, TensorTEE.
    pub ours: Time,
}

impl Fig16Row {
    /// Speedup of TensorTEE over SGX+MGX.
    pub fn speedup(&self) -> f64 {
        self.sgx_mgx.as_secs_f64() / self.ours.as_secs_f64()
    }

    /// Overhead of TensorTEE vs non-secure.
    pub fn overhead(&self) -> f64 {
        self.ours.as_secs_f64() / self.non_secure.as_secs_f64() - 1.0
    }
}

/// Runs Figure 16 across `ctx.models`.
pub fn fig16_overall(ctx: &RunContext) -> (Vec<Fig16Row>, Report) {
    let cfg = &ctx.cfg;
    let rows: Vec<Fig16Row> = ctx
        .models
        .iter()
        .map(|m| Fig16Row {
            model: *m,
            non_secure: TrainingSystem::new(cfg.clone(), crate::SecureMode::NonSecure)
                .simulate_step(m)
                .total(),
            sgx_mgx: TrainingSystem::new(cfg.clone(), crate::SecureMode::SgxMgx)
                .simulate_step(m)
                .total(),
            ours: TrainingSystem::new(cfg.clone(), crate::SecureMode::TensorTee)
                .simulate_step(m)
                .total(),
        })
        .collect();
    let mut table = Table::new([
        "model",
        "non-secure",
        "SGX+MGX",
        "TensorTEE",
        "speedup",
        "overhead vs NS",
    ]);
    for r in &rows {
        table.row([
            r.model.name.to_string(),
            r.non_secure.to_string(),
            r.sgx_mgx.to_string(),
            r.ours.to_string(),
            format!("{:.2}x", r.speedup()),
            pct(r.overhead()),
        ]);
    }
    let speedups: Vec<f64> = rows.iter().map(Fig16Row::speedup).collect();
    let overheads: Vec<f64> = rows.iter().map(Fig16Row::overhead).collect();
    let avg_speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let avg_overhead = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    let mut report = report_for("fig16");
    report.table(table);
    report.metric("avg_speedup", avg_speedup);
    report.metric("avg_overhead", avg_overhead);
    report.note(format!(
        "Average speedup vs SGX+MGX: {avg_speedup:.2}x (paper: 4.0x)"
    ));
    report.note(format!(
        "Average overhead vs non-secure: {} (paper: 2.1%)",
        pct(avg_overhead),
    ));
    (rows, report)
}

// ---------------------------------------------------------------------
// Figure 18 — Meta Table hit rate vs iteration.
// ---------------------------------------------------------------------

/// One Figure-18 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig18Row {
    /// Iteration index.
    pub iteration: u32,
    /// hit_in rate.
    pub hit_in: f64,
    /// hit_all (= hit_in + hit_boundary) rate.
    pub hit_all: f64,
    /// hit_boundary rate.
    pub hit_boundary: f64,
}

/// Runs Adam under TensorTEE (no preload — cold detection) and samples
/// per-iteration Meta Table hit rates over `ctx.hit_iterations`.
pub fn fig18_hit_rate(ctx: &RunContext) -> (Vec<Fig18Row>, Report) {
    let workload = bench_adam_workload(&ctx.primary_model(), ctx.cfg.sim_scale);
    let mut engine = CpuEngine::new(
        ctx.cfg.cpu.clone(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let run = engine.run_adam(&workload, ctx.cfg.cpu_threads, ctx.hit_iterations);
    let rows: Vec<Fig18Row> = run
        .iterations
        .iter()
        .enumerate()
        .map(|(i, it)| Fig18Row {
            iteration: i as u32,
            hit_in: it.hit_in_rate(),
            hit_all: it.hit_all_rate(),
            hit_boundary: it.hit_all_rate() - it.hit_in_rate(),
        })
        .collect();
    let mut table = Table::new(["iteration", "hit_all", "hit_in", "hit_boundary"]);
    for r in &rows {
        table.row([
            r.iteration.to_string(),
            f2(r.hit_all),
            f2(r.hit_in),
            f2(r.hit_boundary),
        ]);
    }
    let mut report = report_for("fig18");
    report.table(table);
    report.metric(
        "final_hit_in",
        rows.last().map(|r| r.hit_in).unwrap_or(f64::NAN),
    );
    (rows, report)
}

// ---------------------------------------------------------------------
// Figure 19 — CPU performance vs iteration and baseline comparison.
// ---------------------------------------------------------------------

/// Figure-19 data for one thread count.
#[derive(Debug, Clone)]
pub struct Fig19Series {
    /// Threads.
    pub threads: u32,
    /// Non-secure steady latency (the 1.0 reference).
    pub non_secure: Time,
    /// SGX steady latency.
    pub sgx: Time,
    /// SoftVN steady latency.
    pub softvn: Time,
    /// TensorTEE per-iteration latency at the sampled iterations.
    pub tensortee: Vec<(u32, Time)>,
}

/// Runs Figure 19 over `ctx.threads` and `ctx.checkpoints`.
pub fn fig19_cpu_perf(ctx: &RunContext) -> (Vec<Fig19Series>, Report) {
    let workload = bench_adam_workload(&ctx.primary_model(), ctx.cfg.sim_scale);
    let max_iter = ctx.checkpoints.iter().copied().max().unwrap_or(1);
    // Steady-state baselines need at least two iterations; the context's
    // iteration budget (3 at full fidelity) controls the warm-up cost.
    let base_iters = ctx.cfg.cpu_iterations.max(2);
    let mut out = Vec::new();
    for &t in &ctx.threads {
        let mut ns = CpuEngine::new(ctx.cfg.cpu.clone(), TeeMode::NonSecure);
        let non_secure = ns.run_adam(&workload, t, base_iters).steady_latency(1);
        let mut sgx = CpuEngine::new(ctx.cfg.cpu.clone(), TeeMode::Sgx);
        let sgx_lat = sgx.run_adam(&workload, t, base_iters).steady_latency(1);
        let mut sv = CpuEngine::new(
            ctx.cfg.cpu.clone(),
            TeeMode::SoftVn(SoftVnConfig::default()),
        );
        let softvn = sv.run_adam(&workload, t, base_iters).steady_latency(1);
        let mut tt = CpuEngine::new(
            ctx.cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let rep = tt.run_adam(&workload, t, max_iter);
        let tensortee = ctx
            .checkpoints
            .iter()
            .map(|&c| {
                let idx = (c as usize).min(rep.iterations.len()) - 1;
                (c, rep.iterations[idx].latency)
            })
            .collect();
        out.push(Fig19Series {
            threads: t,
            non_secure,
            sgx: sgx_lat,
            softvn,
            tensortee,
        });
    }
    let mut table = Table::new(["threads", "config", "normalized latency"]);
    for s in &out {
        let norm = |t: Time| f2(t.as_secs_f64() / s.non_secure.as_secs_f64());
        table.row([s.threads.to_string(), "non-secure".into(), "1.00".into()]);
        table.row([s.threads.to_string(), "SGX".into(), norm(s.sgx)]);
        table.row([s.threads.to_string(), "SoftVN".into(), norm(s.softvn)]);
        for (c, lat) in &s.tensortee {
            table.row([
                s.threads.to_string(),
                format!("TensorTEE @ iter {c}"),
                norm(*lat),
            ]);
        }
    }
    let mut report = report_for("fig19");
    report.table(table);
    if let Some(s) = out.last() {
        report.metric(
            "sgx_slowdown_max_threads",
            s.sgx.as_secs_f64() / s.non_secure.as_secs_f64(),
        );
    }
    (out, report)
}

// ---------------------------------------------------------------------
// Figure 20 — MAC granularity sweep.
// ---------------------------------------------------------------------

/// One Figure-20 sample.
#[derive(Debug, Clone)]
pub struct Fig20Row {
    /// Scheme label.
    pub label: String,
    /// Normalized performance (non-secure = 1.0; lower is worse… shown as
    /// slowdown here).
    pub slowdown: f64,
    /// Off-chip storage overhead fraction.
    pub storage: f64,
}

/// Runs the Figure-20 granularity sweep over the primary model's
/// transformer layer mix.
pub fn fig20_mac_granularity(ctx: &RunContext) -> (Vec<Fig20Row>, Report) {
    let schedule = StepSchedule::of(&ctx.primary_model()).scaled(64);
    let layers: Vec<NpuLayer> = schedule
        .npu_layers
        .iter()
        .map(|l| NpuLayer {
            macs: l.macs,
            in_bytes: l.in_bytes,
            w_bytes: l.w_bytes,
            out_bytes: l.out_bytes,
        })
        .collect();
    let rows: Vec<Fig20Row> = figure20_sweep()
        .into_iter()
        .map(|scheme| {
            let slowdown = NpuEngine::new(ctx.cfg.npu.clone(), scheme).slowdown(&layers);
            Fig20Row {
                label: scheme.label(),
                slowdown,
                storage: scheme.storage_overhead(64 << 20),
            }
        })
        .collect();
    let mut table = Table::new(["MAC granularity", "slowdown", "storage overhead"]);
    for r in &rows {
        table.row([
            r.label.clone(),
            format!("{:.3}x", r.slowdown),
            pct(r.storage),
        ]);
    }
    let mut report = report_for("fig20");
    report.table(table);
    if let Some(ours) = rows.iter().find(|r| r.label == "tensor-delayed") {
        report.metric("tensor_delayed_slowdown", ours.slowdown);
    }
    (rows, report)
}

// ---------------------------------------------------------------------
// Figure 21 — gradient-transfer breakdown.
// ---------------------------------------------------------------------

/// One Figure-21 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig21Row {
    /// Model.
    pub model: ModelConfig,
    /// Baseline re-encryption time.
    pub base_reenc: Time,
    /// Baseline bus time.
    pub base_comm: Time,
    /// Baseline decryption time.
    pub base_dec: Time,
    /// TensorTEE raw transfer duration (direct DMA, no crypto).
    pub ours_comm: Time,
    /// TensorTEE exposed communication time (after overlap with backward).
    pub ours_exposed: Time,
}

impl Fig21Row {
    /// Baseline total.
    pub fn base_total(&self) -> Time {
        self.base_reenc + self.base_comm + self.base_dec
    }

    /// Communication improvement factor: serialized baseline transfer
    /// time over the direct transfer's raw duration (the paper's 18.7x
    /// metric); overlap additionally hides the remainder (Figure 15).
    pub fn improvement(&self) -> f64 {
        self.base_total().as_secs_f64() / self.ours_comm.as_secs_f64().max(1e-12)
    }
}

/// Runs Figure 21 across `ctx.models`.
pub fn fig21_comm_breakdown(ctx: &RunContext) -> (Vec<Fig21Row>, Report) {
    let rows: Vec<Fig21Row> = ctx
        .models
        .iter()
        .map(|m| {
            let schedule = StepSchedule::of(m);
            let staged = StagingProtocol::new().transfer(Time::ZERO, schedule.grad_bytes);
            let direct = DirectProtocol::new().transfer(Time::ZERO, schedule.grad_bytes);
            // Overlap window: the backward phase under TensorTEE.
            let sys = TrainingSystem::new(ctx.cfg.clone(), crate::SecureMode::TensorTee);
            let npu = sys.npu_time(&schedule);
            let bwd_window = Time::from_ps(npu.as_ps() * 2 / 3);
            Fig21Row {
                model: *m,
                base_reenc: staged.re_encryption,
                base_comm: staged.comm,
                base_dec: staged.decryption,
                ours_comm: direct.comm,
                ours_exposed: direct.comm.saturating_sub(bwd_window) + Time::from_ns(600), // residual sync latency
            }
        })
        .collect();
    let mut table = Table::new([
        "model",
        "base re-enc",
        "base comm",
        "base dec",
        "ours comm",
        "ours exposed",
        "improvement",
    ]);
    for r in &rows {
        table.row([
            r.model.name.to_string(),
            r.base_reenc.to_string(),
            r.base_comm.to_string(),
            r.base_dec.to_string(),
            r.ours_comm.to_string(),
            r.ours_exposed.to_string(),
            format!("{:.1}x", r.improvement()),
        ]);
    }
    let avg: f64 = rows.iter().map(Fig21Row::improvement).sum::<f64>() / rows.len().max(1) as f64;
    let mut report = report_for("fig21");
    report.table(table);
    report.metric("avg_improvement", avg);
    report.note(format!(
        "Average communication improvement: {avg:.1}x (paper: 18.7x)"
    ));
    (rows, report)
}

// ---------------------------------------------------------------------
// §6.2 — GEMM detection.
// ---------------------------------------------------------------------

/// Runs the §6.2 GEMM experiment: 256×256 matrix, 64×64 tiles; one GEMM
/// builds the structures, the next measures hit_in (paper: 98.8%).
pub fn sec62_gemm_detection(ctx: &RunContext) -> (f64, Report) {
    let mut engine = CpuEngine::new(
        ctx.cfg.cpu.clone(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let gemm = GemmWorkload::new(256, 64);
    let _build = engine.run_gemm(&gemm);
    let measured = engine.run_gemm(&gemm);
    let rate = measured.hit_in_rate();
    let mut report = report_for("sec62");
    report.metric("hit_in", rate);
    report.note(format!(
        "GEMM 256x256, 64x64 tiles: hit_in after structure construction = {} (paper: 98.8%)",
        pct(rate)
    ));
    (rate, report)
}

// ---------------------------------------------------------------------
// §6.5 — hardware overhead.
// ---------------------------------------------------------------------

/// Regenerates the §6.5 TenAnalyzer hardware budget.
pub fn sec65_hw_overhead(_ctx: &RunContext) -> Report {
    let hw = HardwareBudget::default();
    let mut report = report_for("sec65");
    report.table(hw.table());
    report.metric("total_kb", hw.total_bytes() as f64 / 1024.0);
    report.metric("area_mm2", hw.area_mm2());
    report
}

// ---------------------------------------------------------------------
// Table 2 — workloads and parameters.
// ---------------------------------------------------------------------

/// Renders Table 2: the full model zoo and its per-model parameters
/// (always the complete zoo — it is static data, independent of the
/// context's model subset).
pub fn tab2_workloads(_ctx: &RunContext) -> Report {
    let mut table = Table::new([
        "model",
        "# params (nominal)",
        "# params (modeled)",
        "batch",
        "layers",
        "hidden",
        "seq",
    ]);
    for m in TABLE2 {
        table.row([
            m.name.to_string(),
            m.nominal_params.to_string(),
            m.params().to_string(),
            m.batch_size.to_string(),
            m.layers.to_string(),
            m.hidden.to_string(),
            m.seq_len.to_string(),
        ]);
    }
    let mut report = report_for("tab2");
    report.table(table);
    report.metric("models", TABLE2.len() as f64);
    report
}

// ---------------------------------------------------------------------
// Ablations — design-choice sweeps (Meta Table capacity, filter
// threshold, SGX metadata cache, staging AES bandwidth).
// ---------------------------------------------------------------------

/// Runs the four design-choice ablation sweeps. Under a fast context the
/// sweep points are thinned but every sweep still runs.
pub fn ablations(ctx: &RunContext) -> Report {
    let workload = bench_adam_workload(&ctx.primary_model(), ctx.cfg.sim_scale);
    let threads = ctx.cfg.cpu_threads;
    // Detection sweeps sample iteration `detect_iters - 1`; the fast
    // context settles for the second iteration instead of the fourth.
    let detect_iters: u32 = if ctx.fast { 2 } else { 4 };
    let mut report = report_for("ablations");

    // Meta Table capacity: beyond 512 simultaneously live tensors the
    // benefit diminishes (§6.2).
    let entries_sweep: &[usize] = if ctx.fast {
        &[64, 512]
    } else {
        &[32, 64, 128, 256, 512, 1024]
    };
    let mut t = Table::new(["entries", "steady hit_in", "steady latency"])
        .captioned("Ablation — Meta Table capacity (§6.2)");
    for &entries in entries_sweep {
        let mut e = CpuEngine::new(
            ctx.cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig {
                meta_entries: entries,
                ..TenAnalyzerConfig::default()
            }),
        );
        let rep = e.run_adam(&workload, threads, detect_iters);
        let last = rep.iterations.last().unwrap();
        t.row([
            entries.to_string(),
            f2(last.hit_in_rate()),
            last.latency.to_string(),
        ]);
    }
    report.table(t);

    // Tensor Filter collection threshold: §4.2 uses 4 addresses; fewer
    // detects faster but with weaker evidence.
    let threshold_sweep: &[usize] = if ctx.fast { &[2, 4] } else { &[2, 3, 4, 8] };
    let mut t = Table::new([
        "threshold".to_string(),
        "iter-0 hit_all".to_string(),
        format!("iter-{} hit_in", detect_iters - 1),
    ])
    .captioned("Ablation — Tensor Filter collection threshold (§4.2)");
    for &threshold in threshold_sweep {
        let mut e = CpuEngine::new(
            ctx.cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig {
                filter_threshold: threshold,
                ..TenAnalyzerConfig::default()
            }),
        );
        let rep = e.run_adam(&workload, threads, detect_iters);
        t.row([
            threshold.to_string(),
            f2(rep.iterations[0].hit_all_rate()),
            f2(rep.iterations[(detect_iters - 1) as usize].hit_in_rate()),
        ]);
    }
    report.table(t);

    // SGX metadata-cache size: Table 1 uses 32 KB — the baseline's only
    // defense against Merkle traffic.
    let cache_sweep: &[u64] = if ctx.fast {
        &[16, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let mut t = Table::new(["metadata cache", "steady SGX latency"])
        .captioned("Ablation — SGX metadata-cache size (Table 1)");
    for &kb in cache_sweep {
        let mut cpu = ctx.cfg.cpu.clone();
        cpu.metadata_cache_bytes = kb << 10;
        let mut e = CpuEngine::new(cpu, TeeMode::Sgx);
        let rep = e.run_adam(&workload, threads, ctx.cfg.cpu_iterations.max(2));
        t.row([format!("{kb} KB"), rep.steady_latency(1).to_string()]);
    }
    report.table(t);

    // Staging-protocol AES bandwidth: one engine (8 GB/s) starves
    // transfers; more engines trade area (§3.3).
    let aes_sweep: &[f64] = if ctx.fast {
        &[8.0, 32.0]
    } else {
        &[4.0, 8.0, 16.0, 32.0, 64.0]
    };
    let grad_bytes = ctx.primary_model().grad_bytes();
    let mut t = Table::new(["AES bandwidth", "staged transfer total"])
        .captioned("Ablation — staging-protocol AES bandwidth (§3.3)");
    for &gbs in aes_sweep {
        let mut p = StagingProtocol::with_aes_bandwidth(gbs * 1e9);
        t.row([
            format!("{gbs} GB/s"),
            p.transfer(Time::ZERO, grad_bytes).total().to_string(),
        ]);
    }
    report.table(t);
    report
}

// ---------------------------------------------------------------------
// Strong scaling — multi-NPU data parallelism (scaling_1_2_4_8 bench).
// ---------------------------------------------------------------------

/// One strong-scaling sample: one cluster size under one mode.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Data-parallel NPU replicas.
    pub n_npus: u32,
    /// Security mode.
    pub mode: crate::SecureMode,
    /// Full per-phase breakdown.
    pub breakdown: ClusterStepBreakdown,
    /// Bytes each rank puts on the ring (`2·(N−1)/N·grad_bytes`).
    pub ar_wire_bytes: u64,
}

impl ScalingRow {
    /// Step-time speedup relative to `base` (the table uses the same
    /// mode's smallest-cluster sample).
    pub fn speedup_over(&self, base: &ScalingRow) -> f64 {
        base.breakdown.total().as_secs_f64() / self.breakdown.total().as_secs_f64()
    }
}

/// Runs the strong-scaling sweep: a fixed global batch of the primary
/// model split across each size in `ctx.cluster_sizes`, under each mode
/// in `ctx.modes`.
///
/// The table reports step time, speedup over the same mode's smallest
/// cluster, the exposed-communication fraction, and the per-rank
/// all-reduce wire bytes. The shapes to look for: the staging protocol's
/// exposed-comm fraction grows with N (every ring hop pays the §3.3
/// conversion, while per-replica compute shrinks), whereas the direct
/// protocol's stays roughly flat because the collective hides in the
/// backward window.
pub fn scaling_strong(ctx: &RunContext) -> (Vec<ScalingRow>, Report) {
    let model = ctx.primary_model();
    let mut rows = Vec::new();
    // The speedup baseline is each mode's first cluster size — label the
    // column accordingly so a sweep not starting at 1 stays honest.
    let base_n = ctx.cluster_sizes.first().copied().unwrap_or(1);
    let mut table = Table::new([
        "NPUs".to_string(),
        "mode".to_string(),
        "step".to_string(),
        format!("speedup vs N={base_n}"),
        "exposed comm".to_string(),
        "AR wire bytes/rank".to_string(),
    ]);
    for &mode in &ctx.modes {
        let mut base: Option<ScalingRow> = None;
        for &n in &ctx.cluster_sizes {
            let mut sys = ClusterSystem::new(ctx.cfg.clone(), ctx.cluster_of(n), mode);
            let breakdown = sys.simulate_step(&model);
            let ar = sys.all_reduce_cost(model.grad_bytes());
            let row = ScalingRow {
                n_npus: n,
                mode,
                breakdown,
                ar_wire_bytes: ar.wire_bytes(),
            };
            let base = *base.get_or_insert(row);
            table.row([
                n.to_string(),
                mode.label().to_string(),
                breakdown.total().to_string(),
                format!("{}x", f2(row.speedup_over(&base))),
                pct(breakdown.exposed_comm_fraction()),
                tee_sim::util::fmt_bytes(row.ar_wire_bytes),
            ]);
            rows.push(row);
        }
    }
    let mut report = report_for("scaling_strong");
    report.table(table);
    (rows, report)
}

// ---------------------------------------------------------------------
// Discrete-event cluster engine — analytic parity, stragglers and
// pipeline parallelism (des_parity / des_straggler / des_pipeline).
// ---------------------------------------------------------------------

/// One parity sample: the analytic and discrete-event step of the same
/// configuration.
#[derive(Debug, Clone, Copy)]
pub struct DesParityRow {
    /// Data-parallel NPU replicas.
    pub n_npus: u32,
    /// Security mode.
    pub mode: crate::SecureMode,
    /// The analytic [`ClusterSystem`] breakdown (the oracle).
    pub analytic: ClusterStepBreakdown,
    /// The DES run replaying the same step as events.
    pub des: DesStepReport,
}

impl DesParityRow {
    /// Absolute step-total divergence in picoseconds (zero when the DES
    /// reproduces the oracle bit-for-bit).
    pub fn divergence_ps(&self) -> u64 {
        let a = self.analytic.total().as_ps();
        let d = self.des.breakdown.total().as_ps();
        a.abs_diff(d)
    }
}

/// Runs the differential sweep: every `(cluster size, mode)` pair priced
/// once through the analytic composition and once through the
/// discrete-event engine in lockstep data-parallel mode, sharing one
/// cached CPU phase so both paths consume identical inputs.
///
/// The engine's contract is that every row matches **bit-for-bit** — the
/// `max_divergence_ps` metric is 0 and the `match` column all-yes; any
/// other output is a bug in the DES, not model noise (the differential
/// suite in `tests/des_cluster.rs` enforces the same equality over a
/// wider grid).
pub fn des_parity(ctx: &RunContext) -> (Vec<DesParityRow>, Report) {
    let model = ctx.primary_model();
    let schedule = StepSchedule::of(&model);
    let mut rows = Vec::new();
    let mut table = Table::new([
        "NPUs",
        "mode",
        "analytic",
        "DES",
        "match",
        "events",
        "contention",
    ]);
    for &mode in &ctx.modes {
        for &n in &ctx.cluster_sizes {
            // One CPU phase per (mode, N): the optimizer runs on the
            // reduced gradients, identical in both paths.
            let replica = schedule.data_parallel_replica(n);
            let cpu = TrainingSystem::new(ctx.cfg.clone(), mode).cpu_time(&replica);
            let analytic = ClusterSystem::new(ctx.cfg.clone(), ctx.cluster_of(n), mode)
                .simulate_with_cpu_time(&schedule, cpu);
            let des = DesClusterSystem::new(
                ctx.cfg.clone(),
                DesClusterConfig::lockstep(ctx.cluster_of(n)),
                mode,
            )
            .with_probe(ctx.probe.clone())
            .simulate_with_cpu_time(&schedule, cpu);
            let row = DesParityRow {
                n_npus: n,
                mode,
                analytic,
                des,
            };
            table.row([
                n.to_string(),
                mode.label().to_string(),
                analytic.total().to_string(),
                des.breakdown.total().to_string(),
                if des.breakdown == analytic {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
                des.events.to_string(),
                des.fabric_contention.to_string(),
            ]);
            rows.push(row);
        }
    }
    let max_div = rows
        .iter()
        .map(DesParityRow::divergence_ps)
        .max()
        .unwrap_or(0);
    let mut report = report_for("des_parity");
    report.metric("max_divergence_ps", max_div as f64);
    report.metric(
        "exact_rows",
        rows.iter()
            .filter(|r| r.des.breakdown == r.analytic)
            .count() as f64,
    );
    report.table(table);
    report.note(
        "lockstep data-parallel DES replays the analytic composition event-by-event; \
         every breakdown field must match bit-for-bit",
    );
    (rows, report)
}

/// One straggler sample: the cluster with its last rank slowed.
#[derive(Debug, Clone, Copy)]
pub struct DesStragglerRow {
    /// Security mode.
    pub mode: crate::SecureMode,
    /// Slowdown of the last rank (1.0 = homogeneous).
    pub factor: f64,
    /// The DES step under that skew.
    pub des: DesStepReport,
}

/// Runs the heterogeneous-cluster sweep: the largest configured cluster
/// with its last rank slowed by each factor in `ctx.straggler_factors`,
/// under each mode.
///
/// The shape to look for: a straggler stretches the backward window of
/// the slow rank, so the *direct* protocol hides more of the collective
/// behind it (exposed `comm_ar` shrinks as the factor grows) while the
/// staging protocol's serialized hops stay fully exposed — heterogeneity
/// widens TensorTEE's lead rather than eroding it.
pub fn des_straggler(ctx: &RunContext) -> (Vec<DesStragglerRow>, Report) {
    let model = ctx.primary_model();
    let schedule = StepSchedule::of(&model);
    let n = ctx.cluster_sizes.iter().copied().max().unwrap_or(4).max(2);
    let mut rows = Vec::new();
    let mut table = Table::new([
        "mode",
        "straggler",
        "step",
        "NPU",
        "exposed AR",
        "exposed comm",
    ]);
    for &mode in &ctx.modes {
        let replica = schedule.data_parallel_replica(n);
        let cpu = TrainingSystem::new(ctx.cfg.clone(), mode).cpu_time(&replica);
        for &factor in &ctx.straggler_factors {
            let des = DesClusterSystem::new(
                ctx.cfg.clone(),
                DesClusterConfig::lockstep(ctx.cluster_of(n)).with_straggler(factor),
                mode,
            )
            .with_probe(ctx.probe.clone())
            .simulate_with_cpu_time(&schedule, cpu);
            table.row([
                mode.label().to_string(),
                format!("{factor:.2}x"),
                des.breakdown.total().to_string(),
                des.breakdown.npu.to_string(),
                des.breakdown.comm_ar.to_string(),
                pct(des.breakdown.exposed_comm_fraction()),
            ]);
            rows.push(DesStragglerRow { mode, factor, des });
        }
    }
    let mut report = report_for("des_straggler");
    report.metric("n_npus", n as f64);
    report.table(table);
    report.note(format!(
        "last rank of {n} slowed by each factor; only the DES engine can price this skew"
    ));
    (rows, report)
}

/// One pipeline sample: N stages, M microbatches, one mode.
#[derive(Debug, Clone, Copy)]
pub struct DesPipelineRow {
    /// Security mode.
    pub mode: crate::SecureMode,
    /// Microbatches in flight.
    pub microbatches: u32,
    /// Pipeline stages (= NPUs).
    pub stages: u32,
    /// The DES step.
    pub des: DesStepReport,
}

impl DesPipelineRow {
    /// The ideal GPipe bubble fraction `(S−1)/(M+S−1)` for this shape.
    pub fn ideal_bubble_fraction(&self) -> f64 {
        let s = self.stages as f64;
        let m = self.microbatches as f64;
        (s - 1.0) / (m + s - 1.0)
    }
}

/// Runs the pipeline-parallel sweep: the model split into N contiguous
/// stages with each microbatch's boundary activations crossing the
/// shared NPU fabric, under each mode and microbatch count.
///
/// The shapes to look for: more microbatches shrink the fill/drain
/// bubble toward the `(S−1)/(M+S−1)` ideal, and overlapping boundary
/// hops *contend* on the fabric — the staging protocol additionally pays
/// a per-hop conversion on every boundary (the `crypto` column), which
/// the direct protocol eliminates.
pub fn des_pipeline(ctx: &RunContext) -> (Vec<DesPipelineRow>, Report) {
    let model = ctx.primary_model();
    let schedule = StepSchedule::of(&model);
    let n = ctx.cluster_sizes.iter().copied().max().unwrap_or(4).max(2);
    let mut rows = Vec::new();
    let mut table = Table::new([
        "mode",
        "microbatches",
        "step",
        "compute front",
        "ideal bubble",
        "contention",
        "crypto",
    ]);
    for &mode in &ctx.modes {
        let cpu = TrainingSystem::new(ctx.cfg.clone(), mode).cpu_time(&schedule);
        for &m in &ctx.pipeline_microbatches {
            let des = DesClusterSystem::new(
                ctx.cfg.clone(),
                DesClusterConfig::lockstep(ctx.cluster_of(n)).with_pipeline(m),
                mode,
            )
            .with_probe(ctx.probe.clone())
            .simulate_with_cpu_time(&schedule, cpu);
            let row = DesPipelineRow {
                mode,
                microbatches: m,
                stages: n,
                des,
            };
            table.row([
                mode.label().to_string(),
                m.to_string(),
                des.breakdown.total().to_string(),
                des.breakdown.npu.to_string(),
                pct(row.ideal_bubble_fraction()),
                des.fabric_contention.to_string(),
                des.crypto.to_string(),
            ]);
            rows.push(row);
        }
    }
    let mut report = report_for("des_pipeline");
    report.metric("stages", n as f64);
    report.table(table);
    report.note(
        "boundary activations of in-flight microbatches share one fabric; \
         contention and per-boundary crypto are DES-only observables",
    );
    (rows, report)
}

// ---------------------------------------------------------------------
// Inference serving — latency/goodput per mode and the load sweep
// (serve_latency / serve_sweep; tee-serve extension).
// ---------------------------------------------------------------------

/// The serving [`SecurityProfile`] of a training-side [`crate::SecureMode`]:
/// the same MAC scheme / transfer protocol pairing the step simulator
/// uses, applied to decode streams and KV migration.
pub fn serve_profile(mode: crate::SecureMode) -> SecurityProfile {
    match mode {
        crate::SecureMode::NonSecure => SecurityProfile::non_secure(),
        crate::SecureMode::SgxMgx => SecurityProfile::sgx_mgx(),
        crate::SecureMode::TensorTee => SecurityProfile::tensor_tee(),
    }
}

/// Metric-name suffix for a mode (`goodput_tensortee`, …); the explore
/// runners share it for their per-mode metrics.
pub(crate) fn mode_key(mode: crate::SecureMode) -> &'static str {
    match mode {
        crate::SecureMode::NonSecure => "non_secure",
        crate::SecureMode::SgxMgx => "sgx_mgx",
        crate::SecureMode::TensorTee => "tensortee",
    }
}

/// The shared serving setup: the primary model, a serving system whose
/// KV HBM budget holds ~4 steady-state requests (so sustained load
/// spills KV to CPU DRAM), and the seeded Poisson trace shape.
fn serve_setup(ctx: &RunContext) -> (ModelConfig, ServeConfig, TraceConfig) {
    let model = ctx.primary_model();
    let mut trace = TraceConfig::poisson(ctx.serve_requests, ctx.serve_rate_rps, ctx.seed);
    if ctx.fast {
        // Shorter conversations keep the fast registry run in seconds
        // while preserving the prefill/decode and residency shapes.
        trace.prompt_mean = 256;
        trace.output_mean = 48;
    }
    let cfg =
        ServeConfig::for_model(&model, 4, trace.steady_tokens()).with_npu(ctx.cfg.npu.clone());
    (model, cfg, trace)
}

/// One serving sample: one mode on the shared trace.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Security mode.
    pub mode: crate::SecureMode,
    /// The full serving report.
    pub report: ServeReport,
}

/// Appends one `mode | completed | TTFT | TPOT | p99 | goodput | exposed
/// KV` row per sample to `table`.
fn serve_table_rows(table: &mut Table, rows: &[ServeRow]) {
    for r in rows {
        let rep = &r.report;
        table.row([
            r.mode.label().to_string(),
            format!("{}/{}", rep.completed_requests, rep.total_requests),
            rep.ttft_percentile(0.50).unwrap_or(Time::ZERO).to_string(),
            rep.ttft_percentile(0.99).unwrap_or(Time::ZERO).to_string(),
            rep.tpot_mean().to_string(),
            rep.latency_percentile(0.99)
                .unwrap_or(Time::ZERO)
                .to_string(),
            format!("{:.0} tok/s", rep.goodput_tps()),
            rep.kv_exposed_time.to_string(),
        ]);
    }
}

/// Runs the `serve_latency` artifact: the seeded Poisson trace served
/// under every context mode, reporting TTFT/TPOT/p99 latency, goodput
/// and the exposed KV-migration time per mode.
pub fn serve_latency(ctx: &RunContext) -> (Vec<ServeRow>, Report) {
    let (model, cfg, trace_cfg) = serve_setup(ctx);
    let trace = trace_cfg.generate();
    let rows: Vec<ServeRow> = ctx
        .modes
        .iter()
        .map(|&mode| ServeRow {
            mode,
            report: simulate_probed(&cfg, &model, &serve_profile(mode), &trace, &ctx.probe),
        })
        .collect();
    let mut table = Table::new([
        "mode",
        "completed",
        "TTFT p50",
        "TTFT p99",
        "TPOT",
        "latency p99",
        "goodput",
        "exposed KV",
    ]);
    serve_table_rows(&mut table, &rows);
    let mut report = report_for("serve_latency");
    report.table(table);
    for r in &rows {
        let key = mode_key(r.mode);
        report.metric(format!("goodput_{key}"), r.report.goodput_tps());
        report.metric(
            format!("exposed_kv_ms_{key}"),
            r.report.kv_exposed_time.as_ms_f64(),
        );
        report.metric(
            format!("ttft_p99_ms_{key}"),
            r.report
                .ttft_percentile(0.99)
                .unwrap_or(Time::ZERO)
                .as_ms_f64(),
        );
    }
    let find = |m: crate::SecureMode| rows.iter().find(|r| r.mode == m);
    if let (Some(base), Some(ours)) = (
        find(crate::SecureMode::SgxMgx),
        find(crate::SecureMode::TensorTee),
    ) {
        report.note(format!(
            "{} requests ({} prompt / {} output tokens mean) at {} req/s, seed {}: \
             TensorTEE goodput {:.0} tok/s vs SGX+MGX {:.0} tok/s ({:.2}x); \
             exposed KV-transfer time {} vs {}.",
            trace.len(),
            trace_cfg.prompt_mean,
            trace_cfg.output_mean,
            trace_cfg.arrivals.rate_rps(),
            trace_cfg.seed,
            ours.report.goodput_tps(),
            base.report.goodput_tps(),
            ours.report.goodput_tps() / base.report.goodput_tps().max(1e-12),
            ours.report.kv_exposed_time,
            base.report.kv_exposed_time,
        ));
    }
    (rows, report)
}

/// One `serve_sweep` sample: one load point, one arrival pattern, one
/// mode.
#[derive(Debug, Clone)]
pub struct ServeSweepRow {
    /// Offered load multiplier of the context's nominal rate.
    pub load_factor: f64,
    /// Arrival pattern label (`poisson` / `bursty`).
    pub pattern: &'static str,
    /// Security mode.
    pub mode: crate::SecureMode,
    /// The full serving report.
    pub report: ServeReport,
}

/// Runs the `serve_sweep` artifact: goodput and tail latency across
/// offered-load multipliers and arrival burstiness, per mode.
pub fn serve_sweep(ctx: &RunContext) -> (Vec<ServeSweepRow>, Report) {
    let (model, cfg, base_trace) = serve_setup(ctx);
    let mut rows = Vec::new();
    let mut table = Table::new([
        "load",
        "pattern",
        "mode",
        "completed",
        "goodput",
        "TTFT p99",
        "exposed KV",
    ]);
    for &factor in &ctx.serve_load_factors {
        let rate = ctx.serve_rate_rps * factor;
        let poisson = TraceConfig::poisson(ctx.serve_requests, rate, ctx.seed);
        let bursty = TraceConfig::bursty(ctx.serve_requests, rate, 8, ctx.seed);
        for mut trace_cfg in [poisson, bursty] {
            trace_cfg.prompt_mean = base_trace.prompt_mean;
            trace_cfg.output_mean = base_trace.output_mean;
            let trace = trace_cfg.generate();
            for &mode in &ctx.modes {
                let report =
                    simulate_probed(&cfg, &model, &serve_profile(mode), &trace, &ctx.probe);
                table.row([
                    format!("{:.1}x", factor),
                    trace_cfg.arrivals.label().to_string(),
                    mode.label().to_string(),
                    format!("{}/{}", report.completed_requests, report.total_requests),
                    format!("{:.0} tok/s", report.goodput_tps()),
                    report
                        .ttft_percentile(0.99)
                        .unwrap_or(Time::ZERO)
                        .to_string(),
                    report.kv_exposed_time.to_string(),
                ]);
                rows.push(ServeSweepRow {
                    load_factor: factor,
                    pattern: trace_cfg.arrivals.label(),
                    mode,
                    report,
                });
            }
        }
    }
    let mut report = report_for("serve_sweep");
    report.table(table);
    // Headline: each mode's goodput at the highest Poisson load.
    if let Some(&top) = ctx
        .serve_load_factors
        .iter()
        .max_by(|a, b| a.partial_cmp(b).expect("finite factors"))
    {
        for &mode in &ctx.modes {
            if let Some(r) = rows
                .iter()
                .find(|r| r.load_factor == top && r.pattern == "poisson" && r.mode == mode)
            {
                report.metric(
                    format!("peak_goodput_{}", mode_key(mode)),
                    r.report.goodput_tps(),
                );
            }
        }
    }
    (rows, report)
}

// ---------------------------------------------------------------------

/// The shared fleet setup: the primary model served by
/// [`RunContext::fleet_instances`] continuous-batching instances, and the
/// seeded multi-tenant session trace both fleet artifacts replay.
pub(crate) fn fleet_setup(ctx: &RunContext) -> (ModelConfig, FleetConfig, SessionTraceConfig) {
    let model = ctx.primary_model();
    let mut trace = SessionTraceConfig::poisson(
        ctx.fleet_requests,
        ctx.fleet_rate_rps,
        ctx.fleet_tenants,
        ctx.seed,
    );
    if ctx.fast {
        // Shorter turns keep the fast registry run in seconds while
        // preserving the session/migration shape.
        trace.prompt_mean = 192;
        trace.output_mean = 32;
    }
    let serve =
        ServeConfig::for_model(&model, 4, trace.steady_tokens()).with_npu(ctx.cfg.npu.clone());
    let cfg = FleetConfig::new(serve, ctx.fleet_instances);
    (model, cfg, trace)
}

/// One fleet sample: one placement policy, one mode, the shared trace.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Placement policy.
    pub policy: Policy,
    /// Security mode.
    pub mode: crate::SecureMode,
    /// The full fleet report.
    pub report: FleetReport,
}

/// Formats an optional nanosecond percentile as a [`Time`].
fn ns_opt(ns: Option<u64>) -> String {
    Time::from_ns(ns.unwrap_or(0)).to_string()
}

/// Runs the `fleet_latency` artifact: the seeded multi-tenant session
/// trace served by the fleet under KV-aware placement, per mode —
/// TTFT/TPOT, goodput, and the exposed KV-handoff time migrations cost.
pub fn fleet_latency(ctx: &RunContext) -> (Vec<FleetRow>, Report) {
    let (model, cfg, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let rows: Vec<FleetRow> = ctx
        .modes
        .iter()
        .map(|&mode| FleetRow {
            policy: Policy::KvAware,
            mode,
            report: fleet_simulate(&cfg, &model, &serve_profile(mode), &trace, &ctx.probe),
        })
        .collect();
    let mut table = Table::new([
        "mode",
        "completed",
        "TTFT p50",
        "TTFT p99",
        "TPOT",
        "goodput",
        "migrations",
        "exposed handoff",
    ]);
    for r in &rows {
        let rep = &r.report;
        table.row([
            r.mode.label().to_string(),
            format!("{}/{}", rep.completed_requests, rep.total_requests),
            ns_opt(rep.ttft_percentile(0.50)),
            ns_opt(rep.ttft_percentile(0.99)),
            Time::from_ns(rep.tpot_mean().round() as u64).to_string(),
            format!("{:.0} tok/s", rep.goodput_tps()),
            rep.migrations.to_string(),
            rep.handoff_exposed_time.to_string(),
        ]);
    }
    let mut report = report_for("fleet_latency");
    report.table(table);
    for r in &rows {
        let key = mode_key(r.mode);
        report.metric(format!("fleet_goodput_{key}"), r.report.goodput_tps());
        report.metric(
            format!("fleet_exposed_handoff_ms_{key}"),
            r.report.handoff_exposed_time.as_ms_f64(),
        );
        report.metric(
            format!("fleet_ttft_p99_ms_{key}"),
            Time::from_ns(r.report.ttft_percentile(0.99).unwrap_or(0)).as_ms_f64(),
        );
    }
    let find = |m: crate::SecureMode| rows.iter().find(|r| r.mode == m);
    if let (Some(base), Some(ours)) = (
        find(crate::SecureMode::SgxMgx),
        find(crate::SecureMode::TensorTee),
    ) {
        report.note(format!(
            "{} turns across {} tenants at {} turns/s on {} instances (KV-aware, seed {}): \
             TensorTEE goodput {:.0} tok/s vs SGX+MGX {:.0} tok/s; \
             exposed KV-handoff time {} vs {}.",
            trace.len(),
            trace_cfg.tenants,
            trace_cfg.arrivals.rate_rps(),
            ctx.fleet_instances,
            trace_cfg.seed,
            ours.report.goodput_tps(),
            base.report.goodput_tps(),
            ours.report.handoff_exposed_time,
            base.report.handoff_exposed_time,
        ));
    }
    (rows, report)
}

/// Runs the `fleet_handoff` artifact: the placement-policy × handoff-
/// protocol grid — migrations, migrated bytes, and per-migration exposed
/// handoff time for every combination on the shared trace.
pub fn fleet_handoff(ctx: &RunContext) -> (Vec<FleetRow>, Report) {
    let (model, cfg, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let mut rows = Vec::new();
    let mut table = Table::new([
        "policy",
        "mode",
        "completed",
        "migrations",
        "migration rate",
        "migrated",
        "exposed / migration",
    ]);
    for policy in Policy::all() {
        let run_cfg = cfg.clone().with_policy(policy);
        for &mode in &ctx.modes {
            let report = fleet_simulate(&run_cfg, &model, &serve_profile(mode), &trace, &ctx.probe);
            table.row([
                policy.label().to_string(),
                mode.label().to_string(),
                format!("{}/{}", report.completed_requests, report.total_requests),
                report.migrations.to_string(),
                pct(report.migration_rate()),
                format!("{:.1} MB", report.migrated_bytes as f64 / 1e6),
                Time::from_ns(report.exposed_per_migration_ns().round() as u64).to_string(),
            ]);
            rows.push(FleetRow {
                policy,
                mode,
                report,
            });
        }
    }
    let mut report = report_for("fleet_handoff");
    report.table(table);
    let find = |p: Policy, m: crate::SecureMode| {
        rows.iter()
            .find(|r| r.policy == p && r.mode == m)
            .map(|r| &r.report)
    };
    for policy in Policy::all() {
        if let Some(rep) = find(policy, crate::SecureMode::TensorTee) {
            report.metric(
                format!("migrations_{}", policy.label()),
                rep.migrations as f64,
            );
        }
    }
    if let (Some(kv), Some(rr)) = (
        find(Policy::KvAware, crate::SecureMode::TensorTee),
        find(Policy::RoundRobin, crate::SecureMode::TensorTee),
    ) {
        report.metric("migration_cut_vs_round_robin", {
            let rr_m = rr.migrations as f64;
            if rr_m > 0.0 {
                1.0 - kv.migrations as f64 / rr_m
            } else {
                0.0
            }
        });
        report.note(format!(
            "KV-aware placement: {} migrations vs {} under round-robin \
             ({} follow-up turns stayed local).",
            kv.migrations,
            rr.migrations,
            kv.router_stats.get("local_turns"),
        ));
    }
    if let (Some(staged), Some(direct)) = (
        find(Policy::RoundRobin, crate::SecureMode::SgxMgx),
        find(Policy::RoundRobin, crate::SecureMode::TensorTee),
    ) {
        report.metric(
            "exposed_per_migration_staged_ns",
            staged.exposed_per_migration_ns(),
        );
        report.metric(
            "exposed_per_migration_direct_ns",
            direct.exposed_per_migration_ns(),
        );
        report.note(format!(
            "Forced migrations (round-robin): staged exposes {} per migration, \
             direct {} — the overlap gap re-appears at fleet scale.",
            Time::from_ns(staged.exposed_per_migration_ns().round() as u64),
            Time::from_ns(direct.exposed_per_migration_ns().round() as u64),
        ));
    }
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecureMode;

    fn ctx() -> RunContext {
        RunContext::fast()
    }

    #[test]
    fn fig03_slowdown_grows_with_threads() {
        let (rows, report) = fig03_cpu_slowdown(&ctx());
        assert!(report.to_markdown().contains("slowdown"));
        assert!(report.metric_value("max_slowdown").unwrap() > 1.0);
        assert!(rows.iter().all(|r| r.slowdown() > 1.0));
        assert!(
            rows.last().unwrap().slowdown() > rows[0].slowdown(),
            "more threads → more memory pressure → bigger SGX slowdown: {:?}",
            rows.iter().map(Fig3Row::slowdown).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig04_census_renders_all_models() {
        let md = fig04_tensor_census(&RunContext::full()).to_markdown();
        assert!(md.contains("GPT2-M"));
        assert!(md.contains("OPT-6.7B"));
    }

    #[test]
    fn fig15_timelines_render() {
        let md = fig15_overlap(&ctx()).to_markdown();
        assert!(md.contains("Baseline"));
        assert!(md.contains("TensorTEE"));
        assert!(md.contains("backward"));
    }

    #[test]
    fn fig16_shapes_hold_on_subset() {
        let (rows, report) = fig16_overall(&ctx());
        assert!(report.to_markdown().contains("speedup"));
        for r in &rows {
            assert!(r.speedup() > 1.5, "{}: {:.2}", r.model.name, r.speedup());
            assert!(r.overhead() < 0.25, "{}: {:.3}", r.model.name, r.overhead());
        }
        let last = rows.last().unwrap();
        assert!(last.speedup() > rows[0].speedup(), "grows with size");
        let avg = report.metric_value("avg_speedup").unwrap();
        assert!(avg > 1.5, "{avg}");
    }

    #[test]
    fn fig18_converges() {
        let (rows, _) = fig18_hit_rate(&ctx());
        let last = rows.last().unwrap();
        assert!(last.hit_in > 0.8, "late hit_in {}", last.hit_in);
        assert!(rows[1].hit_all > 0.5, "hit_all high after one iteration");
    }

    #[test]
    fn fig20_sweep_shape() {
        let (rows, report) = fig20_mac_granularity(&ctx());
        assert!(report.to_markdown().contains("tensor-delayed"));
        let find = |l: &str| rows.iter().find(|r| r.label == l).unwrap().slowdown;
        assert!(find("64B") > find("512B"));
        assert!(find("4kB") > find("512B"));
        assert!(find("tensor-delayed") < 1.05);
        assert_eq!(
            report.metric_value("tensor_delayed_slowdown"),
            Some(find("tensor-delayed"))
        );
    }

    #[test]
    fn fig21_improvement_large() {
        let context = ctx().with_models(vec![TABLE2[1]]);
        let (rows, report) = fig21_comm_breakdown(&context);
        assert!(report.to_markdown().contains("improvement"));
        assert!(rows[0].improvement() > 5.0, "{:.1}", rows[0].improvement());
    }

    #[test]
    fn sec62_hit_rate_high() {
        let (rate, report) = sec62_gemm_detection(&ctx());
        assert!(rate > 0.95, "{rate}");
        assert!(report.to_markdown().contains("98.8%"));
        assert_eq!(report.metric_value("hit_in"), Some(rate));
    }

    #[test]
    fn sec65_and_tab2_render() {
        let md = sec65_hw_overhead(&ctx()).to_markdown();
        assert!(md.contains("Meta Table"));
        assert!(md.contains("KB"));
        let md = tab2_workloads(&ctx()).to_markdown();
        assert!(md.contains("OPT-6.7B"));
        assert!(md.contains("hidden"));
    }

    #[test]
    fn ablations_sweeps_render() {
        let md = ablations(&ctx()).to_markdown();
        assert!(md.contains("Meta Table capacity"));
        assert!(md.contains("Tensor Filter collection threshold"));
        assert!(md.contains("metadata-cache size"));
        assert!(md.contains("AES bandwidth"));
    }

    #[test]
    fn serve_latency_orders_the_modes() {
        let (rows, report) = serve_latency(&ctx());
        assert_eq!(rows.len(), 3);
        let get = |m: SecureMode| {
            rows.iter()
                .find(|r| r.mode == m)
                .map(|r| r.report.clone())
                .unwrap()
        };
        let ns = get(SecureMode::NonSecure);
        let base = get(SecureMode::SgxMgx);
        let ours = get(SecureMode::TensorTee);
        // Everyone drains the trace; goodput and exposed-KV orderings are
        // the serving analogue of Figure 16.
        for r in [&ns, &base, &ours] {
            assert_eq!(r.completed_requests, r.total_requests);
        }
        assert!(ours.goodput_tps() >= base.goodput_tps());
        assert!(ns.goodput_tps() >= ours.goodput_tps());
        assert!(
            ours.kv_exposed_time < base.kv_exposed_time,
            "direct must expose strictly less KV-transfer time: {} vs {}",
            ours.kv_exposed_time,
            base.kv_exposed_time
        );
        assert!(
            base.kv_stats.get("offloads") > 0,
            "budget must force spills"
        );
        let md = report.to_markdown();
        assert!(md.contains("goodput"));
        assert!(report.metric_value("goodput_tensortee").unwrap() > 0.0);
    }

    #[test]
    fn serve_sweep_covers_the_grid() {
        let context = ctx();
        let (rows, report) = serve_sweep(&context);
        assert_eq!(
            rows.len(),
            context.serve_load_factors.len() * 2 * context.modes.len()
        );
        assert!(report.to_markdown().contains("bursty"));
        assert!(report.metric_value("peak_goodput_tensortee").unwrap() > 0.0);
        // Every sample drains its trace regardless of load or burstiness.
        for r in &rows {
            assert_eq!(r.report.completed_requests, r.report.total_requests);
        }
    }

    #[test]
    fn fleet_latency_compares_the_modes() {
        let (rows, report) = fleet_latency(&ctx());
        assert_eq!(rows.len(), ctx().modes.len());
        let md = report.to_markdown();
        assert!(md.contains("exposed handoff"));
        assert!(report.metric_value("fleet_goodput_tensortee").unwrap() > 0.0);
        let find = |m: SecureMode| &rows.iter().find(|r| r.mode == m).unwrap().report;
        let staged = find(SecureMode::SgxMgx);
        let direct = find(SecureMode::TensorTee);
        // Same trace, same placement → the same migration count; the
        // staged protocol exposes more of each handoff.
        assert_eq!(staged.migrations, direct.migrations);
        if staged.migrations > 0 {
            assert!(staged.handoff_exposed_time > direct.handoff_exposed_time);
        }
    }

    #[test]
    fn fleet_handoff_covers_the_grid() {
        let context = ctx();
        let (rows, report) = fleet_handoff(&context);
        assert_eq!(rows.len(), 3 * context.modes.len());
        assert!(report.to_markdown().contains("kv_aware"));
        let migr = |l: &str| report.metric_value(&format!("migrations_{l}")).unwrap();
        assert!(
            migr("kv_aware") < migr("round_robin"),
            "kv-aware {} vs round-robin {}",
            migr("kv_aware"),
            migr("round_robin")
        );
        let staged = report
            .metric_value("exposed_per_migration_staged_ns")
            .unwrap();
        let direct = report
            .metric_value("exposed_per_migration_direct_ns")
            .unwrap();
        assert!(direct < staged, "direct {direct} vs staged {staged}");
    }

    #[test]
    fn scaling_table_shape() {
        // GPT 117M keeps the sweep fast.
        let context = ctx()
            .with_models(vec![TABLE2[0]])
            .with_modes(vec![SecureMode::SgxMgx, SecureMode::TensorTee]);
        let (rows, report) = scaling_strong(&context);
        assert_eq!(
            rows.len(),
            context.modes.len() * context.cluster_sizes.len()
        );
        assert!(report.to_markdown().contains("exposed comm"));
        // N=1 rows have no ring traffic; N>1 rows do.
        for r in &rows {
            if r.n_npus == 1 {
                assert_eq!(r.ar_wire_bytes, 0);
                assert_eq!(r.breakdown.comm_ar, Time::ZERO);
            } else {
                assert!(r.ar_wire_bytes > 0);
            }
        }
    }
}
