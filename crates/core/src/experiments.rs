//! Experiment runners — one per paper table/figure.
//!
//! Every function returns a rendered markdown artifact (plus structured
//! data where benches need it), so `cargo bench` regenerates the paper's
//! evaluation section. The experiment index lives in EXPERIMENTS.md.

use crate::config::{ClusterConfig, SecureMode, SystemConfig};
use crate::report::{f2, pct, Table};
use crate::system::{ClusterStepBreakdown, ClusterSystem, TrainingSystem};
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_comm::schedule::{overlapped_time, serialized_time, Timeline};
use tee_cpu::analyzer::TenAnalyzerConfig;
use tee_cpu::{AdamWorkload, CpuEngine, GemmWorkload, SoftVnConfig, TeeMode};
use tee_npu::engine::Layer as NpuLayer;
use tee_npu::mac::figure20_sweep;
use tee_npu::NpuEngine;
use tee_sim::Time;
use tee_workloads::census::TensorCensus;
use tee_workloads::zoo::{ModelConfig, TABLE2};
use tee_workloads::StepSchedule;

/// A benchmark-scale Adam workload derived from a model's census,
/// shrunk so the cacheline-level simulation stays fast while remaining
/// memory-bound against the scaled cache hierarchy.
pub fn bench_adam_workload(model: &ModelConfig, scale: u64) -> AdamWorkload {
    let census = TensorCensus::of(model).scaled(scale);
    AdamWorkload::from_tensor_sizes(&census.sizes())
}

// ---------------------------------------------------------------------
// Figure 3 — CPU TEE slowdown vs. thread count.
// ---------------------------------------------------------------------

/// One Figure-3 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Worker threads.
    pub threads: u32,
    /// Non-secure steady iteration latency.
    pub non_secure: Time,
    /// SGX steady iteration latency.
    pub sgx: Time,
}

impl Fig3Row {
    /// SGX / non-secure.
    pub fn slowdown(&self) -> f64 {
        self.sgx.as_secs_f64() / self.non_secure.as_secs_f64()
    }
}

/// Runs the Figure-3 sweep (Adam, 1–8 threads, non-secure vs SGX).
pub fn fig03_cpu_slowdown(cfg: &SystemConfig, threads: &[u32]) -> (Vec<Fig3Row>, String) {
    let model = TABLE2[1]; // GPT2-M, the paper's motivating example
    let workload = bench_adam_workload(&model, cfg.sim_scale);
    let iters = cfg.cpu_iterations.max(2);
    let rows: Vec<Fig3Row> = threads
        .iter()
        .map(|&t| {
            let mut ns = CpuEngine::new(cfg.cpu.clone(), TeeMode::NonSecure);
            let mut sgx = CpuEngine::new(cfg.cpu.clone(), TeeMode::Sgx);
            Fig3Row {
                threads: t,
                non_secure: ns.run_adam(&workload, t, iters).steady_latency(1),
                sgx: sgx.run_adam(&workload, t, iters).steady_latency(1),
            }
        })
        .collect();
    let mut table = Table::new(["threads", "non-secure", "SGX", "slowdown"]);
    for r in &rows {
        table.row([
            r.threads.to_string(),
            r.non_secure.to_string(),
            r.sgx.to_string(),
            format!("{:.2}x", r.slowdown()),
        ]);
    }
    (rows, table.to_markdown())
}

// ---------------------------------------------------------------------
// Figure 4 — tensor census.
// ---------------------------------------------------------------------

/// Renders the Figure-4 census across the Table-2 zoo.
pub fn fig04_tensor_census() -> String {
    let mut table = Table::new(["model", "tensor count", "max tensor", "total fp32"]);
    for m in TABLE2 {
        let c = TensorCensus::of(&m);
        table.row([
            m.name.to_string(),
            c.count().to_string(),
            tee_sim::util::fmt_bytes(c.max_bytes()),
            tee_sim::util::fmt_bytes(c.total_bytes()),
        ]);
    }
    table.to_markdown()
}

// ---------------------------------------------------------------------
// Figures 5 & 17 — phase breakdowns.
// ---------------------------------------------------------------------

/// Phase-fraction rows for the given models under every mode.
pub fn breakdown_table(cfg: &SystemConfig, models: &[ModelConfig]) -> String {
    let mut table = Table::new(["model", "mode", "NPU", "CPU", "Comm W", "Comm G"]);
    for m in models {
        for mode in SecureMode::all() {
            let b = TrainingSystem::new(cfg.clone(), mode).simulate_step(m);
            let (npu, cpu, w, g) = b.fractions();
            table.row([
                m.name.to_string(),
                mode.label().to_string(),
                pct(npu),
                pct(cpu),
                pct(w),
                pct(g),
            ]);
        }
    }
    table.to_markdown()
}

/// Figure 5: the GPT2-M breakdown.
pub fn fig05_breakdown(cfg: &SystemConfig) -> String {
    breakdown_table(cfg, &[TABLE2[1]])
}

/// Figure 17: breakdown across the full zoo.
pub fn fig17_breakdown(cfg: &SystemConfig, models: &[ModelConfig]) -> String {
    breakdown_table(cfg, models)
}

// ---------------------------------------------------------------------
// Figure 15 (and 7) — overlap timelines.
// ---------------------------------------------------------------------

/// Renders the serialized-vs-overlapped timelines for one gradient
/// transfer against a backward phase.
pub fn fig15_overlap(grad_bytes: u64, bwd: Time) -> String {
    let staged = StagingProtocol::new().transfer(Time::ZERO, grad_bytes);
    let direct = DirectProtocol::new().transfer(Time::ZERO, grad_bytes);

    let mut base = Timeline::new();
    base.push(0, "backward", Time::ZERO, bwd);
    base.push(1, "re-enc", bwd, bwd + staged.re_encryption);
    base.push(
        1,
        "comm",
        bwd + staged.re_encryption,
        bwd + staged.re_encryption + staged.comm,
    );
    base.push(
        1,
        "dec",
        bwd + staged.re_encryption + staged.comm,
        bwd + staged.total(),
    );

    let mut ours = Timeline::new();
    ours.push(0, "backward", Time::ZERO, bwd);
    ours.push(1, "comm", Time::ZERO, direct.comm.min(bwd));

    format!(
        "Baseline (Figure 7): serialized, total {}\n{}\n\nTensorTEE (Figure 15): overlapped, total {}\n{}\n",
        serialized_time(bwd, staged.total()),
        base.render(64),
        overlapped_time(bwd, direct.comm),
        ours.render(64),
    )
}

// ---------------------------------------------------------------------
// Figure 16 — overall performance.
// ---------------------------------------------------------------------

/// One Figure-16 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Row {
    /// Model.
    pub model: ModelConfig,
    /// Latency per batch, non-secure.
    pub non_secure: Time,
    /// Latency per batch, SGX+MGX.
    pub sgx_mgx: Time,
    /// Latency per batch, TensorTEE.
    pub ours: Time,
}

impl Fig16Row {
    /// Speedup of TensorTEE over SGX+MGX.
    pub fn speedup(&self) -> f64 {
        self.sgx_mgx.as_secs_f64() / self.ours.as_secs_f64()
    }

    /// Overhead of TensorTEE vs non-secure.
    pub fn overhead(&self) -> f64 {
        self.ours.as_secs_f64() / self.non_secure.as_secs_f64() - 1.0
    }
}

/// Runs Figure 16 for the given models.
pub fn fig16_overall(cfg: &SystemConfig, models: &[ModelConfig]) -> (Vec<Fig16Row>, String) {
    let rows: Vec<Fig16Row> = models
        .iter()
        .map(|m| Fig16Row {
            model: *m,
            non_secure: TrainingSystem::new(cfg.clone(), SecureMode::NonSecure)
                .simulate_step(m)
                .total(),
            sgx_mgx: TrainingSystem::new(cfg.clone(), SecureMode::SgxMgx)
                .simulate_step(m)
                .total(),
            ours: TrainingSystem::new(cfg.clone(), SecureMode::TensorTee)
                .simulate_step(m)
                .total(),
        })
        .collect();
    let mut table = Table::new([
        "model",
        "non-secure",
        "SGX+MGX",
        "TensorTEE",
        "speedup",
        "overhead vs NS",
    ]);
    for r in &rows {
        table.row([
            r.model.name.to_string(),
            r.non_secure.to_string(),
            r.sgx_mgx.to_string(),
            r.ours.to_string(),
            format!("{:.2}x", r.speedup()),
            pct(r.overhead()),
        ]);
    }
    let speedups: Vec<f64> = rows.iter().map(Fig16Row::speedup).collect();
    let overheads: Vec<f64> = rows.iter().map(Fig16Row::overhead).collect();
    let avg_speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let avg_overhead = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    let md = format!(
        "{}\nAverage speedup vs SGX+MGX: {:.2}x (paper: 4.0x)\nAverage overhead vs non-secure: {} (paper: 2.1%)\n",
        table.to_markdown(),
        avg_speedup,
        pct(avg_overhead),
    );
    (rows, md)
}

// ---------------------------------------------------------------------
// Figure 18 — Meta Table hit rate vs iteration.
// ---------------------------------------------------------------------

/// One Figure-18 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig18Row {
    /// Iteration index.
    pub iteration: u32,
    /// hit_in rate.
    pub hit_in: f64,
    /// hit_all (= hit_in + hit_boundary) rate.
    pub hit_all: f64,
    /// hit_boundary rate.
    pub hit_boundary: f64,
}

/// Runs Adam under TensorTEE (no preload — cold detection) and samples
/// per-iteration Meta Table hit rates.
pub fn fig18_hit_rate(cfg: &SystemConfig, iterations: u32) -> (Vec<Fig18Row>, String) {
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    let mut engine = CpuEngine::new(
        cfg.cpu.clone(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let report = engine.run_adam(&workload, cfg.cpu_threads, iterations);
    let rows: Vec<Fig18Row> = report
        .iterations
        .iter()
        .enumerate()
        .map(|(i, it)| Fig18Row {
            iteration: i as u32,
            hit_in: it.hit_in_rate(),
            hit_all: it.hit_all_rate(),
            hit_boundary: it.hit_all_rate() - it.hit_in_rate(),
        })
        .collect();
    let mut table = Table::new(["iteration", "hit_all", "hit_in", "hit_boundary"]);
    for r in &rows {
        table.row([
            r.iteration.to_string(),
            f2(r.hit_all),
            f2(r.hit_in),
            f2(r.hit_boundary),
        ]);
    }
    (rows, table.to_markdown())
}

// ---------------------------------------------------------------------
// Figure 19 — CPU performance vs iteration and baseline comparison.
// ---------------------------------------------------------------------

/// Figure-19 data for one thread count.
#[derive(Debug, Clone)]
pub struct Fig19Series {
    /// Threads.
    pub threads: u32,
    /// Non-secure steady latency (the 1.0 reference).
    pub non_secure: Time,
    /// SGX steady latency.
    pub sgx: Time,
    /// SoftVN steady latency.
    pub softvn: Time,
    /// TensorTEE per-iteration latency at the sampled iterations.
    pub tensortee: Vec<(u32, Time)>,
}

/// Runs Figure 19 for the given thread counts and iteration checkpoints.
pub fn fig19_cpu_perf(
    cfg: &SystemConfig,
    threads: &[u32],
    checkpoints: &[u32],
) -> (Vec<Fig19Series>, String) {
    let workload = bench_adam_workload(&TABLE2[1], cfg.sim_scale);
    let max_iter = checkpoints.iter().copied().max().unwrap_or(1);
    let mut out = Vec::new();
    for &t in threads {
        let mut ns = CpuEngine::new(cfg.cpu.clone(), TeeMode::NonSecure);
        let non_secure = ns.run_adam(&workload, t, 3).steady_latency(1);
        let mut sgx = CpuEngine::new(cfg.cpu.clone(), TeeMode::Sgx);
        let sgx_lat = sgx.run_adam(&workload, t, 3).steady_latency(1);
        let mut sv = CpuEngine::new(cfg.cpu.clone(), TeeMode::SoftVn(SoftVnConfig::default()));
        let softvn = sv.run_adam(&workload, t, 3).steady_latency(1);
        let mut tt = CpuEngine::new(
            cfg.cpu.clone(),
            TeeMode::TensorTee(TenAnalyzerConfig::default()),
        );
        let rep = tt.run_adam(&workload, t, max_iter);
        let tensortee = checkpoints
            .iter()
            .map(|&c| {
                let idx = (c as usize).min(rep.iterations.len()) - 1;
                (c, rep.iterations[idx].latency)
            })
            .collect();
        out.push(Fig19Series {
            threads: t,
            non_secure,
            sgx: sgx_lat,
            softvn,
            tensortee,
        });
    }
    let mut table = Table::new(["threads", "config", "normalized latency"]);
    for s in &out {
        let norm = |t: Time| f2(t.as_secs_f64() / s.non_secure.as_secs_f64());
        table.row([s.threads.to_string(), "non-secure".into(), "1.00".into()]);
        table.row([s.threads.to_string(), "SGX".into(), norm(s.sgx)]);
        table.row([s.threads.to_string(), "SoftVN".into(), norm(s.softvn)]);
        for (c, lat) in &s.tensortee {
            table.row([
                s.threads.to_string(),
                format!("TensorTEE @ iter {c}"),
                norm(*lat),
            ]);
        }
    }
    (out, table.to_markdown())
}

// ---------------------------------------------------------------------
// Figure 20 — MAC granularity sweep.
// ---------------------------------------------------------------------

/// One Figure-20 sample.
#[derive(Debug, Clone)]
pub struct Fig20Row {
    /// Scheme label.
    pub label: String,
    /// Normalized performance (non-secure = 1.0; lower is worse… shown as
    /// slowdown here).
    pub slowdown: f64,
    /// Off-chip storage overhead fraction.
    pub storage: f64,
}

/// Runs the Figure-20 granularity sweep over a transformer layer mix.
pub fn fig20_mac_granularity(cfg: &SystemConfig) -> (Vec<Fig20Row>, String) {
    let schedule = StepSchedule::of(&TABLE2[1]).scaled(64);
    let layers: Vec<NpuLayer> = schedule
        .npu_layers
        .iter()
        .map(|l| NpuLayer {
            macs: l.macs,
            in_bytes: l.in_bytes,
            w_bytes: l.w_bytes,
            out_bytes: l.out_bytes,
        })
        .collect();
    let rows: Vec<Fig20Row> = figure20_sweep()
        .into_iter()
        .map(|scheme| {
            let slowdown = NpuEngine::new(cfg.npu.clone(), scheme).slowdown(&layers);
            Fig20Row {
                label: scheme.label(),
                slowdown,
                storage: scheme.storage_overhead(64 << 20),
            }
        })
        .collect();
    let mut table = Table::new(["MAC granularity", "slowdown", "storage overhead"]);
    for r in &rows {
        table.row([
            r.label.clone(),
            format!("{:.3}x", r.slowdown),
            pct(r.storage),
        ]);
    }
    (rows, table.to_markdown())
}

// ---------------------------------------------------------------------
// Figure 21 — gradient-transfer breakdown.
// ---------------------------------------------------------------------

/// One Figure-21 sample.
#[derive(Debug, Clone, Copy)]
pub struct Fig21Row {
    /// Model.
    pub model: ModelConfig,
    /// Baseline re-encryption time.
    pub base_reenc: Time,
    /// Baseline bus time.
    pub base_comm: Time,
    /// Baseline decryption time.
    pub base_dec: Time,
    /// TensorTEE raw transfer duration (direct DMA, no crypto).
    pub ours_comm: Time,
    /// TensorTEE exposed communication time (after overlap with backward).
    pub ours_exposed: Time,
}

impl Fig21Row {
    /// Baseline total.
    pub fn base_total(&self) -> Time {
        self.base_reenc + self.base_comm + self.base_dec
    }

    /// Communication improvement factor: serialized baseline transfer
    /// time over the direct transfer's raw duration (the paper's 18.7x
    /// metric); overlap additionally hides the remainder (Figure 15).
    pub fn improvement(&self) -> f64 {
        self.base_total().as_secs_f64() / self.ours_comm.as_secs_f64().max(1e-12)
    }
}

/// Runs Figure 21 for the given models.
pub fn fig21_comm_breakdown(cfg: &SystemConfig, models: &[ModelConfig]) -> (Vec<Fig21Row>, String) {
    let rows: Vec<Fig21Row> = models
        .iter()
        .map(|m| {
            let schedule = StepSchedule::of(m);
            let staged = StagingProtocol::new().transfer(Time::ZERO, schedule.grad_bytes);
            let direct = DirectProtocol::new().transfer(Time::ZERO, schedule.grad_bytes);
            // Overlap window: the backward phase under TensorTEE.
            let sys = TrainingSystem::new(cfg.clone(), SecureMode::TensorTee);
            let npu = sys.npu_time(&schedule);
            let bwd_window = Time::from_ps(npu.as_ps() * 2 / 3);
            Fig21Row {
                model: *m,
                base_reenc: staged.re_encryption,
                base_comm: staged.comm,
                base_dec: staged.decryption,
                ours_comm: direct.comm,
                ours_exposed: direct.comm.saturating_sub(bwd_window) + Time::from_ns(600), // residual sync latency
            }
        })
        .collect();
    let mut table = Table::new([
        "model",
        "base re-enc",
        "base comm",
        "base dec",
        "ours comm",
        "ours exposed",
        "improvement",
    ]);
    for r in &rows {
        table.row([
            r.model.name.to_string(),
            r.base_reenc.to_string(),
            r.base_comm.to_string(),
            r.base_dec.to_string(),
            r.ours_comm.to_string(),
            r.ours_exposed.to_string(),
            format!("{:.1}x", r.improvement()),
        ]);
    }
    let avg: f64 = rows.iter().map(Fig21Row::improvement).sum::<f64>() / rows.len().max(1) as f64;
    let md = format!(
        "{}\nAverage communication improvement: {avg:.1}x (paper: 18.7x)\n",
        table.to_markdown()
    );
    (rows, md)
}

// ---------------------------------------------------------------------
// §6.2 — GEMM detection.
// ---------------------------------------------------------------------

/// Runs the §6.2 GEMM experiment: 256×256 matrix, 64×64 tiles; one GEMM
/// builds the structures, the next measures hit_in (paper: 98.8%).
pub fn sec62_gemm_detection(cfg: &SystemConfig) -> (f64, String) {
    let mut engine = CpuEngine::new(
        cfg.cpu.clone(),
        TeeMode::TensorTee(TenAnalyzerConfig::default()),
    );
    let gemm = GemmWorkload::new(256, 64);
    let _build = engine.run_gemm(&gemm);
    let measured = engine.run_gemm(&gemm);
    let rate = measured.hit_in_rate();
    let md = format!(
        "GEMM 256x256, 64x64 tiles: hit_in after structure construction = {} (paper: 98.8%)\n",
        pct(rate)
    );
    (rate, md)
}

// ---------------------------------------------------------------------
// Strong scaling — multi-NPU data parallelism (scaling_1_2_4_8 bench).
// ---------------------------------------------------------------------

/// One strong-scaling sample: one cluster size under one mode.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Data-parallel NPU replicas.
    pub n_npus: u32,
    /// Security mode.
    pub mode: SecureMode,
    /// Full per-phase breakdown.
    pub breakdown: ClusterStepBreakdown,
    /// Bytes each rank puts on the ring (`2·(N−1)/N·grad_bytes`).
    pub ar_wire_bytes: u64,
}

impl ScalingRow {
    /// Step-time speedup relative to `base` (the table uses the same
    /// mode's smallest-cluster sample).
    pub fn speedup_over(&self, base: &ScalingRow) -> f64 {
        base.breakdown.total().as_secs_f64() / self.breakdown.total().as_secs_f64()
    }
}

/// Runs the strong-scaling sweep: a fixed global batch of `model` split
/// across each cluster size in `sizes`, under each mode in `modes`.
///
/// The table reports step time, speedup over the same mode's single-NPU
/// step, the exposed-communication fraction, and the per-rank all-reduce
/// wire bytes. The shapes to look for: the staging protocol's exposed-comm
/// fraction grows with N (every ring hop pays the §3.3 conversion, while
/// per-replica compute shrinks), whereas the direct protocol's stays
/// roughly flat because the collective hides in the backward window.
pub fn scaling_strong(
    cfg: &SystemConfig,
    model: &ModelConfig,
    sizes: &[u32],
    modes: &[SecureMode],
) -> (Vec<ScalingRow>, String) {
    let mut rows = Vec::new();
    // The speedup baseline is each mode's first cluster size — label the
    // column accordingly so a sweep not starting at 1 stays honest.
    let base_n = sizes.first().copied().unwrap_or(1);
    let mut table = Table::new([
        "NPUs".to_string(),
        "mode".to_string(),
        "step".to_string(),
        format!("speedup vs N={base_n}"),
        "exposed comm".to_string(),
        "AR wire bytes/rank".to_string(),
    ]);
    for &mode in modes {
        let mut base: Option<ScalingRow> = None;
        for &n in sizes {
            let cluster = ClusterConfig::of(n);
            let mut sys = ClusterSystem::new(cfg.clone(), cluster, mode);
            let breakdown = sys.simulate_step(model);
            let ar = sys.all_reduce_cost(model.grad_bytes());
            let row = ScalingRow {
                n_npus: n,
                mode,
                breakdown,
                ar_wire_bytes: ar.wire_bytes(),
            };
            let base = *base.get_or_insert(row);
            table.row([
                n.to_string(),
                mode.label().to_string(),
                breakdown.total().to_string(),
                format!("{}x", f2(row.speedup_over(&base))),
                pct(breakdown.exposed_comm_fraction()),
                tee_sim::util::fmt_bytes(row.ar_wire_bytes),
            ]);
            rows.push(row);
        }
    }
    (rows, table.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::fast_sim()
    }

    #[test]
    fn fig03_slowdown_grows_with_threads() {
        let (rows, md) = fig03_cpu_slowdown(&cfg(), &[1, 4]);
        assert!(md.contains("slowdown"));
        assert!(rows.iter().all(|r| r.slowdown() > 1.0));
        assert!(
            rows[1].slowdown() > rows[0].slowdown(),
            "more threads → more memory pressure → bigger SGX slowdown: {:?}",
            rows.iter().map(Fig3Row::slowdown).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig04_census_renders_all_models() {
        let md = fig04_tensor_census();
        assert!(md.contains("GPT2-M"));
        assert!(md.contains("OPT-6.7B"));
    }

    #[test]
    fn fig15_timelines_render() {
        let art = fig15_overlap(1 << 30, Time::from_ms(50));
        assert!(art.contains("Baseline"));
        assert!(art.contains("TensorTEE"));
        assert!(art.contains("backward"));
    }

    #[test]
    fn fig16_shapes_hold_on_subset() {
        let models = [TABLE2[0], TABLE2[8]];
        let (rows, md) = fig16_overall(&cfg(), &models);
        assert!(md.contains("speedup"));
        for r in &rows {
            assert!(r.speedup() > 1.5, "{}: {:.2}", r.model.name, r.speedup());
            assert!(r.overhead() < 0.25, "{}: {:.3}", r.model.name, r.overhead());
        }
        assert!(rows[1].speedup() > rows[0].speedup(), "grows with size");
    }

    #[test]
    fn fig18_converges() {
        let (rows, _) = fig18_hit_rate(&cfg(), 6);
        let last = rows.last().unwrap();
        assert!(last.hit_in > 0.8, "late hit_in {}", last.hit_in);
        assert!(rows[1].hit_all > 0.5, "hit_all high after one iteration");
    }

    #[test]
    fn fig20_sweep_shape() {
        let (rows, md) = fig20_mac_granularity(&cfg());
        assert!(md.contains("tensor-delayed"));
        let find = |l: &str| rows.iter().find(|r| r.label == l).unwrap().slowdown;
        assert!(find("64B") > find("512B"));
        assert!(find("4kB") > find("512B"));
        assert!(find("tensor-delayed") < 1.05);
    }

    #[test]
    fn fig21_improvement_large() {
        let (rows, md) = fig21_comm_breakdown(&cfg(), &[TABLE2[1]]);
        assert!(md.contains("improvement"));
        assert!(rows[0].improvement() > 5.0, "{:.1}", rows[0].improvement());
    }

    #[test]
    fn sec62_hit_rate_high() {
        let (rate, md) = sec62_gemm_detection(&cfg());
        assert!(rate > 0.95, "{rate}");
        assert!(md.contains("98.8%"));
    }

    #[test]
    fn scaling_table_shape() {
        let model = TABLE2[0]; // GPT 117M keeps the sweep fast.
        let (rows, md) = scaling_strong(
            &cfg(),
            &model,
            &[1, 4],
            &[SecureMode::SgxMgx, SecureMode::TensorTee],
        );
        assert_eq!(rows.len(), 4);
        assert!(md.contains("exposed comm"));
        // N=1 rows have no ring traffic; N=4 rows do.
        for r in &rows {
            if r.n_npus == 1 {
                assert_eq!(r.ar_wire_bytes, 0);
                assert_eq!(r.breakdown.comm_ar, Time::ZERO);
            } else {
                assert!(r.ar_wire_bytes > 0);
            }
        }
    }
}
