//! Design-space exploration over the TensorTEE system models — the
//! `explore_pareto` / `explore_sensitivity` artifacts and the engine
//! behind `tensortee explore <train|cluster|serve|des|fleet>`.
//!
//! The paper evaluates its headline claims at a handful of hand-picked
//! hardware points; this module asks *where in the hardware/security
//! space* the TensorTEE advantage holds or collapses. A [`Scenario`]
//! names knobs over the existing configurations (bus and HBM bandwidth,
//! PE-array size, MGX MAC granularity, batch, cluster shape, serving
//! load, model from the Table-2 zoo), `tee-explore` samples the space
//! (full grid when it fits the point budget, seeded Latin hypercube
//! otherwise) and fans the points across worker threads, and every point
//! is priced through the *existing* simulators —
//! [`TrainingSystem`] / [`ClusterSystem`] / [`tee_serve::simulate`] —
//! under every security mode. Four objectives come back per evaluation
//! (one per [`Objective`] variant):
//!
//! 1. **throughput** (tokens/s — maximize),
//! 2. **exposed transfer time** (non-overlapped communication or KV
//!    migration — minimize),
//! 3. **crypto-traffic overhead** (staging re-encryption, verify stalls,
//!    MAC traffic — as a fraction of the step/makespan — minimize),
//! 4. **leakage** (bits per observed transfer a link-level adversary can
//!    extract, [`tee_attack`]'s estimators — minimize; priced by the
//!    attack scenario, zero elsewhere).
//!
//! The analysis layer distills the evaluations into a multi-objective
//! Pareto frontier, per-knob one-at-a-time tornado sensitivities, and
//! the **crossover** report: sampled configurations (if any) where the
//! SGX+MGX-style baseline overtakes TensorTEE.
//!
//! Everything is deterministic: the sampling plan is a pure function of
//! `(space, points, seed)`, each point evaluates under its own
//! [`tee_sim::SplitMix64`] sub-stream, and reports are byte-identical
//! for any `--threads` value.

use crate::artifact::RunContext;
use crate::config::{ClusterConfig, SecureMode, SystemConfig};
use crate::des_cluster::{DesClusterConfig, DesClusterSystem, Parallelism};
use crate::experiments::{mode_key, serve_profile};
use crate::report::{pct, Report, Table};
use crate::system::{ClusterSystem, TrainingSystem};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use tee_attack::{
    extractable_bits, size_bucket, KvShield, Observation, Shaping, MEASUREMENT_QUANTUM,
};
use tee_comm::Interconnect;
use tee_explore::{dominator_of, pareto_frontier, tornado, Executor, Knob, Point, Sense, Space};
use tee_fleet::{simulate as fleet_simulate, FleetConfig, Policy};
use tee_mem::DramConfig;
use tee_serve::{
    simulate, simulate_probed, Diurnal, KvProtocol, ServeConfig, SessionTraceConfig, TraceConfig,
};
use tee_sim::probe::SharedProbe;
use tee_sim::{SplitMix64, Time};
use tee_workloads::zoo::ModelConfig;
use tee_workloads::StepSchedule;

/// The workload class a design-space sweep prices its points through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Single-NPU ZeRO-Offload training steps ([`TrainingSystem`]).
    Train,
    /// N-way data-parallel training with the secure ring all-reduce
    /// ([`ClusterSystem`]).
    Cluster,
    /// Continuous-batching inference serving ([`tee_serve`]).
    Serve,
    /// Discrete-event cluster training — heterogeneous NPUs and pipeline
    /// schedules the analytic model cannot price
    /// ([`crate::DesClusterSystem`]).
    Des,
    /// Fleet serving — M instances behind the KV-aware router with
    /// priced secure KV handoffs ([`tee_fleet`]).
    Fleet,
    /// Link-level adversary vs. priced defenses: traced serving runs
    /// scored by [`tee_attack`]'s leakage estimators, with traffic
    /// shaping and shielded-at-rest KV as knobs.
    Attack,
}

impl Scenario {
    /// Display label (also the CLI subcommand argument).
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Train => "train",
            Scenario::Cluster => "cluster",
            Scenario::Serve => "serve",
            Scenario::Des => "des",
            Scenario::Fleet => "fleet",
            Scenario::Attack => "attack",
        }
    }

    /// Parses a CLI scenario argument.
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s2| s2.label() == s)
    }

    /// All scenarios, in presentation order.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::Train,
            Scenario::Cluster,
            Scenario::Serve,
            Scenario::Des,
            Scenario::Fleet,
            Scenario::Attack,
        ]
    }
}

/// One optimization objective of an [`ModeEval`]. The single source of
/// truth for objective names, order, and senses: CLI usage, frontier
/// table headers, [`SENSES`], and [`ModeEval::objectives`] all derive
/// from it, so they cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// End-to-end token throughput (maximize).
    Throughput,
    /// Exposed (non-overlapped) transfer / KV-migration time (minimize).
    Exposed,
    /// Crypto-traffic overhead as a fraction of the step or makespan
    /// (minimize).
    Crypto,
    /// Bits per observed transfer a link-level adversary can extract
    /// (minimize).
    Leakage,
}

impl Objective {
    /// Display label (report headers, CLI usage).
    pub fn label(&self) -> &'static str {
        match self {
            Objective::Throughput => "throughput",
            Objective::Exposed => "exposed",
            Objective::Crypto => "crypto",
            Objective::Leakage => "leakage",
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        match self {
            Objective::Throughput => Sense::Maximize,
            Objective::Exposed | Objective::Crypto | Objective::Leakage => Sense::Minimize,
        }
    }

    /// All objectives, in [`ModeEval::objectives`] order.
    pub fn all() -> [Objective; 4] {
        [
            Objective::Throughput,
            Objective::Exposed,
            Objective::Crypto,
            Objective::Leakage,
        ]
    }
}

/// The optimization senses in [`Objective::all`] order:
/// `[throughput ↑, exposed transfer ↓, crypto-traffic overhead ↓,
/// leakage ↓]` (a unit test pins the correspondence).
pub const SENSES: [Sense; 4] = [
    Sense::Maximize,
    Sense::Minimize,
    Sense::Minimize,
    Sense::Minimize,
];

/// One priced evaluation: a sampled hardware point under one mode.
#[derive(Debug, Clone)]
pub struct ModeEval {
    /// The security mode.
    pub mode: SecureMode,
    /// Objective 1: end-to-end token throughput (training: batch tokens
    /// per step; serving: goodput).
    pub throughput_tps: f64,
    /// Objective 2: exposed (non-overlapped) transfer / KV-migration
    /// time.
    pub exposed: Time,
    /// Objective 3: crypto-traffic overhead as a fraction of the step or
    /// makespan (staging re-encryption + verify stalls + MAC traffic).
    pub crypto_frac: f64,
    /// Objective 4: bits per observed transfer a link-level adversary
    /// extracts from the run ([`tee_attack`]). Only the attack scenario
    /// traces its runs and prices this; the other evaluators report
    /// zero, which leaves their dominance relations untouched.
    pub leakage_bits: f64,
}

impl ModeEval {
    /// The objective vector in [`Objective::all`] / [`SENSES`] order
    /// (exposed time in milliseconds).
    pub fn objectives(&self) -> Vec<f64> {
        vec![
            self.throughput_tps,
            self.exposed.as_ms_f64(),
            self.crypto_frac,
            self.leakage_bits,
        ]
    }
}

/// A completed sweep: the space, the sampled points, and the per-point,
/// per-mode evaluations.
#[derive(Debug, Clone)]
pub struct ExploreRun {
    /// The scenario the points were priced through.
    pub scenario: Scenario,
    /// The knob space.
    pub space: Space,
    /// The sampled points, in sampling-plan order.
    pub points: Vec<Point>,
    /// `evals[i][j]`: point `i` under `ctx.modes[j]`.
    pub evals: Vec<Vec<ModeEval>>,
}

impl ExploreRun {
    /// The evaluations flattened point-major: `(point index, eval)`.
    pub fn flat(&self) -> Vec<(usize, &ModeEval)> {
        self.points
            .iter()
            .enumerate()
            .flat_map(|(i, _)| self.evals[i].iter().map(move |e| (i, e)))
            .collect()
    }

    /// Indices into [`Self::flat`] of the Pareto-non-dominated
    /// evaluations under [`SENSES`].
    pub fn frontier(&self) -> Vec<usize> {
        let objs: Vec<Vec<f64>> = self.flat().iter().map(|(_, e)| e.objectives()).collect();
        pareto_frontier(&objs, &SENSES)
    }
}

// ---------------------------------------------------------------------
// Spaces.
// ---------------------------------------------------------------------

/// The model knob shared by every scenario: levels are indices into
/// `ctx.models`, labelled with the model names.
fn model_knob(ctx: &RunContext) -> Knob {
    Knob::labeled(
        "model",
        ctx.models
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name, i as f64)),
    )
}

/// The knob space of `scenario` over `ctx` (see the module docs for the
/// knob list).
pub fn space_for(scenario: Scenario, ctx: &RunContext) -> Space {
    match scenario {
        Scenario::Train => Space::new(vec![
            model_knob(ctx),
            Knob::numeric("batch x", [0.5, 1.0, 2.0]),
            Knob::numeric("PCIe GB/s", [16.0, 32.0, 64.0]),
            Knob::numeric("HBM GB/s", [64.0, 128.0, 256.0]),
            Knob::numeric("PE dim", [256.0, 512.0, 1024.0]),
            Knob::numeric("MGX MAC B", [64.0, 512.0, 4096.0]),
        ]),
        Scenario::Cluster => Space::new(vec![
            model_knob(ctx),
            Knob::numeric("NPUs", ctx.cluster_sizes.iter().map(|&n| f64::from(n))),
            Knob::labeled("fabric", [("pcie-p2p", 0.0), ("nvlink", 1.0)]),
            Knob::numeric("PCIe GB/s", [16.0, 32.0, 64.0]),
            Knob::numeric("HBM GB/s", [64.0, 128.0, 256.0]),
            Knob::numeric("PE dim", [256.0, 512.0, 1024.0]),
        ]),
        Scenario::Serve => Space::new(vec![
            model_knob(ctx),
            Knob::numeric("load x", [0.5, 1.0, 2.0, 4.0]),
            Knob::numeric("HBM GB/s", [64.0, 128.0, 256.0]),
            Knob::numeric("PE dim", [256.0, 512.0, 1024.0]),
            Knob::numeric("KV resident reqs", [2.0, 4.0, 8.0]),
        ]),
        Scenario::Des => Space::new(vec![
            model_knob(ctx),
            Knob::numeric("NPUs", ctx.cluster_sizes.iter().map(|&n| f64::from(n))),
            Knob::labeled("fabric", [("pcie-p2p", 0.0), ("nvlink", 1.0)]),
            Knob::numeric("straggler", ctx.straggler_factors.iter().copied()),
            Knob::labeled("layout", [("data", 0.0), ("pipeline", 1.0)]),
            Knob::numeric(
                "microbatches",
                ctx.pipeline_microbatches.iter().map(|&m| f64::from(m)),
            ),
        ]),
        Scenario::Fleet => Space::new(vec![
            model_knob(ctx),
            Knob::numeric("instances", [2.0, 4.0, 8.0]),
            Knob::labeled(
                "placement",
                Policy::all()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.label(), i as f64)),
            ),
            Knob::numeric("load x", [0.5, 1.0, 2.0]),
            Knob::labeled("traffic", [("steady", 0.0), ("diurnal", 1.0)]),
        ]),
        Scenario::Attack => Space::new(vec![
            model_knob(ctx),
            // The adversary watches a loaded server: below the base
            // rate the KV budget rarely spills and there is nothing on
            // the wire to read.
            Knob::numeric("load x", [1.0, 2.0, 4.0]),
            Knob::labeled(
                "shaping",
                Shaping::all()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.label(), i as f64)),
            ),
            Knob::labeled(
                "kv at rest",
                KvShield::all()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.label(), i as f64)),
            ),
        ]),
    }
}

// ---------------------------------------------------------------------
// Point pricing.
// ---------------------------------------------------------------------

/// A GDDR/HBM configuration scaled to `gbps` aggregate GB/s (Table-1
/// channel geometry).
fn hbm_dram(gbps: f64) -> DramConfig {
    let base = DramConfig::gddr5_128gbs();
    DramConfig {
        channel_bytes_per_sec: gbps * 1e9 / f64::from(base.channels),
        ..base
    }
}

/// The model named by knob 0 of `point`.
fn model_at(ctx: &RunContext, space: &Space, point: &Point) -> ModelConfig {
    ctx.models[space.value(point, 0) as usize]
}

/// The CPU Adam phase for `(ctx.cfg's CPU side, mode, model)`, memoized
/// process-wide: the cacheline-level CPU simulation dominates a point's
/// cost but is independent of every NPU/bus/batch knob, so a sweep pays
/// it once per `(model, mode)` pair. The cached value is a pure function
/// of the key, so memoization cannot perturb determinism.
fn cached_cpu_time(cfg: &SystemConfig, mode: SecureMode, model: &ModelConfig) -> Time {
    static MEMO: OnceLock<Mutex<BTreeMap<String, Time>>> = OnceLock::new();
    let key = format!(
        "{:?}|{}|{}|{}|{:?}|{}",
        cfg.cpu, cfg.cpu_threads, cfg.sim_scale, cfg.cpu_iterations, mode, model.name
    );
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(&t) = memo.lock().expect("cpu memo lock").get(&key) {
        return t;
    }
    // Compute outside the lock so concurrent workers on different keys
    // do not serialize behind one CPU simulation.
    let t = TrainingSystem::new(cfg.clone(), mode).cpu_time(&StepSchedule::of(model));
    memo.lock().expect("cpu memo lock").insert(key, t);
    t
}

/// The NPU forward+backward report for `sys` on `schedule`, memoized
/// process-wide. [`TrainingSystem::npu_report`] is a pure function of the
/// NPU configuration, the MAC scheme, and the schedule's layer list —
/// none of which the PCIe/fabric knobs touch — so a sweep prices each
/// distinct `(NPU config, scheme, schedule)` combination once and points
/// that only move bus knobs reuse it. `schedule_key` must uniquely name
/// the schedule's contents (the callers use model name + batch or model
/// name + replica count). [`tee_sim::Time`] is integer picoseconds, so a
/// reused report is bit-identical to a recomputed one.
fn cached_npu_report(
    sys: &TrainingSystem,
    schedule: &StepSchedule,
    schedule_key: &str,
) -> tee_npu::engine::NpuRunReport {
    static MEMO: OnceLock<Mutex<BTreeMap<String, tee_npu::engine::NpuRunReport>>> = OnceLock::new();
    let key = format!(
        "{:?}|{:?}|{}",
        sys.config().npu,
        sys.mac_scheme(),
        schedule_key
    );
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(&r) = memo.lock().expect("npu memo lock").get(&key) {
        return r;
    }
    // Compute outside the lock so concurrent workers on different keys
    // do not serialize behind one pipeline simulation.
    let r = sys.npu_report(schedule);
    memo.lock().expect("npu memo lock").insert(key, r);
    r
}

/// Prices one training point under every context mode.
fn eval_train(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let mut model = model_at(ctx, space, point);
    model.batch_size = ((model.batch_size as f64 * space.value(point, 1)).round() as u64).max(1);
    let mut cfg = ctx.cfg.clone();
    cfg.pcie_bytes_per_sec = space.value(point, 2) * 1e9;
    cfg.npu.dram = hbm_dram(space.value(point, 3));
    cfg.npu.pe_dim = space.value(point, 4) as u64;
    cfg.mgx_mac_granularity = space.value(point, 5) as u64;
    let schedule = StepSchedule::of(&model);
    ctx.modes
        .iter()
        .map(|&mode| {
            let cpu = cached_cpu_time(&ctx.cfg, mode, &model_at(ctx, space, point));
            let sys = TrainingSystem::new(cfg.clone(), mode);
            // Price the NPU phase and the transfers once, then compose
            // the step from them — the same components feed the crypto
            // objective. The NPU phase is memoized across points: only
            // the bus re-pricing below is paid per point.
            let npu = cached_npu_report(
                &sys,
                &schedule,
                &format!("{}|batch{}", model.name, model.batch_size),
            );
            let comm = sys.comm_costs(&schedule);
            let step = sys.compose_step(npu.total, cpu, &comm);
            let crypto = comm.grad.re_encryption
                + comm.grad.decryption
                + comm.weight.re_encryption
                + comm.weight.decryption
                + npu.verify_stall;
            let total = step.total();
            ModeEval {
                mode,
                throughput_tps: model.tokens_per_step() as f64 / total.as_secs_f64(),
                exposed: step.comm_w + step.comm_g,
                crypto_frac: crypto.as_secs_f64() / total.as_secs_f64()
                    + sys.mac_scheme().traffic_overhead(),
                leakage_bits: 0.0,
            }
        })
        .collect()
}

/// Prices one cluster point under every context mode.
fn eval_cluster(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let model = model_at(ctx, space, point);
    let n_npus = space.value(point, 1) as u32;
    let interconnect = if space.value(point, 2) == 0.0 {
        Interconnect::PcieP2p
    } else {
        Interconnect::NvlinkLike
    };
    let mut cfg = ctx.cfg.clone();
    cfg.pcie_bytes_per_sec = space.value(point, 3) * 1e9;
    cfg.npu.dram = hbm_dram(space.value(point, 4));
    cfg.npu.pe_dim = space.value(point, 5) as u64;
    let cluster = ClusterConfig {
        n_npus,
        interconnect,
    };
    let schedule = StepSchedule::of(&model);
    let replica = schedule.data_parallel_replica(n_npus);
    ctx.modes
        .iter()
        .map(|&mode| {
            // Adam runs on the reduced (model-sized) gradients, so the
            // cached per-(model, mode) CPU phase applies at any N.
            let cpu = cached_cpu_time(&ctx.cfg, mode, &model);
            let sys = ClusterSystem::new(cfg.clone(), cluster, mode);
            // Price each phase once (replica transfers, collective,
            // broadcast), compose the step, and feed the same components
            // into the crypto objective.
            let point_sys = TrainingSystem::new(cfg.clone(), mode);
            let npu = cached_npu_report(
                &point_sys,
                &replica,
                &format!("{}|replica{}", model.name, n_npus),
            );
            let comm = point_sys.comm_costs(&replica);
            let ar = sys.all_reduce_cost(replica.grad_bytes);
            let bcast = sys.weight_broadcast_cost(replica.weight_bytes);
            let step = sys.compose_step(npu.total, cpu, &comm, &ar, bcast);
            let crypto = comm.grad.re_encryption
                + comm.grad.decryption
                + comm.weight.re_encryption
                + comm.weight.decryption
                + ar.re_encryption
                + ar.decryption
                + npu.verify_stall;
            let total = step.total();
            ModeEval {
                mode,
                throughput_tps: model.tokens_per_step() as f64 / total.as_secs_f64(),
                exposed: step.comm_w + step.comm_g + step.comm_ar,
                crypto_frac: crypto.as_secs_f64() / total.as_secs_f64()
                    + point_sys.mac_scheme().traffic_overhead(),
                leakage_bits: 0.0,
            }
        })
        .collect()
}

/// Prices one discrete-event cluster point under every context mode. The
/// layout knob selects data-parallel (straggler skew on the collective)
/// or pipeline-parallel (boundary activations contending on the fabric);
/// the microbatch knob only binds in the pipeline layout. The step runs
/// through [`crate::DesClusterSystem`] — event replay rather than the
/// analytic fold — so the exposed and crypto objectives reflect queueing
/// a closed form cannot see.
fn eval_des(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let model = model_at(ctx, space, point);
    let n_npus = space.value(point, 1) as u32;
    let interconnect = if space.value(point, 2) == 0.0 {
        Interconnect::PcieP2p
    } else {
        Interconnect::NvlinkLike
    };
    let straggler = space.value(point, 3);
    let parallelism = if space.value(point, 4) == 0.0 {
        Parallelism::Data
    } else {
        Parallelism::Pipeline {
            microbatches: space.value(point, 5) as u32,
        }
    };
    let des_cfg = DesClusterConfig {
        cluster: ClusterConfig {
            n_npus,
            interconnect,
        },
        straggler_factor: straggler,
        parallelism,
    };
    let schedule = StepSchedule::of(&model);
    ctx.modes
        .iter()
        .map(|&mode| {
            // Adam runs on the reduced (model-sized) gradients in both
            // layouts, so the cached per-(model, mode) phase applies.
            let cpu = cached_cpu_time(&ctx.cfg, mode, &model);
            let mut sys = DesClusterSystem::new(ctx.cfg.clone(), des_cfg, mode);
            let report = sys.simulate_with_cpu_time(&schedule, cpu);
            let b = report.breakdown;
            let total = report.makespan;
            let mac = TrainingSystem::new(ctx.cfg.clone(), mode).mac_scheme();
            ModeEval {
                mode,
                throughput_tps: model.tokens_per_step() as f64 / total.as_secs_f64(),
                exposed: b.comm_w + b.comm_g + b.comm_ar,
                crypto_frac: report.crypto.as_secs_f64() / total.as_secs_f64()
                    + mac.traffic_overhead(),
                leakage_bits: 0.0,
            }
        })
        .collect()
}

/// The crypto share of one KV transfer under `protocol`: the fraction of
/// a reference migration's wall-clock that is staging conversion rather
/// than bus/DRAM time (0 for the plain and direct paths).
fn kv_crypto_share(protocol: KvProtocol) -> f64 {
    const REF_BYTES: u64 = 64 << 20;
    let plain = KvProtocol::Plain.transfer_time(REF_BYTES).as_secs_f64();
    let own = protocol.transfer_time(REF_BYTES).as_secs_f64();
    if own <= 0.0 {
        0.0
    } else {
        (1.0 - plain / own).max(0.0)
    }
}

/// Prices one serving point under every context mode. The request trace
/// is shared across the modes (a fair comparison needs identical
/// arrivals) and its seed is a fixed sub-stream of the context seed,
/// identical for *every point*: common random numbers, so comparing two
/// points (and the tornado's one-at-a-time swings) measures the knobs,
/// not trace resampling noise. The load knob still reshapes arrivals —
/// the same uniform draws stretch to the new rate.
fn eval_serve(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let model = model_at(ctx, space, point);
    let rate = ctx.serve_rate_rps * space.value(point, 1);
    let mut npu = ctx.cfg.npu.clone();
    npu.dram = hbm_dram(space.value(point, 2));
    npu.pe_dim = space.value(point, 3) as u64;
    let resident = space.value(point, 4) as u64;
    let trace_seed = SplitMix64::new(ctx.seed).split(0).next_u64();
    let mut trace_cfg = TraceConfig::poisson(ctx.serve_requests, rate, trace_seed);
    if ctx.fast {
        // The reduced context trims conversations exactly like the
        // registered serving artifacts do (see experiments::serve_setup).
        trace_cfg.prompt_mean = 256;
        trace_cfg.output_mean = 48;
    }
    let cfg = ServeConfig::for_model(&model, resident, trace_cfg.steady_tokens()).with_npu(npu);
    let trace = trace_cfg.generate();
    ctx.modes
        .iter()
        .map(|&mode| {
            let profile = serve_profile(mode);
            let rep = simulate(&cfg, &model, &profile, &trace);
            let makespan = rep.makespan.as_secs_f64().max(1e-12);
            let kv_crypto =
                rep.kv_transfer_time.as_secs_f64() * kv_crypto_share(profile.kv_protocol);
            ModeEval {
                mode,
                throughput_tps: rep.goodput_tps(),
                exposed: rep.kv_exposed_time,
                crypto_frac: profile.mac.traffic_overhead() + kv_crypto / makespan,
                leakage_bits: 0.0,
            }
        })
        .collect()
}

/// Prices one fleet point under every context mode. Like the serving
/// evaluator, the session trace is a common-random-numbers design: its
/// seed is a fixed sub-stream of the context seed shared by every point,
/// so knob comparisons measure the knobs, not trace resampling. The load
/// knob stretches the same arrival draws; the traffic knob overlays a
/// diurnal modulation on them.
fn eval_fleet(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let model = model_at(ctx, space, point);
    let instances = space.value(point, 1) as usize;
    let policy = Policy::all()[space.value(point, 2) as usize];
    let rate = ctx.fleet_rate_rps * space.value(point, 3);
    let trace_seed = SplitMix64::new(ctx.seed).split(1).next_u64();
    let mut trace_cfg =
        SessionTraceConfig::poisson(ctx.fleet_requests, rate, ctx.fleet_tenants, trace_seed);
    if space.value(point, 4) == 1.0 {
        trace_cfg = trace_cfg.with_diurnal(Diurnal::new(4.0, 0.6));
    }
    if ctx.fast {
        // The reduced context trims turns exactly like the registered
        // fleet artifacts do (see experiments::fleet_setup).
        trace_cfg.prompt_mean = 192;
        trace_cfg.output_mean = 32;
    }
    let serve =
        ServeConfig::for_model(&model, 4, trace_cfg.steady_tokens()).with_npu(ctx.cfg.npu.clone());
    let cfg = FleetConfig::new(serve, instances).with_policy(policy);
    let trace = trace_cfg.generate();
    ctx.modes
        .iter()
        .map(|&mode| {
            let profile = serve_profile(mode);
            let rep = fleet_simulate(&cfg, &model, &profile, &trace);
            let makespan = rep.makespan.as_secs_f64().max(1e-12);
            let kv_crypto =
                rep.handoff_transfer_time.as_secs_f64() * kv_crypto_share(profile.kv_protocol);
            ModeEval {
                mode,
                throughput_tps: rep.goodput_tps(),
                exposed: rep.handoff_exposed_time,
                crypto_frac: profile.mac.traffic_overhead() + kv_crypto / makespan,
                leakage_bits: 0.0,
            }
        })
        .collect()
}

/// Prices one adversary point under every context mode. Each mode's
/// serving run is traced into a *fresh, private* recording probe (the
/// context probe is never consulted, so reports stay byte-identical
/// with tracing on or off); the link-level view is derived from the
/// snapshot, the shaping and at-rest knobs are applied, and the point
/// comes back with both the residual leakage and the defense bill:
/// padding time stretches the makespan and the exposure, the
/// re-encrypt/verify pass lands in the crypto objective. The trace
/// seed is a common-random-numbers sub-stream like the serving and
/// fleet evaluators (stream 2).
fn eval_attack(ctx: &RunContext, space: &Space, point: &Point) -> Vec<ModeEval> {
    let model = model_at(ctx, space, point);
    let rate = ctx.serve_rate_rps * space.value(point, 1);
    let shaping = Shaping::all()[space.value(point, 2) as usize];
    let shield = KvShield::all()[space.value(point, 3) as usize];
    let trace_seed = SplitMix64::new(ctx.seed).split(2).next_u64();
    let mut trace_cfg = TraceConfig::poisson(ctx.serve_requests, rate, trace_seed);
    if ctx.fast {
        // The reduced context trims conversations exactly like the
        // registered serving artifacts do (see experiments::serve_setup).
        trace_cfg.prompt_mean = 256;
        trace_cfg.output_mean = 48;
    }
    // A tight KV budget (~500 tokens, the scheduler tests' spill-forcing
    // idiom) keeps offload/fetch traffic on the wire, so the adversary
    // has a channel to read once the load knob pushes past one.
    let kv = tee_serve::KvSpec::of(&model);
    let cfg = ServeConfig::for_model(&model, 2, trace_cfg.steady_tokens())
        .with_kv_hbm_bytes(kv.bytes_per_token * 500)
        .with_npu(ctx.cfg.npu.clone());
    let trace = trace_cfg.generate();
    ctx.modes
        .iter()
        .map(|&mode| {
            let profile = serve_profile(mode);
            let probe = SharedProbe::recording();
            let rep = simulate_probed(&cfg, &model, &profile, &trace, &probe);
            let snap = probe.snapshot().expect("freshly created recording probe");
            let view = Observation::from_trace(&snap);
            let shaped = shaping.apply(&view);
            let traffic_bits = extractable_bits(&shaped.observation.features(MEASUREMENT_QUANTUM));
            // The at-rest signal: spilled-blob sizes (wire occupancy as
            // the size proxy), as the shield lets the adversary see them.
            let at_rest: Vec<u64> = shield
                .observed_sizes(
                    &view
                        .events()
                        .iter()
                        .map(|e| e.duration.as_ps())
                        .collect::<Vec<_>>(),
                )
                .iter()
                .map(|&s| size_bucket(s))
                .collect();
            let residency_bits = extractable_bits(&at_rest);
            let shield_overhead = shield.overhead(
                snap.metrics().get("serve.kv_offload_bytes"),
                snap.metrics().get("serve.kv_fetch_bytes"),
            );
            let priced = rep.makespan + shaped.padding + shield_overhead;
            let secs = priced.as_secs_f64().max(1e-12);
            let slowdown = rep.makespan.as_secs_f64() / secs;
            let kv_crypto = rep.kv_transfer_time.as_secs_f64()
                * kv_crypto_share(profile.kv_protocol)
                + shield_overhead.as_secs_f64();
            ModeEval {
                mode,
                throughput_tps: rep.goodput_tps() * slowdown,
                exposed: rep.kv_exposed_time + shaped.padding,
                crypto_frac: profile.mac.traffic_overhead() + kv_crypto / secs,
                leakage_bits: traffic_bits + residency_bits,
            }
        })
        .collect()
}

/// Samples `ctx.explore_points` points of the scenario's space and
/// prices them across `ctx.worker_threads` workers.
pub fn run_scenario(scenario: Scenario, ctx: &RunContext) -> ExploreRun {
    let space = space_for(scenario, ctx);
    let points = space.sample(ctx.explore_points as usize, ctx.seed);
    run_points(scenario, ctx, space, points)
}

/// Prices an explicit point list (the sensitivity sweep reuses this with
/// a one-at-a-time plan).
fn run_points(
    scenario: Scenario,
    ctx: &RunContext,
    space: Space,
    points: Vec<Point>,
) -> ExploreRun {
    // Warm the per-(model, mode) CPU cache up front: with cold caches,
    // parallel workers hitting the same pair would each pay the full
    // cacheline-level simulation. The warm itself fans the distinct
    // pairs across the worker threads (each pair is an independent pure
    // computation, so the fill order cannot perturb results).
    let executor = Executor::new(ctx.worker_threads, ctx.seed);
    if matches!(
        scenario,
        Scenario::Train | Scenario::Cluster | Scenario::Des
    ) {
        let mut model_indices: Vec<usize> =
            points.iter().map(|p| space.value(p, 0) as usize).collect();
        model_indices.sort_unstable();
        model_indices.dedup();
        let pairs: Vec<(usize, SecureMode)> = model_indices
            .into_iter()
            .flat_map(|mi| ctx.modes.iter().map(move |&mode| (mi, mode)))
            .collect();
        executor.run_items(&pairs, &|_i, &(mi, mode), _rng| {
            cached_cpu_time(&ctx.cfg, mode, &ctx.models[mi]);
        });
    }
    // The per-point RNG sub-stream is part of the executor contract (it
    // is what makes thread count invisible); today's evaluators are
    // common-random-number designs that draw nothing from it.
    let evals = executor.run(&points, &|_i, point, _rng| match scenario {
        Scenario::Train => eval_train(ctx, &space, point),
        Scenario::Cluster => eval_cluster(ctx, &space, point),
        Scenario::Serve => eval_serve(ctx, &space, point),
        Scenario::Des => eval_des(ctx, &space, point),
        Scenario::Fleet => eval_fleet(ctx, &space, point),
        Scenario::Attack => eval_attack(ctx, &space, point),
    });
    ExploreRun {
        scenario,
        space,
        points,
        evals,
    }
}

// ---------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------

fn report_for(id: &str, scenario: Scenario) -> Report {
    let mut report = crate::artifact::find(id)
        .unwrap_or_else(|| panic!("artifact {id:?} not registered"))
        .new_report();
    report.note(format!("Scenario: {}.", scenario.label()));
    report
}

/// Formats a throughput in tokens/second.
fn tps(v: f64) -> String {
    format!("{v:.0} tok/s")
}

/// Formats a leakage objective in bits.
fn bits(v: f64) -> String {
    format!("{v:.2} b")
}

/// Frontier table header, derived from [`Objective::all`] so report
/// columns cannot drift from the objective vector.
fn frontier_header() -> Vec<String> {
    std::iter::once("mode".to_owned())
        .chain(Objective::all().iter().map(|o| o.label().to_owned()))
        .chain(std::iter::once("configuration".to_owned()))
        .collect()
}

/// Runs the `explore_pareto` artifact for `scenario`: the sampled sweep,
/// its four-objective Pareto frontier, per-mode frontier presence (with
/// an explanatory note for any mode that is never non-dominated), and
/// the SGX+MGX-vs-TensorTEE crossover analysis.
pub fn explore_pareto_for(scenario: Scenario, ctx: &RunContext) -> (ExploreRun, Report) {
    let run = run_scenario(scenario, ctx);
    let flat = run.flat();
    let objs: Vec<Vec<f64>> = flat.iter().map(|(_, e)| e.objectives()).collect();
    let frontier = pareto_frontier(&objs, &SENSES);

    let mut report = report_for("explore_pareto", scenario);
    let mut table = Table::new(frontier_header()).captioned(format!(
        "Pareto frontier — {} of {} evaluations non-dominated ({} points x {} modes, seed {})",
        frontier.len(),
        flat.len(),
        run.points.len(),
        ctx.modes.len(),
        ctx.seed,
    ));
    for &f in &frontier {
        let (pi, e) = &flat[f];
        table.row([
            e.mode.label().to_string(),
            tps(e.throughput_tps),
            e.exposed.to_string(),
            pct(e.crypto_frac),
            bits(e.leakage_bits),
            run.space.describe(&run.points[*pi]),
        ]);
    }
    report.table(table);
    report.metric("points", run.points.len() as f64);
    report.metric("evaluations", flat.len() as f64);
    report.metric("frontier_size", frontier.len() as f64);

    // Per-mode frontier presence; a mode that never makes the frontier
    // gets an explanatory note naming its most frequent dominator.
    for &mode in &ctx.modes {
        let on_frontier = frontier.iter().filter(|&&f| flat[f].1.mode == mode).count();
        report.metric(format!("frontier_{}", mode_key(mode)), on_frontier as f64);
        if on_frontier > 0 {
            report.note(format!(
                "{}: {} non-dominated evaluation(s) on the frontier.",
                mode.label(),
                on_frontier
            ));
        } else {
            let mut dominator_modes: BTreeMap<&str, usize> = BTreeMap::new();
            let mut dominated = 0usize;
            for (f, (_, e)) in flat.iter().enumerate() {
                if e.mode != mode {
                    continue;
                }
                dominated += 1;
                if let Some(d) = dominator_of(f, &objs, &SENSES) {
                    *dominator_modes.entry(flat[d].1.mode.label()).or_default() += 1;
                }
            }
            let top = dominator_modes
                .iter()
                .max_by_key(|(_, &n)| n)
                .map(|(label, &n)| format!("{label} ({n}/{dominated})"))
                .unwrap_or_else(|| "itself".into());
            report.note(format!(
                "{} is never non-dominated: each of its {} evaluations is Pareto-dominated \
                 (most often by {}), i.e. for every one of its sampled configurations, some \
                 other evaluation in the sweep matches or beats its throughput while exposing \
                 no more transfer time, no more crypto traffic, and no more leakage.",
                mode.label(),
                dominated,
                top
            ));
        }
    }

    // The frontier *among the secure modes*: with the non-secure
    // reference excluded (it weakly upper-bounds the performance
    // objectives at matched hardware — encryption hides contents, not
    // shape, so leakage does not separate it either — and it tends to
    // absorb the global frontier), the
    // table shows which protected configurations are worth building.
    let secure: Vec<usize> = (0..flat.len())
        .filter(|&f| flat[f].1.mode != SecureMode::NonSecure)
        .collect();
    if !secure.is_empty() {
        let secure_objs: Vec<Vec<f64>> = secure.iter().map(|&f| objs[f].clone()).collect();
        let secure_frontier = pareto_frontier(&secure_objs, &SENSES);
        let mut table = Table::new(frontier_header()).captioned(format!(
            "Secure-modes frontier — {} of {} protected evaluations non-dominated",
            secure_frontier.len(),
            secure.len(),
        ));
        for &sf in &secure_frontier {
            let (pi, e) = &flat[secure[sf]];
            table.row([
                e.mode.label().to_string(),
                tps(e.throughput_tps),
                e.exposed.to_string(),
                pct(e.crypto_frac),
                bits(e.leakage_bits),
                run.space.describe(&run.points[*pi]),
            ]);
        }
        report.table(table);
        report.metric("frontier_secure_size", secure_frontier.len() as f64);
        for &mode in &ctx.modes {
            if mode == SecureMode::NonSecure {
                continue;
            }
            let n = secure_frontier
                .iter()
                .filter(|&&sf| flat[secure[sf]].1.mode == mode)
                .count();
            report.metric(format!("frontier_secure_{}", mode_key(mode)), n as f64);
        }
    }

    // Crossover: where does the staging baseline overtake TensorTEE?
    let find_mode = |evals: &[ModeEval], mode| -> Option<ModeEval> {
        evals.iter().find(|e| e.mode == mode).cloned()
    };
    let mut crossovers: Vec<(usize, f64)> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for (i, evals) in run.evals.iter().enumerate() {
        let (Some(base), Some(ours)) = (
            find_mode(evals, SecureMode::SgxMgx),
            find_mode(evals, SecureMode::TensorTee),
        ) else {
            continue;
        };
        let speedup = ours.throughput_tps / base.throughput_tps.max(1e-12);
        speedups.push(speedup);
        if speedup < 1.0 {
            crossovers.push((i, speedup));
        }
    }
    if !speedups.is_empty() {
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(0.0f64, f64::max);
        report.metric("crossover_points", crossovers.len() as f64);
        report.metric("min_speedup_vs_sgx_mgx", min);
        report.metric("max_speedup_vs_sgx_mgx", max);
        if crossovers.is_empty() {
            report.note(format!(
                "No crossover: TensorTEE's throughput leads SGX+MGX at every sampled point \
                 ({:.2}x-{:.2}x).",
                min, max
            ));
        } else {
            let mut t = Table::new(["TensorTEE/SGX+MGX", "configuration"]).captioned(format!(
                "Crossover — {} sampled point(s) where SGX+MGX overtakes TensorTEE",
                crossovers.len()
            ));
            for (i, s) in crossovers.iter().take(8) {
                t.row([format!("{s:.2}x"), run.space.describe(&run.points[*i])]);
            }
            report.table(t);
        }
    }
    (run, report)
}

/// Runs the `explore_sensitivity` artifact for `scenario`: a
/// one-at-a-time sweep around the space's center point, reported as one
/// tornado table per mode on the throughput objective.
pub fn explore_sensitivity_for(scenario: Scenario, ctx: &RunContext) -> (ExploreRun, Report) {
    let space = space_for(scenario, ctx);
    let baseline = space.center();
    let points = space.one_at_a_time(&baseline);
    let run = run_points(scenario, ctx, space, points);

    let mut report = report_for("explore_sensitivity", scenario);
    for (j, &mode) in ctx.modes.iter().enumerate() {
        let values: Vec<f64> = run.evals.iter().map(|e| e[j].throughput_tps).collect();
        let base_value = values[0];
        let rows = tornado(&run.space, &run.points, &values);
        let mut table =
            Table::new(["knob", "low", "at", "high", "at", "swing"]).captioned(format!(
                "Tornado — {} throughput around {} ({})",
                mode.label(),
                run.space.describe(&run.points[0]),
                tps(base_value),
            ));
        for r in &rows {
            table.row([
                r.knob.to_string(),
                tps(r.low),
                r.low_label.clone(),
                tps(r.high),
                r.high_label.clone(),
                format!("{} ({})", tps(r.swing()), pct(r.swing_vs(base_value))),
            ]);
        }
        report.table(table);
        if let Some(top) = rows.first() {
            report.metric(format!("top_swing_tps_{}", mode_key(mode)), top.swing());
            report.note(format!(
                "{}: most sensitive knob is {} ({} swing, {} of the baseline).",
                mode.label(),
                top.knob,
                tps(top.swing()),
                pct(top.swing_vs(base_value)),
            ));
        }
    }
    report.metric("oat_points", run.points.len() as f64);
    (run, report)
}

/// The registered `explore_pareto` artifact (train scenario).
pub fn explore_pareto(ctx: &RunContext) -> (ExploreRun, Report) {
    explore_pareto_for(Scenario::Train, ctx)
}

/// The registered `explore_sensitivity` artifact (train scenario).
pub fn explore_sensitivity(ctx: &RunContext) -> (ExploreRun, Report) {
    explore_sensitivity_for(Scenario::Train, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RunContext {
        // A thin sweep keeps the unit tests quick; the integration suite
        // (tests/explore.rs) runs the registered budgets.
        let mut c = RunContext::fast();
        c.models.truncate(1);
        c.explore_points = 8;
        c
    }

    #[test]
    fn spaces_have_the_documented_knobs() {
        let c = ctx();
        let train = space_for(Scenario::Train, &c);
        assert_eq!(train.knobs().len(), 6);
        assert_eq!(train.knobs()[0].name, "model");
        assert_eq!(train.knobs()[0].len(), c.models.len());
        let cluster = space_for(Scenario::Cluster, &c);
        assert_eq!(cluster.knobs()[1].name, "NPUs");
        assert_eq!(cluster.knobs()[1].len(), c.cluster_sizes.len());
        let serve = space_for(Scenario::Serve, &c);
        assert_eq!(serve.knobs().len(), 5);
        let des = space_for(Scenario::Des, &c);
        assert_eq!(des.knobs().len(), 6);
        assert_eq!(des.knobs()[3].name, "straggler");
        assert_eq!(des.knobs()[3].len(), c.straggler_factors.len());
        assert_eq!(des.knobs()[5].name, "microbatches");
        let fleet = space_for(Scenario::Fleet, &c);
        assert_eq!(fleet.knobs().len(), 5);
        assert_eq!(fleet.knobs()[2].name, "placement");
        assert_eq!(fleet.knobs()[2].len(), 3);
        let attack = space_for(Scenario::Attack, &c);
        assert_eq!(attack.knobs().len(), 4);
        assert_eq!(attack.knobs()[2].name, "shaping");
        assert_eq!(attack.knobs()[2].len(), Shaping::all().len());
        assert_eq!(attack.knobs()[3].name, "kv at rest");
        assert_eq!(attack.knobs()[3].len(), KvShield::all().len());
        assert_eq!(Scenario::parse("attack"), Some(Scenario::Attack));
        assert_eq!(Scenario::parse("fleet"), Some(Scenario::Fleet));
        assert_eq!(Scenario::parse("des"), Some(Scenario::Des));
        assert_eq!(Scenario::parse("cluster"), Some(Scenario::Cluster));
        assert_eq!(Scenario::parse("nope"), None);
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.label()), Some(s));
        }
    }

    #[test]
    fn train_run_prices_every_mode_at_every_point() {
        let c = ctx();
        let run = run_scenario(Scenario::Train, &c);
        assert_eq!(run.points.len(), c.explore_points as usize);
        assert_eq!(run.evals.len(), run.points.len());
        for evals in &run.evals {
            assert_eq!(evals.len(), c.modes.len());
            for e in evals {
                assert!(e.throughput_tps > 0.0);
                assert!(e.crypto_frac >= 0.0 && e.crypto_frac < 1.0, "{e:?}");
            }
            // Non-secure carries no crypto traffic; the staging baseline
            // always does.
            assert_eq!(evals[0].crypto_frac, 0.0);
            assert!(evals[1].crypto_frac > 0.0);
        }
        let frontier = run.frontier();
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= run.flat().len());
    }

    #[test]
    fn objectives_and_senses_cannot_drift() {
        assert_eq!(SENSES.len(), Objective::all().len());
        for (i, o) in Objective::all().iter().enumerate() {
            assert_eq!(SENSES[i], o.sense(), "{}", o.label());
        }
        let eval = ModeEval {
            mode: SecureMode::NonSecure,
            throughput_tps: 1.0,
            exposed: Time::ZERO,
            crypto_frac: 0.0,
            leakage_bits: 0.0,
        };
        assert_eq!(eval.objectives().len(), SENSES.len());
        let labels: Vec<&str> = Objective::all().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["throughput", "exposed", "crypto", "leakage"]);
        // The frontier header embeds the objective labels verbatim.
        let header = frontier_header();
        assert_eq!(header.len(), labels.len() + 2);
        assert_eq!(&header[1..header.len() - 1], labels.as_slice());
    }

    #[test]
    fn attack_run_prices_leakage_and_defenses() {
        let mut c = ctx();
        // One model x 3 loads x 3 shapings x 2 shields = the full grid.
        c.explore_points = 18;
        let run = run_scenario(Scenario::Attack, &c);
        assert_eq!(run.points.len(), 18);
        let mut leaked = 0usize;
        for evals in &run.evals {
            assert_eq!(evals.len(), c.modes.len());
            for e in evals {
                assert!(e.throughput_tps > 0.0);
                assert!(e.leakage_bits >= 0.0);
                if e.leakage_bits > 0.0 {
                    leaked += 1;
                }
            }
        }
        assert!(leaked > 0, "some sampled point must leak");
    }

    #[test]
    fn kv_crypto_share_orders_protocols() {
        assert_eq!(kv_crypto_share(KvProtocol::Plain), 0.0);
        let staged = kv_crypto_share(KvProtocol::Staged);
        let direct = kv_crypto_share(KvProtocol::Direct);
        assert!(staged > 0.5, "{staged}");
        assert!(direct < 0.05, "{direct}");
    }

    #[test]
    fn hbm_knob_scales_aggregate_bandwidth() {
        assert!((hbm_dram(256.0).total_bytes_per_sec() - 256e9).abs() < 1.0);
        assert!((hbm_dram(64.0).total_bytes_per_sec() - 64e9).abs() < 1.0);
    }
}
