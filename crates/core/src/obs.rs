//! Observability exports: Chrome/Perfetto trace rendering, utilization
//! rollups, and the `obs_utilization` artifact runner.
//!
//! The probe layer ([`tee_sim::probe`]) records *what happened*; this
//! module turns a recorded [`TraceProbe`] into things people consume:
//!
//! * [`chrome_trace`] — the Chrome trace-event JSON (`chrome://tracing`,
//!   <https://ui.perfetto.dev>) the `tensortee trace` subcommand writes.
//!   Tracks become named threads of one process; spans become complete
//!   (`"X"`) events, instants become thread-scoped markers, gauges become
//!   counter (`"C"`) series. Timestamps convert from picoseconds to the
//!   format's microseconds.
//! * [`utilization`] / [`utilization_table`] — per-track busy time folded
//!   from spans and matched begin/end pairs, as a fraction of the
//!   recording's makespan.
//! * [`emit_step_phases`] — lays the analytic [`StepBreakdown`] phases as
//!   spans so the *analytic* artifacts trace through the same vocabulary
//!   as the discrete-event ones.
//! * [`obs_utilization`] — the registry artifact: instrumented cluster +
//!   fleet runs rolled up into utilization/counter tables. Probes only
//!   observe, so the report is byte-identical whether or not the caller's
//!   context carries a recording probe (the differential test over the
//!   registry pins this).

use crate::artifact::{find, RunContext};
use crate::des_cluster::{DesClusterConfig, DesClusterSystem};
use crate::experiments::{fleet_setup, serve_profile};
use crate::json::Json;
use crate::report::{pct, Report, Table};
use crate::system::StepBreakdown;
use tee_fleet::simulate_probed as fleet_simulate_probed;
use tee_fleet::Policy;
use tee_sim::probe::{MetricsRegistry, ProbeEvent, SharedProbe, TraceProbe};
use tee_sim::Time;
use tee_workloads::StepSchedule;

/// Picoseconds → trace-event microseconds.
fn us(t: Time) -> Json {
    Json::Float(t.as_ps() as f64 / 1e6)
}

/// Renders a recorded trace as a Chrome trace-event JSON object.
///
/// The layout follows the trace-event format: one process (`pid` 1), one
/// thread per track in first-seen order, a `thread_name` metadata event
/// naming each, then the events themselves. The counter totals of the
/// recording's [`MetricsRegistry`] ride along under a top-level
/// `"counters"` key (ignored by viewers, used by the rollup smoke tests).
pub fn chrome_trace(trace: &TraceProbe) -> Json {
    // Two passes keep the borrow simple: collect tracks first.
    let mut order: Vec<String> = Vec::new();
    for e in trace.events() {
        if !order.iter().any(|t| t == e.track()) {
            order.push(e.track().to_owned());
        }
    }
    let tid = |track: &str| -> Json {
        Json::Int(
            order
                .iter()
                .position(|t| t == track)
                .expect("track collected in first pass") as i64
                + 1,
        )
    };

    let mut events: Vec<Json> = Vec::new();
    for (i, track) in order.iter().enumerate() {
        events.push(Json::object([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i as i64 + 1)),
            ("args", Json::object([("name", Json::str(track.clone()))])),
        ]));
    }
    for e in trace.events() {
        let ev = match e {
            ProbeEvent::Span {
                track,
                name,
                start,
                end,
            } => Json::object([
                ("name", Json::str(name.clone())),
                ("ph", Json::str("X")),
                ("pid", Json::Int(1)),
                ("tid", tid(track)),
                ("ts", us(*start)),
                ("dur", us(end.saturating_sub(*start))),
            ]),
            ProbeEvent::Begin { track, name, at } => Json::object([
                ("name", Json::str(name.clone())),
                ("ph", Json::str("B")),
                ("pid", Json::Int(1)),
                ("tid", tid(track)),
                ("ts", us(*at)),
            ]),
            ProbeEvent::End { track, at } => Json::object([
                ("ph", Json::str("E")),
                ("pid", Json::Int(1)),
                ("tid", tid(track)),
                ("ts", us(*at)),
            ]),
            ProbeEvent::Instant { track, name, at } => Json::object([
                ("name", Json::str(name.clone())),
                ("ph", Json::str("i")),
                ("pid", Json::Int(1)),
                ("tid", tid(track)),
                ("ts", us(*at)),
                ("s", Json::str("t")),
            ]),
            ProbeEvent::Gauge {
                track,
                name,
                at,
                value,
            } => Json::object([
                ("name", Json::str(name.clone())),
                ("ph", Json::str("C")),
                ("pid", Json::Int(1)),
                ("tid", tid(track)),
                ("ts", us(*at)),
                ("args", Json::object([("value", Json::Int(*value as i64))])),
            ]),
        };
        events.push(ev);
    }

    let counters = Json::Object(
        trace
            .metrics()
            .iter()
            .map(|(name, value)| (name.to_owned(), Json::Int(value as i64)))
            .collect(),
    );
    Json::object([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::str("ms")),
        ("counters", counters),
    ])
}

/// One track's rollup: busy time from spans and matched begin/end pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackUtilization {
    /// Track (timeline) name.
    pub track: String,
    /// Summed span time on the track.
    pub busy: Time,
    /// Events recorded on the track (all kinds).
    pub events: usize,
}

/// Folds a recording into per-track busy time plus the makespan (the
/// latest timestamp any event touches). Tracks appear in first-seen
/// order. Unmatched `Begin`s contribute nothing; `End`s close the most
/// recent open `Begin` on their track.
pub fn utilization(trace: &TraceProbe) -> (Vec<TrackUtilization>, Time) {
    let mut rows: Vec<TrackUtilization> = Vec::new();
    let mut open: Vec<(String, Vec<Time>)> = Vec::new();
    let mut makespan = Time::ZERO;
    let row_of = |rows: &mut Vec<TrackUtilization>, track: &str| -> usize {
        match rows.iter().position(|r| r.track == track) {
            Some(i) => i,
            None => {
                rows.push(TrackUtilization {
                    track: track.to_owned(),
                    busy: Time::ZERO,
                    events: 0,
                });
                rows.len() - 1
            }
        }
    };
    for e in trace.events() {
        let i = row_of(&mut rows, e.track());
        rows[i].events += 1;
        makespan = makespan.max(e.at());
        match e {
            ProbeEvent::Span { start, end, .. } => {
                rows[i].busy += end.saturating_sub(*start);
                makespan = makespan.max(*end);
            }
            ProbeEvent::Begin { track, at, .. } => {
                match open.iter_mut().find(|(t, _)| t == track) {
                    Some((_, stack)) => stack.push(*at),
                    None => open.push((track.clone(), vec![*at])),
                }
            }
            ProbeEvent::End { track, at } => {
                if let Some((_, stack)) = open.iter_mut().find(|(t, _)| t == track) {
                    if let Some(begin) = stack.pop() {
                        rows[i].busy += at.saturating_sub(begin);
                    }
                }
            }
            _ => {}
        }
    }
    (rows, makespan)
}

/// Renders [`utilization`] as a `track | busy | busy fraction | events`
/// table captioned `caption`.
pub fn utilization_table(caption: impl Into<String>, trace: &TraceProbe) -> Table {
    let (rows, makespan) = utilization(trace);
    let total = makespan.as_ps().max(1) as f64;
    let mut t = Table::new(["track", "busy", "busy fraction", "events"]).captioned(caption);
    for r in &rows {
        t.row([
            r.track.clone(),
            r.busy.to_string(),
            pct(r.busy.as_ps() as f64 / total),
            r.events.to_string(),
        ]);
    }
    t
}

/// Lays an analytic [`StepBreakdown`] over the probe as sequential phase
/// spans (the ledger order: NPU compute, CPU optimizer, weight transfer,
/// gradient transfer), so analytic artifacts narrate through the same
/// track vocabulary as the discrete-event engine. Emission happens after
/// the step is priced — tracing cannot perturb it.
pub fn emit_step_phases(probe: &SharedProbe, mode: crate::SecureMode, step: &StepBreakdown) {
    if !probe.enabled() {
        return;
    }
    let label = mode.label();
    let phases = [
        ("fwd+bwd", "NPU0", step.npu),
        ("optimizer", "CPU", step.cpu),
        ("weight_xfer", "link", step.comm_w),
        ("grad_xfer", "link", step.comm_g),
    ];
    let mut t = Time::ZERO;
    for (phase, track, d) in phases {
        if d > Time::ZERO {
            probe.span(track, &format!("{phase} [{label}]"), t, t + d);
        }
        t += d;
    }
    probe.count("train.steps", 1);
    probe.count("train.step_ps", step.total().as_ps());
}

/// Replays a recorded trace into another probe (used to surface the
/// rollup runs' events in the caller's recording, e.g. `tensortee trace
/// obs_utilization`).
pub(crate) fn replay(snapshot: &TraceProbe, into: &SharedProbe) {
    if !into.enabled() {
        return;
    }
    for e in snapshot.events() {
        match e {
            ProbeEvent::Span {
                track,
                name,
                start,
                end,
            } => into.span(track, name, *start, *end),
            ProbeEvent::Begin { track, name, at } => into.span_begin(track, name, *at),
            ProbeEvent::End { track, at } => into.span_end(track, *at),
            ProbeEvent::Instant { track, name, at } => into.instant(track, name, *at),
            ProbeEvent::Gauge {
                track,
                name,
                at,
                value,
            } => into.gauge(track, name, *at, *value),
        }
    }
    for (name, value) in snapshot.metrics().iter() {
        into.count(name, value);
    }
}

/// Runs the `obs_utilization` artifact: one instrumented discrete-event
/// cluster step (straggled, with a synthetic CPU optimizer phase so the
/// `CPU` track shows real busy time) plus one instrumented fleet run,
/// rolled up into per-track utilization and counter tables.
///
/// The rollup always records into fresh probes — the caller's context
/// probe only *additionally* receives a replay of the same events — so
/// the report bytes cannot depend on whether (or how much) the context
/// probe has already recorded.
///
/// # Panics
///
/// Panics if the `obs_utilization` artifact is missing from the registry
/// (a registration bug).
pub fn obs_utilization(ctx: &RunContext) -> Report {
    let mut report = find("obs_utilization")
        .expect("obs_utilization is registered")
        .new_report();

    // --- Instrumented cluster step -----------------------------------
    let cluster_probe = SharedProbe::recording();
    let model = ctx.primary_model();
    let schedule = StepSchedule::of(&model);
    let n = ctx.cluster_sizes.iter().copied().max().unwrap_or(4).max(2);
    let straggler = ctx.straggler_factors.iter().copied().fold(1.0f64, f64::max);
    let cpu = Time::from_ms(25);
    let des = DesClusterSystem::new(
        ctx.cfg.clone(),
        DesClusterConfig::lockstep(ctx.cluster_of(n)).with_straggler(straggler),
        crate::SecureMode::TensorTee,
    )
    .with_probe(cluster_probe.clone())
    .simulate_with_cpu_time(&schedule, cpu);
    let cluster_snap = cluster_probe.snapshot().expect("recording probe");

    // --- Instrumented fleet run --------------------------------------
    let fleet_probe = SharedProbe::recording();
    let (fleet_model, fleet_cfg, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let fleet = fleet_simulate_probed(
        &fleet_cfg.with_policy(Policy::RoundRobin),
        &fleet_model,
        &serve_profile(crate::SecureMode::TensorTee),
        &trace,
        &fleet_probe,
    );
    let fleet_snap = fleet_probe.snapshot().expect("recording probe");

    // --- Rollup ------------------------------------------------------
    report.table(utilization_table(
        format!(
            "cluster step utilization — {n} NPUs, straggler {straggler:.2}x, TensorTEE \
             (makespan {})",
            des.breakdown.total()
        ),
        &cluster_snap,
    ));
    report.table(utilization_table(
        format!(
            "fleet serving utilization — {} instances, round-robin, TensorTEE (makespan {})",
            ctx.fleet_instances, fleet.makespan
        ),
        &fleet_snap,
    ));

    let mut counters = MetricsRegistry::new();
    counters.merge(cluster_snap.metrics());
    counters.merge(fleet_snap.metrics());
    let mut ctable = Table::new(["counter", "value"]).captioned("counter rollup (both runs)");
    for (name, value) in counters.iter() {
        ctable.row([name.to_owned(), value.to_string()]);
    }
    report.table(ctable);

    let (cluster_rows, cluster_makespan) = utilization(&cluster_snap);
    let (fleet_rows, _) = utilization(&fleet_snap);
    report.metric("cluster_tracks", cluster_rows.len() as f64);
    report.metric("fleet_tracks", fleet_rows.len() as f64);
    report.metric(
        "events_recorded",
        (cluster_snap.events().len() + fleet_snap.events().len()) as f64,
    );
    report.metric("counters_recorded", counters.len() as f64);
    report.metric(
        "link_queued_ms",
        Time::from_ps(counters.get("link.grant_queued_ps")).as_ms_f64(),
    );
    report.metric("fleet_migrations", counters.get("fleet.migrations") as f64);
    if let Some(cpu_row) = cluster_rows.iter().find(|r| r.track == "CPU") {
        report.metric(
            "cluster_cpu_busy_fraction",
            cpu_row.busy.as_ps() as f64 / cluster_makespan.as_ps().max(1) as f64,
        );
    }
    report.note(format!(
        "{} events on {} tracks across both runs; probes observe simulated time and never \
         advance it, so these numbers ride along for free (byte-identical reports with \
         tracing on or off).",
        cluster_snap.events().len() + fleet_snap.events().len(),
        cluster_rows.len().max(fleet_rows.len()),
    ));

    // Surface the instrumented runs in the caller's recording (if any)
    // so `tensortee trace obs_utilization` exports a non-empty timeline.
    replay(&cluster_snap, &ctx.probe);
    replay(&fleet_snap, &ctx.probe);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;

    fn sample_trace() -> TraceProbe {
        let p = SharedProbe::recording();
        p.span("NPU0", "compute", Time::ZERO, Time::from_ns(80));
        p.span_begin("CPU", "optimizer", Time::from_ns(80));
        p.span_end("CPU", Time::from_ns(100));
        p.instant("router", "dispatch", Time::from_ns(5));
        p.gauge("link", "queue", Time::from_ns(10), 3);
        p.count("des.ticks", 7);
        p.snapshot().expect("recording")
    }

    #[test]
    fn chrome_trace_is_well_formed_and_names_tracks() {
        let json = chrome_trace(&sample_trace()).to_string();
        assert!(is_well_formed(&json), "{json}");
        for track in ["NPU0", "CPU", "router", "link"] {
            assert!(json.contains(&format!("\"name\":\"{track}\"")), "{track}");
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"des.ticks\":7"));
    }

    #[test]
    fn chrome_trace_converts_ps_to_us() {
        let p = SharedProbe::recording();
        p.span("NPU0", "x", Time::from_ms(1), Time::from_ms(3));
        let json = chrome_trace(&p.snapshot().unwrap()).to_string();
        // 1 ms = 1000 µs.
        assert!(json.contains("\"ts\":1000.0"), "{json}");
        assert!(json.contains("\"dur\":2000.0"), "{json}");
    }

    #[test]
    fn utilization_folds_spans_and_pairs() {
        let (rows, makespan) = utilization(&sample_trace());
        assert_eq!(makespan, Time::from_ns(100));
        let busy = |track: &str| rows.iter().find(|r| r.track == track).unwrap().busy;
        assert_eq!(busy("NPU0"), Time::from_ns(80));
        assert_eq!(busy("CPU"), Time::from_ns(20));
        assert_eq!(busy("router"), Time::ZERO);
        let t = utilization_table("demo", &sample_trace());
        assert_eq!(t.len(), 4);
        assert!(t.to_markdown().contains("80.0%"));
    }

    #[test]
    fn unmatched_ends_are_ignored() {
        let p = SharedProbe::recording();
        p.span_end("CPU", Time::from_ns(50));
        p.span_begin("CPU", "open", Time::from_ns(60));
        let (rows, makespan) = utilization(&p.snapshot().unwrap());
        assert_eq!(rows[0].busy, Time::ZERO);
        assert_eq!(makespan, Time::from_ns(60));
    }

    #[test]
    fn step_phases_emit_in_ledger_order() {
        let probe = SharedProbe::recording();
        let step = StepBreakdown {
            npu: Time::from_ns(100),
            cpu: Time::from_ns(50),
            comm_w: Time::ZERO,
            comm_g: Time::from_ns(25),
        };
        emit_step_phases(&probe, crate::SecureMode::TensorTee, &step);
        let snap = probe.snapshot().unwrap();
        // comm_w is zero → skipped; three spans, contiguous.
        assert_eq!(snap.events().len(), 3);
        assert_eq!(snap.events()[0].track(), "NPU0");
        assert_eq!(snap.events()[2].track(), "link");
        assert_eq!(snap.events()[2].at(), Time::from_ns(150));
        assert_eq!(snap.metrics().get("train.steps"), 1);
        // Null probe: free.
        emit_step_phases(&SharedProbe::Null, crate::SecureMode::TensorTee, &step);
    }
}
