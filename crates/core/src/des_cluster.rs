//! The discrete-event cluster engine.
//!
//! [`crate::ClusterSystem`] composes a data-parallel step *analytically*:
//! one closed-form overlap formula, N identical lockstep replicas. This
//! module rebuilds the same step on the [`tee_sim::des`] component
//! scheduler — NPU compute, ring-collective hops (with their staging
//! re-encryptions as explicit events), the NPU→CPU gradient stream, the
//! CPU optimizer and the weight path are all components exchanging timed
//! messages over a shared [`FabricLink`].
//!
//! Two regimes:
//!
//! * **Lockstep data-parallel** (straggler factor 1.0) must reproduce the
//!   analytic [`ClusterStepBreakdown`] **bit-for-bit** — the analytic
//!   path stays the correctness oracle (`tests/des_cluster.rs` is the
//!   differential harness). This works because both paths consume
//!   identical per-hop prices ([`tee_comm::ring::HopCost`]) and integer
//!   picosecond arithmetic, and an uncontended fabric grants every hop
//!   immediately.
//! * **DES-only scenarios** the analytic model cannot express:
//!   heterogeneous NPUs (a straggler rank stretches the backward window
//!   and every barrier), and pipeline-parallel schedules whose
//!   per-microbatch boundary activations contend for the fabric.

use crate::config::{ClusterConfig, SecureMode, SystemConfig};
use crate::system::{ClusterStepBreakdown, TrainingSystem};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;
use tee_comm::des::FabricLink;
use tee_comm::protocol::{DirectProtocol, StagingProtocol, TransferBreakdown};
use tee_comm::ring::{HopCost, RingAllReduce};
use tee_sim::des::{Component, Ctx, Scheduler};
use tee_sim::probe::SharedProbe;
use tee_sim::Time;
use tee_workloads::StepSchedule;

/// How the model is laid out across the cluster's NPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Parallelism {
    /// Every NPU holds the full model and a `1/N` batch shard; gradients
    /// ring-all-reduce (the analytic model's regime).
    Data,
    /// The model's layers split into N contiguous stages; the batch
    /// streams through as microbatches whose boundary activations cross
    /// the NPU fabric (GPipe-style fill/drain bubbles, no collective).
    Pipeline {
        /// Microbatches in flight per step (≥ 1).
        microbatches: u32,
    },
}

impl Parallelism {
    /// Display label used in reports and explore knobs.
    pub fn label(&self) -> String {
        match self {
            Parallelism::Data => "data".to_string(),
            Parallelism::Pipeline { microbatches } => format!("pipeline/{microbatches}"),
        }
    }
}

/// Cluster shape plus the DES-only knobs the analytic model cannot
/// express.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DesClusterConfig {
    /// The underlying cluster (replica count + fabric).
    pub cluster: ClusterConfig,
    /// Compute slowdown of the slowest NPU (last rank / last stage);
    /// `1.0` is the homogeneous lockstep case.
    pub straggler_factor: f64,
    /// Data-parallel vs pipeline-parallel layout.
    pub parallelism: Parallelism,
}

impl DesClusterConfig {
    /// The homogeneous data-parallel cluster — the configuration whose
    /// DES run must match the analytic path bit-for-bit.
    pub fn lockstep(cluster: ClusterConfig) -> Self {
        DesClusterConfig {
            cluster,
            straggler_factor: 1.0,
            parallelism: Parallelism::Data,
        }
    }

    /// Returns the config with the given straggler factor.
    pub fn with_straggler(mut self, factor: f64) -> Self {
        self.straggler_factor = factor;
        self
    }

    /// Returns the config switched to pipeline parallelism.
    pub fn with_pipeline(mut self, microbatches: u32) -> Self {
        self.parallelism = Parallelism::Pipeline { microbatches };
        self
    }
}

/// What one DES step run produced beyond the analytic-compatible
/// breakdown: the event-level ledgers only a timed simulation can keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesStepReport {
    /// Per-phase breakdown, extraction-compatible with the analytic
    /// [`ClusterStepBreakdown`] (equal bit-for-bit in lockstep
    /// data-parallel mode).
    pub breakdown: ClusterStepBreakdown,
    /// End-to-end simulated time of the step (always equals
    /// `breakdown.total()` — the breakdown is a partition of the
    /// makespan).
    pub makespan: Time,
    /// Time transfers spent queued behind other occupants of the NPU
    /// fabric (zero in lockstep data-parallel; the pipeline's overlapping
    /// boundary hops make it positive).
    pub fabric_contention: Time,
    /// Total time the NPU fabric spent transferring.
    pub fabric_occupied: Time,
    /// Total staging re-encryption + decryption time across every event
    /// (ring hops, boundary activations, CPU-link streams).
    pub crypto: Time,
    /// Events the scheduler dispatched.
    pub events: u64,
}

/// Everything the component graph stamps while running; the harness
/// extracts the breakdown from these timestamps after the run.
#[derive(Debug, Default)]
struct Ledger {
    /// Per-rank (or per-stage) compute completion time.
    npu_done: Vec<Time>,
    /// When the collective had all ranks ready.
    ring_start: Time,
    /// When the collective finished (== `ring_start` when it has no
    /// hops: N=1, or pipeline mode's empty collective).
    ar_end: Time,
    /// When the reduced gradients finished streaming into the CPU.
    grad_end: Time,
    /// When the CPU optimizer started (gradients arrived and compute
    /// drained).
    cpu_start: Time,
    /// When the weight path (CPU-link stream ∥ ring broadcast) finished.
    weight_end: Time,
    /// When the last of {CPU, weight path} finished.
    step_end: Time,
    /// Accumulated staging conversion time across all events.
    crypto: Time,
    /// Set once the finish component saw both completions.
    finished: bool,
}

type Shared<T> = Rc<RefCell<T>>;

/// Messages exchanged between the cluster's components.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// NPU/stage → ring: this rank's gradient stream is ready.
    RingReady,
    /// NPU/stage → CPU: this rank finished forward+backward.
    NpuDone,
    /// Ring → itself: advance the current hop one phase
    /// (re-encrypt → bus → decrypt).
    HopPhase,
    /// Ring → gradient link: reduced shards may stream to the CPU.
    GradStart,
    /// Gradient link → itself: advance one transfer phase.
    GradPhase,
    /// Gradient link → CPU: gradients resident in CPU memory.
    GradArrived,
    /// CPU → weight path: start (at `cpu_start` when the mode overlaps,
    /// at CPU completion otherwise).
    WeightStart,
    /// Weight path → itself: advance the CPU-link stream one phase.
    WeightPhase,
    /// Weight path → itself: the ring broadcast finished.
    BroadcastDone,
    /// CPU → finish.
    CpuDone,
    /// Weight path → finish.
    WeightDone,
    /// Stage boundary: one microbatch's activations arrived.
    ActArrived,
    /// Stage → itself: advance one in-flight activation transfer
    /// (identified by microbatch index) one phase.
    ActPhase(u32),
}

/// Three-phase progress of a protocol transfer replayed as events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XferPhase {
    ReEncrypted,
    Crossed,
}

/// An NPU replica in data-parallel mode: computes for a fixed duration,
/// announcing gradient-readiness (backward window opening, or completion
/// under a serialized protocol) and completion.
#[derive(Debug)]
struct NpuNode {
    rank: usize,
    ready_at: Time,
    done_at: Time,
    /// 0 = waiting for ready, 1 = waiting for done, 2 = idle.
    phase: u8,
    ring: usize,
    cpu: usize,
    ledger: Shared<Ledger>,
}

impl NpuNode {
    fn next_tick(&self) -> Time {
        match self.phase {
            0 => self.ready_at,
            1 => self.done_at,
            _ => Time::MAX,
        }
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        if self.phase == 0 {
            ctx.send(self.ring, Msg::RingReady);
            self.phase = 1;
        }
        if self.phase == 1 && self.done_at == now {
            self.ledger.borrow_mut().npu_done[self.rank] = now;
            ctx.send(self.cpu, Msg::NpuDone);
            self.phase = 2;
        }
    }
}

/// The ring collective: waits for every rank, then walks the pre-priced
/// hop sequence as explicit re-encrypt / bus / decrypt events, the bus
/// phase arbitrated by the shared fabric.
#[derive(Debug)]
struct RingNode {
    hops: Vec<HopCost>,
    waiting: u32,
    idx: usize,
    phase: XferPhase,
    fabric: Shared<FabricLink>,
    grad_link: usize,
    ledger: Shared<Ledger>,
}

impl RingNode {
    fn start_hop(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.phase = XferPhase::ReEncrypted;
        ctx.send_after(
            self.hops[self.idx].re_encryption,
            ctx.self_id(),
            Msg::HopPhase,
        );
    }

    fn finish_collective(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        self.ledger.borrow_mut().ar_end = now;
        ctx.send(self.grad_link, Msg::GradStart);
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::RingReady => {
                self.waiting -= 1;
                if self.waiting == 0 {
                    self.ledger.borrow_mut().ring_start = now;
                    if self.hops.is_empty() {
                        self.finish_collective(now, ctx);
                    } else {
                        self.start_hop(ctx);
                    }
                }
            }
            Msg::HopPhase => match self.phase {
                XferPhase::ReEncrypted => {
                    let grant = self
                        .fabric
                        .borrow_mut()
                        .occupy(now, self.hops[self.idx].comm);
                    self.phase = XferPhase::Crossed;
                    ctx.send_at(grant.end, ctx.self_id(), Msg::HopPhase);
                }
                XferPhase::Crossed => {
                    let hop = self.hops[self.idx];
                    // Decrypt-on-receive completes the hop.
                    let done = now + hop.decryption;
                    self.ledger.borrow_mut().crypto += hop.re_encryption + hop.decryption;
                    self.idx += 1;
                    if self.idx < self.hops.len() {
                        // The next hop's re-encryption starts when this
                        // hop's chunk is usable.
                        self.phase = XferPhase::ReEncrypted;
                        let re = self.hops[self.idx].re_encryption;
                        ctx.send_at(done + re, ctx.self_id(), Msg::HopPhase);
                    } else if done == now {
                        self.finish_collective(now, ctx);
                    } else {
                        // Defer the completion stamp to the decrypt end.
                        ctx.send_at(done, ctx.self_id(), Msg::GradStart);
                    }
                }
            },
            Msg::GradStart => {
                // Self-deferred completion after the last hop's decrypt.
                self.finish_collective(now, ctx);
            }
            _ => unreachable!("ring received {msg:?}"),
        }
    }
}

/// A protocol transfer on the dedicated CPU↔NPU link, replayed as
/// re-encrypt / bus / decrypt events; notifies `next` on completion.
#[derive(Debug)]
struct LinkNode {
    cost: TransferBreakdown,
    phase: XferPhase,
    /// Message sent to `next` when the transfer completes.
    done_msg: Msg,
    next: usize,
    /// Which self-message advances this node.
    step_msg_is_weight: bool,
    ledger: Shared<Ledger>,
    /// Stamp written at completion.
    stamps_grad_end: bool,
}

impl LinkNode {
    fn step_msg(&self) -> Msg {
        if self.step_msg_is_weight {
            Msg::WeightPhase
        } else {
            Msg::GradPhase
        }
    }

    fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.phase = XferPhase::ReEncrypted;
        ctx.send_after(self.cost.re_encryption, ctx.self_id(), self.step_msg());
    }

    fn advance(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        match self.phase {
            XferPhase::ReEncrypted => {
                self.phase = XferPhase::Crossed;
                ctx.send_after(self.cost.comm, ctx.self_id(), self.step_msg());
            }
            XferPhase::Crossed => {
                let done = now + self.cost.decryption;
                let mut ledger = self.ledger.borrow_mut();
                ledger.crypto += self.cost.re_encryption + self.cost.decryption;
                if self.stamps_grad_end {
                    ledger.grad_end = done;
                }
                drop(ledger);
                ctx.send_at(done, self.next, self.done_msg);
            }
        }
    }
}

/// The CPU optimizer: starts once every rank drained *and* the reduced
/// gradients arrived; kicks the weight path per the mode's overlap
/// policy.
#[derive(Debug)]
struct CpuNode {
    duration: Time,
    waiting_npu: u32,
    grad_arrived: bool,
    started: bool,
    done_at: Time,
    overlaps: bool,
    weight: usize,
    finish: usize,
    ledger: Shared<Ledger>,
}

impl CpuNode {
    fn maybe_start(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        if self.started || self.waiting_npu > 0 || !self.grad_arrived {
            return;
        }
        self.started = true;
        self.ledger.borrow_mut().cpu_start = now;
        self.done_at = now + self.duration;
        if self.overlaps {
            // Weights pipeline tensor-by-tensor behind the update (§4.4).
            ctx.send(self.weight, Msg::WeightStart);
        }
    }

    fn next_tick(&self) -> Time {
        if self.started && self.done_at != Time::MAX {
            self.done_at
        } else {
            Time::MAX
        }
    }

    fn tick(&mut self, _now: Time, ctx: &mut Ctx<'_, Msg>) {
        self.done_at = Time::MAX;
        if !self.overlaps {
            ctx.send(self.weight, Msg::WeightStart);
        }
        ctx.send(self.finish, Msg::CpuDone);
    }
}

/// The weight path: the CPU→NPU stream (a [`LinkNode`]-style transfer)
/// in parallel with the ring re-broadcast occupying the fabric; done when
/// the slower of the two finishes.
#[derive(Debug)]
struct WeightNode {
    link: LinkNode,
    broadcast: TransferBreakdown,
    pending: u8,
    fabric: Shared<FabricLink>,
    finish: usize,
    ledger: Shared<Ledger>,
}

impl WeightNode {
    fn path_done(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        self.pending -= 1;
        if self.pending == 0 {
            self.ledger.borrow_mut().weight_end = now;
            ctx.send(self.finish, Msg::WeightDone);
        }
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::WeightStart => {
                self.pending = 2;
                // Path A: the CPU-link stream.
                self.link.start(ctx);
                // Path B: the pipelined ring broadcast on the fabric
                // (crypto conversions included in its breakdown).
                let grant = self.fabric.borrow_mut().occupy(now, self.broadcast.total());
                self.ledger.borrow_mut().crypto +=
                    self.broadcast.re_encryption + self.broadcast.decryption;
                ctx.send_at(grant.end, ctx.self_id(), Msg::BroadcastDone);
            }
            Msg::WeightPhase => self.link.advance(now, ctx),
            // The link path routes its completion back to this node.
            Msg::WeightDone | Msg::BroadcastDone => self.path_done(now, ctx),
            _ => unreachable!("weight path received {msg:?}"),
        }
    }
}

/// Records the step end once both the CPU and the weight path finished.
#[derive(Debug)]
struct FinishNode {
    pending: u8,
    ledger: Shared<Ledger>,
}

impl FinishNode {
    fn receive(&mut self, now: Time, _msg: Msg) {
        self.pending -= 1;
        if self.pending == 0 {
            let mut ledger = self.ledger.borrow_mut();
            ledger.step_end = now;
            ledger.finished = true;
        }
    }
}

/// One pipeline stage: serially computes queued microbatches and ships
/// each one's boundary activations across the shared fabric (per-hop
/// staging conversion as explicit events).
#[derive(Debug)]
struct StageNode {
    stage: usize,
    /// Per-microbatch compute durations (sum = the stage's share of the
    /// step's NPU time).
    per_mb: Vec<Time>,
    /// Microbatches queued and ready to compute.
    queued: u32,
    /// Next microbatch index to finish computing.
    next_mb: usize,
    /// When the in-progress microbatch completes ([`Time::MAX`] = idle).
    busy_until: Time,
    /// Boundary activation transfer per microbatch (`None` on the last
    /// stage).
    act: Option<TransferBreakdown>,
    /// Phase of each in-flight activation transfer, by microbatch.
    act_phase: Vec<XferPhase>,
    /// Microbatches fully computed.
    finished: u32,
    next_stage: usize,
    ring: usize,
    cpu: usize,
    fabric: Shared<FabricLink>,
    ledger: Shared<Ledger>,
}

impl StageNode {
    fn try_start(&mut self, now: Time) {
        if self.busy_until == Time::MAX && self.queued > 0 && self.next_mb < self.per_mb.len() {
            self.queued -= 1;
            self.busy_until = now + self.per_mb[self.next_mb];
        }
    }

    fn next_tick(&self) -> Time {
        self.busy_until
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        // Drain every microbatch completing at `now` — zero-duration
        // microbatches (an empty stage on an over-partitioned model)
        // finish immediately, and the strict-advance contract requires
        // handling them all in this tick.
        while self.busy_until == now {
            let mb = self.next_mb as u32;
            self.next_mb += 1;
            self.busy_until = Time::MAX;
            self.finished += 1;
            if let Some(act) = self.act {
                // Ship its activations: re-encrypt, then request the fabric.
                self.act_phase[mb as usize] = XferPhase::ReEncrypted;
                ctx.send_after(act.re_encryption, ctx.self_id(), Msg::ActPhase(mb));
            }
            if self.finished as usize == self.per_mb.len() {
                // Stage drained: gradients for its layer shard are ready.
                self.ledger.borrow_mut().npu_done[self.stage] = now;
                ctx.send(self.ring, Msg::RingReady);
                ctx.send(self.cpu, Msg::NpuDone);
            }
            self.try_start(now);
        }
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::ActArrived => {
                self.queued += 1;
                self.try_start(now);
            }
            Msg::ActPhase(mb) => {
                let act = self.act.expect("last stage has no boundary");
                match self.act_phase[mb as usize] {
                    XferPhase::ReEncrypted => {
                        let grant = self.fabric.borrow_mut().occupy(now, act.comm);
                        self.act_phase[mb as usize] = XferPhase::Crossed;
                        ctx.send_at(grant.end, ctx.self_id(), Msg::ActPhase(mb));
                    }
                    XferPhase::Crossed => {
                        self.ledger.borrow_mut().crypto += act.re_encryption + act.decryption;
                        ctx.send_after(act.decryption, self.next_stage, Msg::ActArrived);
                    }
                }
            }
            _ => unreachable!("stage received {msg:?}"),
        }
    }
}

/// The component universe of one cluster step.
#[derive(Debug)]
enum Node {
    Npu(NpuNode),
    Stage(StageNode),
    Ring(RingNode),
    GradLink(LinkNode),
    Cpu(CpuNode),
    Weight(WeightNode),
    Finish(FinishNode),
}

impl Component for Node {
    type Msg = Msg;

    fn next_tick(&self) -> Time {
        match self {
            Node::Npu(n) => n.next_tick(),
            Node::Stage(s) => s.next_tick(),
            Node::Cpu(c) => c.next_tick(),
            _ => Time::MAX,
        }
    }

    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Node::Npu(n) => n.tick(now, ctx),
            Node::Stage(s) => s.tick(now, ctx),
            Node::Cpu(c) => c.tick(now, ctx),
            _ => unreachable!("component has no timer"),
        }
    }

    fn label(&self) -> String {
        match self {
            Node::Npu(n) => format!("NPU{}", n.rank),
            Node::Stage(s) => format!("NPU{}", s.stage),
            Node::Ring(_) => "ring".to_string(),
            Node::GradLink(_) => "link".to_string(),
            Node::Cpu(_) => "CPU".to_string(),
            Node::Weight(_) => "weights".to_string(),
            Node::Finish(_) => "finish".to_string(),
        }
    }

    fn receive(&mut self, now: Time, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Node::Ring(r) => r.receive(now, msg, ctx),
            Node::GradLink(l) => match msg {
                Msg::GradStart => l.start(ctx),
                Msg::GradPhase => l.advance(now, ctx),
                other => unreachable!("gradient link received {other:?}"),
            },
            Node::Cpu(c) => match msg {
                Msg::NpuDone => {
                    c.waiting_npu -= 1;
                    c.maybe_start(now, ctx);
                }
                Msg::GradArrived => {
                    c.grad_arrived = true;
                    c.maybe_start(now, ctx);
                }
                other => unreachable!("cpu received {other:?}"),
            },
            Node::Weight(w) => w.receive(now, msg, ctx),
            Node::Finish(f) => f.receive(now, msg),
            Node::Stage(s) => s.receive(now, msg, ctx),
            Node::Npu(_) => unreachable!("npu nodes take no messages"),
        }
    }
}

/// Scales a duration by the straggler factor; exact for factor 1.0.
fn scale_duration(t: Time, factor: f64) -> Time {
    if factor == 1.0 {
        t
    } else {
        Time::from_ps((t.as_ps() as f64 * factor).round() as u64)
    }
}

/// The discrete-event counterpart of [`crate::ClusterSystem`].
#[derive(Debug)]
pub struct DesClusterSystem {
    sys: TrainingSystem,
    des: DesClusterConfig,
    probe: SharedProbe,
}

impl DesClusterSystem {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster, a straggler factor below 1.0, or a
    /// pipeline with zero microbatches.
    pub fn new(cfg: SystemConfig, des: DesClusterConfig, mode: SecureMode) -> Self {
        assert!(des.cluster.n_npus > 0, "a cluster needs at least one NPU");
        assert!(
            des.straggler_factor >= 1.0,
            "straggler factor is a slowdown (≥ 1.0), got {}",
            des.straggler_factor
        );
        if let Parallelism::Pipeline { microbatches } = des.parallelism {
            assert!(microbatches > 0, "a pipeline needs at least one microbatch");
        }
        DesClusterSystem {
            sys: TrainingSystem::new(cfg, mode),
            des,
            probe: SharedProbe::Null,
        }
    }

    /// Installs an observability probe (builder form). The scheduler gets
    /// it for tick/send events, and [`Self::simulate_with_cpu_time`] lays
    /// phase spans (per-rank compute, collective, gradient stream,
    /// optimizer) over the finished ledger — emitted *after* the run, so
    /// tracing cannot perturb a single timestamp.
    pub fn with_probe(mut self, probe: SharedProbe) -> Self {
        self.probe = probe;
        self
    }

    /// The active mode.
    pub fn mode(&self) -> SecureMode {
        self.sys.mode()
    }

    /// The DES configuration.
    pub fn des_config(&self) -> &DesClusterConfig {
        &self.des
    }

    /// Simulates one full training step of `model`.
    pub fn simulate_step(&mut self, model: &tee_workloads::zoo::ModelConfig) -> DesStepReport {
        let schedule = StepSchedule::of(model);
        self.simulate_schedule(&schedule)
    }

    /// Simulates one step from an explicit (global-batch) schedule.
    pub fn simulate_schedule(&mut self, schedule: &StepSchedule) -> DesStepReport {
        // Adam runs on the reduced full-model gradients in both layouts;
        // data-parallel prices it from the replica schedule exactly like
        // the analytic path (same tensor list either way).
        let cpu = match self.des.parallelism {
            Parallelism::Data => {
                let replica = schedule.data_parallel_replica(self.des.cluster.n_npus);
                self.sys.cpu_time(&replica)
            }
            Parallelism::Pipeline { .. } => self.sys.cpu_time(schedule),
        };
        self.simulate_with_cpu_time(schedule, cpu)
    }

    /// [`Self::simulate_schedule`] with the CPU Adam phase supplied by
    /// the caller (the differential tests and the explorer share cached
    /// CPU times across points).
    pub fn simulate_with_cpu_time(&mut self, schedule: &StepSchedule, cpu: Time) -> DesStepReport {
        match self.des.parallelism {
            Parallelism::Data => self.run_data_parallel(schedule, cpu),
            Parallelism::Pipeline { microbatches } => {
                self.run_pipeline(schedule, cpu, microbatches)
            }
        }
    }

    /// Prices the mode's protocol for a point-to-point transfer of
    /// `bytes` on the NPU fabric (per-microbatch boundary activations).
    fn fabric_transfer_cost(&self, bytes: u64) -> TransferBreakdown {
        let link = self.des.cluster.interconnect.link();
        match self.mode() {
            SecureMode::NonSecure => {
                let mut link = link;
                TransferBreakdown {
                    re_encryption: Time::ZERO,
                    comm: link.transfer(Time::ZERO, bytes),
                    decryption: Time::ZERO,
                }
            }
            SecureMode::SgxMgx => StagingProtocol::on_link(link).transfer(Time::ZERO, bytes),
            SecureMode::TensorTee => DirectProtocol::on_link(link).transfer(Time::ZERO, bytes),
        }
    }

    /// The collective's per-hop prices under this mode (empty for N=1).
    fn ring_hops(&self, grad_bytes: u64) -> Vec<HopCost> {
        let ring = RingAllReduce::new(self.des.cluster.n_npus, self.des.cluster.interconnect);
        match self.mode() {
            SecureMode::NonSecure => ring.hops_plain(grad_bytes),
            SecureMode::SgxMgx => ring.hops_staged(grad_bytes),
            SecureMode::TensorTee => ring.hops_direct(grad_bytes),
        }
    }

    /// The weight re-broadcast breakdown under this mode.
    fn broadcast_cost(&self, weight_bytes: u64) -> TransferBreakdown {
        let ring = RingAllReduce::new(self.des.cluster.n_npus, self.des.cluster.interconnect);
        match self.mode() {
            SecureMode::NonSecure => ring.broadcast_plain(weight_bytes),
            SecureMode::SgxMgx => ring.broadcast_staged(weight_bytes),
            SecureMode::TensorTee => ring.broadcast_direct(weight_bytes),
        }
    }

    /// Builds and runs the data-parallel component graph.
    fn run_data_parallel(&mut self, schedule: &StepSchedule, cpu: Time) -> DesStepReport {
        let n = self.des.cluster.n_npus;
        let replica = schedule.data_parallel_replica(n);
        let npu_base = self.sys.npu_time(&replica);
        let comm = self.sys.comm_costs(&replica);
        let hops = self.ring_hops(replica.grad_bytes);
        let broadcast = self.broadcast_cost(replica.weight_bytes);
        let overlaps = self.sys.overlaps();

        let ledger: Shared<Ledger> = Rc::new(RefCell::new(Ledger {
            npu_done: vec![Time::ZERO; n as usize],
            ..Ledger::default()
        }));
        let fabric: Shared<FabricLink> = Rc::new(RefCell::new({
            let mut link = FabricLink::new();
            link.set_probe(self.probe.clone());
            link
        }));

        // Component ids: ranks 0..n, then ring, grad link, cpu, weight,
        // finish — the (time, id) tie-break dispatches ranks first.
        let ring_id = n as usize;
        let grad_id = ring_id + 1;
        let cpu_id = grad_id + 1;
        let weight_id = cpu_id + 1;
        let finish_id = weight_id + 1;

        let mut sched: Scheduler<Node> = Scheduler::new();
        for rank in 0..n as usize {
            // The straggler (if any) is the last rank.
            let factor = if rank == n as usize - 1 {
                self.des.straggler_factor
            } else {
                1.0
            };
            let done_at = scale_duration(npu_base, factor);
            // Under an overlapping protocol the collective may start when
            // the backward window opens (the last ~2/3 of the phase);
            // a serialized protocol waits for completion.
            let ready_at = if overlaps {
                done_at.saturating_sub(Time::from_ps(done_at.as_ps() * 2 / 3))
            } else {
                done_at
            };
            sched.add(Node::Npu(NpuNode {
                rank,
                ready_at,
                done_at,
                phase: 0,
                ring: ring_id,
                cpu: cpu_id,
                ledger: Rc::clone(&ledger),
            }));
        }
        self.add_tail_nodes(
            &mut sched,
            TailWiring {
                n_compute: n,
                hops,
                comm_grad: comm.grad,
                comm_weight: comm.weight,
                broadcast,
                cpu,
                overlaps,
                grad_id,
                cpu_id,
                weight_id,
                finish_id,
            },
            &ledger,
            &fabric,
        );
        self.finish_run(sched, ledger, fabric, cpu)
    }

    /// Builds and runs the pipeline-parallel component graph.
    fn run_pipeline(
        &mut self,
        schedule: &StepSchedule,
        cpu: Time,
        microbatches: u32,
    ) -> DesStepReport {
        let n = self.des.cluster.n_npus;
        let m = microbatches as usize;
        let comm = self.sys.comm_costs(schedule);
        let overlaps = self.sys.overlaps();

        // Split the layer list into N contiguous stages and price each
        // stage's compute with the same NPU engine the analytic path uses.
        let layers = &schedule.npu_layers;
        let chunk = layers.len().div_ceil(n as usize).max(1);
        let mut stage_times = Vec::with_capacity(n as usize);
        let mut boundary_bytes = Vec::with_capacity(n as usize);
        for s in 0..n as usize {
            let lo = (s * chunk).min(layers.len());
            let hi = ((s + 1) * chunk).min(layers.len());
            let slice = &layers[lo..hi];
            let t = if slice.is_empty() {
                Time::ZERO
            } else {
                let mut sub = schedule.clone();
                sub.npu_layers = slice.to_vec();
                self.sys.npu_time(&sub)
            };
            let factor = if s == n as usize - 1 {
                self.des.straggler_factor
            } else {
                1.0
            };
            stage_times.push(scale_duration(t, factor));
            // Activations crossing the boundary after stage `s`: the last
            // layer's output (64-byte floor, matching schedule scaling).
            boundary_bytes.push(slice.last().map(|l| l.out_bytes).unwrap_or(64).max(64));
        }

        let ledger: Shared<Ledger> = Rc::new(RefCell::new(Ledger {
            npu_done: vec![Time::ZERO; n as usize],
            ..Ledger::default()
        }));
        let fabric: Shared<FabricLink> = Rc::new(RefCell::new({
            let mut link = FabricLink::new();
            link.set_probe(self.probe.clone());
            link
        }));

        let ring_id = n as usize;
        let grad_id = ring_id + 1;
        let cpu_id = grad_id + 1;
        let weight_id = cpu_id + 1;
        let finish_id = weight_id + 1;

        let mut sched: Scheduler<Node> = Scheduler::new();
        for s in 0..n as usize {
            // Conserve each stage's total compute exactly across its
            // microbatches (integer split, remainder spread over the
            // first microbatches).
            let ps = stage_times[s].as_ps();
            let per = ps / m as u64;
            let rem = ps % m as u64;
            let per_mb: Vec<Time> = (0..m as u64)
                .map(|k| Time::from_ps(per + u64::from(k < rem)))
                .collect();
            let act = if s + 1 < n as usize {
                Some(self.fabric_transfer_cost(boundary_bytes[s].div_ceil(m as u64)))
            } else {
                None
            };
            // Stage 0 starts its first microbatch at t=0 with the rest
            // of the batch queued; later stages idle until activations
            // arrive.
            let (queued, busy_until) = if s == 0 {
                (microbatches - 1, per_mb[0])
            } else {
                (0, Time::MAX)
            };
            sched.add(Node::Stage(StageNode {
                stage: s,
                per_mb,
                queued,
                next_mb: 0,
                busy_until,
                act,
                act_phase: vec![XferPhase::ReEncrypted; m],
                finished: 0,
                next_stage: s + 1,
                ring: ring_id,
                cpu: cpu_id,
                fabric: Rc::clone(&fabric),
                ledger: Rc::clone(&ledger),
            }));
        }
        self.add_tail_nodes(
            &mut sched,
            TailWiring {
                n_compute: n,
                // No collective: layer shards are disjoint, gradients
                // stream straight to the CPU.
                hops: Vec::new(),
                comm_grad: comm.grad,
                comm_weight: comm.weight,
                // No ring re-broadcast either: each stage receives only
                // its own shard over the CPU link.
                broadcast: TransferBreakdown {
                    re_encryption: Time::ZERO,
                    comm: Time::ZERO,
                    decryption: Time::ZERO,
                },
                cpu,
                overlaps,
                grad_id,
                cpu_id,
                weight_id,
                finish_id,
            },
            &ledger,
            &fabric,
        );
        self.finish_run(sched, ledger, fabric, cpu)
    }

    /// Adds the shared back half of the graph: collective, gradient link,
    /// CPU, weight path, finish.
    fn add_tail_nodes(
        &self,
        sched: &mut Scheduler<Node>,
        w: TailWiring,
        ledger: &Shared<Ledger>,
        fabric: &Shared<FabricLink>,
    ) {
        sched.add(Node::Ring(RingNode {
            hops: w.hops,
            waiting: w.n_compute,
            idx: 0,
            phase: XferPhase::ReEncrypted,
            fabric: Rc::clone(fabric),
            grad_link: w.grad_id,
            ledger: Rc::clone(ledger),
        }));
        sched.add(Node::GradLink(LinkNode {
            cost: w.comm_grad,
            phase: XferPhase::ReEncrypted,
            done_msg: Msg::GradArrived,
            next: w.cpu_id,
            step_msg_is_weight: false,
            ledger: Rc::clone(ledger),
            stamps_grad_end: true,
        }));
        sched.add(Node::Cpu(CpuNode {
            duration: w.cpu,
            waiting_npu: w.n_compute,
            grad_arrived: false,
            started: false,
            done_at: Time::MAX,
            overlaps: w.overlaps,
            weight: w.weight_id,
            finish: w.finish_id,
            ledger: Rc::clone(ledger),
        }));
        sched.add(Node::Weight(WeightNode {
            link: LinkNode {
                cost: w.comm_weight,
                phase: XferPhase::ReEncrypted,
                done_msg: Msg::WeightDone,
                // The link path reports back to the weight node itself,
                // which forwards once both paths are done.
                next: w.weight_id,
                step_msg_is_weight: true,
                ledger: Rc::clone(ledger),
                stamps_grad_end: false,
            },
            broadcast: w.broadcast,
            pending: 0,
            fabric: Rc::clone(fabric),
            finish: w.finish_id,
            ledger: Rc::clone(ledger),
        }));
        sched.add(Node::Finish(FinishNode {
            pending: 2,
            ledger: Rc::clone(ledger),
        }));
    }

    /// Runs the scheduler to quiescence and extracts the breakdown.
    fn finish_run(
        &self,
        mut sched: Scheduler<Node>,
        ledger: Shared<Ledger>,
        fabric: Shared<FabricLink>,
        cpu: Time,
    ) -> DesStepReport {
        sched.set_probe(self.probe.clone());
        sched.run();
        let events = sched.events_processed();
        drop(sched);
        let ledger = Rc::try_unwrap(ledger)
            .expect("all components dropped")
            .into_inner();
        assert!(ledger.finished, "step did not run to completion");
        let fabric = fabric.borrow();

        // Extraction: algebraically identical to the analytic
        // composition (see tests/des_cluster.rs for the bit-for-bit
        // differential harness).
        let npu_end = ledger.npu_done.iter().copied().max().unwrap_or(Time::ZERO);
        let comm_ar = ledger.ar_end.saturating_sub(npu_end);
        let comm_g = ledger.grad_end.saturating_sub(npu_end.max(ledger.ar_end));
        let comm_w = ledger.step_end.saturating_sub(ledger.cpu_start + cpu);
        let breakdown = ClusterStepBreakdown {
            npu: npu_end,
            cpu,
            comm_w,
            comm_g,
            comm_ar,
        };
        if self.probe.enabled() {
            // Phase spans are laid over the finished ledger — pure
            // observation of timestamps the run already stamped.
            let mode = self.mode().label();
            for (rank, done) in ledger.npu_done.iter().enumerate() {
                self.probe.span(
                    &format!("NPU{rank}"),
                    &format!("compute [{mode}]"),
                    Time::ZERO,
                    *done,
                );
            }
            if ledger.ar_end > ledger.ring_start {
                self.probe
                    .span("ring", "all_reduce", ledger.ring_start, ledger.ar_end);
            }
            if ledger.grad_end > ledger.ar_end {
                self.probe
                    .span("link", "grad_stream", ledger.ar_end, ledger.grad_end);
            }
            self.probe
                .span("CPU", "optimizer", ledger.cpu_start, ledger.cpu_start + cpu);
            self.probe
                .instant("weights", "weights_ready", ledger.weight_end);
            self.probe.instant("CPU", "step_end", ledger.step_end);
            self.probe.count("cluster.steps", 1);
            self.probe.count("cluster.crypto_ps", ledger.crypto.as_ps());
            self.probe
                .count("link.queued_ps", fabric.contention().as_ps());
            self.probe
                .count("link.occupied_ps", fabric.occupied().as_ps());
        }
        DesStepReport {
            breakdown,
            makespan: ledger.step_end,
            fabric_contention: fabric.contention(),
            fabric_occupied: fabric.occupied(),
            crypto: ledger.crypto,
            events,
        }
    }
}

/// Wiring bundle for the shared tail of the component graph.
#[derive(Debug)]
struct TailWiring {
    n_compute: u32,
    hops: Vec<HopCost>,
    comm_grad: TransferBreakdown,
    comm_weight: TransferBreakdown,
    broadcast: TransferBreakdown,
    cpu: Time,
    overlaps: bool,
    grad_id: usize,
    cpu_id: usize,
    weight_id: usize,
    finish_id: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSystem;
    use tee_workloads::zoo::by_name;

    fn fast() -> SystemConfig {
        SystemConfig::fast_sim()
    }

    /// A deterministic synthetic CPU time (the cacheline CPU sim is the
    /// expensive part; parity is independent of the value supplied).
    const CPU: Time = Time::from_ms(25);

    #[test]
    fn lockstep_matches_analytic_bit_for_bit() {
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        for n in [1u32, 2, 4, 8] {
            for mode in SecureMode::all() {
                let analytic = ClusterSystem::new(fast(), ClusterConfig::of(n), mode)
                    .simulate_with_cpu_time(&schedule, CPU);
                let des = DesClusterSystem::new(
                    fast(),
                    DesClusterConfig::lockstep(ClusterConfig::of(n)),
                    mode,
                )
                .simulate_with_cpu_time(&schedule, CPU);
                assert_eq!(des.breakdown, analytic, "N={n} {}", mode.label());
                assert_eq!(des.makespan, analytic.total(), "N={n} {}", mode.label());
                assert_eq!(des.fabric_contention, Time::ZERO);
            }
        }
    }

    #[test]
    fn straggler_stretches_compute_and_shrinks_exposed_collective() {
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        let base = DesClusterSystem::new(
            fast(),
            DesClusterConfig::lockstep(ClusterConfig::of(4)),
            SecureMode::TensorTee,
        )
        .simulate_with_cpu_time(&schedule, CPU);
        let slow = DesClusterSystem::new(
            fast(),
            DesClusterConfig::lockstep(ClusterConfig::of(4)).with_straggler(1.5),
            SecureMode::TensorTee,
        )
        .simulate_with_cpu_time(&schedule, CPU);
        assert!(slow.breakdown.npu > base.breakdown.npu);
        // The longer backward window hides more of the collective.
        assert!(slow.breakdown.comm_ar <= base.breakdown.comm_ar);
        assert!(slow.makespan > base.makespan);
    }

    #[test]
    fn pipeline_contends_on_the_fabric() {
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        let report = DesClusterSystem::new(
            fast(),
            DesClusterConfig::lockstep(ClusterConfig::of(4)).with_pipeline(8),
            SecureMode::SgxMgx,
        )
        .simulate_with_cpu_time(&schedule, CPU);
        assert!(report.fabric_occupied > Time::ZERO);
        assert_eq!(report.breakdown.comm_ar, Time::ZERO, "no collective");
        assert_eq!(report.makespan, report.breakdown.total());
        assert!(report.crypto > Time::ZERO, "staging pays conversions");
    }

    #[test]
    fn reports_are_deterministic() {
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        let run = || {
            DesClusterSystem::new(
                fast(),
                DesClusterConfig::lockstep(ClusterConfig::of(4))
                    .with_straggler(1.25)
                    .with_pipeline(4),
                SecureMode::TensorTee,
            )
            .simulate_with_cpu_time(&schedule, CPU)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tracing_does_not_perturb_the_report() {
        let model = by_name("GPT").unwrap();
        let schedule = StepSchedule::of(&model);
        let run = |probe: SharedProbe| {
            DesClusterSystem::new(
                fast(),
                DesClusterConfig::lockstep(ClusterConfig::of(4)).with_straggler(1.25),
                SecureMode::SgxMgx,
            )
            .with_probe(probe)
            .simulate_with_cpu_time(&schedule, CPU)
        };
        let recorder = SharedProbe::recording();
        assert_eq!(run(SharedProbe::Null), run(recorder.clone()));
        let snap = recorder.snapshot().expect("recording probe");
        assert!(snap.metrics().get("cluster.steps") == 1);
        assert!(snap.metrics().get("cluster.crypto_ps") > 0);
        for track in ["NPU0", "NPU3", "ring", "link", "CPU"] {
            assert!(
                snap.events().iter().any(|e| e.track() == track),
                "missing track {track}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "straggler factor")]
    fn sub_unity_straggler_rejected() {
        let _ = DesClusterSystem::new(
            fast(),
            DesClusterConfig::lockstep(ClusterConfig::of(2)).with_straggler(0.5),
            SecureMode::NonSecure,
        );
    }
}
