//! Hardware overhead accounting (§6.5).
//!
//! The paper budgets the TenAnalyzer at 24 KB of on-chip storage
//! (0.0072 mm² at 7 nm via CACTI-7): a 512-entry Meta Table, a 10-entry
//! Tensor Filter, a 6 KB bitmap cache and 512 poison bits. This module
//! reproduces the arithmetic so the budget is regenerated, not quoted.

use crate::report::Table;
use serde::Serialize;

/// Bit widths of one Meta Table entry (§6.5).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MetaEntryBits {
    /// Address field.
    pub address: u32,
    /// Dimension fields.
    pub dims: u32,
    /// Stride field.
    pub stride: u32,
    /// Version number.
    pub vn: u32,
    /// Tensor MAC.
    pub mac: u32,
    /// UF/BS flags.
    pub flags: u32,
}

impl Default for MetaEntryBits {
    fn default() -> Self {
        MetaEntryBits {
            address: 64,
            dims: 92,
            stride: 10,
            vn: 56,
            mac: 56,
            flags: 2,
        }
    }
}

impl MetaEntryBits {
    /// Total bits per entry.
    pub fn total(&self) -> u32 {
        self.address + self.dims + self.stride + self.vn + self.mac + self.flags
    }
}

/// The §6.5 hardware budget.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HardwareBudget {
    /// Meta Table entries (512).
    pub meta_entries: u32,
    /// Bits per Meta Table entry.
    pub entry_bits: MetaEntryBits,
    /// Tensor Filter entries (10).
    pub filter_entries: u32,
    /// Addresses collected per filter entry (4).
    pub filter_addresses: u32,
    /// Bitmap cache bytes (6 KB).
    pub bitmap_cache_bytes: u32,
    /// Poison bits (512, one per trackable tensor).
    pub poison_bits: u32,
}

impl Default for HardwareBudget {
    fn default() -> Self {
        HardwareBudget {
            meta_entries: 512,
            entry_bits: MetaEntryBits::default(),
            filter_entries: 10,
            filter_addresses: 4,
            bitmap_cache_bytes: 6 << 10,
            poison_bits: 512,
        }
    }
}

impl HardwareBudget {
    /// Meta Table bytes.
    pub fn meta_table_bytes(&self) -> u32 {
        (self.meta_entries * self.entry_bits.total()).div_ceil(8)
    }

    /// Tensor Filter bytes: per entry, 4 addresses (64 b) + VN + MAC.
    pub fn filter_bytes(&self) -> u32 {
        let bits_per_entry = self.filter_addresses * 64 + 56 + 56;
        (self.filter_entries * bits_per_entry).div_ceil(8)
    }

    /// Poison-bit storage bytes.
    pub fn poison_bytes(&self) -> u32 {
        self.poison_bits.div_ceil(8)
    }

    /// Total on-chip bytes for all components.
    pub fn total_bytes(&self) -> u32 {
        self.meta_table_bytes()
            + self.filter_bytes()
            + self.bitmap_cache_bytes
            + self.poison_bytes()
    }

    /// Estimated area in mm² at 7 nm. CACTI-7 reports ~0.0003 mm²/KB for
    /// small SRAM arrays at this node; the paper's 24 KB → 0.0072 mm²
    /// implies exactly that coefficient.
    pub fn area_mm2(&self) -> f64 {
        const MM2_PER_KB: f64 = 0.0072 / 24.0;
        self.total_bytes() as f64 / 1024.0 * MM2_PER_KB
    }

    /// The budget as a component/storage [`Table`] — the single rendering
    /// the `sec65` artifact report ingests.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["component", "storage"]);
        t.row([
            format!(
                "Meta Table ({} x {} b)",
                self.meta_entries,
                self.entry_bits.total()
            ),
            format!("{} B", self.meta_table_bytes()),
        ]);
        t.row([
            format!("Tensor Filter ({} entries)", self.filter_entries),
            format!("{} B", self.filter_bytes()),
        ]);
        t.row([
            "Bitmap cache".into(),
            format!("{} B", self.bitmap_cache_bytes),
        ]);
        t.row(["Poison bits".into(), format!("{} B", self.poison_bytes())]);
        t.row([
            "Total".into(),
            format!(
                "{:.1} KB ({:.4} mm2 @ 7 nm)",
                self.total_bytes() as f64 / 1024.0,
                self.area_mm2()
            ),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_280_bits() {
        // 64 + 92 + 10 + 56 + 56 + 2 (§6.5).
        assert_eq!(MetaEntryBits::default().total(), 280);
    }

    #[test]
    fn total_close_to_paper_24kb() {
        let b = HardwareBudget::default();
        let kb = b.total_bytes() as f64 / 1024.0;
        assert!(
            (22.0..26.0).contains(&kb),
            "paper reports 24 KB, computed {kb:.1} KB"
        );
    }

    #[test]
    fn area_matches_paper_coefficient() {
        let b = HardwareBudget::default();
        assert!((b.area_mm2() - 0.0072).abs() < 0.0012);
    }

    #[test]
    fn table_lists_every_component_and_total() {
        let t = HardwareBudget::default().table();
        assert_eq!(t.len(), 5);
        let md = t.to_markdown();
        assert!(md.contains("Meta Table (512 x 280 b)"));
        assert!(md.contains("24.0 KB"));
    }

    #[test]
    fn components_are_positive() {
        let b = HardwareBudget::default();
        assert!(b.meta_table_bytes() > 16_000, "512×280b ≈ 17.5 KB");
        assert!(b.filter_bytes() > 0);
        assert_eq!(b.poison_bytes(), 64);
    }
}
