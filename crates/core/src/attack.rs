//! Adversary & side-channel artifacts (`attack_traffic`,
//! `attack_kv_residency`, `attack_defended`; tee-attack extension).
//!
//! The rest of the registry prices the *defenses* — MAC schemes,
//! staged vs. direct KV protocols. These three artifacts price the
//! *attacks* those defenses exist for, using only what a bus-level
//! adversary can see: ciphertext sizes (wire occupancy) and timings on
//! the CPU–NPU link, plus the sizes of spilled KV objects at rest.
//!
//! Every runner records into **fresh, private probes** and derives its
//! report from the snapshots; the caller's context probe only
//! *additionally* receives a replay of the same events (the
//! `obs_utilization` pattern). Report bytes therefore cannot depend on
//! whether the context probe is recording, and nothing here touches a
//! thread pool — the artifacts are byte-identical across `--threads`.

use crate::artifact::{find, RunContext};
use crate::experiments::{fleet_setup, serve_profile};
use crate::obs::replay;
use crate::report::{f2, pct, Report, Table};
use tee_attack::{
    extractable_bits, instants_named, link_sessions, mutual_information_bits, size_bucket,
    KvShield, Observation, ResidencyFinding, Shaping, TrafficClassifier, MEASUREMENT_QUANTUM,
};
use tee_fleet::simulate_probed as fleet_simulate_probed;
use tee_fleet::Policy;
use tee_serve::{simulate_probed, KvSpec, ServeConfig, ServeReport, TraceConfig};
use tee_sim::probe::{SharedProbe, TraceProbe};
use tee_sim::{SplitMix64, Time};
use tee_workloads::zoo::ModelConfig;

/// The adversary's serving setup for one model: the context's Poisson
/// shape at 4x the base rate against a tight KV budget (~500 tokens,
/// the scheduler tests' spill-forcing idiom), so KV offload/fetch
/// traffic keeps the link busy and the adversary has a channel to
/// read. Mirrors `explore::eval_attack`.
fn attack_serve_setup(
    ctx: &RunContext,
    model: &ModelConfig,
    seed: u64,
) -> (ServeConfig, TraceConfig) {
    let mut trace = TraceConfig::poisson(ctx.serve_requests, ctx.serve_rate_rps * 4.0, seed);
    if ctx.fast {
        // The reduced context trims conversations exactly like the
        // registered serving artifacts do (see experiments::serve_setup).
        trace.prompt_mean = 256;
        trace.output_mean = 48;
    }
    let kv = KvSpec::of(model);
    let cfg = ServeConfig::for_model(model, 2, trace.steady_tokens())
        .with_kv_hbm_bytes(kv.bytes_per_token * 500)
        .with_npu(ctx.cfg.npu.clone());
    (cfg, trace)
}

/// One TensorTEE serving run traced into a fresh private probe.
pub(crate) fn traced_serve(
    ctx: &RunContext,
    model: &ModelConfig,
    seed: u64,
) -> (ServeReport, TraceProbe) {
    let (cfg, trace_cfg) = attack_serve_setup(ctx, model, seed);
    let trace = trace_cfg.generate();
    let probe = SharedProbe::recording();
    let rep = simulate_probed(
        &cfg,
        model,
        &serve_profile(crate::SecureMode::TensorTee),
        &trace,
        &probe,
    );
    let snap = probe.snapshot().expect("freshly created recording probe");
    (rep, snap)
}

/// The two seeded sub-streams the traffic adversary uses: one trace the
/// classifier trains on, a second (different arrivals, same shape) it
/// is tested on. Stream 2 is the attack sub-stream, shared with
/// `explore::eval_attack`.
pub(crate) fn attack_seeds(ctx: &RunContext) -> (u64, u64) {
    let mut rng = SplitMix64::new(ctx.seed).split(2);
    (rng.next_u64(), rng.next_u64())
}

/// Runs the `attack_traffic` artifact: for every context model, two
/// traced TensorTEE serving runs (train/test arrivals from separate
/// sub-seeds). The adversary sees only link-track wire occupancy; the
/// nearest-centroid classifier trained on the first trace must name
/// the model behind the second, and the plug-in mutual information
/// between model identity and the observed feature quantifies the
/// channel in bits.
///
/// # Panics
///
/// Panics if the `attack_traffic` artifact is missing from the
/// registry (a registration bug).
pub fn attack_traffic(ctx: &RunContext) -> Report {
    let mut report = find("attack_traffic")
        .expect("attack_traffic is registered")
        .new_report();
    let (train_seed, test_seed) = attack_seeds(ctx);

    // The classifier bins each transfer into a half-octave size class:
    // coarse enough that two traces of the same model land in the same
    // bins, fine enough that models with different per-token KV sizes
    // do not. The per-transfer entropy column keeps the adversary's
    // full measurement resolution.
    let classes = |view: &Observation| -> Vec<u64> {
        view.events()
            .iter()
            .map(|e| size_bucket(e.duration.as_ps()))
            .collect()
    };
    let mut snaps: Vec<TraceProbe> = Vec::new();
    let mut labeled: Vec<(&str, Vec<u64>)> = Vec::new();
    let mut held_out: Vec<(&str, Vec<u64>)> = Vec::new();
    let mut fine_bits: Vec<f64> = Vec::new();
    for model in &ctx.models {
        let (_, train_snap) = traced_serve(ctx, model, train_seed);
        let (_, test_snap) = traced_serve(ctx, model, test_seed);
        let test_view = Observation::from_trace(&test_snap);
        labeled.push((model.name, classes(&Observation::from_trace(&train_snap))));
        fine_bits.push(extractable_bits(&test_view.features(MEASUREMENT_QUANTUM)));
        held_out.push((model.name, classes(&test_view)));
        snaps.push(train_snap);
        snaps.push(test_snap);
    }

    let clf = TrafficClassifier::train(&labeled);
    let mut correct = 0u32;
    let mut mi_samples: Vec<(u64, u64)> = Vec::new();
    let mut table = Table::new([
        "model",
        "train transfers",
        "test transfers",
        "bits/transfer",
        "classified as",
    ])
    .captioned(
        "traffic analysis — wire occupancy only, TensorTEE profile, nearest-centroid \
         classifier trained on a disjoint trace",
    );
    for (i, (name, features)) in held_out.iter().enumerate() {
        let guess = clf.classify(features).unwrap_or("-");
        if guess == *name {
            correct += 1;
        }
        mi_samples.extend(features.iter().map(|&f| (i as u64, f)));
        table.row([
            (*name).to_owned(),
            labeled[i].1.len().to_string(),
            features.len().to_string(),
            f2(fine_bits[i]),
            guess.to_owned(),
        ]);
    }
    report.table(table);

    let accuracy = f64::from(correct) / (held_out.len().max(1)) as f64;
    let mi = mutual_information_bits(&mi_samples);
    report.metric("models", held_out.len() as f64);
    report.metric("classifier_accuracy", accuracy);
    report.metric("mutual_information_bits", mi);
    report.metric("link_transfers_observed", mi_samples.len() as f64);
    report.note(format!(
        "the classifier names the model behind {correct}/{} held-out traces from ciphertext \
         sizes alone ({} of at most {} bits of model identity per observed transfer); \
         encryption hides contents, not shape.",
        held_out.len(),
        f2(mi),
        f2((held_out.len().max(1) as f64).log2()),
    ));
    for snap in &snaps {
        replay(snap, &ctx.probe);
    }
    report
}

/// The per-turn spilled-KV objects of a session trace: what lands at
/// rest in CPU DRAM when each turn's KV is offloaded — ground-truth
/// session id paired with the object size a storage-level adversary
/// observes (`bytes_per_token x turn tokens`).
pub(crate) fn spilled_objects(
    model: &ModelConfig,
    trace: &[tee_serve::SessionRequest],
) -> (Vec<u64>, Vec<u64>) {
    let kv = KvSpec::of(model);
    let sessions = trace.iter().map(|r| r.session).collect();
    let sizes = trace
        .iter()
        .map(|r| kv.bytes_per_token * (r.request.prompt_tokens + r.request.output_tokens))
        .collect();
    (sessions, sizes)
}

/// Scores the KV-residency adversary against one shield setting.
fn residency_under(shield: KvShield, sessions: &[u64], sizes: &[u64]) -> ResidencyFinding {
    let observed = shield.observed_sizes(sizes);
    let samples: Vec<(u64, u64)> = sessions.iter().copied().zip(observed).collect();
    link_sessions(&samples)
}

/// Runs the `attack_kv_residency` artifact: one traced round-robin
/// fleet run (round-robin forces KV handoffs), whose spill/fetch
/// instants and `kv_handoff` wire spans are the adversary's
/// observation surface. The residency adversary clusters the spilled
/// objects by size and is scored in bits of mutual information against
/// the true session ids — with plain spill and with shielded-at-rest
/// KV (re-encrypt on spill, verify on fetch), whose re-encryption bill
/// is priced against the same run.
///
/// # Panics
///
/// Panics if the `attack_kv_residency` artifact is missing from the
/// registry (a registration bug).
pub fn attack_kv_residency(ctx: &RunContext) -> Report {
    let mut report = find("attack_kv_residency")
        .expect("attack_kv_residency is registered")
        .new_report();

    let (model, fleet_cfg, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let probe = SharedProbe::recording();
    let rep = fleet_simulate_probed(
        &fleet_cfg.with_policy(Policy::RoundRobin),
        &model,
        &serve_profile(crate::SecureMode::TensorTee),
        &trace,
        &probe,
    );
    let snap = probe.snapshot().expect("freshly created recording probe");

    let handoffs = Observation::from_trace(&snap);
    let fetches = instants_named(&snap, "CPU", "kv_fetch");
    let (sessions, sizes) = spilled_objects(&model, &trace);
    let mut distinct = sessions.clone();
    distinct.sort_unstable();
    distinct.dedup();

    let mut table = Table::new([
        "KV at rest",
        "objects",
        "size clusters",
        "sessions",
        "linkage bits",
        "re-encrypt overhead",
    ])
    .captioned(format!(
        "KV-residency adversary — {} spilled objects, {} sessions, round-robin fleet \
         ({} handoffs on the wire, {} fetches)",
        sizes.len(),
        distinct.len(),
        handoffs.len(),
        fetches.len(),
    ));
    let mut findings: Vec<(KvShield, ResidencyFinding, Time)> = Vec::new();
    for &shield in &KvShield::all() {
        let finding = residency_under(shield, &sessions, &sizes);
        let overhead = shield.overhead(rep.migrated_bytes, rep.migrated_bytes);
        table.row([
            shield.label().to_owned(),
            finding.observed.to_string(),
            finding.clusters.to_string(),
            finding.sessions.to_string(),
            f2(finding.bits),
            format!(
                "{overhead} ({})",
                pct(overhead.as_secs_f64() / rep.makespan.as_secs_f64().max(1e-12))
            ),
        ]);
        findings.push((shield, finding, overhead));
    }
    report.table(table);

    let plain = &findings[0].1;
    let shielded = &findings[1].1;
    let overhead = findings[1].2;
    report.metric("handoff_wire_spans", handoffs.len() as f64);
    report.metric("kv_fetch_instants", fetches.len() as f64);
    report.metric("fleet_migrations", rep.migrations as f64);
    report.metric("residency_bits_plain", plain.bits);
    report.metric("residency_bits_shielded", shielded.bits);
    report.metric("shield_overhead_ms", overhead.as_ms_f64());
    report.metric(
        "shield_overhead_frac",
        overhead.as_secs_f64() / rep.makespan.as_secs_f64().max(1e-12),
    );
    report.note(format!(
        "plain spill leaks {} bits linking spilled KV back to sessions; padding every object \
         to the shield slot collapses the size channel to {} bits for a {} re-encrypt/verify \
         bill ({} of the makespan).",
        f2(plain.bits),
        f2(shielded.bits),
        overhead,
        pct(overhead.as_secs_f64() / rep.makespan.as_secs_f64().max(1e-12)),
    ));
    replay(&snap, &ctx.probe);
    report
}

/// Runs the `attack_defended` artifact: one traced serving run under
/// every traffic-shaping level (unshaped / padded / constant-rate) and
/// one traced fleet run under both at-rest shields, each row pairing
/// the residual leakage with the defense's price — padding time and
/// the goodput it costs, re-encryption time and its share of the
/// makespan. The leakage must order strictly: unshaped > padded >
/// constant-rate (exactly zero), and plain spill > shielded at rest.
///
/// # Panics
///
/// Panics if the `attack_defended` artifact is missing from the
/// registry (a registration bug).
pub fn attack_defended(ctx: &RunContext) -> Report {
    let mut report = find("attack_defended")
        .expect("attack_defended is registered")
        .new_report();
    let model = ctx.primary_model();
    let (_, test_seed) = attack_seeds(ctx);

    // --- Traffic shaping: one serving run, three adversary views ----
    let (rep, snap) = traced_serve(ctx, &model, test_seed);
    let view = Observation::from_trace(&snap);
    let mut shaping_table = Table::new([
        "shaping",
        "transfers",
        "bits/transfer",
        "padding",
        "goodput",
    ])
    .captioned(format!(
        "traffic shaping — {} model, TensorTEE profile, {} link transfers observed",
        model.name,
        view.len(),
    ));
    let mut traffic_bits: Vec<(Shaping, f64, Time)> = Vec::new();
    for &shaping in &Shaping::all() {
        let shaped = shaping.apply(&view);
        let bits = extractable_bits(&shaped.observation.features(MEASUREMENT_QUANTUM));
        let priced = rep.makespan + shaped.padding;
        let goodput =
            rep.goodput_tps() * rep.makespan.as_secs_f64() / priced.as_secs_f64().max(1e-12);
        shaping_table.row([
            shaping.label().to_owned(),
            shaped.observation.len().to_string(),
            f2(bits),
            shaped.padding.to_string(),
            format!("{goodput:.0} tok/s"),
        ]);
        traffic_bits.push((shaping, bits, shaped.padding));
    }
    report.table(shaping_table);

    // --- At-rest shielding: one fleet run, two adversary views ------
    let (fleet_model, fleet_cfg, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let fleet_probe = SharedProbe::recording();
    let fleet_rep = fleet_simulate_probed(
        &fleet_cfg.with_policy(Policy::RoundRobin),
        &fleet_model,
        &serve_profile(crate::SecureMode::TensorTee),
        &trace,
        &fleet_probe,
    );
    let fleet_snap = fleet_probe
        .snapshot()
        .expect("freshly created recording probe");
    let (sessions, sizes) = spilled_objects(&fleet_model, &trace);
    let mut shield_table = Table::new([
        "KV at rest",
        "linkage bits",
        "re-encrypt overhead",
        "share of makespan",
    ])
    .captioned("shielded-at-rest spilled KV — same fleet run as attack_kv_residency");
    let mut residency: Vec<(KvShield, f64, Time)> = Vec::new();
    for &shield in &KvShield::all() {
        let finding = residency_under(shield, &sessions, &sizes);
        let overhead = shield.overhead(fleet_rep.migrated_bytes, fleet_rep.migrated_bytes);
        shield_table.row([
            shield.label().to_owned(),
            f2(finding.bits),
            overhead.to_string(),
            pct(overhead.as_secs_f64() / fleet_rep.makespan.as_secs_f64().max(1e-12)),
        ]);
        residency.push((shield, finding.bits, overhead));
    }
    report.table(shield_table);

    for (shaping, bits, padding) in &traffic_bits {
        let key = shaping.label().replace('-', "_");
        report.metric(format!("traffic_bits_{key}"), *bits);
        report.metric(format!("padding_ms_{key}"), padding.as_ms_f64());
    }
    for (shield, bits, overhead) in &residency {
        let key = shield.label().replace('-', "_");
        report.metric(format!("residency_bits_{key}"), *bits);
        report.metric(format!("shield_overhead_ms_{key}"), overhead.as_ms_f64());
    }
    report.note(format!(
        "each defense buys leakage down for a priced cost: padding takes the wire from {} to \
         {} bits per transfer, constant-rate to exactly {}; shielding spilled KV collapses \
         session linkage from {} to {} bits for {} of re-encryption.",
        f2(traffic_bits[0].1),
        f2(traffic_bits[1].1),
        f2(traffic_bits[2].1),
        f2(residency[0].1),
        f2(residency[1].1),
        residency[1].2,
    ));
    replay(&snap, &ctx.probe);
    replay(&fleet_snap, &ctx.probe);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_adversary_beats_chance_on_the_fast_zoo() {
        let ctx = RunContext::fast();
        let report = attack_traffic(&ctx);
        let accuracy = report.metric_value("classifier_accuracy").unwrap();
        let chance = 1.0 / report.metric_value("models").unwrap();
        assert!(
            accuracy > chance,
            "classifier accuracy {accuracy} should beat chance {chance}"
        );
        assert!(report.metric_value("mutual_information_bits").unwrap() >= 0.0);
    }

    #[test]
    fn residency_adversary_is_blinded_by_the_shield() {
        let ctx = RunContext::fast();
        let report = attack_kv_residency(&ctx);
        let plain = report.metric_value("residency_bits_plain").unwrap();
        let shielded = report.metric_value("residency_bits_shielded").unwrap();
        assert!(plain > shielded, "plain {plain} vs shielded {shielded}");
        assert!(shielded.abs() < 1e-9, "shielded leaks {shielded} bits");
        assert!(report.metric_value("fleet_migrations").unwrap() > 0.0);
        assert!(report.metric_value("shield_overhead_ms").unwrap() > 0.0);
    }

    #[test]
    fn defended_report_orders_leakage_strictly() {
        let ctx = RunContext::fast();
        let report = attack_defended(&ctx);
        let unshaped = report.metric_value("traffic_bits_unshaped").unwrap();
        let padded = report.metric_value("traffic_bits_padded").unwrap();
        let flat = report.metric_value("traffic_bits_constant_rate").unwrap();
        assert!(
            unshaped > padded && padded > flat,
            "shaping must strictly reduce leakage: {unshaped} > {padded} > {flat}"
        );
        assert_eq!(flat, 0.0, "constant-rate must leak exactly nothing");
        assert!(report.metric_value("padding_ms_constant_rate").unwrap() > 0.0);
        let plain = report.metric_value("residency_bits_plain_spill").unwrap();
        let shielded = report.metric_value("residency_bits_shielded").unwrap();
        assert!(plain > shielded && shielded.abs() < 1e-9);
    }
}
