//! Structured experiment output: markdown tables, the ordered
//! [`PhaseLedger`] shared by every step breakdown, and the [`Report`]
//! value type the artifact registry returns.
//!
//! A [`Report`] carries named scalar metrics, typed [`Table`]s and
//! free-form notes; it renders to the same markdown the benches have
//! always printed and — because the vendored `serde` is a no-op — to JSON
//! via the hand-rolled writer in [`crate::json`].

use crate::json::Json;
use tee_sim::Time;

/// A markdown table builder.
///
/// Columns whose body cells are all numeric (leading digit or sign, e.g.
/// `3.0x`, `50.0%`, `12 ms`) render right-aligned; everything else stays
/// left-aligned.
///
/// # Example
///
/// ```
/// use tensortee::report::Table;
/// let mut t = Table::new(["model", "speedup"]);
/// t.row(["GPT2-M", "3.0x"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| GPT2-M |    3.0x |"));
/// assert!(md.contains("|---|---:|"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    caption: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            caption: None,
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets the caption rendered above the table (builder form). Pair it
    /// with the artifact's paper anchor so every table carries its paper
    /// reference: `Table::new(...).captioned("Figure 16 — overall")`.
    pub fn captioned(mut self, caption: impl Into<String>) -> Self {
        self.caption = Some(caption.into());
        self
    }

    /// The caption, if set.
    pub fn caption(&self) -> Option<&str> {
        self.caption.as_deref()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether column `col` should render right-aligned: every body cell
    /// is numeric-leading (optional sign, then a digit) and there is at
    /// least one row.
    fn right_aligned(&self, col: usize) -> bool {
        !self.rows.is_empty()
            && self.rows.iter().all(|r| {
                let cell = r[col].trim();
                let digits = cell.strip_prefix(['-', '+']).unwrap_or(cell);
                digits.starts_with(|c: char| c.is_ascii_digit())
            })
    }

    /// Renders GitHub-flavored markdown: caption line (if any), header,
    /// alignment separator, then width-padded rows.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let right: Vec<bool> = (0..cols).map(|c| self.right_aligned(c)).collect();
        let mut width: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let pad = |cell: &str, c: usize| {
            let fill = width[c].saturating_sub(cell.chars().count());
            if right[c] {
                format!("{}{}", " ".repeat(fill), cell)
            } else {
                format!("{}{}", cell, " ".repeat(fill))
            }
        };
        let mut out = String::new();
        if let Some(cap) = &self.caption {
            out.push_str(&format!("*{cap}*\n\n"));
        }
        let header: Vec<String> = self
            .header
            .iter()
            .enumerate()
            .map(|(c, h)| pad(h, c))
            .collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push('|');
        for right in &right {
            out.push_str(if *right { "---:|" } else { "---|" });
        }
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().enumerate().map(|(c, s)| pad(s, c)).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// The table as a JSON object: `{caption, columns, rows}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "caption",
                match &self.caption {
                    Some(c) => Json::str(c.clone()),
                    None => Json::Null,
                },
            ),
            (
                "columns",
                Json::Array(self.header.iter().map(|h| Json::str(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::Array(r.iter().map(|c| Json::str(c.clone())).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// An ordered phase → time ledger: the shared shape behind
/// [`crate::StepBreakdown`] and [`crate::ClusterStepBreakdown`].
///
/// Totals left-fold in insertion order, so a breakdown that delegates to
/// its ledger produces bit-for-bit the same [`Time`] as summing its fields
/// by hand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseLedger {
    entries: Vec<(&'static str, Time)>,
}

impl PhaseLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger from `(label, time)` entries in order.
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, Time)>,
    {
        PhaseLedger {
            entries: entries.into_iter().collect(),
        }
    }

    /// Appends a phase.
    pub fn push(&mut self, label: &'static str, time: Time) {
        self.entries.push((label, time));
    }

    /// The phases in order.
    pub fn entries(&self) -> &[(&'static str, Time)] {
        &self.entries
    }

    /// Phase labels in order.
    pub fn labels(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(l, _)| *l)
    }

    /// The time of the phase named `label`, if present.
    pub fn get(&self, label: &str) -> Option<Time> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, t)| *t)
    }

    /// Total time: the left-fold of the entries in insertion order.
    pub fn total(&self) -> Time {
        self.entries.iter().fold(Time::ZERO, |acc, (_, t)| acc + *t)
    }

    /// Per-phase fractions of the total, in insertion order; they sum to 1
    /// for a non-empty, non-zero ledger.
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.total().as_ps().max(1) as f64;
        self.entries
            .iter()
            .map(|(l, t)| (*l, t.as_ps() as f64 / total))
            .collect()
    }

    /// Renders the ledger as a `phase | time | fraction` table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["phase", "time", "fraction"]);
        for ((label, time), (_, frac)) in self.entries.iter().zip(self.fractions()) {
            t.row([label.to_string(), time.to_string(), pct(frac)]);
        }
        t.row(["total".into(), self.total().to_string(), pct(1.0)]);
        t
    }
}

/// A structured experiment result: what every registered
/// [`crate::artifact::Artifact`] returns.
///
/// The markdown rendering preserves the artifact shape the benches have
/// always printed (tables first, then summary lines); the JSON export is
/// the machine-readable view the `tensortee` CLI emits under `--json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    id: String,
    title: String,
    paper_anchor: String,
    metrics: Vec<(String, f64)>,
    tables: Vec<Table>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report for the artifact `id`.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_anchor: impl Into<String>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            paper_anchor: paper_anchor.into(),
            metrics: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The artifact id (`fig16`, `sec62`, …).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The artifact title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The paper anchor (`Figure 16`, `§6.2`, …).
    pub fn paper_anchor(&self) -> &str {
        &self.paper_anchor
    }

    /// Records a named scalar metric (insertion-ordered). NaN and
    /// infinite values are kept here but normalize to `null` in the JSON
    /// export (see [`crate::json`]).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// The recorded metrics in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// The value of metric `name`, if recorded.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Appends a table; if the table has no caption it inherits the
    /// report's paper anchor so every rendered table carries its paper
    /// reference.
    pub fn table(&mut self, table: Table) {
        let table = if table.caption().is_none() {
            let cap = format!("{} ({})", self.title, self.paper_anchor);
            table.captioned(cap)
        } else {
            table
        };
        self.tables.push(table);
    }

    /// The tables in order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Appends a free-form note line (summary sentences, timeline
    /// renders).
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// The notes in order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Ingests a [`PhaseLedger`] directly as a phase table.
    pub fn phase_ledger(&mut self, caption: impl Into<String>, ledger: &PhaseLedger) {
        self.table(ledger.to_table().captioned(caption));
    }

    /// Renders the full artifact as markdown: title header, captioned
    /// tables, then notes.
    pub fn to_markdown(&self) -> String {
        let header = format!("{} ({})", self.title, self.paper_anchor);
        let mut out = format!("## {header}\n\n");
        for t in &self.tables {
            // An inherited caption would just repeat the header line —
            // drop it from the markdown view (it stays in the JSON).
            if t.caption() == Some(header.as_str()) {
                let mut bare = t.clone();
                bare.caption = None;
                out.push_str(&bare.to_markdown());
            } else {
                out.push_str(&t.to_markdown());
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// The machine-readable view:
    /// `{id, title, paper_anchor, metrics, tables, notes}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("id", Json::str(self.id.clone())),
            ("title", Json::str(self.title.clone())),
            ("paper_anchor", Json::str(self.paper_anchor.clone())),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "tables",
                Json::Array(self.tables.iter().map(Table::to_json).collect()),
            ),
            (
                "notes",
                Json::Array(self.notes.iter().map(|n| Json::str(n.clone())).collect()),
            ),
        ])
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = Table::new(["name", "b"]);
        t.row(["one", "2"]);
        t.row(["three", "4"]);
        let md = t.to_markdown();
        // Text column left-aligned, numeric column right-aligned.
        assert!(md.starts_with("| name  | b |\n|---|---:|\n"), "{md}");
        assert!(md.contains("| one   | 2 |\n"));
        assert!(md.contains("| three | 4 |\n"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn numeric_columns_right_align() {
        let mut t = Table::new(["label", "speedup", "share"]);
        t.row(["GPT2-M", "3.00x", "50.0%"]);
        t.row(["tensor-delayed", "-1.5", "+2%"]);
        let md = t.to_markdown();
        // `label` has a non-numeric cell → left; the others are numeric
        // (digit after optional sign) → right.
        assert!(md.contains("|---|---:|---:|"), "{md}");
        assert!(md.contains("|   3.00x |"), "{md}");
    }

    #[test]
    fn headers_do_not_affect_alignment() {
        // A numeric-looking header over text cells stays left-aligned.
        let mut t = Table::new(["64B", "x"]);
        t.row(["label", "9"]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---:|"), "{md}");
    }

    #[test]
    fn empty_table_left_aligns() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert!(t.to_markdown().contains("|---|"));
    }

    #[test]
    fn caption_renders_above_table() {
        let mut t = Table::new(["a"]).captioned("Figure 9 — demo");
        t.row(["1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("*Figure 9 — demo*\n\n| a |\n"), "{md}");
        assert_eq!(t.caption(), Some("Figure 9 — demo"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn ledger_totals_and_fractions() {
        let l =
            PhaseLedger::from_entries([("NPU", Time::from_ns(300)), ("CPU", Time::from_ns(100))]);
        assert_eq!(l.total(), Time::from_ns(400));
        assert_eq!(l.get("CPU"), Some(Time::from_ns(100)));
        assert_eq!(l.get("nope"), None);
        let fr = l.fractions();
        assert_eq!(fr[0], ("NPU", 0.75));
        assert_eq!(fr[1], ("CPU", 0.25));
        assert_eq!(l.labels().collect::<Vec<_>>(), vec!["NPU", "CPU"]);
        let t = l.to_table();
        assert_eq!(t.len(), 3); // two phases + total row
    }

    #[test]
    fn empty_ledger_is_sane() {
        let l = PhaseLedger::new();
        assert_eq!(l.total(), Time::ZERO);
        assert!(l.fractions().is_empty());
    }

    #[test]
    fn report_round_trips_markdown_and_json() {
        let mut r = Report::new("fig99", "Demo artifact", "Figure 99");
        r.metric("speedup", 4.0);
        r.metric("nan_metric", f64::NAN);
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.table(t);
        r.note("Average speedup: 4.0x");
        let md = r.to_markdown();
        assert!(md.starts_with("## Demo artifact (Figure 99)\n"));
        // The uncaptioned table inherited the paper anchor — visible in
        // JSON, deduplicated against the header in markdown.
        assert_eq!(r.tables()[0].caption(), Some("Demo artifact (Figure 99)"));
        assert!(!md.contains("*Demo artifact (Figure 99)*"), "{md}");
        assert!(md.contains("Average speedup: 4.0x"));
        let js = r.to_json().to_string();
        assert!(is_well_formed(&js), "{js}");
        assert!(js.contains(r#""id":"fig99""#));
        assert!(js.contains(r#""speedup":4.0"#));
        assert!(js.contains(r#""nan_metric":null"#));
        assert_eq!(r.metric_value("speedup"), Some(4.0));
    }

    #[test]
    fn report_ingests_ledger() {
        let mut r = Report::new("x", "t", "§0");
        let l = PhaseLedger::from_entries([("NPU", Time::from_ns(1))]);
        r.phase_ledger("per-phase", &l);
        assert!(r.to_markdown().contains("*per-phase*"));
        assert!(r.to_markdown().contains("| NPU"));
    }
}
