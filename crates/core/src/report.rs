//! Minimal markdown table rendering for experiment output.

/// A markdown table builder.
///
/// # Example
///
/// ```
/// use tensortee::report::Table;
/// let mut t = Table::new(["model", "speedup"]);
/// t.row(["GPT2-M", "3.0x"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| GPT2-M | 3.0x |"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["3", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }
}
