//! Secure session establishment: attestation + key exchange (§4.4.2).
//!
//! Before any direct transfer, the CPU and NPU enclaves attest each other
//! and run Diffie–Hellman so both hold the same on-chip session key. This
//! module wires `tee-crypto`'s primitives into one call and hands back
//! ready-to-use channel endpoints.

use tee_comm::channel::TrustedChannel;
use tee_crypto::attest::{mutual_attest, AttestationError, EnclaveIdentity};
use tee_crypto::Key;

/// An established CPU↔NPU secure session.
#[derive(Debug)]
pub struct SecureSession {
    key: Key,
    cpu_channel: TrustedChannel,
    npu_channel: TrustedChannel,
}

impl SecureSession {
    /// Runs the full authentication phase: enclave creation/measurement,
    /// mutual report verification, then key exchange.
    ///
    /// # Errors
    ///
    /// Propagates the first attestation failure.
    pub fn establish(
        device_key: Key,
        cpu_image: &[u8],
        npu_image: &[u8],
        nonce_seed: u64,
    ) -> Result<Self, AttestationError> {
        let cpu = EnclaveIdentity::measure("cpu-enclave", cpu_image, device_key);
        let npu = EnclaveIdentity::measure("npu-enclave", npu_image, device_key);
        // Each enclave's ephemeral DH secret comes from its on-chip
        // entropy, modeled as a derivation of the device key and nonce.
        let entropy = u64::from_le_bytes(
            device_key.derive("dh-entropy").0[..8]
                .try_into()
                .expect("8 bytes"),
        );
        let key = mutual_attest(
            &cpu,
            &npu,
            device_key,
            nonce_seed,
            nonce_seed.wrapping_add(1),
            (entropy ^ nonce_seed.wrapping_mul(0x9E37_79B9)) | 1,
            (entropy.rotate_left(17) ^ nonce_seed.wrapping_mul(0xDEAD_BEEF)) | 1,
        )?;
        Ok(SecureSession {
            key,
            cpu_channel: TrustedChannel::new(key),
            npu_channel: TrustedChannel::new(key),
        })
    }

    /// The shared session key (kept on-chip by both enclaves).
    pub fn key(&self) -> Key {
        self.key
    }

    /// The CPU's trusted-channel endpoint.
    pub fn cpu_channel(&self) -> &TrustedChannel {
        &self.cpu_channel
    }

    /// The NPU's trusted-channel endpoint.
    pub fn npu_channel(&self) -> &TrustedChannel {
        &self.npu_channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tee_comm::channel::TransferMeta;
    use tee_crypto::mac::MacTag;

    #[test]
    fn establish_and_exchange_metadata() {
        let session =
            SecureSession::establish(Key::from_seed(9), b"cpu code", b"npu code", 42).unwrap();
        let meta = TransferMeta {
            base: 0x1000,
            bytes: 4096,
            vn: 7,
            mac: MacTag::from_raw(0xFEED),
        };
        let sealed = session.cpu_channel().seal(&meta, 0);
        let opened = session.npu_channel().open(&sealed, 0).unwrap();
        assert_eq!(opened, meta);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SecureSession::establish(Key::from_seed(1), b"c", b"n", 5).unwrap();
        let b = SecureSession::establish(Key::from_seed(1), b"c", b"n", 5).unwrap();
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn different_device_keys_differ() {
        let a = SecureSession::establish(Key::from_seed(1), b"c", b"n", 5).unwrap();
        let b = SecureSession::establish(Key::from_seed(2), b"c", b"n", 5).unwrap();
        assert_ne!(a.key(), b.key());
    }
}
