//! End-to-end system configuration (Table 1), security modes, and the
//! multi-NPU cluster shape.

use serde::Serialize;
use tee_comm::{Interconnect, PcieLink};
use tee_cpu::CpuConfig;
use tee_npu::NpuConfig;
use tee_sim::Time;

/// The three configurations compared throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SecureMode {
    /// No protection anywhere (performance reference).
    NonSecure,
    /// CPU with SGX-like cacheline TEE + NPU with MGX-like tensor-VN /
    /// coarse-MAC TEE; staged (re-encrypting) communication.
    SgxMgx,
    /// TensorTEE: unified tensor granularity on both sides + direct
    /// transfer.
    TensorTee,
}

impl SecureMode {
    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SecureMode::NonSecure => "Non-Secure",
            SecureMode::SgxMgx => "SGX+MGX",
            SecureMode::TensorTee => "TensorTEE",
        }
    }

    /// All three, in the paper's presentation order.
    pub fn all() -> [SecureMode; 3] {
        [
            SecureMode::NonSecure,
            SecureMode::SgxMgx,
            SecureMode::TensorTee,
        ]
    }
}

/// The full-system configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SystemConfig {
    /// CPU socket (Table 1 upper half).
    pub cpu: CpuConfig,
    /// NPU (Table 1 lower half).
    pub npu: NpuConfig,
    /// CPU worker threads used for the optimizer.
    pub cpu_threads: u32,
    /// Linear down-scale applied to workloads before the cacheline-level
    /// CPU simulation (bandwidth-bound phases scale linearly; see the
    /// fidelity preamble of EXPERIMENTS.md).
    pub sim_scale: u64,
    /// Adam iterations simulated per measurement (steady state taken from
    /// the last iteration).
    pub cpu_iterations: u32,
    /// CPU↔NPU bus bandwidth in bytes per second (Table 1: PCIe 4.0 ×16,
    /// 32 GB/s). A design-space knob: the transfer protocols build their
    /// links from it.
    pub pcie_bytes_per_sec: f64,
    /// MAC-block granularity of the MGX-style baseline NPU TEE in bytes
    /// (§3.2: 512 B). A design-space knob for the `SgxMgx` mode; the
    /// other modes ignore it.
    pub mgx_mac_granularity: u64,
}

impl Default for SystemConfig {
    /// Table-1 configuration at a simulation scale suitable for benches.
    fn default() -> Self {
        SystemConfig {
            cpu: CpuConfig::scaled_down(),
            npu: NpuConfig::default(),
            cpu_threads: 8,
            sim_scale: 16_384,
            cpu_iterations: 3,
            pcie_bytes_per_sec: PcieLink::GEN4_X16_BYTES_PER_SEC,
            mgx_mac_granularity: 512,
        }
    }
}

/// Shape of a multi-NPU data-parallel cluster: one CPU TEE driving
/// `n_npus` NPU TEEs whose gradients aggregate over a secure ring
/// all-reduce on `interconnect` (see [`tee_comm::ring`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Data-parallel NPU replicas (the paper's evaluated system is
    /// `n_npus == 1`).
    pub n_npus: u32,
    /// The NPU↔NPU fabric the ring runs on.
    pub interconnect: Interconnect,
}

impl ClusterConfig {
    /// The paper's single-NPU system: a one-replica cluster reproduces
    /// [`crate::TrainingSystem`] bit-for-bit.
    pub fn single() -> Self {
        Self::of(1)
    }

    /// An `n_npus`-replica cluster on the default PCIe peer-to-peer
    /// fabric.
    pub fn of(n_npus: u32) -> Self {
        ClusterConfig {
            n_npus,
            interconnect: Interconnect::default(),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::single()
    }
}

impl SystemConfig {
    /// One direction of the CPU↔NPU bus at this configuration's
    /// bandwidth (Gen4-×16 base latency — the knob scales lanes, not
    /// silicon distance).
    pub fn pcie_link(&self) -> PcieLink {
        PcieLink::new(self.pcie_bytes_per_sec, Time::from_ns(600))
    }

    /// A configuration for quick unit tests (coarser scale, fewer
    /// iterations).
    pub fn fast_sim() -> Self {
        SystemConfig {
            sim_scale: 131_072,
            cpu_iterations: 2,
            ..Self::default()
        }
    }

    /// Renders Table 1 as markdown (printed by the bench headers).
    pub fn table1_markdown(&self) -> String {
        let cpu = &self.cpu;
        let npu = &self.npu;
        format!(
            "| Component | Configuration |\n|---|---|\n\
             | CPU frequency | {:.1} GHz |\n\
             | CPU cores | {} out-of-order |\n\
             | L1 I/D | {} |\n\
             | L2 | {} |\n\
             | L3 | {} |\n\
             | CPU DRAM | DDR4-2400, {} channels |\n\
             | Metadata cache | {} |\n\
             | AES / MAC latency | {} / {} cycles |\n\
             | NPU frequency | {:.1} GHz |\n\
             | PE array | {pe}x{pe} |\n\
             | Scratchpad | {} |\n\
             | NPU DRAM | GDDR5, {}, {} |\n\
             | Comm bus | PCIe 4.0 x16 |",
            cpu.freq_ghz,
            cpu.hierarchy.cores,
            tee_sim::util::fmt_bytes(cpu.hierarchy.l1.size_bytes),
            tee_sim::util::fmt_bytes(cpu.hierarchy.l2.size_bytes),
            tee_sim::util::fmt_bytes(cpu.hierarchy.l3.size_bytes),
            cpu.dram.channels,
            tee_sim::util::fmt_bytes(cpu.metadata_cache_bytes),
            cpu.aes_latency,
            cpu.mac_latency,
            npu.freq_ghz,
            tee_sim::util::fmt_bytes(npu.scratchpad_bytes),
            tee_sim::util::fmt_bytes(npu.dram_bytes),
            tee_sim::util::fmt_bandwidth(npu.dram_bandwidth()),
            pe = npu.pe_dim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_have_labels() {
        assert_eq!(SecureMode::all().len(), 3);
        assert_eq!(SecureMode::TensorTee.label(), "TensorTEE");
    }

    #[test]
    fn default_config_sane() {
        let c = SystemConfig::default();
        assert_eq!(c.cpu_threads, 8);
        assert!(c.sim_scale > 0);
        // The design-space knobs default to the paper's Table-1 bus and
        // §3.2 MAC block, so existing artifacts are bit-identical.
        assert_eq!(c.pcie_bytes_per_sec, PcieLink::GEN4_X16_BYTES_PER_SEC);
        assert_eq!(c.mgx_mac_granularity, 512);
        assert_eq!(
            c.pcie_link().occupancy(64 << 20),
            PcieLink::gen4_x16().occupancy(64 << 20)
        );
    }

    #[test]
    fn cluster_default_is_single_npu() {
        let c = ClusterConfig::default();
        assert_eq!(c, ClusterConfig::single());
        assert_eq!(c.n_npus, 1);
        assert_eq!(ClusterConfig::of(8).n_npus, 8);
    }

    #[test]
    fn table1_mentions_key_parts() {
        let md = SystemConfig::default().table1_markdown();
        assert!(md.contains("PCIe 4.0"));
        assert!(md.contains("GDDR5"));
        assert!(md.contains("3.5 GHz"));
    }
}
