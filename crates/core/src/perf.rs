//! The perf trajectory — `tensortee bench`.
//!
//! Times every registry artifact (warmup + median-of-N wall clock) plus
//! the per-point cost of every `explore` scenario sweep, and renders
//! the result as the `BENCH_<rev>.json` baseline committed at the repo
//! root. CI re-measures on every push and *ratchets*: a median more than
//! the tolerance band above the committed baseline fails the build
//! (`scripts/bench_ratchet.py`), so a simulator performance regression
//! can no longer land silently.
//!
//! Everything here is wall-clock measurement — the one part of the repo
//! that is *not* deterministic. The JSON schema therefore separates
//! structure from timings: ids, counts and configuration are stable
//! fields, and every timing is a JSON float, so masking the floats must
//! make two runs byte-identical (the `bench_trajectory` integration
//! suite pins exactly that).

use crate::artifact::{registry, RunContext};
use crate::des_cluster::{DesClusterConfig, DesClusterSystem};
use crate::experiments::fleet_setup;
use crate::explore::{run_scenario, Scenario};
use crate::json::Json;
use crate::report::Table;
use std::time::Instant;
use tee_attack::{extractable_bits, link_sessions, Observation, Shaping, MEASUREMENT_QUANTUM};
use tee_sim::probe::SharedProbe;
use tee_sim::{EventQueue, HeapQueue, SplitMix64, Time};
use tee_workloads::StepSchedule;

/// The `schema` tag carried by every `BENCH_<rev>.json`.
pub const SCHEMA: &str = "tensortee-bench/v1";

/// Measurement options for [`BenchTrajectory::measure`].
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Timed repetitions per artifact/sweep; the reported value is their
    /// median. Must be at least 1.
    pub repeats: u32,
    /// Untimed warmup runs per artifact (cache/allocator warm).
    pub warmup: u32,
    /// Emit a progress line per artifact on stderr.
    pub progress: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            repeats: 3,
            warmup: 1,
            progress: false,
        }
    }
}

/// Wall-clock timing of one registry artifact.
#[derive(Debug, Clone)]
pub struct ArtifactTiming {
    /// The artifact id (registry order is preserved).
    pub id: &'static str,
    /// Median of the timed repetitions, milliseconds.
    pub median_ms: f64,
    /// Fastest repetition, milliseconds.
    pub min_ms: f64,
    /// Slowest repetition, milliseconds.
    pub max_ms: f64,
}

/// Wall-clock timing of one `explore` scenario sweep.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// The scenario label (`train` / `cluster` / `serve`).
    pub scenario: &'static str,
    /// Points sampled by the sweep.
    pub points: usize,
    /// Point × mode evaluations priced.
    pub evaluations: usize,
    /// Median sweep wall time, milliseconds (memos warm — the marginal
    /// cost of a sweep, not the first-run warm-up).
    pub median_ms: f64,
    /// Median per-point cost, microseconds.
    pub per_point_us: f64,
}

/// Wall-clock timing of one event-queue implementation on the synthetic
/// hold-model workload (steady-state pop-and-reschedule; see
/// `drive_queue`).
#[derive(Debug, Clone)]
pub struct QueueTiming {
    /// Queue implementation (`calendar` / `heap`).
    pub queue: &'static str,
    /// Events scheduled and popped per repetition.
    pub events: u64,
    /// Median wall time, milliseconds.
    pub median_ms: f64,
    /// Median cost per event (one schedule + one pop), nanoseconds.
    pub per_event_ns: f64,
}

/// Wall-clock timing of the probe-overhead microbench: the DES cluster
/// step simulated with the observability layer off (`null`) and
/// recording (`trace`). The gap between the two rows is the cost of
/// tracing; the `null` row ratchets the zero-overhead-when-off claim.
#[derive(Debug, Clone)]
pub struct ProbeTiming {
    /// Probe mode (`null` / `trace`).
    pub probe: &'static str,
    /// Probe events recorded per repetition (0 for `null`); deterministic
    /// for a fixed context, so this is a structural field.
    pub events: u64,
    /// Median wall time, milliseconds.
    pub median_ms: f64,
}

/// Wall-clock timing of one adversary-analysis stage (`tee-attack`) on
/// a fixed recorded trace: the serving/fleet simulations run once,
/// untimed; the stages time what the adversary pays to turn the
/// recording into bits.
#[derive(Debug, Clone)]
pub struct AttackTiming {
    /// Analysis stage (`observe` / `traffic` / `residency`).
    pub stage: &'static str,
    /// Items the stage processes per repetition (probe events, link
    /// features, spilled objects); deterministic for a fixed context,
    /// so this is a structural field.
    pub events: u64,
    /// Median wall time, milliseconds.
    pub median_ms: f64,
}

/// One measured point on the repo's perf trajectory.
#[derive(Debug, Clone)]
pub struct BenchTrajectory {
    /// The git revision measured (short hash, or `unknown` outside git).
    pub rev: String,
    /// `fast` or `full` — which [`RunContext`] the artifacts ran under.
    pub profile: &'static str,
    /// Timed repetitions per entry.
    pub repeats: u32,
    /// Untimed warmup runs per entry.
    pub warmup: u32,
    /// The context's explore point budget.
    pub explore_points: u32,
    /// The context's explorer worker threads.
    pub worker_threads: u32,
    /// The context seed.
    pub seed: u64,
    /// Per-artifact timings, in registry order.
    pub artifacts: Vec<ArtifactTiming>,
    /// Per-scenario sweep timings, in [`Scenario::all`] order.
    pub sweeps: Vec<SweepTiming>,
    /// Event-queue microbench: the calendar queue the DES scheduler runs
    /// on vs. the binary-heap reference, same synthetic workload.
    pub queues: Vec<QueueTiming>,
    /// Probe-overhead microbench: the DES cluster step with observability
    /// off vs. recording, same schedule.
    pub probes: Vec<ProbeTiming>,
    /// Adversary-analysis microbench: the tee-attack stages on a fixed
    /// recorded trace.
    pub attacks: Vec<AttackTiming>,
}

/// Events per queue-microbench repetition: the acceptance bar for the
/// calendar queue is "faster than the heap at >= 10^6 events", so even
/// the fast profile drives a full 2^20-event hold-model churn.
const QUEUE_BENCH_EVENTS: u64 = 1 << 20;

/// Live events the hold-model keeps in flight (the typical DES regime:
/// every pop schedules a successor a random offset ahead).
const QUEUE_BENCH_LIVE: u64 = 4096;

/// Drives one queue through the hold-model workload: seed `LIVE` events,
/// then pop-and-replace until `events` pops have happened. The event
/// stream is a pure function of the fixed seed, so both implementations
/// see identical schedules. Returns a checksum so the work cannot be
/// optimized away.
fn drive_queue<Q>(
    q: &mut Q,
    events: u64,
    mut sched: impl FnMut(&mut Q, Time, u64),
    mut pop: impl FnMut(&mut Q) -> Option<(Time, u64)>,
) -> u64 {
    let mut rng = SplitMix64::new(0x5EED_CA1E_0DA0);
    let seeded = QUEUE_BENCH_LIVE.min(events);
    for i in 0..seeded {
        sched(q, Time::from_ns(rng.next_below(1_000_000)), i);
    }
    let mut next_id = seeded;
    let mut checksum = 0u64;
    for _ in 0..events {
        let (now, e) = pop(q).expect("hold-model keeps the queue non-empty");
        checksum = checksum.wrapping_add(e ^ now.as_ps());
        if next_id < events {
            sched(
                q,
                now + Time::from_ns(1 + rng.next_below(1_000_000)),
                next_id,
            );
            next_id += 1;
        }
    }
    checksum
}

/// Times both event-queue implementations on the shared workload.
fn measure_queues(opts: &BenchOptions) -> Vec<QueueTiming> {
    let events = QUEUE_BENCH_EVENTS;
    let run_calendar = || {
        let mut q: EventQueue<u64> = EventQueue::new();
        std::hint::black_box(drive_queue(
            &mut q,
            events,
            |q, at, e| q.schedule(at, e),
            |q| q.pop(),
        ));
    };
    let run_heap = || {
        let mut q: HeapQueue<u64> = HeapQueue::new();
        std::hint::black_box(drive_queue(
            &mut q,
            events,
            |q, at, e| q.schedule(at, e),
            |q| q.pop(),
        ));
    };
    let mut out = Vec::new();
    for (queue, f) in [
        ("calendar", &run_calendar as &dyn Fn()),
        ("heap", &run_heap as &dyn Fn()),
    ] {
        for _ in 0..opts.warmup {
            f();
        }
        let samples = time_repeats(opts.repeats, f);
        let median_ms = median(&samples);
        out.push(QueueTiming {
            queue,
            events,
            median_ms,
            per_event_ns: median_ms * 1e6 / events as f64,
        });
    }
    out
}

/// Times the DES cluster step with tracing off and on. The workload
/// mirrors the `obs_utilization` artifact: the context's largest cluster
/// running the primary model one full step under TensorTEE.
fn measure_probes(ctx: &RunContext, opts: &BenchOptions) -> Vec<ProbeTiming> {
    let model = ctx.primary_model();
    let schedule = StepSchedule::of(&model);
    let n = ctx.cluster_sizes.iter().copied().max().unwrap_or(4).max(2);
    let cpu = Time::from_ms(25);
    let simulate = |probe: &SharedProbe| {
        let des = DesClusterSystem::new(
            ctx.cfg.clone(),
            DesClusterConfig::lockstep(ctx.cluster_of(n)),
            crate::SecureMode::TensorTee,
        )
        .with_probe(probe.clone())
        .simulate_with_cpu_time(&schedule, cpu);
        std::hint::black_box(des);
    };
    let mut out = Vec::new();
    for mode in ["null", "trace"] {
        let probe_of = || {
            if mode == "null" {
                SharedProbe::Null
            } else {
                SharedProbe::recording()
            }
        };
        for _ in 0..opts.warmup {
            simulate(&probe_of());
        }
        // Event count is structural: re-record once outside the timers.
        let counted = probe_of();
        simulate(&counted);
        let events = counted
            .snapshot()
            .map(|s| s.events().len() as u64)
            .unwrap_or(0);
        let samples = time_repeats(opts.repeats, || simulate(&probe_of()));
        out.push(ProbeTiming {
            probe: mode,
            events,
            median_ms: median(&samples),
        });
    }
    out
}

/// Times the tee-attack analysis stages on a fixed recorded trace: one
/// serving run of the primary model (the `attack_defended` setup) and
/// one fleet session trace, simulated/generated once outside the
/// timers, then each adversary stage repeated on the frozen inputs.
fn measure_attacks(ctx: &RunContext, opts: &BenchOptions) -> Vec<AttackTiming> {
    let model = ctx.primary_model();
    let (_, test_seed) = crate::attack::attack_seeds(ctx);
    let (_, snap) = crate::attack::traced_serve(ctx, &model, test_seed);
    let view = Observation::from_trace(&snap);
    let features = view.features(MEASUREMENT_QUANTUM);
    let (fleet_model, _, trace_cfg) = fleet_setup(ctx);
    let trace = trace_cfg.generate();
    let (sessions, sizes) = crate::attack::spilled_objects(&fleet_model, &trace);
    let samples: Vec<(u64, u64)> = sessions.into_iter().zip(sizes).collect();

    let run_observe = || {
        std::hint::black_box(Observation::from_trace(&snap));
    };
    let run_traffic = || {
        let bits = extractable_bits(&features);
        let shaped = Shaping::Padded.apply(&view);
        std::hint::black_box((bits, shaped.padding));
    };
    let run_residency = || {
        std::hint::black_box(link_sessions(&samples));
    };
    let mut out = Vec::new();
    for (stage, events, f) in [
        (
            "observe",
            snap.events().len() as u64,
            &run_observe as &dyn Fn(),
        ),
        ("traffic", features.len() as u64, &run_traffic),
        ("residency", samples.len() as u64, &run_residency),
    ] {
        for _ in 0..opts.warmup {
            f();
        }
        let timed = time_repeats(opts.repeats, f);
        out.push(AttackTiming {
            stage,
            events,
            median_ms: median(&timed),
        });
    }
    out
}

/// Times `repeats` invocations of `f`, returning each wall time in
/// milliseconds.
fn time_repeats(repeats: u32, mut f: impl FnMut()) -> Vec<f64> {
    assert!(repeats > 0, "bench needs at least one timed repetition");
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// The median of `samples` (mean of the middle two for even counts).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The short hash of the checked-out revision, or `unknown` when git (or
/// a repository) is unavailable — bench must keep working from a tarball.
pub fn detect_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchTrajectory {
    /// Measures the full trajectory under `ctx`: every registry artifact,
    /// then every scenario sweep (first warmed, then timed, so the
    /// sweep numbers report the marginal cost the memos leave behind).
    pub fn measure(ctx: &RunContext, opts: &BenchOptions) -> BenchTrajectory {
        assert!(opts.repeats > 0, "bench needs at least one repetition");
        let artifacts = registry()
            .iter()
            .map(|a| {
                if opts.progress {
                    eprintln!("bench {} ({}) ...", a.id, a.paper_anchor);
                }
                for _ in 0..opts.warmup {
                    let _ = a.run(ctx);
                }
                let samples = time_repeats(opts.repeats, || {
                    let _ = a.run(ctx);
                });
                ArtifactTiming {
                    id: a.id,
                    median_ms: median(&samples),
                    min_ms: samples.iter().copied().fold(f64::INFINITY, f64::min),
                    max_ms: samples.iter().copied().fold(0.0, f64::max),
                }
            })
            .collect();
        let sweeps = Scenario::all()
            .iter()
            .map(|&scenario| {
                if opts.progress {
                    eprintln!("bench sweep {} ...", scenario.label());
                }
                // One untimed sweep fills the (model, mode) CPU and NPU
                // memos; the timed repetitions then measure what every
                // *subsequent* sweep costs.
                let warm = run_scenario(scenario, ctx);
                let points = warm.points.len();
                let evaluations = warm.evals.iter().map(Vec::len).sum();
                let samples = time_repeats(opts.repeats, || {
                    let _ = run_scenario(scenario, ctx);
                });
                let median_ms = median(&samples);
                SweepTiming {
                    scenario: scenario.label(),
                    points,
                    evaluations,
                    median_ms,
                    per_point_us: median_ms * 1e3 / points.max(1) as f64,
                }
            })
            .collect();
        if opts.progress {
            eprintln!("bench event queues (calendar vs heap) ...");
        }
        let queues = measure_queues(opts);
        if opts.progress {
            eprintln!("bench probe overhead (null vs trace) ...");
        }
        let probes = measure_probes(ctx, opts);
        if opts.progress {
            eprintln!("bench adversary analysis (tee-attack stages) ...");
        }
        let attacks = measure_attacks(ctx, opts);
        BenchTrajectory {
            rev: detect_rev(),
            profile: if ctx.fast { "fast" } else { "full" },
            repeats: opts.repeats,
            warmup: opts.warmup,
            explore_points: ctx.explore_points,
            worker_threads: ctx.worker_threads,
            seed: ctx.seed,
            artifacts,
            sweeps,
            queues,
            probes,
            attacks,
        }
    }

    /// The file name the baseline is committed under: `BENCH_<rev>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.rev)
    }

    /// The machine-readable shape (the `BENCH_<rev>.json` schema — see
    /// EXPERIMENTS.md). Timings are the only floats; everything
    /// structural is a string or integer, so masking `Json::Float`
    /// values yields a byte-stable structure across runs.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str(SCHEMA)),
            ("rev", Json::str(self.rev.clone())),
            ("profile", Json::str(self.profile)),
            ("repeats", Json::Int(i64::from(self.repeats))),
            ("warmup", Json::Int(i64::from(self.warmup))),
            ("explore_points", Json::Int(i64::from(self.explore_points))),
            ("worker_threads", Json::Int(i64::from(self.worker_threads))),
            ("seed", Json::Int(self.seed as i64)),
            (
                "artifacts",
                Json::Array(
                    self.artifacts
                        .iter()
                        .map(|a| {
                            Json::object([
                                ("id", Json::str(a.id)),
                                ("median_ms", Json::Float(a.median_ms)),
                                ("min_ms", Json::Float(a.min_ms)),
                                ("max_ms", Json::Float(a.max_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sweeps",
                Json::Array(
                    self.sweeps
                        .iter()
                        .map(|s| {
                            Json::object([
                                ("scenario", Json::str(s.scenario)),
                                ("points", Json::Int(s.points as i64)),
                                ("evaluations", Json::Int(s.evaluations as i64)),
                                ("median_ms", Json::Float(s.median_ms)),
                                ("per_point_us", Json::Float(s.per_point_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "queues",
                Json::Array(
                    self.queues
                        .iter()
                        .map(|q| {
                            Json::object([
                                ("queue", Json::str(q.queue)),
                                ("events", Json::Int(q.events as i64)),
                                ("median_ms", Json::Float(q.median_ms)),
                                ("per_event_ns", Json::Float(q.per_event_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "probes",
                Json::Array(
                    self.probes
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("probe", Json::str(p.probe)),
                                ("events", Json::Int(p.events as i64)),
                                ("median_ms", Json::Float(p.median_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "attacks",
                Json::Array(
                    self.attacks
                        .iter()
                        .map(|a| {
                            Json::object([
                                ("stage", Json::str(a.stage)),
                                ("events", Json::Int(a.events as i64)),
                                ("median_ms", Json::Float(a.median_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The human-readable rendering `tensortee bench` prints.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Perf trajectory — rev {} ({} profile, median of {}, warmup {})\n\n",
            self.rev, self.profile, self.repeats, self.warmup
        );
        let mut artifacts = Table::new(["artifact", "median", "min", "max"])
            .captioned("Registry artifact wall time");
        for a in &self.artifacts {
            artifacts.row([
                a.id.to_string(),
                format!("{:.1} ms", a.median_ms),
                format!("{:.1} ms", a.min_ms),
                format!("{:.1} ms", a.max_ms),
            ]);
        }
        out.push_str(&artifacts.to_markdown());
        out.push('\n');
        let mut sweeps = Table::new(["scenario", "points", "evaluations", "median", "per point"])
            .captioned("Explore sweep cost (memos warm)");
        for s in &self.sweeps {
            sweeps.row([
                s.scenario.to_string(),
                s.points.to_string(),
                s.evaluations.to_string(),
                format!("{:.1} ms", s.median_ms),
                format!("{:.1} us", s.per_point_us),
            ]);
        }
        out.push_str(&sweeps.to_markdown());
        if !self.queues.is_empty() {
            out.push('\n');
            let mut queues = Table::new(["queue", "events", "median", "per event"])
                .captioned("Event-queue microbench (hold model)");
            for q in &self.queues {
                queues.row([
                    q.queue.to_string(),
                    q.events.to_string(),
                    format!("{:.1} ms", q.median_ms),
                    format!("{:.1} ns", q.per_event_ns),
                ]);
            }
            out.push_str(&queues.to_markdown());
        }
        if !self.probes.is_empty() {
            out.push('\n');
            let mut probes = Table::new(["probe", "events", "median"])
                .captioned("Probe overhead (DES cluster step)");
            for p in &self.probes {
                probes.row([
                    p.probe.to_string(),
                    p.events.to_string(),
                    format!("{:.1} ms", p.median_ms),
                ]);
            }
            out.push_str(&probes.to_markdown());
        }
        if !self.attacks.is_empty() {
            out.push('\n');
            let mut attacks = Table::new(["stage", "events", "median"])
                .captioned("Adversary analysis (fixed recorded trace)");
            for a in &self.attacks {
                attacks.row([
                    a.stage.to_string(),
                    a.events.to_string(),
                    format!("{:.1} ms", a.median_ms),
                ]);
            }
            out.push_str(&attacks.to_markdown());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_even_and_single() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    #[should_panic]
    fn median_of_nothing_panics() {
        median(&[]);
    }

    #[test]
    fn rev_is_nonempty_and_filename_embeds_it() {
        let rev = detect_rev();
        assert!(!rev.is_empty());
        let t = BenchTrajectory {
            rev: "abc123".into(),
            profile: "fast",
            repeats: 3,
            warmup: 1,
            explore_points: 32,
            worker_threads: 4,
            seed: 42,
            artifacts: vec![],
            sweeps: vec![],
            queues: vec![],
            probes: vec![],
            attacks: vec![],
        };
        assert_eq!(t.file_name(), "BENCH_abc123.json");
        let json = t.to_json().to_string();
        assert!(crate::json::is_well_formed(&json), "{json}");
        assert!(json.contains("\"schema\":\"tensortee-bench/v1\""));
    }

    #[test]
    fn queue_workload_is_identical_across_implementations() {
        // Far fewer events than the bench, but the same generator: both
        // queues must pop the exact same (time, event) stream.
        let mut cal: EventQueue<u64> = EventQueue::new();
        let a = drive_queue(&mut cal, 10_000, |q, at, e| q.schedule(at, e), |q| q.pop());
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let b = drive_queue(&mut heap, 10_000, |q, at, e| q.schedule(at, e), |q| q.pop());
        assert_eq!(a, b, "checksums diverge: calendar and heap disagree");
    }

    #[test]
    fn queue_bench_meets_the_event_floor() {
        const { assert!(QUEUE_BENCH_EVENTS >= 1_000_000) };
        let opts = BenchOptions {
            repeats: 1,
            warmup: 0,
            progress: false,
        };
        let timings = measure_queues(&opts);
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].queue, "calendar");
        assert_eq!(timings[1].queue, "heap");
        for t in &timings {
            assert_eq!(t.events, QUEUE_BENCH_EVENTS);
            assert!(t.median_ms > 0.0 && t.per_event_ns > 0.0);
        }
    }

    #[test]
    fn probe_bench_records_events_only_when_tracing() {
        let mut ctx = RunContext::fast();
        ctx.cluster_sizes = vec![1, 2];
        let opts = BenchOptions {
            repeats: 1,
            warmup: 0,
            progress: false,
        };
        let timings = measure_probes(&ctx, &opts);
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].probe, "null");
        assert_eq!(timings[1].probe, "trace");
        assert_eq!(timings[0].events, 0, "null probe must record nothing");
        assert!(timings[1].events > 0, "trace probe recorded nothing");
        for t in &timings {
            assert!(t.median_ms >= 0.0 && t.median_ms.is_finite());
        }
    }

    #[test]
    fn attack_bench_times_each_stage_on_frozen_inputs() {
        let ctx = RunContext::fast();
        let opts = BenchOptions {
            repeats: 1,
            warmup: 0,
            progress: false,
        };
        let timings = measure_attacks(&ctx, &opts);
        assert_eq!(timings.len(), 3);
        assert_eq!(timings[0].stage, "observe");
        assert_eq!(timings[1].stage, "traffic");
        assert_eq!(timings[2].stage, "residency");
        for t in &timings {
            assert!(t.events > 0, "{} analyzed nothing", t.stage);
            assert!(t.median_ms >= 0.0 && t.median_ms.is_finite());
        }
    }

    #[test]
    fn time_repeats_returns_one_sample_per_repeat() {
        let samples = time_repeats(4, || std::hint::black_box(()));
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|&ms| ms >= 0.0 && ms.is_finite()));
    }
}
