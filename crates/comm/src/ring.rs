//! Secure ring all-reduce across NPU TEEs.
//!
//! The paper evaluates one CPU TEE coupled to one NPU TEE; this module
//! extends the §3.3/§4.4 transfer-protocol split to *N*-way data-parallel
//! training, where per-step gradient aggregation crosses the NPU-side
//! interconnect. A bandwidth-optimal ring all-reduce over `n` ranks moves
//! each rank's full gradient buffer in `2·(n−1)` synchronized steps of
//! `⌈bytes/n⌉`-byte chunks (reduce-scatter then all-gather), so every rank
//! puts `2·(n−1)/n · bytes` on the wire.
//!
//! Security modes map onto the same protocol split as the CPU↔NPU link:
//!
//! * [`RingAllReduce::staged`] — each hop pays the Graviton-like staging
//!   conversion ([`StagingProtocol`]): decrypt + re-encrypt into the
//!   transit key on the sender, the bus, then decrypt + re-encrypt on the
//!   receiver, per chunk, per step (§3.3).
//! * [`RingAllReduce::direct`] — TensorTEE's unified tensor granularity
//!   makes the ciphertext valid on every rank, so a hop is one chunk DMA
//!   plus a trusted-channel metadata packet carrying the chunk MAC
//!   ([`DirectProtocol`], §4.4.2); hops overlap backward via
//!   [`crate::schedule::exposed_time`].
//! * [`RingAllReduce::plain`] — no protection (performance reference).

use crate::link::PcieLink;
use crate::protocol::{DirectProtocol, StagingProtocol, TransferBreakdown};
use serde::Serialize;
use tee_sim::Time;

/// The NPU↔NPU interconnect the ring runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Interconnect {
    /// PCIe 4.0 ×16 peer-to-peer (same link class as the CPU↔NPU bus,
    /// Table 1): ~32 GB/s per direction, ~600 ns base latency.
    PcieP2p,
    /// An NVLink-class dedicated accelerator fabric: ~300 GB/s per
    /// direction, ~500 ns base latency.
    NvlinkLike,
    /// Custom bandwidth (bytes/s) and base latency (ns).
    Custom {
        /// Per-direction bandwidth in bytes per second.
        bytes_per_sec: u64,
        /// Base (per-acquire) latency in nanoseconds.
        latency_ns: u64,
    },
}

impl Interconnect {
    /// Per-direction bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        match self {
            Interconnect::PcieP2p => PcieLink::GEN4_X16_BYTES_PER_SEC,
            Interconnect::NvlinkLike => 300.0e9,
            Interconnect::Custom { bytes_per_sec, .. } => *bytes_per_sec as f64,
        }
    }

    /// Base latency per link acquisition.
    pub fn latency(&self) -> Time {
        match self {
            Interconnect::PcieP2p => Time::from_ns(600),
            Interconnect::NvlinkLike => Time::from_ns(500),
            Interconnect::Custom { latency_ns, .. } => Time::from_ns(*latency_ns),
        }
    }

    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Interconnect::PcieP2p => "PCIe 4.0 x16 P2P",
            Interconnect::NvlinkLike => "NVLink-class",
            Interconnect::Custom { .. } => "custom",
        }
    }

    /// Builds one link direction of this interconnect.
    pub fn link(&self) -> PcieLink {
        PcieLink::new(self.bytes_per_sec(), self.latency())
    }
}

impl Default for Interconnect {
    /// PCIe peer-to-peer: the conservative fabric the paper's Table-1
    /// system already has.
    fn default() -> Self {
        Interconnect::PcieP2p
    }
}

/// Cost of one synchronized ring step (one chunk hop) under a protocol.
///
/// The hop sequence is the contract between the analytic collective
/// ([`RingAllReduce::staged`] etc., which fold the hops serially) and the
/// discrete-event cluster engine (which replays the same hops as explicit
/// re-encrypt / bus / decrypt events on a shared fabric) — both consume
/// identical per-hop numbers, which is what makes DES-lockstep reproduce
/// the analytic breakdown bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HopCost {
    /// Staging conversion on the send side (zero for direct/plain).
    pub re_encryption: Time,
    /// Interconnect bus time of the chunk DMA.
    pub comm: Time,
    /// Staging conversion on the receive side (zero for direct/plain).
    pub decryption: Time,
}

impl HopCost {
    /// Serialized duration of the hop.
    pub fn total(&self) -> Time {
        self.re_encryption + self.comm + self.decryption
    }
}

/// Per-phase cost of one ring all-reduce, per rank (all ranks operate in
/// lockstep, so this is also the wall-clock cost of the collective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AllReduceBreakdown {
    /// Synchronized ring steps executed (`2·(n−1)`).
    pub steps: u32,
    /// Bytes of one ring chunk (`⌈bytes/n⌉`).
    pub chunk_bytes: u64,
    /// Staging-conversion time on the send side (zero for direct/plain).
    pub re_encryption: Time,
    /// Interconnect bus time across all steps.
    pub comm: Time,
    /// Staging-conversion time on the receive side (zero for direct/plain).
    pub decryption: Time,
}

impl AllReduceBreakdown {
    /// The no-op collective (single rank: gradients are already reduced).
    pub const NOOP: AllReduceBreakdown = AllReduceBreakdown {
        steps: 0,
        chunk_bytes: 0,
        re_encryption: Time::ZERO,
        comm: Time::ZERO,
        decryption: Time::ZERO,
    };

    /// Total serialized duration of the collective.
    pub fn total(&self) -> Time {
        self.re_encryption + self.comm + self.decryption
    }

    /// Bytes each rank puts on the wire: `steps · chunk_bytes`, i.e.
    /// `2·(n−1)/n · bytes` up to chunk rounding.
    pub fn wire_bytes(&self) -> u64 {
        self.steps as u64 * self.chunk_bytes
    }

    /// Accumulates a hop sequence into the per-phase breakdown (the
    /// serial fold both the analytic path and the DES use — per-field
    /// sums in hop order, so the result is bit-identical between them).
    pub fn from_hops(steps: u32, chunk_bytes: u64, hops: &[HopCost]) -> AllReduceBreakdown {
        let mut acc = AllReduceBreakdown {
            steps,
            chunk_bytes,
            ..AllReduceBreakdown::NOOP
        };
        for hop in hops {
            acc.re_encryption += hop.re_encryption;
            acc.comm += hop.comm;
            acc.decryption += hop.decryption;
        }
        acc
    }
}

/// A bandwidth-optimal ring all-reduce schedule over `n_ranks` NPU TEEs.
#[derive(Debug, Clone, Copy)]
pub struct RingAllReduce {
    n_ranks: u32,
    interconnect: Interconnect,
}

impl RingAllReduce {
    /// Creates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n_ranks` is zero.
    pub fn new(n_ranks: u32, interconnect: Interconnect) -> Self {
        assert!(n_ranks > 0, "a ring needs at least one rank");
        RingAllReduce {
            n_ranks,
            interconnect,
        }
    }

    /// Ranks in the ring.
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The interconnect.
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// Synchronized steps: `n−1` reduce-scatter + `n−1` all-gather.
    pub fn steps(&self) -> u32 {
        2 * (self.n_ranks - 1)
    }

    /// Chunk size for a `bytes`-byte buffer (`⌈bytes/n⌉`).
    pub fn chunk_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.n_ranks as u64)
    }

    /// Plain (non-secure) all-reduce: each step is one chunk DMA; steps
    /// barrier on the slowest hop, which on a homogeneous ring is any hop.
    pub fn plain(&self, bytes: u64) -> AllReduceBreakdown {
        let mut link = self.interconnect.link();
        self.run(bytes, move |at, chunk| {
            let done = link.transfer(at, chunk);
            (Time::ZERO, done - at, Time::ZERO)
        })
    }

    /// Staged (SGX+MGX-style) all-reduce: every hop re-encrypts into the
    /// transit key, crosses the bus, and converts back — per chunk, per
    /// step. Each rank's single AES engine (§3.3) serializes the
    /// conversions, so nothing overlaps inside a step.
    pub fn staged(&self, bytes: u64) -> AllReduceBreakdown {
        let mut proto = StagingProtocol::on_link(self.interconnect.link());
        self.run(bytes, move |at, chunk| {
            let b = proto.transfer(at, chunk);
            (b.re_encryption, b.comm, b.decryption)
        })
    }

    /// Direct (TensorTEE) all-reduce: ciphertext chunks are valid on every
    /// rank, so a hop is one chunk DMA plus the trusted-channel metadata
    /// packet carrying the chunk's `(addr, VN, MAC)` (§4.4.2), which hides
    /// behind the DMA.
    pub fn direct(&self, bytes: u64) -> AllReduceBreakdown {
        let mut proto = DirectProtocol::on_link(self.interconnect.link());
        self.run(bytes, move |at, chunk| {
            let b = proto.transfer(at, chunk);
            (b.re_encryption, b.comm, b.decryption)
        })
    }

    /// Pipelined ring broadcast of `bytes` from one rank to the other
    /// `n−1` (the fp16 weight redistribution after the CPU update):
    /// chunks stream hop-to-hop, so the wall-clock cost is one traversal
    /// of the payload through a single link under `hop`'s protocol — the
    /// per-hop fill latency of the remaining hops is negligible against
    /// the payload. Zero for a single rank (nothing to redistribute).
    fn pipelined_broadcast(
        &self,
        bytes: u64,
        hop: impl FnOnce(u64) -> TransferBreakdown,
    ) -> TransferBreakdown {
        if self.n_ranks == 1 {
            return TransferBreakdown {
                re_encryption: Time::ZERO,
                comm: Time::ZERO,
                decryption: Time::ZERO,
            };
        }
        hop(bytes)
    }

    /// Plain broadcast: one pipelined traversal of the payload, no
    /// conversion anywhere.
    pub fn broadcast_plain(&self, bytes: u64) -> TransferBreakdown {
        let mut link = self.interconnect.link();
        self.pipelined_broadcast(bytes, |b| TransferBreakdown {
            re_encryption: Time::ZERO,
            comm: link.transfer(Time::ZERO, b),
            decryption: Time::ZERO,
        })
    }

    /// Staged broadcast: every hop pays the §3.3 conversion, and the
    /// conversions pipeline with the bus just like the payload chunks, so
    /// one [`StagingProtocol`] hop bounds the traversal.
    pub fn broadcast_staged(&self, bytes: u64) -> TransferBreakdown {
        let mut proto = StagingProtocol::on_link(self.interconnect.link());
        self.pipelined_broadcast(bytes, |b| proto.transfer(Time::ZERO, b))
    }

    /// Direct broadcast: one ciphertext DMA plus the trusted metadata
    /// packet (§4.4.2).
    pub fn broadcast_direct(&self, bytes: u64) -> TransferBreakdown {
        let mut proto = DirectProtocol::on_link(self.interconnect.link());
        self.pipelined_broadcast(bytes, |b| proto.transfer(Time::ZERO, b))
    }

    /// Per-hop costs of a plain `bytes`-byte all-reduce (empty for a
    /// single rank — the collective is a no-op).
    pub fn hops_plain(&self, bytes: u64) -> Vec<HopCost> {
        let mut link = self.interconnect.link();
        self.hop_costs(bytes, move |at, chunk| {
            let done = link.transfer(at, chunk);
            (Time::ZERO, done - at, Time::ZERO)
        })
    }

    /// Per-hop costs of a staged all-reduce: every hop carries its §3.3
    /// conversion explicitly (what the DES turns into re-encrypt events).
    pub fn hops_staged(&self, bytes: u64) -> Vec<HopCost> {
        let mut proto = StagingProtocol::on_link(self.interconnect.link());
        self.hop_costs(bytes, move |at, chunk| {
            let b = proto.transfer(at, chunk);
            (b.re_encryption, b.comm, b.decryption)
        })
    }

    /// Per-hop costs of a direct (TensorTEE) all-reduce.
    pub fn hops_direct(&self, bytes: u64) -> Vec<HopCost> {
        let mut proto = DirectProtocol::on_link(self.interconnect.link());
        self.hop_costs(bytes, move |at, chunk| {
            let b = proto.transfer(at, chunk);
            (b.re_encryption, b.comm, b.decryption)
        })
    }

    /// Drives the per-step hop model: ring steps are barriers (the chunk a
    /// rank forwards in step `s+1` is the one it received and reduced in
    /// step `s`), so step costs accumulate serially along the fold.
    fn hop_costs(
        &self,
        bytes: u64,
        mut hop: impl FnMut(Time, u64) -> (Time, Time, Time),
    ) -> Vec<HopCost> {
        if self.n_ranks == 1 {
            return Vec::new();
        }
        let chunk = self.chunk_bytes(bytes);
        let mut hops = Vec::with_capacity(self.steps() as usize);
        let mut at = Time::ZERO;
        for _ in 0..self.steps() {
            let (re, comm, de) = hop(at, chunk);
            hops.push(HopCost {
                re_encryption: re,
                comm,
                decryption: de,
            });
            at = at + re + comm + de;
        }
        hops
    }

    /// Folds the hop sequence into the collective's breakdown.
    fn run(
        &self,
        bytes: u64,
        hop: impl FnMut(Time, u64) -> (Time, Time, Time),
    ) -> AllReduceBreakdown {
        if self.n_ranks == 1 {
            return AllReduceBreakdown::NOOP;
        }
        let hops = self.hop_costs(bytes, hop);
        AllReduceBreakdown::from_hops(self.steps(), self.chunk_bytes(bytes), &hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn single_rank_is_noop() {
        let ring = RingAllReduce::new(1, Interconnect::PcieP2p);
        for b in [
            ring.plain(64 * MB),
            ring.staged(64 * MB),
            ring.direct(64 * MB),
        ] {
            assert_eq!(b, AllReduceBreakdown::NOOP);
            assert_eq!(b.total(), Time::ZERO);
        }
    }

    #[test]
    fn wire_bytes_follow_ring_formula() {
        for n in [2u32, 3, 4, 8] {
            let ring = RingAllReduce::new(n, Interconnect::PcieP2p);
            let bytes = 96 * MB;
            let b = ring.direct(bytes);
            assert_eq!(b.steps, 2 * (n - 1));
            assert_eq!(b.chunk_bytes, bytes.div_ceil(n as u64));
            // 2·(n−1)/n·bytes up to per-chunk ceil rounding.
            let ideal = 2 * (n as u64 - 1) * bytes / n as u64;
            assert!(b.wire_bytes() >= ideal);
            assert!(b.wire_bytes() < ideal + 2 * n as u64);
        }
    }

    #[test]
    fn staged_pays_conversion_direct_does_not() {
        let ring = RingAllReduce::new(4, Interconnect::PcieP2p);
        let staged = ring.staged(64 * MB);
        let direct = ring.direct(64 * MB);
        assert!(staged.re_encryption > Time::ZERO);
        assert!(staged.decryption > Time::ZERO);
        assert_eq!(direct.re_encryption, Time::ZERO);
        assert_eq!(direct.decryption, Time::ZERO);
        assert!(staged.total() > direct.total());
    }

    #[test]
    fn direct_close_to_plain() {
        let ring = RingAllReduce::new(8, Interconnect::PcieP2p);
        let plain = ring.plain(256 * MB).total().as_secs_f64();
        let direct = ring.direct(256 * MB).total().as_secs_f64();
        assert!(direct >= plain);
        assert!(direct / plain < 1.05, "metadata hides behind chunk DMA");
    }

    #[test]
    fn total_time_roughly_flat_in_ranks() {
        // Wire bytes converge to 2·bytes as n grows, so the collective's
        // duration grows sublinearly and saturates.
        let bytes = 256 * MB;
        let t = |n| {
            RingAllReduce::new(n, Interconnect::PcieP2p)
                .direct(bytes)
                .total()
                .as_secs_f64()
        };
        assert!(t(8) < 2.0 * t(2));
        assert!(t(8) > t(2), "more steps cost more in total");
    }

    #[test]
    fn broadcast_is_one_traversal_and_noop_for_single_rank() {
        let ring = RingAllReduce::new(4, Interconnect::PcieP2p);
        let plain = ring.broadcast_plain(64 * MB);
        let staged = ring.broadcast_staged(64 * MB);
        let direct = ring.broadcast_direct(64 * MB);
        // Pipelining: cost does not scale with rank count.
        let wider = RingAllReduce::new(8, Interconnect::PcieP2p).broadcast_plain(64 * MB);
        assert_eq!(plain, wider);
        assert!(staged.total() > direct.total(), "hops pay the conversion");
        assert!(direct.total() >= plain.total());
        let single = RingAllReduce::new(1, Interconnect::PcieP2p);
        assert_eq!(single.broadcast_staged(64 * MB).total(), Time::ZERO);
    }

    #[test]
    fn hop_sequences_fold_back_to_the_breakdown() {
        for n in [2u32, 4, 8] {
            let ring = RingAllReduce::new(n, Interconnect::PcieP2p);
            let bytes = 96 * MB;
            for (hops, breakdown) in [
                (ring.hops_plain(bytes), ring.plain(bytes)),
                (ring.hops_staged(bytes), ring.staged(bytes)),
                (ring.hops_direct(bytes), ring.direct(bytes)),
            ] {
                assert_eq!(hops.len() as u32, ring.steps());
                assert_eq!(
                    AllReduceBreakdown::from_hops(ring.steps(), ring.chunk_bytes(bytes), &hops),
                    breakdown
                );
                let serial: Time = hops.iter().map(HopCost::total).sum();
                assert_eq!(serial, breakdown.total());
            }
        }
        let single = RingAllReduce::new(1, Interconnect::PcieP2p);
        assert!(single.hops_staged(64 * MB).is_empty());
    }

    #[test]
    fn faster_fabric_helps() {
        let bytes = 256 * MB;
        let pcie = RingAllReduce::new(8, Interconnect::PcieP2p).direct(bytes);
        let nvlink = RingAllReduce::new(8, Interconnect::NvlinkLike).direct(bytes);
        assert!(nvlink.total() < pcie.total());
    }

    #[test]
    fn custom_interconnect_parameters_respected() {
        let ic = Interconnect::Custom {
            bytes_per_sec: 16_000_000_000,
            latency_ns: 100,
        };
        assert_eq!(ic.bytes_per_sec(), 16.0e9);
        assert_eq!(ic.latency(), Time::from_ns(100));
        assert_eq!(ic.label(), "custom");
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = RingAllReduce::new(0, Interconnect::PcieP2p);
    }
}
