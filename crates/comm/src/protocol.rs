//! Timing models of the two transfer protocols (§3.3, §4.4, Figures 6 & 21).

use crate::link::{AesEngine, PcieLink};
use serde::{Deserialize, Serialize};
use tee_sim::Time;

/// Per-phase breakdown of one transfer (Figure 21's stacked bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferBreakdown {
    /// Sender-side re-encryption into the non-secure staging region
    /// (decrypt with the enclave key + encrypt with the transit key).
    pub re_encryption: Time,
    /// Bus time.
    pub comm: Time,
    /// Receiver-side decryption + re-encryption into its enclave.
    pub decryption: Time,
}

impl TransferBreakdown {
    /// Total serialized duration.
    pub fn total(&self) -> Time {
        self.re_encryption + self.comm + self.decryption
    }
}

/// The Graviton-like staging protocol (Figure 6a): secure → non-secure →
/// bus → non-secure → secure, with cryptographic conversion at each edge.
#[derive(Debug)]
pub struct StagingProtocol {
    sender_aes: AesEngine,
    receiver_aes: AesEngine,
    link: PcieLink,
}

impl StagingProtocol {
    /// Builds the protocol with single AES engines per side (§3.3) and a
    /// Gen4 ×16 link.
    pub fn new() -> Self {
        StagingProtocol {
            sender_aes: AesEngine::single(),
            receiver_aes: AesEngine::single(),
            link: PcieLink::gen4_x16(),
        }
    }

    /// Builds with custom AES bandwidth (ablation: more engines).
    pub fn with_aes_bandwidth(bytes_per_sec: f64) -> Self {
        StagingProtocol {
            sender_aes: AesEngine::new(bytes_per_sec),
            receiver_aes: AesEngine::new(bytes_per_sec),
            link: PcieLink::gen4_x16(),
        }
    }

    /// Builds the protocol over a custom link (used by the ring all-reduce
    /// to run hops on the NPU-side interconnect, [`crate::ring`]).
    pub fn on_link(link: PcieLink) -> Self {
        StagingProtocol {
            sender_aes: AesEngine::single(),
            receiver_aes: AesEngine::single(),
            link,
        }
    }

    /// Transfers `bytes` starting at `at`; phases are serialized
    /// (decrypt+re-encrypt must finish before DMA of the staged copy, and
    /// the receiver converts after arrival).
    pub fn transfer(&mut self, at: Time, bytes: u64) -> TransferBreakdown {
        // Sender: decrypt (enclave key) + encrypt (transit key) — two AES
        // passes through one engine.
        let dec = self.sender_aes.process(at, bytes);
        let reenc_done = self.sender_aes.process(dec, bytes);
        let re_encryption = reenc_done - at;
        // Bus.
        let comm_done = self.link.transfer(reenc_done, bytes);
        let comm = comm_done - reenc_done;
        // Receiver: decrypt transit + re-encrypt into enclave.
        let rdec = self.receiver_aes.process(comm_done, bytes);
        let renc = self.receiver_aes.process(rdec, bytes);
        TransferBreakdown {
            re_encryption,
            comm,
            decryption: renc - comm_done,
        }
    }

    /// Whether this protocol's transfer can overlap NPU computation: it
    /// cannot — re-encryption contends for the AES engine and DRAM
    /// bandwidth that computation needs (§3.3, Figure 7).
    pub fn can_overlap_compute(&self) -> bool {
        false
    }
}

impl Default for StagingProtocol {
    fn default() -> Self {
        Self::new()
    }
}

/// TensorTEE's direct protocol (Figure 6b): unified tensor granularity
/// and a shared session key make the ciphertext valid on both sides, so
/// the transfer is a DMA plus one small trusted-channel packet.
#[derive(Debug)]
pub struct DirectProtocol {
    link: PcieLink,
    trusted_link: PcieLink,
}

/// Bytes of one trusted-channel metadata packet (sealed `(addr, VN, MAC)`
/// plus tag and header).
pub const META_PACKET_BYTES: u64 = 64;

impl DirectProtocol {
    /// Builds the protocol on a Gen4 ×16 link; metadata shares the link but
    /// is negligible.
    pub fn new() -> Self {
        DirectProtocol {
            link: PcieLink::gen4_x16(),
            trusted_link: PcieLink::gen4_x16(),
        }
    }

    /// Builds the protocol over a custom link (used by the ring all-reduce
    /// to run hops on the NPU-side interconnect, [`crate::ring`]).
    pub fn on_link(link: PcieLink) -> Self {
        DirectProtocol {
            trusted_link: link.clone(),
            link,
        }
    }

    /// Transfers `bytes` starting at `at`. The metadata packet and the
    /// ciphertext DMA proceed in parallel (§4.4.2), synchronizing at the
    /// end.
    pub fn transfer(&mut self, at: Time, bytes: u64) -> TransferBreakdown {
        let meta_done = self.trusted_link.transfer(at, META_PACKET_BYTES);
        let data_done = self.link.transfer(at, bytes);
        TransferBreakdown {
            re_encryption: Time::ZERO,
            comm: data_done.max(meta_done) - at,
            decryption: Time::ZERO,
        }
    }

    /// Direct transfers touch neither AES engines nor the SoC memory path,
    /// so they overlap computation (Figure 15).
    pub fn can_overlap_compute(&self) -> bool {
        true
    }
}

impl Default for DirectProtocol {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_dominated_by_crypto() {
        let mut p = StagingProtocol::new();
        let b = p.transfer(Time::ZERO, 256 << 20);
        assert!(b.re_encryption > b.comm, "8 GB/s AES slower than PCIe");
        assert!(b.decryption > b.comm);
    }

    #[test]
    fn direct_is_comm_only() {
        let mut p = DirectProtocol::new();
        let b = p.transfer(Time::ZERO, 256 << 20);
        assert_eq!(b.re_encryption, Time::ZERO);
        assert_eq!(b.decryption, Time::ZERO);
        assert!(b.comm > Time::ZERO);
    }

    #[test]
    fn direct_much_faster_serialized() {
        let bytes = 512 << 20;
        let staging = StagingProtocol::new().transfer(Time::ZERO, bytes);
        let direct = DirectProtocol::new().transfer(Time::ZERO, bytes);
        let speedup = staging.total().as_secs_f64() / direct.total().as_secs_f64();
        assert!(
            speedup > 5.0,
            "even before overlap, direct should win big: {speedup:.1}x"
        );
    }

    #[test]
    fn metadata_packet_negligible() {
        let mut p = DirectProtocol::new();
        let big = p.transfer(Time::ZERO, 64 << 20);
        // Metadata is hidden behind the data DMA.
        let solo_data = PcieLink::gen4_x16().transfer(Time::ZERO, 64 << 20);
        assert_eq!(big.comm, solo_data);
    }

    #[test]
    fn more_aes_engines_help_staging() {
        let bytes = 128 << 20;
        let one = StagingProtocol::new().transfer(Time::ZERO, bytes);
        let many = StagingProtocol::with_aes_bandwidth(64.0e9).transfer(Time::ZERO, bytes);
        assert!(many.total() < one.total());
    }

    #[test]
    fn overlap_capability_flags() {
        assert!(!StagingProtocol::new().can_overlap_compute());
        assert!(DirectProtocol::new().can_overlap_compute());
    }
}
