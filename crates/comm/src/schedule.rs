//! The compute/transfer overlap scheduler (Figures 7 and 15).
//!
//! Given a computation phase and a communication phase, the baseline must
//! serialize them (AES and DRAM bandwidth contention), while the unified
//! granularity lets TensorTEE hide the transfer inside the computation.
//! [`Timeline`] renders the two-stream picture the figures draw.

use tee_sim::Time;

/// Serialized execution: compute then transfer (Figure 7).
pub fn serialized_time(compute: Time, transfer: Time) -> Time {
    compute + transfer
}

/// Overlapped execution (Figure 15): the transfer hides inside the
/// computation; only the excess is exposed.
pub fn overlapped_time(compute: Time, transfer: Time) -> Time {
    compute.max(transfer)
}

/// The exposed (non-overlapped) tail of a transfer hidden behind a compute
/// window: `overlapped_time(window, transfer) − window`. Zero when the
/// transfer fits inside the window, including the exact-fit boundary.
///
/// The end-to-end simulators use this for the gradient transfer and ring
/// all-reduce hidden behind the backward window, and the weight transfer
/// hidden behind the CPU optimizer (§4.4, Figure 15).
pub fn exposed_time(window: Time, transfer: Time) -> Time {
    transfer.saturating_sub(window)
}

/// A labeled segment on a two-stream timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Stream row (0 = compute, 1 = communication).
    pub row: usize,
    /// Label drawn in the segment.
    pub label: String,
    /// Start time.
    pub start: Time,
    /// End time.
    pub end: Time,
}

/// A two-stream execution timeline that renders like the paper's figures.
///
/// # Example
///
/// ```
/// use tee_comm::schedule::Timeline;
/// use tee_sim::Time;
///
/// let mut t = Timeline::new();
/// t.push(0, "bwd", Time::ZERO, Time::from_us(10));
/// t.push(1, "grad", Time::ZERO, Time::from_us(4));
/// let art = t.render(40);
/// assert!(art.contains("bwd"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    segments: Vec<Segment>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `row > 1`.
    pub fn push(&mut self, row: usize, label: impl Into<String>, start: Time, end: Time) {
        assert!(end >= start, "segment ends before it starts");
        assert!(row <= 1, "timeline has two rows");
        self.segments.push(Segment {
            row,
            label: label.into(),
            start,
            end,
        });
    }

    /// Latest segment end.
    pub fn makespan(&self) -> Time {
        self.segments
            .iter()
            .map(|s| s.end)
            .fold(Time::ZERO, Time::max)
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Renders an ASCII chart `width` characters wide, two rows
    /// (compute on top, communication below), as in Figures 7/15.
    pub fn render(&self, width: usize) -> String {
        let span = self.makespan().as_ps().max(1);
        let mut rows = [vec![b' '; width], vec![b' '; width]];
        for seg in &self.segments {
            let a = (seg.start.as_ps() as u128 * width as u128 / span as u128) as usize;
            let b = ((seg.end.as_ps() as u128 * width as u128).div_ceil(span as u128) as usize)
                .min(width);
            let row = &mut rows[seg.row];
            for c in row.iter_mut().take(b).skip(a) {
                *c = b'=';
            }
            // Write the label inside the bar when it fits.
            let label = seg.label.as_bytes();
            if b > a && b - a >= label.len() + 2 {
                let off = a + (b - a - label.len()) / 2;
                row[off..off + label.len()].copy_from_slice(label);
            }
        }
        format!(
            "compute |{}|\ncomm    |{}|  (makespan {})",
            String::from_utf8_lossy(&rows[0]),
            String::from_utf8_lossy(&rows[1]),
            self.makespan()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_vs_overlapped() {
        let c = Time::from_us(10);
        let x = Time::from_us(4);
        assert_eq!(serialized_time(c, x), Time::from_us(14));
        assert_eq!(overlapped_time(c, x), Time::from_us(10));
        // Transfer larger than compute: exposed excess.
        assert_eq!(overlapped_time(x, c), Time::from_us(10));
    }

    #[test]
    fn zero_length_transfer_is_free() {
        let c = Time::from_us(10);
        assert_eq!(serialized_time(c, Time::ZERO), c);
        assert_eq!(overlapped_time(c, Time::ZERO), c);
        assert_eq!(exposed_time(c, Time::ZERO), Time::ZERO);
        // A zero-length compute window exposes the whole transfer.
        assert_eq!(exposed_time(Time::ZERO, c), c);
        // And nothing happening at all takes no time.
        assert_eq!(overlapped_time(Time::ZERO, Time::ZERO), Time::ZERO);
        assert_eq!(exposed_time(Time::ZERO, Time::ZERO), Time::ZERO);
    }

    #[test]
    fn transfer_longer_than_compute_exposes_excess() {
        let c = Time::from_us(4);
        let x = Time::from_us(10);
        assert_eq!(overlapped_time(c, x), x);
        assert_eq!(exposed_time(c, x), Time::from_us(6));
        // Exposed tail + window reconstructs the overlapped makespan.
        assert_eq!(c + exposed_time(c, x), overlapped_time(c, x));
    }

    #[test]
    fn exact_overlap_boundary_exposes_nothing() {
        let t = Time::from_us(7);
        assert_eq!(overlapped_time(t, t), t);
        assert_eq!(exposed_time(t, t), Time::ZERO);
        // One picosecond past the boundary is the smallest exposed tail.
        let just_over = t + Time::from_ps(1);
        assert_eq!(exposed_time(t, just_over), Time::from_ps(1));
        let just_under = t.saturating_sub(Time::from_ps(1));
        assert_eq!(exposed_time(t, just_under), Time::ZERO);
    }

    #[test]
    fn makespan_tracks_latest_end() {
        let mut t = Timeline::new();
        t.push(0, "a", Time::ZERO, Time::from_us(3));
        t.push(1, "b", Time::from_us(1), Time::from_us(5));
        assert_eq!(t.makespan(), Time::from_us(5));
    }

    #[test]
    fn render_has_two_rows_and_labels() {
        let mut t = Timeline::new();
        t.push(0, "fwd", Time::ZERO, Time::from_us(8));
        t.push(1, "w", Time::from_us(2), Time::from_us(6));
        let art = t.render(60);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains("fwd"));
        assert!(art.contains('='));
    }

    #[test]
    fn empty_timeline_renders() {
        let art = Timeline::new().render(10);
        assert!(art.contains("compute"));
    }

    #[test]
    #[should_panic]
    fn bad_segment_rejected() {
        Timeline::new().push(0, "x", Time::from_us(2), Time::from_us(1));
    }
}
