//! Interconnect hardware models: the PCIe bus and AES engines.

use tee_sim::{BandwidthResource, Time};

/// A PCIe link direction (Table 1: PCIe 4.0 ×16, ~32 GB/s per direction
/// with protocol overhead, ~600 ns base latency).
#[derive(Debug, Clone)]
pub struct PcieLink {
    resource: BandwidthResource,
}

impl PcieLink {
    /// PCIe 4.0 ×16 effective bandwidth.
    pub const GEN4_X16_BYTES_PER_SEC: f64 = 32.0e9;

    /// Creates a Gen4 ×16 link direction.
    pub fn gen4_x16() -> Self {
        PcieLink {
            resource: BandwidthResource::new(Self::GEN4_X16_BYTES_PER_SEC, Time::from_ns(600)),
        }
    }

    /// Creates a link with custom bandwidth (bytes/s) and latency.
    pub fn new(bytes_per_sec: f64, latency: Time) -> Self {
        PcieLink {
            resource: BandwidthResource::new(bytes_per_sec, latency),
        }
    }

    /// Pure transfer duration for `bytes` (occupancy, excluding queueing).
    pub fn occupancy(&self, bytes: u64) -> Time {
        self.resource.occupancy(bytes)
    }

    /// Schedules a transfer starting no earlier than `at`; returns delivery
    /// completion.
    pub fn transfer(&mut self, at: Time, bytes: u64) -> Time {
        self.resource.acquire(at, bytes).done
    }

    /// Time the link becomes free.
    pub fn busy_until(&self) -> Time {
        self.resource.busy_until()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.resource.total_bytes()
    }
}

/// A memory-encryption AES engine used for staging re-encryption.
///
/// §3.3: one fully-pipelined engine provides ~8 GB/s, well under both the
/// PCIe link and the NPU's compute-side demand (~20 GB/s), so staged
/// transfers serialize behind it.
#[derive(Debug, Clone)]
pub struct AesEngine {
    resource: BandwidthResource,
}

impl AesEngine {
    /// Default single-engine bandwidth from §3.3.
    pub const DEFAULT_BYTES_PER_SEC: f64 = 8.0e9;

    /// Creates the default 8 GB/s engine with the Table-1 40-cycle latency
    /// (at 1 GHz).
    pub fn single() -> Self {
        Self::new(Self::DEFAULT_BYTES_PER_SEC)
    }

    /// Creates an engine with custom bandwidth.
    pub fn new(bytes_per_sec: f64) -> Self {
        AesEngine {
            resource: BandwidthResource::new(bytes_per_sec, Time::from_ns(40)),
        }
    }

    /// Schedules `bytes` of (de/en)cryption starting no earlier than `at`.
    pub fn process(&mut self, at: Time, bytes: u64) -> Time {
        self.resource.acquire(at, bytes).done
    }

    /// Pure processing duration for `bytes`.
    pub fn occupancy(&self, bytes: u64) -> Time {
        self.resource.occupancy(bytes)
    }

    /// Time the engine becomes free.
    pub fn busy_until(&self) -> Time {
        self.resource.busy_until()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_throughput() {
        let mut link = PcieLink::gen4_x16();
        let t = link.transfer(Time::ZERO, 32_000_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "32 GB in ~1 s: {t}");
    }

    #[test]
    fn pcie_queues_transfers() {
        let mut link = PcieLink::gen4_x16();
        let a = link.transfer(Time::ZERO, 1 << 20);
        let b = link.transfer(Time::ZERO, 1 << 20);
        assert!(b > a);
        assert_eq!(link.total_bytes(), 2 << 20);
    }

    #[test]
    fn aes_engine_slower_than_pcie() {
        let aes = AesEngine::single();
        let pcie = PcieLink::gen4_x16();
        assert!(aes.occupancy(1 << 20) > pcie.occupancy(1 << 20));
    }

    #[test]
    fn aes_latency_added_once() {
        let mut aes = AesEngine::single();
        let t = aes.process(Time::ZERO, 8_000); // 1 µs of occupancy
        assert_eq!(t, Time::from_us(1) + Time::from_ns(40));
    }
}
