//! Functional secure channels for the direct-transfer protocol (§4.4.2).
//!
//! Two channels exist after attestation + key exchange:
//!
//! * the **trusted channel** carries small metadata packets
//!   `(addr, VN, MAC)` — encrypted and authenticated under the shared
//!   session key, since VNs must not be forgeable;
//! * the **direct channel** carries raw ciphertext lines DRAM-to-DRAM
//!   without touching either SoC — snoopable, but useless without the key.
//!
//! Both are modeled functionally here; timing lives in
//! [`crate::protocol`].

use tee_crypto::mac::{message_mac, MacKey, MacTag};
use tee_crypto::{Aes128, Key};

/// Metadata describing one in-flight tensor (what the trusted channel
/// protects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferMeta {
    /// Tensor base address in the destination layout.
    pub base: u64,
    /// Tensor bytes (line-aligned).
    pub bytes: u64,
    /// Tensor version number.
    pub vn: u64,
    /// Tensor MAC.
    pub mac: MacTag,
}

/// Errors surfaced by channel verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The metadata packet failed authentication (tampered in flight).
    MetadataForged,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::MetadataForged => write!(f, "trusted-channel packet failed to verify"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// An encrypted, authenticated metadata packet as it crosses the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMeta {
    payload: [u8; 32],
    tag: MacTag,
}

impl SealedMeta {
    /// Adversarial hook: flip a payload byte in flight.
    pub fn tamper(&mut self, offset: usize, xor: u8) {
        self.payload[offset % 32] ^= xor;
    }

    /// Bus snoop: the raw (encrypted) payload bytes.
    pub fn snoop(&self) -> &[u8; 32] {
        &self.payload
    }
}

/// The trusted metadata channel, bound to the shared session key.
///
/// # Example
///
/// ```
/// use tee_comm::channel::{TransferMeta, TrustedChannel};
/// use tee_crypto::{mac::MacTag, Key};
///
/// let key = Key::from_seed(42);
/// let tx = TrustedChannel::new(key);
/// let rx = TrustedChannel::new(key);
/// let meta = TransferMeta { base: 0x1000, bytes: 4096, vn: 3, mac: MacTag::from_raw(7) };
/// let sealed = tx.seal(&meta, 1);
/// assert_eq!(rx.open(&sealed, 1).unwrap(), meta);
/// ```
#[derive(Debug)]
pub struct TrustedChannel {
    aes: Aes128,
    mac_key: MacKey,
}

impl TrustedChannel {
    /// Binds a channel endpoint to the session key.
    pub fn new(session_key: Key) -> Self {
        TrustedChannel {
            aes: Aes128::new(&session_key.derive("meta-enc")),
            mac_key: MacKey(session_key.derive("meta-mac").0),
        }
    }

    fn keystream(&self, seq: u64) -> [u8; 32] {
        let mut out = [0u8; 32];
        for blk in 0..2u64 {
            let mut ctr = [0u8; 16];
            ctr[..8].copy_from_slice(&seq.to_le_bytes());
            ctr[8] = blk as u8;
            let ks = self.aes.encrypt_block(ctr);
            out[(blk as usize) * 16..(blk as usize + 1) * 16].copy_from_slice(&ks);
        }
        out
    }

    /// Encrypts and authenticates a metadata packet under sequence number
    /// `seq` (replay protection for the channel itself).
    pub fn seal(&self, meta: &TransferMeta, seq: u64) -> SealedMeta {
        let mut plain = [0u8; 32];
        plain[0..8].copy_from_slice(&meta.base.to_le_bytes());
        plain[8..16].copy_from_slice(&meta.bytes.to_le_bytes());
        plain[16..24].copy_from_slice(&meta.vn.to_le_bytes());
        plain[24..32].copy_from_slice(&meta.mac.as_u64().to_le_bytes());
        let ks = self.keystream(seq);
        let mut payload = [0u8; 32];
        for i in 0..32 {
            payload[i] = plain[i] ^ ks[i];
        }
        let mut mac_input = [0u8; 40];
        mac_input[..32].copy_from_slice(&payload);
        mac_input[32..].copy_from_slice(&seq.to_le_bytes());
        SealedMeta {
            payload,
            tag: message_mac(&self.mac_key, &mac_input),
        }
    }

    /// Verifies and decrypts a packet.
    ///
    /// # Errors
    ///
    /// [`ChannelError::MetadataForged`] if authentication fails.
    pub fn open(&self, sealed: &SealedMeta, seq: u64) -> Result<TransferMeta, ChannelError> {
        let mut mac_input = [0u8; 40];
        mac_input[..32].copy_from_slice(&sealed.payload);
        mac_input[32..].copy_from_slice(&seq.to_le_bytes());
        if message_mac(&self.mac_key, &mac_input) != sealed.tag {
            return Err(ChannelError::MetadataForged);
        }
        let ks = self.keystream(seq);
        let mut plain = [0u8; 32];
        for i in 0..32 {
            plain[i] = sealed.payload[i] ^ ks[i];
        }
        let read_u64 =
            |r: std::ops::Range<usize>| u64::from_le_bytes(plain[r].try_into().expect("8 bytes"));
        Ok(TransferMeta {
            base: read_u64(0..8),
            bytes: read_u64(8..16),
            vn: read_u64(16..24),
            mac: MacTag::from_raw(read_u64(24..32)),
        })
    }
}

/// The direct ciphertext channel: DRAM-to-DRAM DMA of encrypted lines.
/// Functionally it is a plain copy — the security property is that the
/// payload is ciphertext under a key the bus never sees.
#[derive(Debug, Default)]
pub struct DirectChannel {
    snoop_log: Vec<[u8; 64]>,
}

impl DirectChannel {
    /// Creates a channel with an (adversarial) snoop log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves ciphertext lines, recording what a bus snooper would capture.
    pub fn dma(&mut self, lines: &[[u8; 64]]) -> Vec<[u8; 64]> {
        self.snoop_log.extend_from_slice(lines);
        lines.to_vec()
    }

    /// Everything a bus adversary captured.
    pub fn snooped(&self) -> &[[u8; 64]] {
        &self.snoop_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TrustedChannel, TrustedChannel) {
        let k = Key::from_seed(0xBEEF);
        (TrustedChannel::new(k), TrustedChannel::new(k))
    }

    fn meta() -> TransferMeta {
        TransferMeta {
            base: 0x8000,
            bytes: 1 << 20,
            vn: 17,
            mac: MacTag::from_raw(0x1234_5678),
        }
    }

    #[test]
    fn seal_open_round_trip() {
        let (tx, rx) = pair();
        let sealed = tx.seal(&meta(), 5);
        assert_eq!(rx.open(&sealed, 5).unwrap(), meta());
    }

    #[test]
    fn tampered_packet_rejected() {
        let (tx, rx) = pair();
        let mut sealed = tx.seal(&meta(), 5);
        sealed.tamper(16, 0x01); // flip a VN bit in flight
        assert_eq!(rx.open(&sealed, 5), Err(ChannelError::MetadataForged));
    }

    #[test]
    fn replayed_packet_rejected() {
        let (tx, rx) = pair();
        let sealed = tx.seal(&meta(), 5);
        // Receiver expects sequence 6 now.
        assert_eq!(rx.open(&sealed, 6), Err(ChannelError::MetadataForged));
    }

    #[test]
    fn wrong_key_rejected() {
        let tx = TrustedChannel::new(Key::from_seed(1));
        let rx = TrustedChannel::new(Key::from_seed(2));
        let sealed = tx.seal(&meta(), 0);
        assert!(rx.open(&sealed, 0).is_err());
    }

    #[test]
    fn snooped_metadata_is_ciphertext() {
        let (tx, _) = pair();
        let sealed = tx.seal(&meta(), 9);
        let vn_bytes = meta().vn.to_le_bytes();
        assert_ne!(&sealed.snoop()[16..24], &vn_bytes, "VN not in the clear");
    }

    #[test]
    fn direct_channel_copies_and_logs() {
        let mut ch = DirectChannel::new();
        let lines = vec![[0xAB; 64], [0xCD; 64]];
        let out = ch.dma(&lines);
        assert_eq!(out, lines);
        assert_eq!(ch.snooped().len(), 2);
    }
}
