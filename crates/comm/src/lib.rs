//! # tee-comm
//!
//! CPU↔NPU interconnect models and the two heterogeneous-TEE data-transfer
//! protocols the paper compares (§3.3, §4.4):
//!
//! * [`link`] — PCIe 4.0 ×16 link and the per-channel AES engine whose
//!   8 GB/s bound serializes communication against computation in the
//!   baseline (Figure 7),
//! * [`protocol`] — the Graviton-like staging protocol
//!   (decrypt → non-secure relay → re-encrypt) and TensorTEE's direct
//!   transfer (trusted metadata channel + direct ciphertext channel),
//! * [`channel`] — functional secure channels: metadata packets are
//!   MAC'd under the shared session key; ciphertext crosses the bus
//!   unmodified and snoopable-but-useless,
//! * [`schedule`] — the compute/transfer overlap scheduler behind
//!   Figures 7 and 15,
//! * [`ring`] — the secure ring all-reduce that extends the protocol
//!   split to N-way data-parallel gradient aggregation across NPU TEEs,
//! * [`des`] — the shared-fabric contention resource
//!   ([`des::FabricLink`]) the discrete-event cluster engine uses to
//!   arbitrate overlapping ring hops, broadcasts and boundary
//!   activations.

pub mod channel;
pub mod des;
pub mod link;
pub mod protocol;
pub mod ring;
pub mod schedule;

pub use channel::{ChannelError, DirectChannel, TransferMeta, TrustedChannel};
pub use des::{FabricGrant, FabricLink};
pub use link::{AesEngine, PcieLink};
pub use protocol::{DirectProtocol, StagingProtocol, TransferBreakdown};
pub use ring::{AllReduceBreakdown, HopCost, Interconnect, RingAllReduce};
pub use schedule::{exposed_time, overlapped_time, serialized_time, Timeline};
