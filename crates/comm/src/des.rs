//! Shared-fabric contention for the discrete-event cluster engine.
//!
//! The analytic collective ([`crate::ring`]) assumes its hops have the
//! interconnect to themselves; under pipeline parallelism (or any
//! overlapping collectives) that stops being true — boundary activations,
//! ring chunks and weight broadcasts compete for the same links. A
//! [`FabricLink`] is the DES-side resource that makes that competition
//! explicit: occupancy requests serialize in arrival order, and the link
//! keeps ledgers of busy time and queueing (contention) time so reports
//! can show *where* fabric time went.
//!
//! Unlike [`tee_sim::BandwidthResource`] (which prices bytes), a
//! `FabricLink` arbitrates pre-priced durations: the caller prices a hop
//! with the exact protocol numbers (e.g. [`crate::ring::HopCost`]) and
//! the link only decides *when* that duration gets the wire. Keeping
//! pricing and arbitration separate is what lets a contention-free DES
//! run reproduce the analytic fold bit-for-bit.

use serde::Serialize;
use tee_sim::probe::SharedProbe;
use tee_sim::Time;

/// Outcome of one [`FabricLink::occupy`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FabricGrant {
    /// When the transfer actually started (`>= at` requested).
    pub start: Time,
    /// When the transfer finishes and the fabric frees.
    pub end: Time,
    /// Time spent queued behind earlier occupants (`start − at`).
    pub queued: Time,
}

/// One direction of a shared interconnect, arbitrated in arrival order.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FabricLink {
    busy_until: Time,
    last_request: Time,
    contention: Time,
    occupied: Time,
    grants: u64,
    probe: SharedProbe,
}

impl FabricLink {
    /// A free fabric at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an observability probe: each grant emits a `fabric_xfer`
    /// span on the `link` track covering `[start, end]`, plus grant and
    /// queued-time counters. Grants are facts the arbitration already
    /// decided, so recording them cannot change any outcome.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe = probe;
    }

    /// Requests the fabric for `duration` starting no earlier than `at`;
    /// the transfer queues behind any current occupant.
    ///
    /// # Panics
    ///
    /// Panics if requests arrive out of time order (`at` decreasing) —
    /// the DES dispatches events in time order, so that is a caller bug.
    pub fn occupy(&mut self, at: Time, duration: Time) -> FabricGrant {
        assert!(
            at >= self.last_request,
            "fabric request at {at} is before an earlier request at {}",
            self.last_request
        );
        self.last_request = at;
        let start = at.max(self.busy_until);
        let queued = start.saturating_sub(at);
        let end = start + duration;
        self.busy_until = end;
        self.contention += queued;
        self.occupied += duration;
        self.grants += 1;
        if self.probe.enabled() {
            self.probe.span("link", "fabric_xfer", start, end);
            self.probe.count("link.grants", 1);
            if queued > Time::ZERO {
                self.probe.count("link.grant_queued_ps", queued.as_ps());
            }
        }
        FabricGrant { start, end, queued }
    }

    /// When the fabric next frees.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Total time requests spent queued behind earlier occupants.
    pub fn contention(&self) -> Time {
        self.contention
    }

    /// Total time the fabric spent transferring.
    pub fn occupied(&self) -> Time {
        self.occupied
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_requests_never_queue() {
        let mut fabric = FabricLink::new();
        let a = fabric.occupy(Time::from_ns(0), Time::from_ns(10));
        let b = fabric.occupy(Time::from_ns(10), Time::from_ns(5));
        let c = fabric.occupy(Time::from_ns(100), Time::from_ns(5));
        assert_eq!((a.start, a.end), (Time::from_ns(0), Time::from_ns(10)));
        assert_eq!((b.start, b.end), (Time::from_ns(10), Time::from_ns(15)));
        assert_eq!((c.start, c.end), (Time::from_ns(100), Time::from_ns(105)));
        assert_eq!(fabric.contention(), Time::ZERO);
        assert_eq!(fabric.occupied(), Time::from_ns(20));
        assert_eq!(fabric.grants(), 3);
    }

    #[test]
    fn overlapping_requests_serialize_and_count_contention() {
        let mut fabric = FabricLink::new();
        fabric.occupy(Time::from_ns(0), Time::from_ns(100));
        let late = fabric.occupy(Time::from_ns(30), Time::from_ns(50));
        assert_eq!(late.start, Time::from_ns(100));
        assert_eq!(late.end, Time::from_ns(150));
        assert_eq!(late.queued, Time::from_ns(70));
        assert_eq!(fabric.contention(), Time::from_ns(70));
        assert_eq!(fabric.busy_until(), Time::from_ns(150));
    }

    #[test]
    fn queue_builds_up_across_many_requests() {
        let mut fabric = FabricLink::new();
        for _ in 0..4 {
            fabric.occupy(Time::ZERO, Time::from_ns(10));
        }
        // 0 + 10 + 20 + 30 queued respectively.
        assert_eq!(fabric.contention(), Time::from_ns(60));
        assert_eq!(fabric.busy_until(), Time::from_ns(40));
    }

    #[test]
    fn probed_grants_emit_spans_without_changing_grants() {
        let run = |probe: Option<SharedProbe>| {
            let mut fabric = FabricLink::new();
            if let Some(p) = probe {
                fabric.set_probe(p);
            }
            let a = fabric.occupy(Time::ZERO, Time::from_ns(100));
            let b = fabric.occupy(Time::from_ns(30), Time::from_ns(50));
            (a, b, fabric.contention(), fabric.occupied())
        };
        let recorder = SharedProbe::recording();
        assert_eq!(run(None), run(Some(recorder.clone())));
        let snap = recorder.snapshot().expect("recording");
        assert_eq!(snap.metrics().get("link.grants"), 2);
        assert_eq!(
            snap.metrics().get("link.grant_queued_ps"),
            Time::from_ns(70).as_ps()
        );
        assert_eq!(snap.events().len(), 2);
        assert!(snap.events().iter().all(|e| e.track() == "link"));
    }

    #[test]
    #[should_panic(expected = "before an earlier request")]
    fn out_of_order_requests_rejected() {
        let mut fabric = FabricLink::new();
        fabric.occupy(Time::from_ns(10), Time::from_ns(1));
        fabric.occupy(Time::from_ns(5), Time::from_ns(1));
    }
}
