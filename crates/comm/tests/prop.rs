//! Property-based tests for the interconnect models and secure channels.

use proptest::prelude::*;
use tee_comm::channel::{TransferMeta, TrustedChannel};
use tee_comm::protocol::{DirectProtocol, StagingProtocol};
use tee_comm::schedule::{overlapped_time, serialized_time};
use tee_crypto::mac::MacTag;
use tee_crypto::Key;
use tee_sim::Time;

proptest! {
    // Shared CI configuration: deterministic per-test seeds, bounded case
    // count, both overridable via PROPTEST_CASES / PROPTEST_RNG_SEED when
    // replaying a regression (see proptest-regressions/README.md).
    #![proptest_config(ProptestConfig::ci())]
    /// Sealed metadata round-trips for any content and sequence number.
    #[test]
    fn seal_open_round_trip(seed in any::<u64>(), base in any::<u64>(),
                            bytes in any::<u64>(), vn in any::<u64>(),
                            mac in any::<u64>(), seq in any::<u64>()) {
        let key = Key::from_seed(seed);
        let tx = TrustedChannel::new(key);
        let rx = TrustedChannel::new(key);
        let meta = TransferMeta { base, bytes, vn, mac: MacTag::from_raw(mac) };
        prop_assert_eq!(rx.open(&tx.seal(&meta, seq), seq).unwrap(), meta);
    }

    /// Any single-byte tamper of a sealed packet is rejected.
    #[test]
    fn sealed_packet_tamper_rejected(seed in any::<u64>(),
                                     offset in 0usize..32, flip in 1u8..=255) {
        let key = Key::from_seed(seed);
        let ch = TrustedChannel::new(key);
        let meta = TransferMeta { base: 1, bytes: 2, vn: 3, mac: MacTag::from_raw(4) };
        let mut sealed = ch.seal(&meta, 0);
        sealed.tamper(offset, flip);
        prop_assert!(ch.open(&sealed, 0).is_err());
    }

    /// The staging protocol is never faster than the direct protocol for
    /// the same payload, and both scale monotonically with bytes.
    #[test]
    fn staging_never_beats_direct(bytes in 64u64..(1 << 30)) {
        let staged = StagingProtocol::new().transfer(Time::ZERO, bytes).total();
        let direct = DirectProtocol::new().transfer(Time::ZERO, bytes).total();
        prop_assert!(staged >= direct);
        let bigger = DirectProtocol::new().transfer(Time::ZERO, bytes * 2).total();
        prop_assert!(bigger >= direct);
    }

    /// Overlap never loses to serialization and is bounded below by each
    /// component.
    #[test]
    fn overlap_bounds(c_ns in 0u64..1_000_000, x_ns in 0u64..1_000_000) {
        let c = Time::from_ns(c_ns);
        let x = Time::from_ns(x_ns);
        let ser = serialized_time(c, x);
        let ovl = overlapped_time(c, x);
        prop_assert!(ovl <= ser);
        prop_assert!(ovl >= c);
        prop_assert!(ovl >= x);
    }

    /// The staged breakdown components are all non-negative and dominated
    /// by crypto for single-engine bandwidth.
    #[test]
    fn staged_breakdown_consistent(mb in 1u64..512) {
        let b = StagingProtocol::new().transfer(Time::ZERO, mb << 20);
        prop_assert!(b.re_encryption > Time::ZERO);
        prop_assert!(b.decryption > Time::ZERO);
        prop_assert!(b.comm > Time::ZERO);
        prop_assert_eq!(b.total(), b.re_encryption + b.comm + b.decryption);
        // Two AES passes at 8 GB/s vs one PCIe pass at 32 GB/s.
        prop_assert!(b.re_encryption > b.comm);
    }
}
