//! The Figure-4 tensor census: how many tensors the CPU-side optimizer
//! touches per model, and how large they are.
//!
//! "The tensor sizes grow to MBytes, but the growth rate of tensor numbers
//! is slow, reaching only a few hundred" — the property that makes
//! tensor-granularity metadata viable on-chip (512 Meta Table entries).

use crate::zoo::ModelConfig;
use serde::Serialize;

/// One named parameter tensor (fp32 master copy on the CPU).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TensorInfo {
    /// Diagnostic name ("layer3.mlp.fc1").
    pub name: String,
    /// fp32 bytes.
    pub bytes: u64,
}

/// The census result for one model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TensorCensus {
    /// Model name.
    pub model: &'static str,
    /// Every parameter tensor.
    pub tensors: Vec<TensorInfo>,
}

impl TensorCensus {
    /// Enumerates the parameter tensors of a transformer stack: per layer
    /// QKV, attention-out, two MLP matrices, two layer-norms and biases.
    /// Embeddings stay on the NPU (ZeRO-Offload keeps them with the
    /// compute) and are excluded, as in Figure 4.
    pub fn of(model: &ModelConfig) -> Self {
        let h = model.hidden;
        let f = 4; // fp32
        let mut tensors = Vec::new();
        for l in 0..model.layers {
            let mut push = |suffix: &str, bytes: u64| {
                tensors.push(TensorInfo {
                    name: format!("layer{l}.{suffix}"),
                    bytes,
                });
            };
            push("attn.qkv", h * 3 * h * f);
            push("attn.out", h * h * f);
            push("mlp.fc1", h * 4 * h * f);
            push("mlp.fc2", 4 * h * h * f);
            push("ln1", 2 * h * f);
            push("ln2", 2 * h * f);
            push("attn.bias", (3 * h + h) * f);
            push("mlp.bias", (4 * h + h) * f);
        }
        tensors.push(TensorInfo {
            name: "final_ln".into(),
            bytes: 2 * h * f,
        });
        TensorCensus {
            model: model.name,
            tensors,
        }
    }

    /// Tensor count (Figure 4 left axis).
    pub fn count(&self) -> usize {
        self.tensors.len()
    }

    /// Largest tensor in bytes (Figure 4 right axis).
    pub fn max_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.bytes).max().unwrap_or(0)
    }

    /// Total fp32 parameter bytes (one of the four Adam streams).
    pub fn total_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.bytes).sum()
    }

    /// The per-tensor sizes, for building an Adam workload.
    pub fn sizes(&self) -> Vec<u64> {
        self.tensors.iter().map(|t| t.bytes).collect()
    }

    /// A proportionally scaled census (for fast benches): sizes divided by
    /// `factor`, count preserved. Tensors are clamped to at least 4 KiB
    /// (64 cachelines) so that scaled tensors keep a *tensor-like* shape —
    /// the stream detection and update-round mechanics of TenAnalyzer are
    /// meaningless on single-line tensors.
    pub fn scaled(&self, factor: u64) -> TensorCensus {
        TensorCensus {
            model: self.model,
            tensors: self
                .tensors
                .iter()
                .map(|t| TensorInfo {
                    name: t.name.clone(),
                    bytes: (t.bytes / factor).max(4096),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{by_name, TABLE2};

    #[test]
    fn counts_are_few_hundred() {
        for m in TABLE2 {
            let c = TensorCensus::of(&m);
            assert!(
                (90..=400).contains(&c.count()),
                "{}: {} tensors",
                m.name,
                c.count()
            );
        }
    }

    #[test]
    fn sizes_reach_megabytes() {
        let big = TensorCensus::of(&by_name("LLAMA2-7B").unwrap());
        assert!(
            big.max_bytes() > 100 << 20,
            "large models have 100MB+ tensors"
        );
        let small = TensorCensus::of(&by_name("GPT").unwrap());
        assert!(small.max_bytes() > 1 << 20);
        assert!(small.max_bytes() < big.max_bytes());
    }

    #[test]
    fn totals_track_params() {
        let m = by_name("GPT2-M").unwrap();
        let c = TensorCensus::of(&m);
        // Census covers the 12·L·H² transformer weights (no embeddings).
        let expected = 12 * m.layers * m.hidden * m.hidden * 4;
        let total = c.total_bytes();
        assert!(
            total as f64 / expected as f64 > 0.99 && total < expected * 2,
            "census {total} vs 12LH² {expected}"
        );
    }

    #[test]
    fn scaled_preserves_count() {
        let c = TensorCensus::of(&by_name("GPT").unwrap());
        let s = c.scaled(1024);
        assert_eq!(s.count(), c.count());
        assert!(s.max_bytes() <= c.max_bytes() / 1024 + 4096);
        assert!(s.sizes().iter().all(|&b| b >= 4096));
    }
}
