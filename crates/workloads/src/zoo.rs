//! The Table-2 model zoo.

use serde::Serialize;

/// Vocabulary size used for embedding accounting (GPT-2 BPE).
pub const VOCAB: u64 = 50_257;

/// One evaluated model (a row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Nominal parameter count as printed in Table 2.
    pub nominal_params: u64,
    /// Batch size used in the paper's evaluation (Table 2).
    pub batch_size: u64,
    /// Transformer layer count.
    pub layers: u64,
    /// Hidden dimension.
    pub hidden: u64,
    /// Sequence length.
    pub seq_len: u64,
}

impl ModelConfig {
    /// Transformer-block parameters: ~12·L·H² (QKV, attention out, two MLP
    /// matrices) plus embeddings.
    pub fn params(&self) -> u64 {
        12 * self.layers * self.hidden * self.hidden + VOCAB * self.hidden
    }

    /// fp32 gradient bytes communicated NPU→CPU per step (Figure 1).
    pub fn grad_bytes(&self) -> u64 {
        self.params() * 4
    }

    /// fp16 weight bytes communicated CPU→NPU per step (Figure 1).
    pub fn weight_bytes(&self) -> u64 {
        self.params() * 2
    }

    /// Tokens processed per step.
    pub fn tokens_per_step(&self) -> u64 {
        self.batch_size * self.seq_len
    }
}

/// The twelve models of Table 2, in paper order.
pub const TABLE2: [ModelConfig; 12] = [
    ModelConfig {
        name: "GPT",
        nominal_params: 117_000_000,
        batch_size: 60,
        layers: 12,
        hidden: 768,
        seq_len: 1024,
    },
    ModelConfig {
        name: "GPT2-M",
        nominal_params: 345_000_000,
        batch_size: 22,
        layers: 24,
        hidden: 1024,
        seq_len: 1024,
    },
    ModelConfig {
        name: "Roberta-L",
        nominal_params: 355_000_000,
        batch_size: 22,
        layers: 24,
        hidden: 1024,
        seq_len: 512,
    },
    ModelConfig {
        name: "BLOOM",
        nominal_params: 560_000_000,
        batch_size: 21,
        layers: 24,
        hidden: 1024,
        seq_len: 2048,
    },
    ModelConfig {
        name: "GPT2-L",
        nominal_params: 774_000_000,
        batch_size: 11,
        layers: 36,
        hidden: 1280,
        seq_len: 1024,
    },
    ModelConfig {
        name: "BLOOM-800M",
        nominal_params: 800_000_000,
        batch_size: 17,
        layers: 24,
        hidden: 1536,
        seq_len: 2048,
    },
    ModelConfig {
        name: "OPT-1.3B",
        nominal_params: 1_300_000_000,
        batch_size: 10,
        layers: 24,
        hidden: 2048,
        seq_len: 2048,
    },
    ModelConfig {
        name: "GPT2-XL",
        nominal_params: 1_600_000_000,
        batch_size: 6,
        layers: 48,
        hidden: 1600,
        seq_len: 1024,
    },
    ModelConfig {
        name: "OPT-2.7B",
        nominal_params: 2_800_000_000,
        batch_size: 6,
        layers: 32,
        hidden: 2560,
        seq_len: 2048,
    },
    ModelConfig {
        name: "XGLM-4.5B",
        nominal_params: 4_500_000_000,
        batch_size: 3,
        layers: 48,
        hidden: 2816,
        seq_len: 2048,
    },
    ModelConfig {
        name: "LLAMA2-7B",
        nominal_params: 6_700_000_000,
        batch_size: 2,
        layers: 32,
        hidden: 4096,
        seq_len: 4096,
    },
    ModelConfig {
        name: "OPT-6.7B",
        nominal_params: 6_700_000_000,
        batch_size: 2,
        layers: 32,
        hidden: 4096,
        seq_len: 2048,
    },
];

/// Looks a model up by name.
pub fn by_name(name: &str) -> Option<ModelConfig> {
    TABLE2.iter().copied().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_models_in_order() {
        assert_eq!(TABLE2.len(), 12);
        assert_eq!(TABLE2[0].name, "GPT");
        assert_eq!(TABLE2[11].name, "OPT-6.7B");
        // Nominal sizes ascend (paper ordering).
        for w in TABLE2.windows(2) {
            assert!(w[0].nominal_params <= w[1].nominal_params);
        }
    }

    #[test]
    fn param_formula_near_nominal() {
        for m in TABLE2 {
            let p = m.params() as f64;
            let nominal = m.nominal_params as f64;
            let ratio = p / nominal;
            assert!(
                (0.6..1.6).contains(&ratio),
                "{}: computed {p:.2e} vs nominal {nominal:.2e}",
                m.name
            );
        }
    }

    #[test]
    fn batch_sizes_match_table2() {
        assert_eq!(by_name("GPT").unwrap().batch_size, 60);
        assert_eq!(by_name("GPT2-M").unwrap().batch_size, 22);
        assert_eq!(by_name("XGLM-4.5B").unwrap().batch_size, 3);
        assert_eq!(by_name("OPT-6.7B").unwrap().batch_size, 2);
    }

    #[test]
    fn comm_volumes() {
        let m = by_name("GPT2-M").unwrap();
        assert_eq!(m.grad_bytes(), m.params() * 4);
        assert_eq!(m.weight_bytes(), m.params() * 2);
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(by_name("GPT-5").is_none());
    }

    #[test]
    fn by_name_resolves_every_table2_entry() {
        for m in TABLE2 {
            assert_eq!(by_name(m.name), Some(m), "{} must round-trip", m.name);
        }
    }

    #[test]
    fn by_name_is_exact_match_only() {
        // Case, whitespace and prefix variants must all be rejected: the
        // lookup feeds experiment selection, where a silent fuzzy match
        // would run the wrong Table-2 row.
        for bad in ["gpt", "GPT ", " GPT", "GPT2", "OPT", "LLAMA2-7b", ""] {
            assert!(by_name(bad).is_none(), "{bad:?} must not resolve");
        }
    }

    #[test]
    fn table2_names_are_unique() {
        for (i, a) in TABLE2.iter().enumerate() {
            for b in TABLE2.iter().skip(i + 1) {
                assert_ne!(a.name, b.name, "duplicate Table-2 name");
            }
        }
    }

    #[test]
    fn every_workload_layer_shapes_consistent() {
        use crate::layers::{total_bytes, total_macs, training_step, LayerKind};

        for m in TABLE2 {
            let step = training_step(&m);
            // Forward (6 specs) + backward (6 specs) per transformer block.
            assert_eq!(step.len() as u64, m.layers * 12, "{}", m.name);
            assert!(total_macs(&step) > 0, "{}", m.name);
            assert!(total_bytes(&step) > 0, "{}", m.name);

            for (i, l) in step.iter().enumerate() {
                assert!(l.macs > 0, "{} layer {i}: zero MACs", m.name);
                assert!(
                    l.in_bytes > 0 && l.out_bytes > 0,
                    "{} layer {i}: zero activation traffic",
                    m.name
                );
                match l.kind {
                    // gemm(m, k, n): in = 2mk, w = 2kn, out = 2mn, macs = mkn
                    // ⇒ in·w·out = 8·macs², an invariant of any well-formed
                    // GEMM spec regardless of the (m, k, n) split.
                    LayerKind::Gemm => {
                        assert!(l.w_bytes > 0, "{} layer {i}: GEMM without weights", m.name);
                        let lhs = l.in_bytes as u128 * l.w_bytes as u128 * l.out_bytes as u128;
                        let rhs = 8 * (l.macs as u128) * (l.macs as u128);
                        assert_eq!(lhs, rhs, "{} layer {i}: inconsistent GEMM shape", m.name);
                    }
                    // Attention and element-wise specs stream activations
                    // only; weights would double-count the QKV projections.
                    LayerKind::Attention | LayerKind::Elementwise => {
                        assert_eq!(l.w_bytes, 0, "{} layer {i}: unexpected weights", m.name);
                    }
                }
            }
        }
    }
}
