//! # tee-workloads
//!
//! LLM training workloads for the evaluation study (§5.2, §6.1):
//!
//! * [`zoo`] — the twelve Table-2 models (GPT 117M … OPT-6.7B) with their
//!   batch sizes and architectural shapes,
//! * [`census`] — the Figure-4 tensor census (optimizer-state tensor
//!   counts and sizes per model) that motivates tensor-granularity
//!   protection in §2.3,
//! * [`layers`] — per-step NPU layer specifications (forward + backward
//!   GEMMs and element-wise work),
//! * [`zero_offload`] — the ZeRO-Offload step schedule of Figure 1
//!   (NPU fwd/bwd → fp32 gradient transfer → CPU Adam → fp16 weight
//!   transfer), plus [`StepSchedule::data_parallel_replica`] — the N-way
//!   data-parallel variant whose gradients aggregate over the secure ring
//!   all-reduce in `tee-comm`.

pub mod census;
pub mod layers;
pub mod zero_offload;
pub mod zoo;

pub use census::TensorCensus;
pub use layers::LayerSpec;
pub use zero_offload::StepSchedule;
pub use zoo::{ModelConfig, TABLE2};
