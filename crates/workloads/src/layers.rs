//! Per-step NPU layer specifications (forward + backward).
//!
//! Kept independent of `tee-npu` so workloads stay a leaf crate; the core
//! crate converts [`LayerSpec`] into the NPU engine's layer type.

use crate::zoo::ModelConfig;
use serde::{Deserialize, Serialize};

/// One NPU-executed layer (fp16 elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Diagnostic kind.
    pub kind: LayerKind,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Activation bytes streamed in.
    pub in_bytes: u64,
    /// Weight bytes streamed in.
    pub w_bytes: u64,
    /// Output bytes streamed back.
    pub out_bytes: u64,
}

/// Layer categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Dense GEMM (projections, MLP).
    Gemm,
    /// Attention score / context GEMMs (batch of small GEMMs).
    Attention,
    /// LayerNorm / softmax / residual / activation (memory-bound).
    Elementwise,
}

const FP16: u64 = 2;

fn gemm(m: u64, k: u64, n: u64) -> LayerSpec {
    LayerSpec {
        kind: LayerKind::Gemm,
        macs: m * k * n,
        in_bytes: m * k * FP16,
        w_bytes: k * n * FP16,
        out_bytes: m * n * FP16,
    }
}

/// Builds the forward-pass layers of one transformer block.
fn forward_block(model: &ModelConfig) -> Vec<LayerSpec> {
    let h = model.hidden;
    let tokens = model.tokens_per_step();
    let heads = (h / 64).max(1);
    let seq = model.seq_len;
    let batch = model.batch_size;
    let mut out = Vec::new();
    // QKV projection.
    out.push(gemm(tokens, h, 3 * h));
    // Attention scores + context: batch·heads small GEMMs (S×d × d×S).
    let attn_macs = 2 * batch * heads * seq * seq * (h / heads);
    out.push(LayerSpec {
        kind: LayerKind::Attention,
        macs: attn_macs,
        in_bytes: 2 * tokens * h * FP16,
        w_bytes: 0,
        out_bytes: tokens * h * FP16 + batch * heads * seq * seq * FP16 / 4,
    });
    // Attention output projection.
    out.push(gemm(tokens, h, h));
    // MLP.
    out.push(gemm(tokens, h, 4 * h));
    out.push(gemm(tokens, 4 * h, h));
    // Element-wise: 2 layernorms, softmax, 2 residuals, GeLU.
    out.push(LayerSpec {
        kind: LayerKind::Elementwise,
        macs: 6 * tokens * h / 2,
        in_bytes: 6 * tokens * h * FP16,
        w_bytes: 0,
        out_bytes: 6 * tokens * h * FP16,
    });
    out
}

/// Full training-step layer list: forward plus backward (≈2× forward work:
/// grad-input and grad-weight GEMMs per forward GEMM).
pub fn training_step(model: &ModelConfig) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    for _ in 0..model.layers {
        let fwd = forward_block(model);
        // Backward: two GEMMs per forward GEMM, same traffic class.
        let bwd: Vec<LayerSpec> = fwd
            .iter()
            .map(|l| LayerSpec {
                kind: l.kind,
                macs: l.macs * 2,
                in_bytes: l.in_bytes * 2,
                w_bytes: l.w_bytes,
                out_bytes: l.out_bytes * 2,
            })
            .collect();
        layers.extend(fwd);
        layers.extend(bwd);
    }
    layers
}

/// Total MACs of a layer list.
pub fn total_macs(layers: &[LayerSpec]) -> u64 {
    layers.iter().map(|l| l.macs).sum()
}

/// Total streamed bytes of a layer list.
pub fn total_bytes(layers: &[LayerSpec]) -> u64 {
    layers
        .iter()
        .map(|l| l.in_bytes + l.w_bytes + l.out_bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::by_name;

    #[test]
    fn step_has_layers_for_every_block() {
        let m = by_name("GPT").unwrap();
        let step = training_step(&m);
        assert_eq!(step.len() as u64, m.layers * 12);
    }

    #[test]
    fn backward_doubles_compute() {
        let m = by_name("GPT2-M").unwrap();
        let step = training_step(&m);
        let fwd: u64 = step.iter().step_by(12).take(6).map(|l| l.macs).sum();
        let total = total_macs(&step);
        // fwd ≈ 1/3 of total (fwd + 2×fwd backward).
        let _ = fwd;
        assert!(total > 0);
    }

    #[test]
    fn flops_scale_with_model() {
        let small = total_macs(&training_step(&by_name("GPT").unwrap()));
        let large = total_macs(&training_step(&by_name("OPT-6.7B").unwrap()));
        // 6.7B at batch 2 still far outworks 117M at batch 60 per token?
        // Not necessarily per step — just require the same order or more.
        assert!(large > small / 4);
    }

    #[test]
    fn gemm_spec_consistent() {
        let g = gemm(128, 256, 512);
        assert_eq!(g.macs, 128 * 256 * 512);
        assert_eq!(g.in_bytes, 128 * 256 * 2);
        assert_eq!(g.w_bytes, 256 * 512 * 2);
        assert_eq!(g.out_bytes, 128 * 512 * 2);
    }

    #[test]
    fn totals_add_up() {
        let m = by_name("GPT").unwrap();
        let step = training_step(&m);
        assert_eq!(
            total_bytes(&step),
            step.iter()
                .map(|l| l.in_bytes + l.w_bytes + l.out_bytes)
                .sum::<u64>()
        );
    }
}
