//! The ZeRO-Offload step schedule (Figure 1).
//!
//! One training step:
//!
//! 1. NPU runs forward + backward (fp16),
//! 2. fp32 gradients stream NPU → CPU (overlappable with backward),
//! 3. CPU runs the Adam update on fp32 master weights + optimizer state,
//! 4. fp16 weights stream CPU → NPU (overlappable with the next forward).

use crate::census::TensorCensus;
use crate::layers::{training_step, LayerSpec};
use crate::zoo::ModelConfig;
use serde::Serialize;

/// Everything needed to simulate one training step of one model.
#[derive(Debug, Clone, Serialize)]
pub struct StepSchedule {
    /// The model.
    pub model: ModelConfig,
    /// NPU layer list (forward + backward).
    pub npu_layers: Vec<LayerSpec>,
    /// NPU → CPU gradient bytes (fp32).
    pub grad_bytes: u64,
    /// CPU-side Adam tensor sizes (fp32 parameter tensors; the kernel
    /// derives the g/m/v streams).
    pub adam_tensor_sizes: Vec<u64>,
    /// CPU → NPU weight bytes (fp16).
    pub weight_bytes: u64,
}

impl StepSchedule {
    /// Builds the full-size schedule for a model.
    pub fn of(model: &ModelConfig) -> Self {
        let census = TensorCensus::of(model);
        StepSchedule {
            model: *model,
            npu_layers: training_step(model),
            grad_bytes: model.grad_bytes(),
            adam_tensor_sizes: census.sizes(),
            weight_bytes: model.weight_bytes(),
        }
    }

    /// A proportionally scaled schedule for fast simulation: all byte
    /// volumes divided by `factor` (compute scales with them), preserving
    /// the phase *ratios* that determine the end-to-end breakdown.
    pub fn scaled(&self, factor: u64) -> StepSchedule {
        assert!(factor > 0, "scale factor must be positive");
        StepSchedule {
            model: self.model,
            npu_layers: self
                .npu_layers
                .iter()
                .map(|l| LayerSpec {
                    kind: l.kind,
                    macs: (l.macs / factor).max(1),
                    in_bytes: (l.in_bytes / factor).max(64),
                    w_bytes: if l.w_bytes == 0 {
                        0
                    } else {
                        (l.w_bytes / factor).max(64)
                    },
                    out_bytes: (l.out_bytes / factor).max(64),
                })
                .collect(),
            grad_bytes: (self.grad_bytes / factor).max(64),
            adam_tensor_sizes: TensorCensus {
                model: self.model.name,
                tensors: self
                    .adam_tensor_sizes
                    .iter()
                    .map(|&b| crate::census::TensorInfo {
                        name: String::new(),
                        bytes: b,
                    })
                    .collect(),
            }
            .scaled(factor)
            .sizes(),
            weight_bytes: (self.weight_bytes / factor).max(64),
        }
    }

    /// Total CPU fp32 bytes touched by Adam (4 streams: w, g, m, v).
    pub fn adam_bytes(&self) -> u64 {
        self.adam_tensor_sizes.iter().sum::<u64>() * 4
    }

    /// The per-replica schedule for `n_npus`-way data parallelism.
    ///
    /// Data parallelism splits the *global batch* across replicas, so the
    /// batch-dependent quantities shrink by `n_npus` — layer MACs and
    /// activation bytes (inputs/outputs of forward and backward) — while
    /// the model-dependent quantities stay full-size on every replica:
    /// layer weights, the fp32 gradient buffer (now produced by the ring
    /// all-reduce rather than a single backward), the CPU optimizer
    /// state, and the fp16 weight update.
    ///
    /// `n_npus == 1` returns an exact clone, so a one-replica cluster
    /// reproduces the single-NPU schedule bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `n_npus` is zero.
    pub fn data_parallel_replica(&self, n_npus: u32) -> StepSchedule {
        assert!(n_npus > 0, "a cluster needs at least one replica");
        if n_npus == 1 {
            return self.clone();
        }
        let n = u64::from(n_npus);
        StepSchedule {
            model: self.model,
            npu_layers: self
                .npu_layers
                .iter()
                .map(|l| LayerSpec {
                    kind: l.kind,
                    macs: (l.macs / n).max(1),
                    in_bytes: (l.in_bytes / n).max(64),
                    w_bytes: l.w_bytes,
                    out_bytes: (l.out_bytes / n).max(64),
                })
                .collect(),
            grad_bytes: self.grad_bytes,
            adam_tensor_sizes: self.adam_tensor_sizes.clone(),
            weight_bytes: self.weight_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::by_name;

    #[test]
    fn schedule_is_complete() {
        let m = by_name("GPT2-M").unwrap();
        let s = StepSchedule::of(&m);
        assert!(!s.npu_layers.is_empty());
        assert!(!s.adam_tensor_sizes.is_empty());
        assert_eq!(s.grad_bytes, m.grad_bytes());
        assert_eq!(s.weight_bytes, m.weight_bytes());
    }

    #[test]
    fn scaled_preserves_structure() {
        let s = StepSchedule::of(&by_name("GPT").unwrap());
        let t = s.scaled(4096);
        assert_eq!(t.npu_layers.len(), s.npu_layers.len());
        assert_eq!(t.adam_tensor_sizes.len(), s.adam_tensor_sizes.len());
        assert!(t.grad_bytes <= s.grad_bytes / 4096 + 64);
        assert!(t.adam_bytes() < s.adam_bytes());
    }

    #[test]
    fn adam_bytes_counts_four_streams() {
        let s = StepSchedule::of(&by_name("GPT").unwrap());
        let params: u64 = s.adam_tensor_sizes.iter().sum();
        assert_eq!(s.adam_bytes(), params * 4);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let s = StepSchedule::of(&by_name("GPT").unwrap());
        let _ = s.scaled(0);
    }

    #[test]
    fn replica_of_one_is_identity() {
        let s = StepSchedule::of(&by_name("GPT2-M").unwrap());
        let r = s.data_parallel_replica(1);
        assert_eq!(r.npu_layers, s.npu_layers);
        assert_eq!(r.grad_bytes, s.grad_bytes);
        assert_eq!(r.adam_tensor_sizes, s.adam_tensor_sizes);
        assert_eq!(r.weight_bytes, s.weight_bytes);
    }

    #[test]
    fn replica_splits_batch_keeps_model() {
        let s = StepSchedule::of(&by_name("GPT2-M").unwrap());
        let r = s.data_parallel_replica(4);
        assert_eq!(r.npu_layers.len(), s.npu_layers.len());
        for (a, b) in r.npu_layers.iter().zip(&s.npu_layers) {
            assert!(a.macs <= b.macs / 4 + 1, "MACs split across replicas");
            assert_eq!(a.w_bytes, b.w_bytes, "weights replicated");
        }
        // Model-size quantities are untouched.
        assert_eq!(r.grad_bytes, s.grad_bytes);
        assert_eq!(r.weight_bytes, s.weight_bytes);
        assert_eq!(r.adam_bytes(), s.adam_bytes());
    }

    #[test]
    #[should_panic]
    fn zero_replicas_rejected() {
        let s = StepSchedule::of(&by_name("GPT").unwrap());
        let _ = s.data_parallel_replica(0);
    }
}
