//! Property tests over the exploration engine: Pareto-frontier
//! invariants (no frontier point is dominated by *any* sampled point,
//! membership is invariant under point-order shuffles) and executor
//! determinism across worker-thread counts.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_explore::{dominates, pareto_frontier, Executor, Knob, Sense, Space};
use tee_sim::SplitMix64;

const SENSES: [Sense; 3] = [Sense::Maximize, Sense::Minimize, Sense::Minimize];

/// Deterministic pseudo-random objective vectors: a seeded stand-in for
/// "whatever a sweep might have priced". Coarse quantization produces
/// plenty of exact ties, exercising the tie-keeping rule.
fn objectives(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            (0..SENSES.len())
                .map(|_| (rng.next_below(50) as f64) / 5.0)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::ci())]

    /// No frontier point is dominated by any sampled point, and every
    /// non-frontier point is dominated by someone.
    #[test]
    fn frontier_points_are_exactly_the_non_dominated(seed in any::<u64>(), n in 1usize..60) {
        let objs = objectives(seed, n);
        let frontier = pareto_frontier(&objs, &SENSES);
        prop_assert!(!frontier.is_empty(), "a non-empty set has a frontier");
        for (i, obj) in objs.iter().enumerate() {
            let on_frontier = frontier.contains(&i);
            let dominated = objs.iter().any(|other| dominates(other, obj, &SENSES));
            prop_assert_eq!(on_frontier, !dominated, "point {}", i);
        }
    }

    /// Shuffling the sampled points permutes frontier indices but never
    /// changes which objective vectors are on the frontier.
    #[test]
    fn frontier_is_invariant_under_point_order(seed in any::<u64>(), n in 1usize..60,
                                               shuffle_seed in any::<u64>()) {
        let objs = objectives(seed, n);
        let mut order: Vec<usize> = (0..n).collect();
        SplitMix64::new(shuffle_seed).shuffle(&mut order);
        let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| objs[i].clone()).collect();

        let baseline = pareto_frontier(&objs, &SENSES);
        let after = pareto_frontier(&shuffled, &SENSES);
        // Map the shuffled frontier back to original indices and compare
        // as sets.
        let mut mapped: Vec<usize> = after.iter().map(|&i| order[i]).collect();
        mapped.sort_unstable();
        prop_assert_eq!(mapped, baseline);
    }

    /// The executor returns bit-identical results for 1 vs. 4 worker
    /// threads, for any seed and point budget — the invariant behind
    /// `tensortee explore --threads`.
    #[test]
    fn executor_is_thread_count_invariant(seed in any::<u64>(), n in 1usize..40,
                                          levels in vec(2usize..5, 1..4)) {
        let space = Space::new(
            levels
                .iter()
                .map(|&l| Knob::numeric("k", (0..l).map(|v| v as f64)))
                .collect(),
        );
        let points = space.sample(n, seed);
        let eval = |i: usize, p: &tee_explore::Point, mut rng: SplitMix64| {
            // Mix the point's decoded values with a point-dependent
            // number of private draws, as a real evaluator would.
            let mut acc = 0.0;
            for k in 0..space.knobs().len() {
                acc = acc * 7.0 + space.value(p, k);
            }
            for _ in 0..=(i % 3) {
                acc += rng.next_f64();
            }
            acc.to_bits()
        };
        let serial = Executor::new(1, seed).run(&points, &eval);
        let parallel = Executor::new(4, seed).run(&points, &eval);
        prop_assert_eq!(serial, parallel);
    }

    /// Sampling plans themselves are pure functions of `(n, seed)` —
    /// and every sampled point indexes valid levels.
    #[test]
    fn sampling_is_reproducible_and_in_bounds(seed in any::<u64>(), n in 1usize..50) {
        let space = Space::new(vec![
            Knob::numeric("a", [1.0, 2.0, 3.0, 4.0, 5.0]),
            Knob::numeric("b", [0.5, 1.0, 2.0]),
            Knob::numeric("c", [0.0, 1.0]),
        ]);
        for sampler in [Space::random, Space::latin_hypercube] {
            let pts = sampler(&space, n, seed);
            prop_assert_eq!(&pts, &sampler(&space, n, seed));
            for p in &pts {
                for (k, knob) in space.knobs().iter().enumerate() {
                    prop_assert!(p.level(k) < knob.len());
                }
            }
        }
    }
}
