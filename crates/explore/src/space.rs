//! Design spaces: named knobs with discrete levels, concrete points, and
//! deterministic sampling plans (full grid, seeded random, seeded Latin
//! hypercube).
//!
//! The engine is domain-agnostic: a [`Knob`] level carries a display
//! label and an `f64` value, and the *meaning* of each knob position is
//! decided by whoever builds the space and evaluates its points (the
//! `tensortee` core maps them onto system configurations). Every sampler
//! is a pure function of `(space, n, seed)`, so a sampling plan is
//! reproducible across runs, machines and worker-thread counts.

use serde::Serialize;
use tee_sim::SplitMix64;

/// One selectable setting of a knob: a display label plus the numeric
/// value the evaluator decodes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Level {
    /// Display label (`"GPT2-M"`, `"32 GB/s"`, …).
    pub label: String,
    /// The value the evaluator decodes (an index, a bandwidth, a factor).
    pub value: f64,
}

/// A named design-space dimension with its discrete levels.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Knob {
    /// Display name (`"model"`, `"PCIe GB/s"`, …).
    pub name: &'static str,
    /// The selectable levels, in presentation order.
    pub levels: Vec<Level>,
}

impl Knob {
    /// A knob whose labels are the values themselves.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn numeric(name: &'static str, values: impl IntoIterator<Item = f64>) -> Self {
        let levels: Vec<Level> = values
            .into_iter()
            .map(|v| Level {
                label: fmt_value(v),
                value: v,
            })
            .collect();
        assert!(!levels.is_empty(), "knob {name:?} needs at least one level");
        Knob { name, levels }
    }

    /// A knob with explicit `(label, value)` levels.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn labeled(
        name: &'static str,
        pairs: impl IntoIterator<Item = (impl Into<String>, f64)>,
    ) -> Self {
        let levels: Vec<Level> = pairs
            .into_iter()
            .map(|(label, value)| Level {
                label: label.into(),
                value,
            })
            .collect();
        assert!(!levels.is_empty(), "knob {name:?} needs at least one level");
        Knob { name, levels }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the knob has no levels (never true for a constructed knob).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// Formats a level value without trailing noise (`32`, `0.5`).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One concrete configuration: a level index per knob, in knob order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Point(Vec<usize>);

impl Point {
    /// The level indices, in knob order.
    pub fn levels(&self) -> &[usize] {
        &self.0
    }

    /// The level index of knob `knob`.
    pub fn level(&self, knob: usize) -> usize {
        self.0[knob]
    }
}

/// A design space: the cartesian product of its knobs' levels.
///
/// # Example
///
/// ```
/// use tee_explore::{Knob, Space};
/// let space = Space::new(vec![
///     Knob::numeric("pcie GB/s", [16.0, 32.0, 64.0]),
///     Knob::labeled("fabric", [("pcie", 0.0), ("nvlink", 1.0)]),
/// ]);
/// assert_eq!(space.size(), 6);
/// let points = space.sample(4, 42);
/// assert_eq!(points.len(), 4);
/// assert_eq!(points, space.sample(4, 42), "sampling is deterministic");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Space {
    knobs: Vec<Knob>,
}

impl Space {
    /// Creates a space.
    ///
    /// # Panics
    ///
    /// Panics if `knobs` is empty.
    pub fn new(knobs: Vec<Knob>) -> Self {
        assert!(!knobs.is_empty(), "a space needs at least one knob");
        Space { knobs }
    }

    /// The knobs, in order.
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Total number of points in the full grid (saturating).
    pub fn size(&self) -> u64 {
        self.knobs
            .iter()
            .fold(1u64, |acc, k| acc.saturating_mul(k.len() as u64))
    }

    /// The decoded value of knob `knob` at `point`.
    pub fn value(&self, point: &Point, knob: usize) -> f64 {
        self.knobs[knob].levels[point.level(knob)].value
    }

    /// The display label of knob `knob` at `point`.
    pub fn label(&self, point: &Point, knob: usize) -> &str {
        &self.knobs[knob].levels[point.level(knob)].label
    }

    /// Renders a point as `name=label` pairs (report tables).
    pub fn describe(&self, point: &Point) -> String {
        self.knobs
            .iter()
            .enumerate()
            .map(|(k, knob)| format!("{}={}", knob.name, self.label(point, k)))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The mid-level point (each knob at `len/2`) — the one-at-a-time
    /// sensitivity baseline.
    pub fn center(&self) -> Point {
        Point(self.knobs.iter().map(|k| k.len() / 2).collect())
    }

    /// Every point of the space, in mixed-radix order (last knob fastest).
    ///
    /// # Panics
    ///
    /// Panics if the space exceeds 2^22 points (use a sampler instead).
    pub fn grid(&self) -> Vec<Point> {
        let size = self.size();
        assert!(size <= 1 << 22, "grid over {size} points; sample instead");
        let mut points = Vec::with_capacity(size as usize);
        let mut current = vec![0usize; self.knobs.len()];
        loop {
            points.push(Point(current.clone()));
            // Increment the mixed-radix counter, last knob fastest.
            let mut k = self.knobs.len();
            loop {
                if k == 0 {
                    return points;
                }
                k -= 1;
                current[k] += 1;
                if current[k] < self.knobs[k].len() {
                    break;
                }
                current[k] = 0;
            }
        }
    }

    /// `n` distinct seeded uniform-random points (the whole grid when the
    /// space has at most `n` points).
    pub fn random(&self, n: usize, seed: u64) -> Vec<Point> {
        if self.size() <= n as u64 {
            return self.grid();
        }
        let mut rng = SplitMix64::new(seed).split(0);
        let mut seen = std::collections::BTreeSet::new();
        let mut points = Vec::with_capacity(n);
        // Rejection-sample distinct points; n < size guarantees progress.
        while points.len() < n {
            let p = Point(
                self.knobs
                    .iter()
                    .map(|k| rng.next_below(k.len() as u64) as usize)
                    .collect(),
            );
            if seen.insert(p.clone()) {
                points.push(p);
            }
        }
        points
    }

    /// `n` seeded Latin-hypercube points: each knob's levels are covered
    /// by an independently shuffled stratification, so every level of
    /// every knob appears `n/len` (±1) times — far better marginal
    /// coverage than uniform sampling at the same budget. Falls back to
    /// the full grid when the space has at most `n` points.
    pub fn latin_hypercube(&self, n: usize, seed: u64) -> Vec<Point> {
        if self.size() <= n as u64 {
            return self.grid();
        }
        let root = SplitMix64::new(seed);
        // Per-knob stratum permutation from a named sub-stream, so knob
        // order and count never perturb one another's draws.
        let columns: Vec<Vec<usize>> = self
            .knobs
            .iter()
            .enumerate()
            .map(|(k, knob)| {
                let mut strata: Vec<usize> = (0..n).collect();
                root.split(k as u64).shuffle(&mut strata);
                strata.into_iter().map(|s| s * knob.len() / n).collect()
            })
            .collect();
        (0..n)
            .map(|i| Point(columns.iter().map(|c| c[i]).collect()))
            .collect()
    }

    /// The default sampling plan: the full grid when it fits in `n`
    /// points, otherwise an `n`-point Latin hypercube.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Point> {
        if self.size() <= n as u64 {
            self.grid()
        } else {
            self.latin_hypercube(n, seed)
        }
    }

    /// The one-at-a-time sweep around `baseline`: the baseline first,
    /// then, knob by knob, every alternative level with all other knobs
    /// held at the baseline — the point set behind a tornado chart.
    pub fn one_at_a_time(&self, baseline: &Point) -> Vec<Point> {
        let mut points = vec![baseline.clone()];
        for (k, knob) in self.knobs.iter().enumerate() {
            for level in 0..knob.len() {
                if level == baseline.level(k) {
                    continue;
                }
                let mut levels = baseline.levels().to_vec();
                levels[k] = level;
                points.push(Point(levels));
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Space {
        Space::new(vec![
            Knob::numeric("a", [1.0, 2.0]),
            Knob::numeric("b", [0.5, 1.0, 2.0]),
            Knob::labeled("c", [("x", 0.0), ("y", 1.0)]),
        ])
    }

    #[test]
    fn grid_enumerates_the_product_once() {
        let s = demo();
        let g = s.grid();
        assert_eq!(g.len() as u64, s.size());
        assert_eq!(s.size(), 12);
        let mut sorted = g.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len(), "grid points are distinct");
        // Mixed-radix order: last knob fastest.
        assert_eq!(g[0].levels(), &[0, 0, 0]);
        assert_eq!(g[1].levels(), &[0, 0, 1]);
        assert_eq!(g[2].levels(), &[0, 1, 0]);
    }

    #[test]
    fn values_labels_and_describe() {
        let s = demo();
        let p = Point(vec![1, 2, 0]);
        assert_eq!(s.value(&p, 0), 2.0);
        assert_eq!(s.value(&p, 1), 2.0);
        assert_eq!(s.label(&p, 1), "2");
        assert_eq!(s.label(&p, 2), "x");
        assert_eq!(s.describe(&p), "a=2 b=2 c=x");
        assert_eq!(s.label(&Point(vec![0, 0, 0]), 1), "0.5");
    }

    #[test]
    fn samplers_are_deterministic_and_distinct_per_seed() {
        let s = demo();
        for sampler in [Space::random, Space::latin_hypercube] {
            let a = sampler(&s, 8, 42);
            let b = sampler(&s, 8, 42);
            assert_eq!(a, b);
            assert_eq!(a.len(), 8);
            assert_ne!(a, sampler(&s, 8, 43), "seed matters");
        }
    }

    #[test]
    fn random_points_are_distinct() {
        let s = demo();
        let mut pts = s.random(10, 7);
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn small_spaces_collapse_to_the_grid() {
        let s = demo();
        assert_eq!(s.sample(12, 1), s.grid());
        assert_eq!(s.random(100, 1), s.grid());
        assert_eq!(s.latin_hypercube(100, 1), s.grid());
        assert_eq!(s.sample(6, 1).len(), 6, "over-full space is sampled");
    }

    #[test]
    fn latin_hypercube_stratifies_every_knob() {
        let s = demo();
        let n = 9;
        let pts = s.latin_hypercube(n, 5);
        assert_eq!(pts.len(), n);
        for (k, knob) in s.knobs().iter().enumerate() {
            let mut counts = vec![0usize; knob.len()];
            for p in &pts {
                counts[p.level(k)] += 1;
            }
            for (level, &c) in counts.iter().enumerate() {
                let lo = n / knob.len();
                let hi = n.div_ceil(knob.len());
                assert!(
                    (lo..=hi).contains(&c),
                    "knob {k} level {level} hit {c} times (want {lo}..={hi})"
                );
            }
        }
    }

    #[test]
    fn one_at_a_time_varies_one_knob_per_point() {
        let s = demo();
        let base = s.center();
        assert_eq!(base.levels(), &[1, 1, 1]);
        let pts = s.one_at_a_time(&base);
        // 1 baseline + (2-1) + (3-1) + (2-1) variants.
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], base);
        for p in &pts[1..] {
            let diffs = p
                .levels()
                .iter()
                .zip(base.levels())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1, "{p:?}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_space_rejected() {
        Space::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn empty_knob_rejected() {
        Knob::numeric("empty", []);
    }
}
