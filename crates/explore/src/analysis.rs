//! Result analysis: multi-objective Pareto frontiers and one-at-a-time
//! (tornado) sensitivity.
//!
//! Both analyses are pure functions over the evaluated objective vectors,
//! so they are trivially deterministic; the frontier is defined purely by
//! dominance, which makes it invariant under any reordering of the
//! sampled points.

use crate::space::{Point, Space};
use serde::Serialize;

/// The optimization direction of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Sense {
    /// Bigger is better (throughput).
    Maximize,
    /// Smaller is better (exposed time, overhead).
    Minimize,
}

impl Sense {
    /// Whether `a` is strictly better than `b` under this sense.
    fn better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a > b,
            Sense::Minimize => a < b,
        }
    }
}

/// Whether objective vector `a` Pareto-dominates `b`: at least as good
/// in every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the vector lengths and the sense count disagree.
pub fn dominates(a: &[f64], b: &[f64], senses: &[Sense]) -> bool {
    assert!(
        a.len() == senses.len() && b.len() == senses.len(),
        "objective arity mismatch: {} vs {} vs {} senses",
        a.len(),
        b.len(),
        senses.len()
    );
    let mut strictly = false;
    for ((&x, &y), &sense) in a.iter().zip(b).zip(senses) {
        if sense.better(y, x) {
            return false;
        }
        if sense.better(x, y) {
            strictly = true;
        }
    }
    strictly
}

/// Indices (ascending) of the non-dominated points among `objectives`.
///
/// Duplicated objective vectors do not dominate each other, so exact
/// ties all stay on the frontier — which is what keeps the frontier
/// invariant under point-order shuffles.
///
/// # Example
///
/// ```
/// use tee_explore::{pareto_frontier, Sense};
/// let objs = vec![
///     vec![10.0, 1.0], // fast but exposed
///     vec![5.0, 0.1],  // slower, well hidden
///     vec![4.0, 0.5],  // dominated by both? no — only by index 1
/// ];
/// let senses = [Sense::Maximize, Sense::Minimize];
/// assert_eq!(pareto_frontier(&objs, &senses), vec![0, 1]);
/// ```
pub fn pareto_frontier(objectives: &[Vec<f64>], senses: &[Sense]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            objectives
                .iter()
                .all(|other| !dominates(other, &objectives[i], senses))
        })
        .collect()
}

/// For a dominated point, an index of some point dominating it (the
/// first in point order); `None` when the point is on the frontier.
pub fn dominator_of(i: usize, objectives: &[Vec<f64>], senses: &[Sense]) -> Option<usize> {
    objectives
        .iter()
        .position(|other| dominates(other, &objectives[i], senses))
}

/// One bar of a tornado chart: the swing a single knob induces on an
/// objective while every other knob is held at the baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TornadoRow {
    /// The knob.
    pub knob: &'static str,
    /// The smallest objective value over the knob's levels.
    pub low: f64,
    /// The level label achieving `low`.
    pub low_label: String,
    /// The largest objective value over the knob's levels.
    pub high: f64,
    /// The level label achieving `high`.
    pub high_label: String,
}

impl TornadoRow {
    /// The absolute swing (`high − low`).
    pub fn swing(&self) -> f64 {
        self.high - self.low
    }

    /// The swing relative to the baseline value (0 when the baseline is
    /// 0).
    pub fn swing_vs(&self, baseline: f64) -> f64 {
        if baseline == 0.0 {
            0.0
        } else {
            self.swing() / baseline.abs()
        }
    }
}

/// Computes the tornado rows from a one-at-a-time sweep: `points` must
/// be [`Space::one_at_a_time`] output (baseline first) and `values` the
/// objective value per point, aligned. Rows come back sorted by
/// descending swing (ties keep knob order).
///
/// # Panics
///
/// Panics if `points` and `values` lengths differ or `points` is empty.
pub fn tornado(space: &Space, points: &[Point], values: &[f64]) -> Vec<TornadoRow> {
    assert_eq!(points.len(), values.len(), "one value per point");
    assert!(!points.is_empty(), "need at least the baseline point");
    let baseline = &points[0];
    let mut rows: Vec<TornadoRow> = space
        .knobs()
        .iter()
        .enumerate()
        .map(|(k, knob)| {
            // The knob's own column of the sweep: the baseline plus every
            // point differing from it only at knob k.
            let column = points.iter().zip(values).filter(|(p, _)| {
                p.levels()
                    .iter()
                    .zip(baseline.levels())
                    .enumerate()
                    .all(|(j, (a, b))| j == k || a == b)
            });
            let mut low: Option<(f64, &Point)> = None;
            let mut high: Option<(f64, &Point)> = None;
            for (p, &v) in column {
                if low.is_none_or(|(lv, _)| v < lv) {
                    low = Some((v, p));
                }
                if high.is_none_or(|(hv, _)| v > hv) {
                    high = Some((v, p));
                }
            }
            let (low, low_p) = low.expect("baseline always in column");
            let (high, high_p) = high.expect("baseline always in column");
            TornadoRow {
                knob: knob.name,
                low,
                low_label: space.label(low_p, k).to_string(),
                high,
                high_label: space.label(high_p, k).to_string(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.swing()
            .partial_cmp(&a.swing())
            .expect("finite objective values")
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Knob;

    const MAX_MIN: [Sense; 2] = [Sense::Maximize, Sense::Minimize];

    #[test]
    fn dominance_requires_strictness() {
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0], &MAX_MIN));
        assert!(dominates(&[1.0, 0.5], &[1.0, 1.0], &MAX_MIN));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], &MAX_MIN), "ties");
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0], &MAX_MIN), "trade-off");
        assert!(!dominates(&[1.0, 1.0], &[2.0, 1.0], &MAX_MIN));
    }

    #[test]
    fn frontier_drops_dominated_keeps_ties() {
        let objs = vec![
            vec![10.0, 5.0],
            vec![10.0, 5.0], // exact duplicate stays
            vec![9.0, 6.0],  // dominated by 0
            vec![12.0, 9.0], // trade-off: faster but more exposed
        ];
        assert_eq!(pareto_frontier(&objs, &MAX_MIN), vec![0, 1, 3]);
        assert_eq!(dominator_of(2, &objs, &MAX_MIN), Some(0));
        assert_eq!(dominator_of(0, &objs, &MAX_MIN), None);
    }

    #[test]
    fn frontier_of_empty_and_single() {
        assert!(pareto_frontier(&[], &MAX_MIN).is_empty());
        assert_eq!(pareto_frontier(&[vec![1.0, 1.0]], &MAX_MIN), vec![0]);
    }

    #[test]
    fn tornado_ranks_knobs_by_swing() {
        let space = Space::new(vec![
            Knob::numeric("minor", [1.0, 2.0]),
            Knob::numeric("major", [1.0, 2.0, 3.0]),
        ]);
        let baseline = space.center(); // levels [1, 1]
        let points = space.one_at_a_time(&baseline);
        // Objective: minor contributes ±1, major contributes ±10.
        let values: Vec<f64> = points
            .iter()
            .map(|p| space.value(p, 0) + 10.0 * space.value(p, 1))
            .collect();
        let rows = tornado(&space, &points, &values);
        assert_eq!(rows[0].knob, "major");
        assert_eq!(rows[0].swing(), 20.0);
        assert_eq!(rows[0].low_label, "1");
        assert_eq!(rows[0].high_label, "3");
        assert_eq!(rows[1].knob, "minor");
        assert_eq!(rows[1].swing(), 1.0);
        let base_value = values[0];
        assert!(rows[0].swing_vs(base_value) > rows[1].swing_vs(base_value));
        assert_eq!(rows[0].swing_vs(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        dominates(&[1.0], &[1.0, 2.0], &MAX_MIN);
    }
}
