//! # tee-explore
//!
//! A deterministic, parallel **design-space exploration engine** — the
//! substrate behind the `explore_pareto` / `explore_sensitivity`
//! artifacts and the `tensortee explore` CLI (which sweep the TensorTEE
//! hardware/security space; see the `tensortee` core crate).
//!
//! The engine is deliberately domain-free, in the spirit of systematic
//! parameter-sweep benchmarking (MILC cluster tuning) and
//! design-space scheduling studies (see PAPERS.md):
//!
//! * [`Space`] — named [`Knob`]s with discrete labelled levels, the full
//!   cartesian [`Space::grid`], and seeded [`Space::random`] /
//!   [`Space::latin_hypercube`] sampling plans,
//! * [`Executor`] — partitions points across `std::thread` workers; each
//!   point evaluates under its own [`tee_sim::SplitMix64`] sub-stream
//!   (derived statelessly from `(seed, point index)`), so results are
//!   bit-identical for any worker-thread count,
//! * [`pareto_frontier`] / [`tornado`] — multi-objective non-dominated
//!   sets and one-at-a-time sensitivity swings over the evaluated
//!   objectives.
//!
//! ## Example
//!
//! ```
//! use tee_explore::{pareto_frontier, Executor, Knob, Sense, Space};
//!
//! let space = Space::new(vec![
//!     Knob::numeric("bandwidth", [16.0, 32.0, 64.0]),
//!     Knob::labeled("scheme", [("baseline", 0.0), ("ours", 1.0)]),
//! ]);
//! let points = space.sample(6, 42);
//! // Toy pricing: throughput rises with bandwidth, overhead is the
//! // baseline scheme's only.
//! let evals = Executor::new(4, 42).run(&points, &|_i, p, _rng| {
//!     vec![space.value(p, 0), 1.0 - space.value(p, 1)]
//! });
//! let frontier = pareto_frontier(&evals, &[Sense::Maximize, Sense::Minimize]);
//! assert!(!frontier.is_empty());
//! ```

pub mod analysis;
pub mod executor;
pub mod space;

pub use analysis::{dominates, dominator_of, pareto_frontier, tornado, Sense, TornadoRow};
pub use executor::Executor;
pub use space::{Knob, Level, Point, Space};
