//! The parallel point executor.
//!
//! Partitions a sampled point list across `std::thread` workers. Each
//! point gets its own [`SplitMix64`] sub-stream, derived statelessly from
//! the executor seed and the point's index
//! ([`SplitMix64::split`]), so an evaluation never observes which worker
//! ran it or what ran before it — results are **bit-identical for any
//! worker-thread count**, which is what lets `tensortee explore
//! --threads 4` reproduce `--threads 1` byte-for-byte.

use crate::space::Point;
use tee_sim::SplitMix64;

/// A deterministic multi-threaded executor.
///
/// # Example
///
/// ```
/// use tee_explore::{Executor, Knob, Space};
/// let space = Space::new(vec![Knob::numeric("x", [1.0, 2.0, 3.0])]);
/// let points = space.grid();
/// let eval = |_i: usize, p: &tee_explore::Point, mut rng: tee_sim::SplitMix64| {
///     space.value(p, 0) + (rng.next_below(10) as f64)
/// };
/// let serial = Executor::new(1, 42).run(&points, &eval);
/// let parallel = Executor::new(4, 42).run(&points, &eval);
/// assert_eq!(serial, parallel, "thread count never changes results");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: u32,
    seed: u64,
}

impl Executor {
    /// Creates an executor with `threads` workers (clamped to at least
    /// one) and the RNG root seed for per-point sub-streams.
    pub fn new(threads: u32, seed: u64) -> Self {
        Executor {
            threads: threads.max(1),
            seed,
        }
    }

    /// The worker count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluates every point, returning results in point order. The
    /// evaluator receives `(index, point, rng)` where `rng` is the
    /// point's private sub-stream; it must not rely on any other shared
    /// mutable state if bit-reproducibility across thread counts is
    /// wanted (shared *caches* of deterministic values are fine).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the evaluator's panic is
    /// propagated).
    pub fn run<R, F>(&self, points: &[Point], eval: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Point, SplitMix64) -> R + Sync,
    {
        self.run_items(points, eval)
    }

    /// [`Self::run`] over arbitrary items instead of [`Point`]s — the
    /// same strided static partition and stateless per-index sub-streams,
    /// so results are in item order and bit-identical for any thread
    /// count. The core crate uses this to warm its `(model, mode)`
    /// simulation memos in parallel before a sweep starts.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the evaluator's panic is
    /// propagated).
    pub fn run_items<T, R, F>(&self, items: &[T], eval: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, SplitMix64) -> R + Sync,
    {
        let root = SplitMix64::new(self.seed);
        let workers = (self.threads as usize).min(items.len()).max(1);
        if workers == 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, p)| eval(i, p, root.split(i as u64)))
                .collect();
        }
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        std::thread::scope(|scope| {
            let root = &root;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        // Strided partition: worker w takes items w,
                        // w+T, w+2T, … — static, so no scheduling state
                        // can leak into results.
                        (w..items.len())
                            .step_by(workers)
                            .map(|i| (i, eval(i, &items[i], root.split(i as u64))))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("explore worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every item evaluated exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Knob, Space};

    fn space() -> Space {
        Space::new(vec![
            Knob::numeric("a", [1.0, 2.0, 3.0, 4.0]),
            Knob::numeric("b", [10.0, 20.0, 30.0]),
        ])
    }

    #[test]
    fn results_are_in_point_order() {
        let s = space();
        let points = s.grid();
        let out = Executor::new(3, 7).run(&points, &|i, p, _| (i, p.levels().to_vec()));
        for (i, (idx, levels)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(levels, points[i].levels());
        }
    }

    #[test]
    fn thread_count_is_invisible_to_results() {
        let s = space();
        let points = s.grid();
        let eval = |i: usize, p: &Point, mut rng: SplitMix64| {
            // Consume a point-dependent number of draws so any stream
            // sharing between points would show up immediately.
            let draws = 1 + (i % 5);
            let mut acc = s.value(p, 0) * 1e6 + s.value(p, 1);
            for _ in 0..draws {
                acc += rng.next_f64();
            }
            acc.to_bits()
        };
        let one = Executor::new(1, 42).run(&points, &eval);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                one,
                Executor::new(threads, 42).run(&points, &eval),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn seed_reaches_every_point_stream() {
        let s = space();
        let points = s.grid();
        let eval = |_: usize, _: &Point, mut rng: SplitMix64| rng.next_u64();
        let a = Executor::new(2, 1).run(&points, &eval);
        let b = Executor::new(2, 2).run(&points, &eval);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y), "seed must matter");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "per-point streams are distinct");
    }

    #[test]
    fn run_items_generalizes_run_and_keeps_thread_invariance() {
        // Arbitrary items (here: strings) get the same stateless
        // per-index sub-streams and in-order results as points do.
        let items: Vec<String> = (0..23).map(|i| format!("item-{i}")).collect();
        let eval = |i: usize, it: &String, mut rng: SplitMix64| {
            format!("{i}:{it}:{}", rng.next_below(1000))
        };
        let one = Executor::new(1, 42).run_items(&items, &eval);
        for threads in [2, 4, 16] {
            assert_eq!(
                one,
                Executor::new(threads, 42).run_items(&items, &eval),
                "{threads} threads"
            );
        }
        for (i, out) in one.iter().enumerate() {
            assert!(out.starts_with(&format!("{i}:item-{i}:")), "{out}");
        }
    }

    #[test]
    fn zero_threads_clamps_and_empty_points_are_fine() {
        let e = Executor::new(0, 9);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.seed(), 9);
        let out: Vec<u64> = e.run(&[], &|_, _, _| 0u64);
        assert!(out.is_empty());
    }
}
