//! Model-based property tests for the DES scheduler ([`tee_sim::des`]):
//! random event workloads are replayed against a sorted-`Vec` reference
//! model — no event is lost or duplicated, ties break stably on
//! `(time, component_id)` (FIFO within one component), and the dispatch
//! order of distinct `(time, id)` keys is invariant under insertion order.

use proptest::collection::vec;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use tee_sim::des::{Component, Ctx, Scheduler};
use tee_sim::{SplitMix64, Time};

/// One injected event: (time in ns, target component, payload).
type Ev = (u64, usize, u32);

/// Components per scheduler in these workloads.
const N_COMPONENTS: usize = 6;

/// Logs every delivery into a shared, scheduler-global trace.
struct Recorder {
    trace: Rc<RefCell<Vec<Ev>>>,
}

impl Component for Recorder {
    type Msg = u32;
    fn receive(&mut self, now: Time, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.trace
            .borrow_mut()
            .push((now.as_ps() / 1000, ctx.self_id(), msg));
    }
}

/// Feeds `events` (in order) into a fresh scheduler of `N_COMPONENTS`
/// recorders and returns the global delivery trace.
fn deliver_all(events: &[Ev]) -> Vec<Ev> {
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Scheduler::new();
    for _ in 0..N_COMPONENTS {
        sched.add(Recorder {
            trace: Rc::clone(&trace),
        });
    }
    for &(t, target, payload) in events {
        sched.send_at(Time::from_ns(t), target, payload);
    }
    sched.run();
    assert_eq!(sched.events_processed(), events.len() as u64);
    let out = trace.borrow().clone();
    out
}

/// The reference model: a stable sort by `(time, component_id)` — within
/// one key, insertion (FIFO) order is preserved.
fn reference(events: &[Ev]) -> Vec<Ev> {
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|&(t, id, _)| (t, id));
    sorted
}

proptest! {
    #![proptest_config(ProptestConfig::ci())]

    /// The scheduler's delivery trace equals the sorted-`Vec` reference
    /// exactly: nothing lost, nothing duplicated, ties broken stably on
    /// `(time, component_id)` with FIFO within a component.
    #[test]
    fn trace_matches_sorted_vec_reference(
        events in vec((0u64..40, 0usize..N_COMPONENTS, any::<u32>()), 0..120)
    ) {
        prop_assert_eq!(deliver_all(&events), reference(&events));
    }

    /// Re-inserting the same workload in a shuffled order dispatches
    /// distinct `(time, id)` keys identically: the key sequence is a
    /// function of the event set, not of insertion order. (Within one
    /// `(time, id)` key FIFO follows insertion by design, so payload
    /// multisets per key must still agree.)
    #[test]
    fn pop_order_invariant_under_insertion_order(
        events in vec((0u64..40, 0usize..N_COMPONENTS, any::<u32>()), 1..120),
        seed in any::<u64>()
    ) {
        let mut shuffled = events.clone();
        SplitMix64::new(seed).shuffle(&mut shuffled);

        let original = deliver_all(&events);
        let permuted = deliver_all(&shuffled);

        // Same (time, id) dispatch sequence...
        let keys = |trace: &[Ev]| trace.iter().map(|&(t, id, _)| (t, id)).collect::<Vec<_>>();
        prop_assert_eq!(keys(&original), keys(&permuted));
        // ...and the same payloads once FIFO-within-a-key is factored out.
        let mut a = original;
        let mut b = permuted;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Traces are non-decreasing in `(time, id)` — the scheduler never
    /// goes back in time or backwards across component ids at one time.
    #[test]
    fn dispatch_keys_are_monotone(
        events in vec((0u64..40, 0usize..N_COMPONENTS, any::<u32>()), 0..120)
    ) {
        let trace = deliver_all(&events);
        for pair in trace.windows(2) {
            let (t0, id0, _) = pair[0];
            let (t1, id1, _) = pair[1];
            prop_assert!((t0, id0) <= (t1, id1));
        }
    }

    /// Self-rearming periodic components fire exactly their arithmetic
    /// schedule regardless of how many run concurrently.
    #[test]
    fn periodic_components_fire_their_schedule(
        specs in vec((1u64..20, 1u64..10, 0u32..8), 1..8)
    ) {
        struct Metronome {
            next: Time,
            period: Time,
            remaining: u32,
            fired: Vec<Time>,
        }
        impl Component for Metronome {
            type Msg = ();
            fn next_tick(&self) -> Time {
                if self.remaining == 0 { Time::MAX } else { self.next }
            }
            fn tick(&mut self, now: Time, _ctx: &mut Ctx<'_, ()>) {
                self.fired.push(now);
                self.remaining -= 1;
                self.next = now + self.period;
            }
            fn receive(&mut self, _now: Time, _msg: (), _ctx: &mut Ctx<'_, ()>) {}
        }

        let mut sched = Scheduler::new();
        for &(start, period, count) in &specs {
            sched.add(Metronome {
                next: Time::from_ns(start),
                period: Time::from_ns(period),
                remaining: count,
                fired: Vec::new(),
            });
        }
        sched.run();
        let total: u32 = specs.iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(sched.events_processed(), total as u64);
        for (component, &(start, period, count)) in sched.components().iter().zip(&specs) {
            let expected: Vec<Time> = (0..count as u64)
                .map(|k| Time::from_ns(start + k * period))
                .collect();
            prop_assert_eq!(&component.fired, &expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::ci())]

    /// `Histogram::merge` is exactly "record the union": merging the
    /// histogram of `b` into the histogram of `a` equals the histogram of
    /// `a ++ b` — same counts, same moments, and therefore the same value
    /// at every percentile.
    #[test]
    fn histogram_merge_is_record_union(
        a in vec(0u64..2_000_000, 0..60),
        b in vec(0u64..2_000_000, 0..60)
    ) {
        use tee_sim::Histogram;
        let record_all = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = record_all(&union);
        prop_assert_eq!(&merged, &direct);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), direct.percentile(q), "q = {}", q);
        }
    }

    /// The calendar-backed [`tee_sim::EventQueue`] and the binary-heap
    /// reference pop identical `(time, payload)` sequences for any
    /// interleaving of schedules and pops — the bit-identity the DES
    /// scheduler relies on, as a property over random workloads.
    #[test]
    fn calendar_queue_matches_heap_reference(
        ops in vec((any::<bool>(), 0u64..5_000), 1..400)
    ) {
        use tee_sim::{EventQueue, HeapQueue};
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut payload = 0u64;
        for &(is_pop, delay) in &ops {
            if is_pop {
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.now(), heap.now());
            } else {
                // Schedule relative to "now" so the workload stays legal
                // (never in the past) no matter how many pops happened.
                let at = cal.now() + Time::from_ns(delay);
                cal.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Drain: the full remaining order must agree too.
        while let Some(got) = cal.pop() {
            prop_assert_eq!(Some(got), heap.pop());
        }
        prop_assert_eq!(heap.pop(), None);
    }
}
