//! Simulated time and clock domains.
//!
//! All simulators in this workspace share a single picosecond timeline so
//! that the 3.5 GHz CPU, the 1 GHz NPU and the PCIe link can be composed
//! without accumulating rounding error at domain crossings.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point on (or span of) the simulated timeline, in picoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic is identical and keeping one type avoids a conversion layer
/// in hot simulation loops.
///
/// # Example
///
/// ```
/// use tee_sim::Time;
/// let t = Time::from_ns(3) + Time::from_ps(500);
/// assert_eq!(t.as_ps(), 3_500);
/// assert!(t < Time::from_us(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero timestamp (simulation start).
    pub const ZERO: Time = Time(0);
    /// The farthest representable future; used as an "unscheduled" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Creates a time from (possibly fractional) seconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        Time((secs * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Multiplies a duration by an integer scale factor.
    #[inline]
    pub fn scale(self, factor: u64) -> Time {
        Time(self.0 * factor)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A fixed-frequency clock domain converting between cycles and [`Time`].
///
/// # Example
///
/// ```
/// use tee_sim::ClockDomain;
/// let npu = ClockDomain::from_ghz(1.0);
/// assert_eq!(npu.cycles_to_time(40).as_ns_f64(), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Picoseconds per cycle.
    period_ps: f64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz}");
        ClockDomain {
            period_ps: 1_000.0 / ghz,
        }
    }

    /// Creates a clock domain from a frequency in MHz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_ghz(mhz / 1_000.0)
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        Time::from_ps(self.period_ps.round() as u64)
    }

    /// Frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        1_000.0 / self.period_ps
    }

    /// Converts a cycle count into simulated time (rounded to ps).
    #[inline]
    pub fn cycles_to_time(&self, cycles: u64) -> Time {
        Time::from_ps((cycles as f64 * self.period_ps).round() as u64)
    }

    /// Converts a timestamp into whole elapsed cycles (floor).
    #[inline]
    pub fn time_to_cycles(&self, t: Time) -> u64 {
        (t.as_ps() as f64 / self.period_ps).floor() as u64
    }

    /// The first cycle boundary at or after `t`.
    pub fn next_edge(&self, t: Time) -> Time {
        let c = (t.as_ps() as f64 / self.period_ps).ceil() as u64;
        self.cycles_to_time(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_compose() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs_f64(1.5), Time::from_ms(1_500));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.scale(3), Time::from_ns(30));
    }

    #[test]
    fn time_sum() {
        let total: Time = (1..=4).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn time_display_picks_unit() {
        assert_eq!(Time::from_ps(12).to_string(), "12ps");
        assert_eq!(Time::from_ns(12).to_string(), "12.000ns");
        assert_eq!(Time::from_us(12).to_string(), "12.000us");
        assert_eq!(Time::from_ms(12).to_string(), "12.000ms");
        assert_eq!(Time::from_secs_f64(1.25).to_string(), "1.250s");
    }

    #[test]
    fn clock_domain_round_trips() {
        let cpu = ClockDomain::from_ghz(3.5);
        for cycles in [0u64, 1, 7, 35, 1_000_000] {
            let t = cpu.cycles_to_time(cycles);
            let back = cpu.time_to_cycles(t);
            // Rounding may lose at most one cycle at this resolution.
            assert!(back == cycles || back + 1 == cycles, "{cycles} -> {back}");
        }
    }

    #[test]
    fn clock_domain_next_edge() {
        let c = ClockDomain::from_ghz(1.0); // 1000 ps period
        assert_eq!(c.next_edge(Time::from_ps(0)), Time::from_ps(0));
        assert_eq!(c.next_edge(Time::from_ps(1)), Time::from_ps(1_000));
        assert_eq!(c.next_edge(Time::from_ps(1_000)), Time::from_ps(1_000));
    }

    #[test]
    #[should_panic]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::from_ghz(0.0);
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        let _ = Time::from_secs_f64(-1.0);
    }
}
