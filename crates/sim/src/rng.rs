//! A small deterministic PRNG (SplitMix64).
//!
//! Simulators need reproducible pseudo-randomness (address-stream jitter,
//! workload shuffles) without threading `rand` generics everywhere;
//! SplitMix64 is tiny, fast, and has a well-known reference output we test
//! against.

use serde::{Deserialize, Serialize};

/// SplitMix64 PRNG (Steele, Lea, Flood 2014 — the `java.util.SplittableRandom`
/// finalizer). Deterministic for a given seed.
///
/// # Example
///
/// ```
/// use tee_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias acceptable for
        // simulation jitter, not for cryptography).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derives the independent child generator for `stream_id` without
    /// advancing this generator: the same `(seed, stream_id)` pair always
    /// names the same sub-stream, so parallel workers (or independently
    /// generated traces) can derive their streams in any order — or
    /// concurrently — and still be bit-reproducible.
    ///
    /// The child seed is the SplitMix64 finalizer applied to the parent
    /// state offset by a stream-indexed odd gamma, so distinct stream ids
    /// land on well-separated child sequences.
    ///
    /// # Example
    ///
    /// ```
    /// use tee_sim::SplitMix64;
    /// let root = SplitMix64::new(42);
    /// // Order-free: deriving stream 7 never depends on streams 0..6.
    /// assert_eq!(root.split(7).next_u64(), SplitMix64::new(42).split(7).next_u64());
    /// assert_ne!(root.split(0).next_u64(), root.split(1).next_u64());
    /// ```
    pub fn split(&self, stream_id: u64) -> SplitMix64 {
        // A distinct odd gamma per stream (Steele et al.'s split uses a
        // fresh gamma; deriving it from the stream id keeps the call
        // stateless), mixed through the usual finalizer.
        let gamma = stream_id
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state.wrapping_add(gamma);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SplitMix64::new(z ^ (z >> 31))
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling) — the inter-arrival distribution of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and positive: {mean}"
        );
        // next_f64() is in [0, 1); flip to (0, 1] so ln() stays finite.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Normally distributed value with the given mean and standard
    /// deviation (Box–Muller, cosine branch; one draw per call).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite or `sd` is negative or not finite.
    #[inline]
    pub fn next_normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(mean.is_finite(), "normal mean must be finite: {mean}");
        assert!(
            sd.is_finite() && sd >= 0.0,
            "normal sd must be finite and non-negative: {sd}"
        );
        // next_f64() is in [0, 1); flip to (0, 1] so ln() stays finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + sd * z
    }

    /// Above this mean, [`Self::next_poisson`] switches from Knuth's exact
    /// product method to a normal approximation. Knuth's limit
    /// `(-mean).exp()` underflows to zero near mean ≈ 745, and the loop
    /// cost is O(mean) draws; at 500 the limit is still ≈ 7e-218 and the
    /// normal approximation's relative error (~1/√mean) is already below
    /// 5%, far under the sampling noise of any consumer in this repo.
    pub const POISSON_NORMAL_THRESHOLD: f64 = 500.0;

    /// Poisson-distributed count with the given mean.
    ///
    /// Means up to [`Self::POISSON_NORMAL_THRESHOLD`] use Knuth's product
    /// method (exact, and stream-compatible with earlier releases — the
    /// serving trace generators all draw small means). Larger means use a
    /// rounded normal approximation `N(mean, √mean)` clamped at zero:
    /// Knuth's limit `(-mean).exp()` underflows to 0.0 for mean ≳ 745,
    /// which used to degenerate into a loop that only exited when the
    /// running product itself underflowed, returning a garbage count near
    /// 700 no matter how large the mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn next_poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "Poisson mean must be finite and non-negative: {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > Self::POISSON_NORMAL_THRESHOLD {
            let k = self.next_normal(mean, mean.sqrt());
            return if k <= 0.0 { 0 } else { k.round() as u64 };
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Known SplitMix64 outputs for seed 1234567.
        let mut r = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move elements");
    }

    #[test]
    fn split_streams_differ() {
        let parent = SplitMix64::new(11);
        let mut a = parent.split(0);
        let mut b = parent.split(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_golden_values() {
        // Pin the sub-stream derivation: explore workers and serving
        // traces rely on `(seed, stream_id)` naming a stable stream
        // across releases.
        let root = SplitMix64::new(42);
        let first = |id: u64| root.split(id).next_u64();
        assert_eq!(first(0), 6_332_618_229_526_065_668);
        assert_eq!(first(1), 16_351_058_682_566_606_720);
        assert_eq!(first(2), 5_810_173_700_768_792_868);
        assert_eq!(first(u64::MAX), 5_210_630_070_018_660_129);
    }

    #[test]
    fn split_is_stateless_and_order_free() {
        let root = SplitMix64::new(9);
        // Deriving streams in any order (or repeatedly) yields the same
        // children, and never perturbs the parent.
        let a_then_b = (root.split(3).next_u64(), root.split(8).next_u64());
        let b_then_a = {
            let b = root.split(8).next_u64();
            (root.split(3).next_u64(), b)
        };
        assert_eq!(a_then_b, b_then_a);
        let mut parent = SplitMix64::new(9);
        let mut untouched = SplitMix64::new(9);
        let _ = parent.split(0);
        assert_eq!(parent.next_u64(), untouched.next_u64());
    }

    #[test]
    fn split_streams_are_pairwise_independent() {
        // Distinct stream ids (including adjacent ones) must land on
        // well-separated sequences: no first-value collisions across a
        // wide id range, and no lockstep correlation between neighbours.
        let root = SplitMix64::new(1234567);
        let mut firsts = std::collections::BTreeSet::new();
        for id in 0..4096u64 {
            assert!(firsts.insert(root.split(id).next_u64()), "stream {id}");
        }
        let mut a = root.split(0);
        let mut b = root.split(1);
        let matches = (0..1024).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "adjacent streams run in lockstep");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn exponential_is_deterministic_and_nonnegative() {
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..1_000 {
            let x = a.next_exp(3.0);
            assert_eq!(x, b.next_exp(3.0), "same seed, same stream");
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SplitMix64::new(123);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn poisson_is_deterministic_with_matching_mean() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = a.next_poisson(2.5);
            assert_eq!(k, b.next_poisson(2.5));
            sum += k;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        assert_eq!(SplitMix64::new(1).next_poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_means_converge_and_stay_deterministic() {
        // Regression for the product-method underflow: `(-mean).exp()`
        // is 0.0 for mean ≳ 745, and the old loop then returned a count
        // near 700 regardless of the requested mean. Check the sample
        // mean converges (tolerances are many sigmas wide) and that the
        // same seed reproduces the same stream, at mean = 1e3 and 1e6.
        for (mean, n, tol) in [(1e3, 2_000, 10.0), (1e6, 500, 1_000.0)] {
            let mut a = SplitMix64::new(31);
            let mut b = SplitMix64::new(31);
            let mut sum = 0u64;
            for _ in 0..n {
                let k = a.next_poisson(mean);
                assert_eq!(
                    k,
                    b.next_poisson(mean),
                    "mean {mean}: same seed, same stream"
                );
                sum += k;
            }
            let sample = sum as f64 / n as f64;
            assert!(
                (sample - mean).abs() < tol,
                "mean {mean}: sample mean {sample} off by more than {tol}"
            );
        }
    }

    #[test]
    fn poisson_small_mean_stream_is_pinned() {
        // The exact Knuth path must keep producing the streams earlier
        // releases produced (serving traces embed them in golden output):
        // pin the first few counts at the largest small-path mean region.
        let mut r = SplitMix64::new(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_poisson(2.5)).collect();
        let mut again = SplitMix64::new(42);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_poisson(2.5)).collect();
        assert_eq!(first, repeat);
        let mean = SplitMix64::POISSON_NORMAL_THRESHOLD;
        assert!((-mean).exp() > 0.0, "threshold must stay below underflow");
    }

    #[test]
    fn normal_is_deterministic_and_converges() {
        let mut a = SplitMix64::new(13);
        let mut b = SplitMix64::new(13);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = a.next_normal(5.0, 2.0);
            assert_eq!(x, b.next_normal(5.0, 2.0), "same seed, same stream");
            assert!(x.is_finite());
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "sample variance {var}");
    }

    #[test]
    fn normal_zero_sd_is_the_mean() {
        assert_eq!(SplitMix64::new(1).next_normal(3.25, 0.0), 3.25);
    }

    #[test]
    #[should_panic]
    fn negative_normal_sd_panics() {
        SplitMix64::new(1).next_normal(0.0, -1.0);
    }

    #[test]
    #[should_panic]
    fn negative_exponential_mean_panics() {
        SplitMix64::new(1).next_exp(-1.0);
    }

    #[test]
    #[should_panic]
    fn negative_poisson_mean_panics() {
        SplitMix64::new(1).next_poisson(-0.5);
    }
}
