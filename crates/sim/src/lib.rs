//! # tee-sim
//!
//! Event-driven cycle-simulation kernel shared by every simulator in the
//! TensorTEE reproduction (CPU cache/MEE model, NPU pipeline model, PCIe
//! link model).
//!
//! The crate deliberately contains no domain knowledge: it provides
//!
//! * [`Time`] — a picosecond-resolution simulated timestamp, so that clock
//!   domains with different frequencies (3.5 GHz CPU, 1 GHz NPU, PCIe link)
//!   can be composed on one timeline,
//! * [`ClockDomain`] — cycle ↔ time conversion for one frequency,
//! * [`EventQueue`] — a deterministic discrete-event queue,
//! * [`des`] — a component/scheduler discrete-event core layered on the
//!   queue (`Component` with `next_tick`/`tick`, min-heap keyed
//!   `(time, component_id)`), the substrate of `DesClusterSystem`,
//! * [`BandwidthResource`] / [`ThroughputPipe`] — contention models for
//!   shared resources such as AES engines, DRAM channels and PCIe lanes,
//! * [`stats`] — counters/histograms used for every reported figure,
//! * [`rng`] — a small deterministic PRNG so simulations are reproducible
//!   without threading `rand` state through every component,
//! * [`probe`] — zero-overhead-when-off observability hooks (spans,
//!   instants, counters, gauges) recorded by [`TraceProbe`] and exported
//!   by the `tensortee` CLI as Chrome/Perfetto trace JSON. Probes observe
//!   [`Time`] and never advance it: results are byte-identical with
//!   tracing on and off.
//!
//! ## Example
//!
//! ```
//! use tee_sim::{ClockDomain, Time};
//!
//! let cpu = ClockDomain::from_ghz(3.5);
//! let t = cpu.cycles_to_time(35);
//! assert_eq!(t, Time::from_ns(10));
//! assert_eq!(cpu.time_to_cycles(t), 35);
//! ```

pub mod bandwidth;
pub mod clock;
pub mod des;
pub mod event;
pub mod probe;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod util;

pub use bandwidth::{BandwidthResource, ThroughputPipe};
pub use clock::{ClockDomain, Time};
pub use des::{Component, ComponentId, Scheduler};
pub use event::{EventQueue, HeapQueue};
pub use probe::{MetricsRegistry, NullProbe, Probe, ProbeEvent, SharedProbe, TraceProbe};
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, StatSet};
