//! A deterministic component/scheduler discrete-event simulation core.
//!
//! [`EventQueue`] is a raw timestamped queue; this module layers the
//! component architecture the cluster simulators are built on (the
//! `next_tick`/`tick` pattern of SNIPPETS.md #2): a [`Component`] exposes
//! the next simulated time it wants to run ([`Component::next_tick`]) and
//! reacts to wake-ups ([`Component::tick`]) and messages from other
//! components ([`Component::receive`]); a [`Scheduler`] drives all
//! components from one min-heap keyed by `(time, component_id)`.
//!
//! Determinism rules (what makes same-seed runs byte-identical):
//!
//! * events at the same timestamp are dispatched in ascending
//!   [`ComponentId`] order, and FIFO within one component,
//! * a component's reaction may schedule more work at the *same*
//!   timestamp (a delta cycle); the scheduler drains those sub-rounds
//!   before advancing time,
//! * a `tick` must move the component's `next_tick` strictly past `now`
//!   (or to [`Time::MAX`] = idle) — enforced by assertion, so livelocks
//!   are simulator bugs, not hangs.
//!
//! # Example
//!
//! ```
//! use tee_sim::des::{Component, Ctx, Scheduler};
//! use tee_sim::Time;
//!
//! /// Forwards each received number to a neighbour 10 ns later.
//! struct Relay {
//!     next: Option<usize>,
//!     seen: Vec<u64>,
//! }
//!
//! impl Component for Relay {
//!     type Msg = u64;
//!     fn receive(&mut self, _now: Time, msg: u64, ctx: &mut Ctx<'_, u64>) {
//!         self.seen.push(msg);
//!         if let Some(next) = self.next {
//!             ctx.send_after(Time::from_ns(10), next, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sched = Scheduler::new();
//! let b = 1; // id the first relay will forward to
//! sched.add(Relay { next: Some(b), seen: vec![] });
//! sched.add(Relay { next: None, seen: vec![] });
//! sched.send_at(Time::ZERO, 0, 7);
//! let end = sched.run();
//! assert_eq!(end, Time::from_ns(10));
//! assert_eq!(sched.component(b).seen, vec![8]);
//! ```

use crate::clock::Time;
use crate::event::EventQueue;
use crate::probe::SharedProbe;

/// Index of a component inside its [`Scheduler`] (assigned by
/// [`Scheduler::add`], dense from zero). The id doubles as the
/// deterministic tie-break for same-time events.
pub type ComponentId = usize;

/// Sub-rounds allowed at one timestamp before the scheduler declares a
/// same-time livelock (components endlessly messaging without advancing
/// simulated time).
const MAX_DELTA_ROUNDS: usize = 1 << 16;

/// A simulated hardware unit driven by a [`Scheduler`].
///
/// Components are passive between events: they publish the next time they
/// want to run via [`next_tick`](Self::next_tick) and otherwise only react
/// to [`tick`](Self::tick) wake-ups and [`receive`](Self::receive)d
/// messages, scheduling follow-up work through the [`Ctx`].
pub trait Component {
    /// Message type exchanged between components of one scheduler.
    type Msg;

    /// The next absolute time this component wants [`tick`](Self::tick)
    /// to run, or [`Time::MAX`] if it is idle until a message arrives.
    ///
    /// The scheduler re-reads this after every `tick`/`receive`, so a
    /// component re-arms itself simply by returning a new time.
    fn next_tick(&self) -> Time {
        Time::MAX
    }

    /// Runs the component at `now` (== the `next_tick` it advertised).
    /// Afterwards `next_tick` must be strictly greater than `now`.
    fn tick(&mut self, now: Time, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (now, ctx);
    }

    /// Delivers a message sent to this component at time `now`.
    fn receive(&mut self, now: Time, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Human-readable track name for trace output (e.g. `"NPU0"`).
    /// Components that return the default empty string are traced under
    /// the generic `c<id>` track. Only called when a probe is recording.
    fn label(&self) -> String {
        String::new()
    }
}

/// The scheduler-side context handed to a running component: the current
/// time, the component's own id, and an outbox for messages to other
/// components (drained into the event heap when the call returns).
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: Time,
    self_id: ComponentId,
    outbox: &'a mut Vec<(Time, ComponentId, M)>,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Id of the component being run.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Sends `msg` to component `to` at the current timestamp (delivered
    /// in a later sub-round of the same delta cycle).
    pub fn send(&mut self, to: ComponentId, msg: M) {
        self.send_at(self.now, to, msg);
    }

    /// Sends `msg` to component `to` after `delay`.
    pub fn send_after(&mut self, delay: Time, to: ComponentId, msg: M) {
        self.send_at(self.now + delay, to, msg);
    }

    /// Sends `msg` to component `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_at(&mut self, at: Time, to: ComponentId, msg: M) {
        assert!(
            at >= self.now,
            "component {} sent a message into the past ({at} < {})",
            self.self_id,
            self.now
        );
        self.outbox.push((at, to, msg));
    }
}

/// Heap payload: either a timer wake-up for a component or a message
/// delivery. Wake-ups can go stale (the component moved its `next_tick`
/// after the wake was enqueued); stale wakes are skipped on pop.
#[derive(Debug)]
enum Event<M> {
    Wake(ComponentId),
    Deliver(ComponentId, M),
}

impl<M> Event<M> {
    fn target(&self) -> ComponentId {
        match self {
            Event::Wake(id) | Event::Deliver(id, _) => *id,
        }
    }
}

/// Drives a set of [`Component`]s from one deterministic min-heap keyed
/// `(time, component_id)`, layered over [`EventQueue`].
///
/// `C` is typically an enum over the concrete component kinds of one
/// simulation, which keeps the scheduler object-safe-free and lets the
/// caller read final component state back out with [`component`]
/// (no downcasting).
///
/// [`component`]: Self::component
#[derive(Debug)]
pub struct Scheduler<C: Component> {
    components: Vec<C>,
    queue: EventQueue<Event<C::Msg>>,
    /// Earliest pending `Wake` per component (`Time::MAX` = none). Lets
    /// the scheduler avoid flooding the heap when `next_tick` is stable,
    /// while still tolerating stale entries.
    armed: Vec<Time>,
    /// Ticks + deliveries dispatched so far (skipped stale wakes do not
    /// count).
    events_processed: u64,
    /// Reused outbox buffer for [`Ctx`].
    outbox: Vec<(Time, ComponentId, C::Msg)>,
    /// Reused delta-cycle batch buffer, so draining a timestamp does not
    /// allocate per sub-round on the scheduler hot path.
    batch: Vec<(Time, Event<C::Msg>)>,
    /// Observability sink: tick spans, delivery/send instants, event
    /// counters. [`SharedProbe::Null`] by default, so the hot path pays
    /// one branch per dispatch. Probes only observe timestamps — they
    /// cannot change the schedule.
    probe: SharedProbe,
}

impl<C: Component> Default for Scheduler<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Component> Scheduler<C> {
    /// Creates an empty scheduler positioned at time zero.
    pub fn new() -> Self {
        Scheduler {
            components: Vec::new(),
            queue: EventQueue::new(),
            armed: Vec::new(),
            events_processed: 0,
            outbox: Vec::new(),
            batch: Vec::new(),
            probe: SharedProbe::Null,
        }
    }

    /// Installs an observability probe. Dispatches emit a zero-width
    /// `tick` span per component tick, a `recv` instant per delivery,
    /// and a `send` instant per outgoing message, all on the sending or
    /// receiving component's [`Component::label`] track.
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe = probe;
    }

    /// Track name for `id`: the component's label, or `c<id>`.
    fn track(&self, id: ComponentId) -> String {
        let label = self.components[id].label();
        if label.is_empty() {
            format!("c{id}")
        } else {
            label
        }
    }

    /// Registers a component and returns its id (dense, in registration
    /// order). If the component already advertises a `next_tick`, a wake
    /// is armed for it.
    pub fn add(&mut self, component: C) -> ComponentId {
        let id = self.components.len();
        let first = component.next_tick();
        self.components.push(component);
        self.armed.push(Time::MAX);
        if first != Time::MAX {
            self.queue.schedule(first, Event::Wake(id));
            self.armed[id] = first;
        }
        id
    }

    /// Number of registered components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Read access to a component (e.g. to extract results after a run).
    pub fn component(&self, id: ComponentId) -> &C {
        &self.components[id]
    }

    /// All components, in id order.
    pub fn components(&self) -> &[C] {
        &self.components
    }

    /// Injects a message from outside the simulation (the initial
    /// stimulus). Panics if `to` is not a registered component or `at`
    /// is in the past.
    pub fn send_at(&mut self, at: Time, to: ComponentId, msg: C::Msg) {
        assert!(to < self.components.len(), "unknown component {to}");
        self.queue.schedule(at, Event::Deliver(to, msg));
    }

    /// Current simulated time (timestamp of the last dispatched event).
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Ticks and deliveries dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until no events are pending; returns the final time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Runs while the next event is at or before `limit`; returns the
    /// time of the last dispatched event.
    pub fn run_until(&mut self, limit: Time) -> Time {
        while let Some(t) = self.queue.peek_time() {
            if t > limit {
                break;
            }
            self.delta_cycle(t);
        }
        self.queue.now()
    }

    /// Drains every event at timestamp `t`, including follow-up work
    /// components schedule at `t` while reacting (sub-rounds), in
    /// `(time, component_id)` order.
    fn delta_cycle(&mut self, t: Time) {
        let mut rounds = 0usize;
        while self.queue.peek_time() == Some(t) {
            rounds += 1;
            assert!(
                rounds <= MAX_DELTA_ROUNDS,
                "same-time livelock: {MAX_DELTA_ROUNDS} sub-rounds at {t}"
            );
            let mut batch = std::mem::take(&mut self.batch);
            self.queue.pop_batch_into(&mut batch);
            // The queue pops FIFO within a timestamp; a stable sort by
            // target id turns that into the deterministic
            // `(time, component_id)` dispatch order, FIFO per component.
            batch.sort_by_key(|(_, event)| event.target());
            for (_, event) in batch.drain(..) {
                self.dispatch(t, event);
            }
            self.batch = batch;
        }
    }

    fn dispatch(&mut self, t: Time, event: Event<C::Msg>) {
        let id = event.target();
        match event {
            Event::Deliver(_, msg) => {
                self.events_processed += 1;
                if self.probe.enabled() {
                    self.probe.instant(&self.track(id), "recv", t);
                    self.probe.count("des.deliveries", 1);
                }
                let mut outbox = std::mem::take(&mut self.outbox);
                let mut ctx = Ctx {
                    now: t,
                    self_id: id,
                    outbox: &mut outbox,
                };
                self.components[id].receive(t, msg, &mut ctx);
                self.flush(id, t, outbox);
            }
            Event::Wake(_) => {
                if self.armed[id] == t {
                    self.armed[id] = Time::MAX;
                }
                // A wake is stale if the component no longer wants to run
                // at `t` (its `next_tick` moved after this entry was
                // enqueued); skip the tick but still fall through to
                // `rearm` so the moved tick gets a fresh wake.
                if self.components[id].next_tick() == t {
                    self.events_processed += 1;
                    if self.probe.enabled() {
                        self.probe.span(&self.track(id), "tick", t, t);
                        self.probe.count("des.ticks", 1);
                    }
                    let mut outbox = std::mem::take(&mut self.outbox);
                    let mut ctx = Ctx {
                        now: t,
                        self_id: id,
                        outbox: &mut outbox,
                    };
                    self.components[id].tick(t, &mut ctx);
                    let after = self.components[id].next_tick();
                    assert!(
                        after > t,
                        "component {id} ticked at {t} without advancing next_tick (still {after})"
                    );
                    self.flush(id, t, outbox);
                }
            }
        }
        self.rearm(id, t);
    }

    /// Moves a drained outbox into the heap and stores the buffer back.
    /// `from`/`t` identify the sender and send time for the probe.
    fn flush(&mut self, from: ComponentId, t: Time, mut outbox: Vec<(Time, ComponentId, C::Msg)>) {
        let traced = self.probe.enabled();
        for (at, to, msg) in outbox.drain(..) {
            assert!(
                to < self.components.len(),
                "message to unknown component {to}"
            );
            if traced {
                self.probe
                    .instant(&self.track(from), &format!("send->{}", self.track(to)), t);
                self.probe.count("des.sends", 1);
            }
            self.queue.schedule(at, Event::Deliver(to, msg));
        }
        self.outbox = outbox;
    }

    /// Arms a wake for `id`'s current `next_tick` if none at least as
    /// early is already pending. (A later pending wake simply goes stale.)
    fn rearm(&mut self, id: ComponentId, t: Time) {
        let next = self.components[id].next_tick();
        if next != Time::MAX && next < self.armed[id] {
            assert!(
                next >= t,
                "component {id} armed next_tick {next} in the past of {t}"
            );
            self.queue.schedule(next, Event::Wake(id));
            self.armed[id] = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every (time, payload) it sees; optionally relays.
    struct Probe {
        relay_to: Option<ComponentId>,
        relay_delay: Time,
        log: Vec<(Time, u32)>,
    }

    impl Probe {
        fn sink() -> Self {
            Probe {
                relay_to: None,
                relay_delay: Time::ZERO,
                log: Vec::new(),
            }
        }
    }

    impl Component for Probe {
        type Msg = u32;
        fn receive(&mut self, now: Time, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((now, msg));
            if let Some(to) = self.relay_to {
                ctx.send_after(self.relay_delay, to, msg + 1);
            }
        }
    }

    #[test]
    fn same_time_dispatch_is_component_id_order() {
        let mut sched = Scheduler::new();
        for _ in 0..4 {
            sched.add(Probe::sink());
        }
        // Insert in descending-id order; delivery must be ascending.
        for id in (0..4).rev() {
            sched.send_at(Time::from_ns(5), id, id as u32);
        }
        let mut order = Vec::new();
        sched.run();
        for id in 0..4 {
            for &(t, msg) in &sched.component(id).log {
                assert_eq!(t, Time::from_ns(5));
                order.push(msg);
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(sched.events_processed(), 4);
    }

    #[test]
    fn fifo_within_one_component() {
        let mut sched = Scheduler::new();
        let id = sched.add(Probe::sink());
        for i in 0..10 {
            sched.send_at(Time::from_ns(1), id, i);
        }
        sched.run();
        let msgs: Vec<u32> = sched.component(id).log.iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_time_cascade_runs_in_sub_rounds() {
        let mut sched = Scheduler::new();
        // 0 relays to 1 with zero delay: both fire at the same timestamp.
        let b = 1;
        sched.add(Probe {
            relay_to: Some(b),
            relay_delay: Time::ZERO,
            log: Vec::new(),
        });
        sched.add(Probe::sink());
        sched.send_at(Time::from_ns(3), 0, 9);
        let end = sched.run();
        assert_eq!(end, Time::from_ns(3));
        assert_eq!(sched.component(b).log, vec![(Time::from_ns(3), 10)]);
    }

    /// Ticks `period`-ically `remaining` times, recording tick times.
    struct Metronome {
        next: Time,
        period: Time,
        remaining: u32,
        fired: Vec<Time>,
    }

    impl Component for Metronome {
        type Msg = u32;
        fn next_tick(&self) -> Time {
            if self.remaining == 0 {
                Time::MAX
            } else {
                self.next
            }
        }
        fn tick(&mut self, now: Time, _ctx: &mut Ctx<'_, u32>) {
            self.fired.push(now);
            self.remaining -= 1;
            self.next = now + self.period;
        }
        fn receive(&mut self, _now: Time, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}
    }

    #[test]
    fn periodic_ticks_self_rearm() {
        let mut sched = Scheduler::new();
        let id = sched.add(Metronome {
            next: Time::from_ns(2),
            period: Time::from_ns(5),
            remaining: 3,
            fired: Vec::new(),
        });
        let end = sched.run();
        assert_eq!(
            sched.component(id).fired,
            vec![Time::from_ns(2), Time::from_ns(7), Time::from_ns(12)]
        );
        assert_eq!(end, Time::from_ns(12));
        assert_eq!(sched.events_processed(), 3);
    }

    /// Arms a tick, then moves it later when poked — leaving the original
    /// wake entry stale in the heap.
    struct Procrastinator {
        next: Time,
        ticked: Vec<Time>,
    }

    impl Component for Procrastinator {
        type Msg = u32;
        fn next_tick(&self) -> Time {
            self.next
        }
        fn tick(&mut self, now: Time, _ctx: &mut Ctx<'_, u32>) {
            self.ticked.push(now);
            self.next = Time::MAX;
        }
        fn receive(&mut self, now: Time, delay_ns: u32, _ctx: &mut Ctx<'_, u32>) {
            self.next = now + Time::from_ns(delay_ns as u64);
        }
    }

    #[test]
    fn stale_wakes_are_skipped() {
        let mut sched = Scheduler::new();
        let id = sched.add(Procrastinator {
            next: Time::from_ns(10),
            ticked: Vec::new(),
        });
        // At t=1 the component postpones to t=21; the t=10 wake goes stale.
        sched.send_at(Time::from_ns(1), id, 20);
        sched.run();
        assert_eq!(sched.component(id).ticked, vec![Time::from_ns(21)]);
        // 1 delivery + 1 real tick; the stale wake is not an event.
        assert_eq!(sched.events_processed(), 2);
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sched = Scheduler::new();
        let id = sched.add(Metronome {
            next: Time::from_ns(10),
            period: Time::from_ns(10),
            remaining: 5,
            fired: Vec::new(),
        });
        sched.run_until(Time::from_ns(25));
        assert_eq!(sched.component(id).fired.len(), 2);
        sched.run();
        assert_eq!(sched.component(id).fired.len(), 5);
    }

    #[test]
    #[should_panic(expected = "without advancing")]
    fn tick_must_advance() {
        struct Stuck;
        impl Component for Stuck {
            type Msg = ();
            fn next_tick(&self) -> Time {
                Time::from_ns(1)
            }
            fn tick(&mut self, _now: Time, _ctx: &mut Ctx<'_, ()>) {}
            fn receive(&mut self, _now: Time, _msg: (), _ctx: &mut Ctx<'_, ()>) {}
        }
        Scheduler::new().add(Stuck);
        let mut sched = Scheduler::new();
        sched.add(Stuck);
        sched.run();
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn message_to_unknown_component_panics() {
        let mut sched: Scheduler<Probe> = Scheduler::new();
        sched.add(Probe::sink());
        sched.send_at(Time::ZERO, 7, 0);
    }

    #[test]
    fn probe_records_ticks_and_sends_without_perturbing() {
        let build = |probe: Option<SharedProbe>| {
            let mut sched = Scheduler::new();
            for i in 0..3 {
                sched.add(Probe {
                    relay_to: Some((i + 1) % 3),
                    relay_delay: Time::from_ns(7),
                    log: Vec::new(),
                });
            }
            if let Some(p) = probe {
                sched.set_probe(p);
            }
            sched.send_at(Time::from_ns(2), 1, 100);
            sched.run_until(Time::from_ns(100));
            (
                sched.events_processed(),
                sched
                    .components()
                    .iter()
                    .map(|p| p.log.clone())
                    .collect::<Vec<_>>(),
            )
        };
        let recorder = SharedProbe::recording();
        let traced = build(Some(recorder.clone()));
        let untraced = build(None);
        assert_eq!(traced, untraced, "tracing must not perturb the schedule");
        let snap = recorder.snapshot().expect("recording probe");
        assert!(!snap.events().is_empty());
        assert_eq!(snap.metrics().get("des.deliveries"), traced.0);
        assert!(snap.metrics().get("des.sends") > 0);
        // Default labels fall back to c<id> tracks.
        assert!(snap.events().iter().any(|e| e.track() == "c1"));
    }

    #[test]
    fn two_identical_builds_produce_identical_traces() {
        let build = || {
            let mut sched = Scheduler::new();
            for i in 0..3 {
                sched.add(Probe {
                    relay_to: Some((i + 1) % 3),
                    relay_delay: Time::from_ns(7),
                    log: Vec::new(),
                });
            }
            sched.send_at(Time::from_ns(2), 1, 100);
            sched.run_until(Time::from_ns(100));
            sched
                .components()
                .iter()
                .map(|p| p.log.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
