//! Formatting and alignment helpers shared across the workspace.

/// Rounds `x` up to the next multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(tee_sim::util::align_up(100, 64), 128);
/// assert_eq!(tee_sim::util::align_up(128, 64), 128);
/// ```
pub fn align_up(x: u64, align: u64) -> u64 {
    assert!(align > 0, "alignment must be positive");
    x.div_ceil(align) * align
}

/// Rounds `x` down to a multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero.
pub fn align_down(x: u64, align: u64) -> u64 {
    assert!(align > 0, "alignment must be positive");
    (x / align) * align
}

/// Integer ceil-division.
pub fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Formats a byte count with binary units ("1.5 MiB").
///
/// # Example
///
/// ```
/// assert_eq!(tee_sim::util::fmt_bytes(1536 * 1024), "1.50 MiB");
/// assert_eq!(tee_sim::util::fmt_bytes(42), "42 B");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Formats a throughput in bytes/second with decimal units ("12.8 GB/s").
pub fn fmt_bandwidth(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B/s", "KB/s", "MB/s", "GB/s", "TB/s"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1000.0 && unit < UNITS.len() - 1 {
        v /= 1000.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Formats a ratio as a percentage string ("12.3%").
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Geometric mean of a slice (1.0 for an empty slice).
///
/// # Panics
///
/// Panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_cases() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }

    #[test]
    fn align_down_cases() {
        assert_eq!(align_down(0, 64), 0);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_down(130, 64), 128);
    }

    #[test]
    fn ceil_div_cases() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(0, 3), 0);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(1024), "1.00 KiB");
        assert_eq!(fmt_bytes(1 << 30), "1.00 GiB");
    }

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(fmt_bandwidth(128.0e9), "128.00 GB/s");
        assert_eq!(fmt_bandwidth(500.0), "500.00 B/s");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.021), "2.1%");
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
