//! Simulation statistics: counters, ratios and histograms.
//!
//! Every figure in the paper is regenerated from these primitives, so they
//! favour exactness (integer counters) over sampling.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use tee_sim::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// This counter as a fraction of `total` (0.0 when `total` is zero).
    pub fn fraction_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A streaming histogram over `u64` samples with exact mean/min/max and
/// power-of-two bucket counts for distribution summaries.
///
/// # Example
///
/// ```
/// use tee_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 4] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(4));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
    /// bucket index = floor(log2(sample+1)); bucket 0 holds sample 0.
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() };
        *self.buckets.entry(idx).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Iterates `(bucket_floor, count)` pairs in ascending order, where
    /// `bucket_floor` is the smallest sample value that maps to the bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&idx, &n)| {
            let floor = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
            (floor, n)
        })
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) from the
    /// power-of-two buckets, linearly interpolating within the winning
    /// bucket and clamping to the exact observed `[min, max]`. `None` when
    /// the histogram is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use tee_sim::Histogram;
    /// let mut h = Histogram::new();
    /// for v in [10u64, 20, 30, 1000] { h.record(v); }
    /// let p50 = h.percentile(0.50).unwrap();
    /// let p99 = h.percentile(0.99).unwrap();
    /// assert!(p50 <= p99);
    /// assert!(p99 <= 1000);
    /// ```
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile falls on.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= rank {
                let floor = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
                // The top bucket (idx 64, samples >= 2^63) has no 2^idx:
                // saturate instead of overflowing the shift.
                let ceil = match idx {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << idx) - 1,
                };
                // Interpolate within the *observed* span of the bucket:
                // the highest occupied bucket's nominal ceiling can sit
                // far above the largest recorded sample (and the lowest
                // bucket's floor below the smallest), so walking toward
                // the nominal bound and clamping afterwards would pin
                // every tail quantile to `max`. Tighten the bounds first,
                // then interpolate.
                let lo = floor.max(min);
                let hi = ceil.min(max);
                // Position of the rank within this bucket, in (0, 1].
                let into = (rank - (cum - n)) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * into;
                return Some((est.round() as u64).clamp(min, max));
            }
        }
        Some(max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (&k, &v) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += v;
        }
    }
}

/// A named bundle of counters, used by simulators to expose their
/// occupancy/hit statistics without a fixed schema.
///
/// # Example
///
/// ```
/// use tee_sim::StatSet;
/// let mut s = StatSet::new("meta_table");
/// s.bump("hit_in");
/// s.bump("hit_in");
/// s.bump("miss");
/// assert_eq!(s.get("hit_in"), 2);
/// assert_eq!(s.get("absent"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatSet {
    name: String,
    counters: BTreeMap<String, Counter>,
}

impl StatSet {
    /// Creates an empty set with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        StatSet {
            name: name.into(),
            counters: BTreeMap::new(),
        }
    }

    /// The set's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one to the named counter, creating it if absent.
    pub fn bump(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the named counter, creating it if absent.
    pub fn add(&mut self, key: &str, n: u64) {
        self.counters.entry(key.to_owned()).or_default().add(n);
    }

    /// Reads a counter (0 when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, Counter::get)
    }

    /// `numerator / (numerator + complement)`; 0.0 when both are zero.
    pub fn ratio(&self, numerator: &str, complement: &str) -> f64 {
        let n = self.get(numerator);
        let d = n + self.get(complement);
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Resets every counter to zero (names are kept).
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            v.reset();
        }
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fraction() {
        let mut c = Counter::new();
        c.add(25);
        assert_eq!(c.fraction_of(100), 0.25);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), 20.0);
        assert_eq!((h.min(), h.max()), (Some(10), Some(30)));
    }

    #[test]
    fn histogram_bucket_floors() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0, floor 0
        h.record(1); // bitlen 1, floor 1
        h.record(2); // bitlen 2, floor 2
        h.record(7); // bitlen 3, floor 4
        let floors: Vec<u64> = h.buckets().map(|(f, _)| f).collect();
        assert_eq!(floors, vec![0, 1, 2, 4]);
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.99), None);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 9, 120, 130, 800, 900, 10_000] {
            h.record(v);
        }
        let p50 = h.percentile(0.50).unwrap();
        let p90 = h.percentile(0.90).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p50 >= h.min().unwrap() && p99 <= h.max().unwrap());
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.percentile(-1.0), Some(h.percentile(0.0).unwrap()));
        assert_eq!(h.percentile(2.0), Some(h.max().unwrap()));
    }

    #[test]
    fn percentile_survives_top_bucket_samples() {
        // Samples >= 2^63 land in bucket idx 64, whose upper bound must
        // saturate rather than overflow the shift.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.5), Some(u64::MAX));
        h.record(1);
        let p50 = h.percentile(0.5).unwrap();
        assert!((1..=u64::MAX).contains(&p50));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn percentile_tail_reaches_top_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        // p50 sits in the dense low bucket ([8, 15] for sample 10), p100 in
        // the outlier bucket.
        let p50 = h.percentile(0.5).unwrap();
        assert!((10..=15).contains(&p50), "{p50}");
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }

    #[test]
    fn percentile_top_bucket_interpolates_toward_observed_max() {
        // Regression: a skewed sample whose tail sits in a sparsely
        // filled top bucket. The bucket's nominal span is [2^19, 2^20-1]
        // but the largest observed sample is 600_000, so p99 must
        // interpolate toward 600_000 — not toward the nominal ceiling
        // (which the old code did, saturating p99 at exactly max).
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(600_000);
        }
        let p99 = h.percentile(0.99).unwrap();
        // rank 99 lands 0.9 into the top bucket: 524288 + 0.9·(600000 −
        // 524288) = 592428.8 → 592429.
        assert_eq!(p99, 592_429);
        assert!(p99 < h.max().unwrap(), "p99 must not saturate at max");
        // p100 still reaches the exact observed maximum.
        assert_eq!(h.percentile(1.0), Some(600_000));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!((a.min(), a.max()), (Some(5), Some(15)));
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7);
        a.record(900);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram must change nothing");
        // And the other direction: an empty histogram absorbs the donor.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_merge_disjoint_ranges() {
        let mut low = Histogram::new();
        for v in [1, 2, 3] {
            low.record(v);
        }
        let mut high = Histogram::new();
        for v in [1_000_000, 2_000_000] {
            high.record(v);
        }
        low.merge(&high);
        assert_eq!(low.count(), 5);
        assert_eq!(low.sum(), 3_000_006);
        assert_eq!((low.min(), low.max()), (Some(1), Some(2_000_000)));
        // The merged histogram is exactly what recording the union gives.
        let mut union = Histogram::new();
        for v in [1, 2, 3, 1_000_000, 2_000_000] {
            union.record(v);
        }
        assert_eq!(low, union);
    }

    #[test]
    fn histogram_self_merge_doubles_counts_keeps_shape() {
        let mut h = Histogram::new();
        for v in [4, 4, 50, 700] {
            h.record(v);
        }
        let snapshot = h.clone();
        h.merge(&snapshot);
        assert_eq!(h.count(), 2 * snapshot.count());
        assert_eq!(h.sum(), 2 * snapshot.sum());
        assert_eq!(h.min(), snapshot.min());
        assert_eq!(h.max(), snapshot.max());
        assert_eq!(h.mean(), snapshot.mean(), "doubling weights keeps the mean");
        assert_eq!(h.percentile(0.5), snapshot.percentile(0.5));
    }

    #[test]
    fn statset_ratio() {
        let mut s = StatSet::new("t");
        s.add("hit", 80);
        s.add("miss", 20);
        assert_eq!(s.ratio("hit", "miss"), 0.8);
        assert_eq!(s.ratio("nope", "also_nope"), 0.0);
    }

    #[test]
    fn statset_reset_keeps_names() {
        let mut s = StatSet::new("t");
        s.bump("x");
        s.reset();
        assert_eq!(s.get("x"), 0);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn statset_display_nonempty() {
        let mut s = StatSet::new("mee");
        s.bump("reads");
        let shown = s.to_string();
        assert!(shown.contains("mee"));
        assert!(shown.contains("reads: 1"));
    }
}
