//! Observability probes: zero-overhead-when-off span/counter hooks.
//!
//! The probe layer lets every simulator narrate what it is doing —
//! component ticks, message sends, phase spans, KV spills — without
//! perturbing the simulation. Probes **observe** [`Time`], they never
//! advance it: a run must produce byte-identical results with tracing
//! on and off (the differential test over the artifact registry pins
//! this).
//!
//! Three pieces:
//!
//! * [`Probe`] — the event vocabulary: spans (named intervals on a
//!   track), instants (zero-width markers), monotonic counters, and
//!   gauges (sampled values). Every method has a no-op default.
//! * [`NullProbe`] / [`TraceProbe`] — the no-op default and the
//!   recording implementation. [`TraceProbe`] accumulates a flat
//!   [`ProbeEvent`] log plus a [`MetricsRegistry`] of counters.
//! * [`SharedProbe`] — the cloneable handle threaded through
//!   schedulers and run contexts. Its `Null` variant is a bare enum
//!   discriminant, so the off path costs one branch; the `Trace`
//!   variant wraps the recorder in `Arc<Mutex<..>>` so contexts that
//!   cross `std::thread::scope` boundaries (the explore executor)
//!   stay `Send + Sync`.
//!
//! Track names are free-form strings; the convention across the repo
//! is hardware-flavoured names (`NPU0`, `CPU`, `link`, `ring`,
//! `router`) so the Chrome/Perfetto export groups events the way the
//! paper's figures do.

use crate::clock::Time;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Event sink for simulation observability.
///
/// All methods default to no-ops so implementations only override what
/// they record. `track` names a timeline (one row in a trace viewer);
/// `name` labels the event on it.
pub trait Probe {
    /// Whether events will actually be recorded. Callers may use this
    /// to skip event-construction work (string formatting) entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// A complete interval `[start, end]` on `track`.
    fn span(&mut self, _track: &str, _name: &str, _start: Time, _end: Time) {}

    /// Opens an interval on `track`; pair with [`Probe::span_end`].
    fn span_begin(&mut self, _track: &str, _name: &str, _at: Time) {}

    /// Closes the most recently opened interval on `track`.
    fn span_end(&mut self, _track: &str, _at: Time) {}

    /// A zero-width marker on `track`.
    fn instant(&mut self, _track: &str, _name: &str, _at: Time) {}

    /// Adds `delta` to the monotonic counter `name`.
    fn count(&mut self, _name: &str, _delta: u64) {}

    /// Samples `value` for series `name` on `track` at `at`.
    fn gauge(&mut self, _track: &str, _name: &str, _at: Time, _value: u64) {}
}

/// The default probe: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// One recorded event in a [`TraceProbe`] log, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeEvent {
    /// Complete interval on a track.
    Span {
        /// Timeline name.
        track: String,
        /// Event label.
        name: String,
        /// Interval start.
        start: Time,
        /// Interval end (`>= start`).
        end: Time,
    },
    /// Opened interval (closed by the next `End` on the same track).
    Begin {
        /// Timeline name.
        track: String,
        /// Event label.
        name: String,
        /// Open timestamp.
        at: Time,
    },
    /// Closes the innermost open interval on `track`.
    End {
        /// Timeline name.
        track: String,
        /// Close timestamp.
        at: Time,
    },
    /// Zero-width marker.
    Instant {
        /// Timeline name.
        track: String,
        /// Event label.
        name: String,
        /// Marker timestamp.
        at: Time,
    },
    /// Sampled value series point.
    Gauge {
        /// Timeline name.
        track: String,
        /// Series label.
        name: String,
        /// Sample timestamp.
        at: Time,
        /// Sampled value.
        value: u64,
    },
}

impl ProbeEvent {
    /// The track the event lives on.
    pub fn track(&self) -> &str {
        match self {
            ProbeEvent::Span { track, .. }
            | ProbeEvent::Begin { track, .. }
            | ProbeEvent::End { track, .. }
            | ProbeEvent::Instant { track, .. }
            | ProbeEvent::Gauge { track, .. } => track,
        }
    }

    /// The event's (start) timestamp.
    pub fn at(&self) -> Time {
        match self {
            ProbeEvent::Span { start, .. } => *start,
            ProbeEvent::Begin { at, .. }
            | ProbeEvent::End { at, .. }
            | ProbeEvent::Instant { at, .. }
            | ProbeEvent::Gauge { at, .. } => *at,
        }
    }

    /// The event's label (`None` for `End`, which is anonymous: it
    /// closes the innermost open interval on its track).
    pub fn name(&self) -> Option<&str> {
        match self {
            ProbeEvent::Span { name, .. }
            | ProbeEvent::Begin { name, .. }
            | ProbeEvent::Instant { name, .. }
            | ProbeEvent::Gauge { name, .. } => Some(name),
            ProbeEvent::End { .. } => None,
        }
    }
}

/// Named monotonic counters with order-independent merge.
///
/// Counters are additive `u64`s keyed by name; merging two registries
/// sums matching keys, so any partition of a run's events folds to the
/// same totals regardless of merge order (pinned by a proptest).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn bump(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of `name` (zero when never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter was ever bumped.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Adds every counter of `other` into `self`. Addition is
    /// commutative and associative, so merge order cannot matter.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.bump(name, *value);
        }
    }
}

/// The recording probe: a flat event log plus a counter registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceProbe {
    events: Vec<ProbeEvent>,
    metrics: MetricsRegistry,
}

impl TraceProbe {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceProbe::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// The accumulated counters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Probe for TraceProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, track: &str, name: &str, start: Time, end: Time) {
        debug_assert!(end >= start, "span ends before it starts");
        self.events.push(ProbeEvent::Span {
            track: track.to_owned(),
            name: name.to_owned(),
            start,
            end,
        });
    }

    fn span_begin(&mut self, track: &str, name: &str, at: Time) {
        self.events.push(ProbeEvent::Begin {
            track: track.to_owned(),
            name: name.to_owned(),
            at,
        });
    }

    fn span_end(&mut self, track: &str, at: Time) {
        self.events.push(ProbeEvent::End {
            track: track.to_owned(),
            at,
        });
    }

    fn instant(&mut self, track: &str, name: &str, at: Time) {
        self.events.push(ProbeEvent::Instant {
            track: track.to_owned(),
            name: name.to_owned(),
            at,
        });
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.metrics.bump(name, delta);
    }

    fn gauge(&mut self, track: &str, name: &str, at: Time, value: u64) {
        self.events.push(ProbeEvent::Gauge {
            track: track.to_owned(),
            name: name.to_owned(),
            at,
            value,
        });
    }
}

/// Cloneable probe handle threaded through schedulers and contexts.
///
/// `Null` (the default) is a bare discriminant: every emission site
/// checks [`SharedProbe::enabled`] first, so an untraced run pays one
/// predictable branch per site and allocates nothing. `Trace` shares
/// one [`TraceProbe`] behind `Arc<Mutex<..>>` — the handle must be
/// `Send + Sync` because run contexts cross `std::thread::scope`
/// boundaries in the explore executor (traced simulations themselves
/// are single-threaded, so the lock is uncontended).
#[derive(Debug, Clone, Default)]
pub enum SharedProbe {
    /// Record nothing (the default).
    #[default]
    Null,
    /// Record into a shared [`TraceProbe`].
    Trace(Arc<Mutex<TraceProbe>>),
}

impl SharedProbe {
    /// A fresh recording handle.
    pub fn recording() -> Self {
        SharedProbe::Trace(Arc::new(Mutex::new(TraceProbe::new())))
    }

    /// Whether emissions will be recorded. Check this before doing any
    /// event-construction work (formatting track names, etc.).
    pub fn enabled(&self) -> bool {
        matches!(self, SharedProbe::Trace(_))
    }

    fn with<R>(&self, f: impl FnOnce(&mut TraceProbe) -> R) -> Option<R> {
        match self {
            SharedProbe::Null => None,
            SharedProbe::Trace(p) => Some(f(&mut p.lock().expect("probe lock poisoned"))),
        }
    }

    /// See [`Probe::span`].
    pub fn span(&self, track: &str, name: &str, start: Time, end: Time) {
        self.with(|p| p.span(track, name, start, end));
    }

    /// See [`Probe::span_begin`].
    pub fn span_begin(&self, track: &str, name: &str, at: Time) {
        self.with(|p| p.span_begin(track, name, at));
    }

    /// See [`Probe::span_end`].
    pub fn span_end(&self, track: &str, at: Time) {
        self.with(|p| p.span_end(track, at));
    }

    /// See [`Probe::instant`].
    pub fn instant(&self, track: &str, name: &str, at: Time) {
        self.with(|p| p.instant(track, name, at));
    }

    /// See [`Probe::count`].
    pub fn count(&self, name: &str, delta: u64) {
        self.with(|p| p.count(name, delta));
    }

    /// See [`Probe::gauge`].
    pub fn gauge(&self, track: &str, name: &str, at: Time, value: u64) {
        self.with(|p| p.gauge(track, name, at, value));
    }

    /// A clone of the recorded trace (`None` for [`SharedProbe::Null`]).
    pub fn snapshot(&self) -> Option<TraceProbe> {
        self.with(|p| p.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_silent() {
        let mut p = NullProbe;
        assert!(!p.enabled());
        p.span("t", "a", Time::ZERO, Time::from_ns(1));
        p.count("c", 3);
        let shared = SharedProbe::default();
        assert!(!shared.enabled());
        assert!(shared.snapshot().is_none());
    }

    #[test]
    fn trace_probe_records_in_emission_order() {
        let mut p = TraceProbe::new();
        assert!(p.enabled());
        p.span("NPU0", "tick", Time::from_ns(1), Time::from_ns(2));
        p.instant("link", "send", Time::from_ns(1));
        p.count("events", 2);
        p.count("events", 3);
        p.gauge("CPU", "queue", Time::from_ns(4), 7);
        assert_eq!(p.events().len(), 3);
        assert_eq!(p.events()[0].track(), "NPU0");
        assert_eq!(p.events()[1].at(), Time::from_ns(1));
        assert_eq!(p.metrics().get("events"), 5);
        assert_eq!(p.metrics().get("missing"), 0);
    }

    #[test]
    fn shared_probe_clones_share_one_recorder() {
        let a = SharedProbe::recording();
        let b = a.clone();
        a.instant("router", "dispatch", Time::ZERO);
        b.count("fleet.migrations", 1);
        let snap = a.snapshot().expect("recording");
        assert_eq!(snap.events().len(), 1);
        assert_eq!(snap.metrics().get("fleet.migrations"), 1);
    }

    #[test]
    fn event_accessors_expose_track_name_and_time() {
        let mut p = TraceProbe::new();
        p.span("link", "kv_transfer", Time::from_ns(1), Time::from_ns(2));
        p.span_begin("NPU0", "decode", Time::from_ns(3));
        p.span_end("NPU0", Time::from_ns(4));
        p.instant("CPU", "kv_fetch", Time::from_ns(5));
        p.gauge("link", "wire", Time::from_ns(6), 9);
        let names: Vec<Option<&str>> = p.events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                Some("kv_transfer"),
                Some("decode"),
                None,
                Some("kv_fetch"),
                Some("wire"),
            ]
        );
    }

    #[test]
    fn registry_merge_is_additive() {
        let mut a = MetricsRegistry::new();
        a.bump("x", 2);
        a.bump("y", 1);
        let mut b = MetricsRegistry::new();
        b.bump("x", 3);
        b.bump("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.get("z"), 4);
        assert_eq!(a.len(), 3);
    }
}
