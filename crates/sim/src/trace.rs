//! Memory-access trace records.
//!
//! Kernels (Adam update, tiled GEMM, NPU DMA) produce streams of
//! [`MemAccess`] records; memory hierarchies and TEE engines consume them.
//! Keeping the record format here lets the CPU and NPU crates exchange
//! traces without depending on each other.

use crate::clock::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction/type of one memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store (write-back granularity).
    Write,
    /// Instruction fetch — TensorTEE keeps these on the non-delayed
    /// verification path (§4.3).
    InstFetch,
}

impl AccessKind {
    /// Whether this access modifies memory.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Whether this is a code fetch.
    pub fn is_inst(self) -> bool {
        matches!(self, AccessKind::InstFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::InstFetch => "I",
        };
        f.write_str(s)
    }
}

/// One memory request as issued by a core/DMA engine.
///
/// Addresses are *virtual* — the paper's TenAnalyzer observes the core's VA
/// stream precisely because physical contiguity is broken by paging
/// (Figure 9). Translation to physical addresses happens inside `tee-mem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual byte address (cacheline-aligned by producers).
    pub vaddr: u64,
    /// Request type.
    pub kind: AccessKind,
    /// Issuing hardware thread (CPU core or NPU DMA queue id).
    pub thread: u32,
}

impl MemAccess {
    /// Convenience constructor for a data read.
    pub fn read(vaddr: u64, thread: u32) -> Self {
        MemAccess {
            vaddr,
            kind: AccessKind::Read,
            thread,
        }
    }

    /// Convenience constructor for a data write.
    pub fn write(vaddr: u64, thread: u32) -> Self {
        MemAccess {
            vaddr,
            kind: AccessKind::Write,
            thread,
        }
    }

    /// Convenience constructor for an instruction fetch.
    pub fn inst(vaddr: u64, thread: u32) -> Self {
        MemAccess {
            vaddr,
            kind: AccessKind::InstFetch,
            thread,
        }
    }

    /// The address of the cacheline containing this access.
    pub fn line_addr(&self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.vaddr & !(line_bytes - 1)
    }
}

/// A timestamped trace event, for recorded replays and debugging dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the request was issued.
    pub at: Time,
    /// The request itself.
    pub access: MemAccess,
}

/// An in-memory recording of a request stream.
///
/// # Example
///
/// ```
/// use tee_sim::trace::{MemAccess, TraceLog};
/// use tee_sim::Time;
///
/// let mut log = TraceLog::new();
/// log.push(Time::ZERO, MemAccess::read(0x1000, 0));
/// log.push(Time::from_ns(2), MemAccess::write(0x1040, 0));
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.reads(), 1);
/// assert_eq!(log.writes(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, at: Time, access: MemAccess) {
        self.events.push(TraceEvent { at, access });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Count of read events.
    pub fn reads(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.access.kind == AccessKind::Read)
            .count() as u64
    }

    /// Count of write events.
    pub fn writes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.access.kind == AccessKind::Write)
            .count() as u64
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl FromIterator<TraceEvent> for TraceLog {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        TraceLog {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for TraceLog {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_masks_offset() {
        let a = MemAccess::read(0x1234, 0);
        assert_eq!(a.line_addr(64), 0x1200);
        assert_eq!(MemAccess::read(0x1240, 0).line_addr(64), 0x1240);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::InstFetch.is_inst());
        assert_eq!(AccessKind::Read.to_string(), "R");
    }

    #[test]
    fn log_counts() {
        let mut log = TraceLog::new();
        for i in 0..10u64 {
            let a = if i % 2 == 0 {
                MemAccess::read(i * 64, 0)
            } else {
                MemAccess::write(i * 64, 0)
            };
            log.push(Time::from_ns(i), a);
        }
        assert_eq!(log.reads(), 5);
        assert_eq!(log.writes(), 5);
        assert_eq!(log.len(), 10);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn log_collects_from_iterator() {
        let log: TraceLog = (0..3)
            .map(|i| TraceEvent {
                at: Time::from_ns(i),
                access: MemAccess::read(i * 64, 0),
            })
            .collect();
        assert_eq!(log.len(), 3);
    }
}
