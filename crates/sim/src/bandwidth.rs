//! Contention models for shared, bandwidth-limited resources.
//!
//! Two models are provided:
//!
//! * [`BandwidthResource`] — a serially-occupied resource (an AES engine, a
//!   DMA engine, a PCIe direction): each transfer occupies the resource for
//!   `bytes / bandwidth`, and requests queue behind one another.
//! * [`ThroughputPipe`] — a fluid-flow approximation used when several
//!   logical streams share a link and we only need aggregate completion
//!   times (used by the end-to-end scheduler for DRAM bandwidth shares).

use crate::clock::Time;
use serde::{Deserialize, Serialize};

/// A serially-occupied resource with a fixed byte bandwidth and an optional
/// fixed per-request latency (e.g. AES pipeline fill, PCIe packet setup).
///
/// # Example
///
/// ```
/// use tee_sim::{BandwidthResource, Time};
///
/// // 8 GB/s AES engine.
/// let mut aes = BandwidthResource::new(8.0e9, Time::from_ns(40));
/// let grant = aes.acquire(Time::ZERO, 64);
/// assert_eq!(grant.start, Time::ZERO);
/// // 64 B at 8 GB/s = 8 ns occupancy + 40 ns latency on delivery.
/// assert_eq!(grant.done.as_ns_f64().round(), 48.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthResource {
    bytes_per_sec: f64,
    fixed_latency: Time,
    busy_until: Time,
    total_bytes: u64,
    total_busy: Time,
}

/// The interval granted to one request on a [`BandwidthResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the resource began serving this request.
    pub start: Time,
    /// When the resource becomes free again (occupancy end).
    pub free: Time,
    /// When the request's data is fully delivered (occupancy + latency).
    pub done: Time,
}

impl BandwidthResource {
    /// Creates a resource with the given bandwidth (bytes/second) and fixed
    /// per-request latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64, fixed_latency: Time) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid bandwidth: {bytes_per_sec}"
        );
        BandwidthResource {
            bytes_per_sec,
            fixed_latency,
            busy_until: Time::ZERO,
            total_bytes: 0,
            total_busy: Time::ZERO,
        }
    }

    /// The configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Time at which the resource next becomes idle.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Total bytes served so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total busy time accumulated (for utilization reports).
    pub fn total_busy(&self) -> Time {
        self.total_busy
    }

    /// Pure function: how long `bytes` occupy this resource.
    pub fn occupancy(&self, bytes: u64) -> Time {
        Time::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Requests service for `bytes` starting no earlier than `at`.
    ///
    /// The request waits until the resource is free, occupies it for
    /// `bytes / bandwidth`, and completes `fixed_latency` later.
    pub fn acquire(&mut self, at: Time, bytes: u64) -> Grant {
        let start = at.max(self.busy_until);
        let occ = self.occupancy(bytes);
        let free = start + occ;
        self.busy_until = free;
        self.total_bytes += bytes;
        self.total_busy += occ;
        Grant {
            start,
            free,
            done: free + self.fixed_latency,
        }
    }

    /// Resets the busy horizon and accumulated statistics.
    pub fn reset(&mut self) {
        self.busy_until = Time::ZERO;
        self.total_bytes = 0;
        self.total_busy = Time::ZERO;
    }

    /// Utilization over `[Time::ZERO, horizon]` as a fraction in `[0, 1]`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        (self.total_busy.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// Fluid-flow model of a shared link: `n` concurrent streams each receive
/// `bandwidth / n`. Suitable for coarse aggregate scheduling where
/// per-request queueing detail is unnecessary.
///
/// # Example
///
/// ```
/// use tee_sim::ThroughputPipe;
///
/// let pipe = ThroughputPipe::new(128.0e9); // GDDR5: 128 GB/s
/// // Two equal streams finish in twice the solo time.
/// let solo = pipe.transfer_time(1 << 30, 1);
/// let shared = pipe.transfer_time(1 << 30, 2);
/// assert!((shared.as_secs_f64() / solo.as_secs_f64() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPipe {
    bytes_per_sec: f64,
}

impl ThroughputPipe {
    /// Creates a pipe with the given aggregate bandwidth (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid bandwidth: {bytes_per_sec}"
        );
        ThroughputPipe { bytes_per_sec }
    }

    /// Aggregate bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Time to move `bytes` when the link is split `sharers` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sharers` is zero.
    pub fn transfer_time(&self, bytes: u64, sharers: u32) -> Time {
        assert!(sharers > 0, "a transfer needs at least one stream");
        Time::from_secs_f64(bytes as f64 * sharers as f64 / self.bytes_per_sec)
    }

    /// Effective bandwidth seen by one of `sharers` streams.
    pub fn share(&self, sharers: u32) -> f64 {
        assert!(sharers > 0, "a share needs at least one stream");
        self.bytes_per_sec / sharers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_queue_fifo() {
        let mut r = BandwidthResource::new(1.0e9, Time::ZERO); // 1 GB/s => 1 ns/byte
        let a = r.acquire(Time::ZERO, 100);
        let b = r.acquire(Time::ZERO, 100);
        assert_eq!(a.start, Time::ZERO);
        assert_eq!(a.free, Time::from_ns(100));
        assert_eq!(b.start, Time::from_ns(100));
        assert_eq!(b.free, Time::from_ns(200));
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = BandwidthResource::new(1.0e9, Time::ZERO);
        r.acquire(Time::ZERO, 10);
        let late = r.acquire(Time::from_us(1), 10);
        assert_eq!(late.start, Time::from_us(1));
    }

    #[test]
    fn fixed_latency_added_to_done_not_free() {
        let mut r = BandwidthResource::new(1.0e9, Time::from_ns(40));
        let g = r.acquire(Time::ZERO, 10);
        assert_eq!(g.free, Time::from_ns(10));
        assert_eq!(g.done, Time::from_ns(50));
    }

    #[test]
    fn utilization_accumulates() {
        let mut r = BandwidthResource::new(1.0e9, Time::ZERO);
        r.acquire(Time::ZERO, 500);
        assert!((r.utilization(Time::from_us(1)) - 0.5).abs() < 1e-9);
        assert_eq!(r.total_bytes(), 500);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = BandwidthResource::new(1.0e9, Time::ZERO);
        r.acquire(Time::ZERO, 500);
        r.reset();
        assert_eq!(r.busy_until(), Time::ZERO);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn pipe_share_scales() {
        let p = ThroughputPipe::new(100.0);
        assert_eq!(p.share(1), 100.0);
        assert_eq!(p.share(4), 25.0);
    }

    #[test]
    #[should_panic]
    fn pipe_zero_sharers_panics() {
        ThroughputPipe::new(1.0).transfer_time(1, 0);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        let _ = BandwidthResource::new(0.0, Time::ZERO);
    }
}
