//! A deterministic discrete-event queue.
//!
//! Events scheduled for the same timestamp are delivered in insertion order
//! (FIFO tie-break via a monotone sequence number), which keeps simulations
//! bit-reproducible across runs regardless of queue internals.
//!
//! Two implementations share the same contract:
//!
//! * [`EventQueue`] — the production queue, a self-resizing
//!   **calendar/bucket queue** (Brown 1988). Inserts and pops are O(1)
//!   amortised, which is what lets fleet runs push 10^6–10^7 events
//!   through the scheduler hot path without the `log n` comparison and
//!   cache-miss cost of a binary heap.
//! * [`HeapQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable reference. Differential tests drive both with the same
//!   schedule and assert bit-identical pop sequences.
//!
//! Both order strictly by `(time, seq)`, so swapping one for the other can
//! never change a simulation result — only how fast it runs.

use crate::clock::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// Strict `(time, seq)` key — the one total order both queues obey.
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest calendar size; below this a flat scan is cheap anyway.
const MIN_BUCKETS: usize = 16;
/// Upper bound on calendar size so a pathological trace cannot balloon
/// the bucket array.
const MAX_BUCKETS: usize = 1 << 20;
/// Cap on `log2(bucket width in ps)`; 2^44 ps ≈ 17.6 s per bucket is far
/// coarser than any simulated workload needs.
const MAX_BUCKET_BITS: u32 = 44;

/// A discrete-event priority queue over an arbitrary payload type,
/// backed by a self-resizing calendar (bucket) queue.
///
/// # Example
///
/// ```
/// use tee_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(5), "late");
/// q.schedule(Time::from_ns(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (Time::from_ns(1), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Power-of-two array of unsorted day buckets.
    buckets: Vec<Vec<Entry<E>>>,
    /// `log2` of the bucket (day) width in picoseconds.
    bucket_bits: u32,
    /// The current minimum, held outside the calendar so `peek_time` is
    /// O(1) and each pop costs exactly one bucket scan.
    front: Option<Entry<E>>,
    /// Virtual bucket (`at.ps >> bucket_bits`, no modulo) the search
    /// cursor sits at. Invariant: no calendar entry lives in an earlier
    /// virtual bucket.
    cursor_vb: u64,
    /// Entries in `buckets` (excludes `front`).
    in_calendar: usize,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            bucket_bits: 10,
            front: None,
            cursor_vb: 0,
            in_calendar: 0,
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_calendar + usize::from(self.front.is_some())
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn virtual_bucket(&self, at: Time) -> u64 {
        at.as_ps() >> self.bucket_bits
    }

    fn bucket_index(&self, vb: u64) -> usize {
        (vb as usize) & (self.buckets.len() - 1)
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current queue time — scheduling
    /// into the past indicates a simulator bug.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut entry = Entry { at, seq, payload };
        // Keep `front` the strict (time, seq) minimum. A later seq never
        // displaces an equal-time front, preserving FIFO.
        if let Some(front) = &self.front {
            if entry.key() < front.key() {
                std::mem::swap(
                    &mut entry,
                    self.front.as_mut().expect("front checked above"),
                );
            }
        } else {
            self.front = Some(entry);
            return;
        }
        self.push_calendar(entry);
        if self.in_calendar > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    fn push_calendar(&mut self, entry: Entry<E>) {
        let vb = self.virtual_bucket(entry.at);
        // Never let the cursor sit past a live entry, or a year scan
        // could miss it and break the total order.
        if vb < self.cursor_vb {
            self.cursor_vb = vb;
        }
        let idx = self.bucket_index(vb);
        self.buckets[idx].push(entry);
        self.in_calendar += 1;
    }

    /// Extracts the strict `(time, seq)` minimum from the calendar.
    fn take_calendar_min(&mut self) -> Option<Entry<E>> {
        if self.in_calendar == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Walk day windows from the cursor; an entry belongs to the
        // current window iff its virtual bucket matches exactly, so a
        // same-index entry a whole year ahead is correctly skipped.
        for _ in 0..n {
            let idx = self.bucket_index(self.cursor_vb);
            if let Some(pos) = self.min_in_window(idx, self.cursor_vb) {
                return Some(self.remove_at(idx, pos));
            }
            self.cursor_vb += 1;
        }
        // Nothing within a full year of the cursor: direct search for the
        // global minimum, then reposition the cursor there.
        let mut best: Option<(usize, usize)> = None;
        let mut best_key = (Time::MAX, u64::MAX);
        for (idx, bucket) in self.buckets.iter().enumerate() {
            for (pos, e) in bucket.iter().enumerate() {
                if e.key() <= best_key {
                    best_key = e.key();
                    best = Some((idx, pos));
                }
            }
        }
        let (idx, pos) = best.expect("in_calendar > 0 means a minimum exists");
        self.cursor_vb = self.virtual_bucket(best_key.0);
        Some(self.remove_at(idx, pos))
    }

    /// Position of the minimal `(time, seq)` entry of `bucket[idx]` whose
    /// virtual bucket equals `vb`, if any.
    fn min_in_window(&self, idx: usize, vb: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_key = (Time::MAX, u64::MAX);
        for (pos, e) in self.buckets[idx].iter().enumerate() {
            if self.virtual_bucket(e.at) == vb && e.key() <= best_key {
                best_key = e.key();
                best = Some(pos);
            }
        }
        best
    }

    fn remove_at(&mut self, idx: usize, pos: usize) -> Entry<E> {
        self.in_calendar -= 1;
        // Buckets are unsorted; swap_remove keeps removal O(1).
        self.buckets[idx].swap_remove(pos)
    }

    /// Rebuilds the calendar: resizes the bucket array to track the
    /// population and re-derives the day width from the observed event
    /// span, so both sparse and dense schedules keep ~O(1) buckets.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.in_calendar);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        let len = entries.len();
        let target = len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
        }
        if len > 1 {
            let mut min_at = u64::MAX;
            let mut max_at = 0u64;
            for e in &entries {
                min_at = min_at.min(e.at.as_ps());
                max_at = max_at.max(e.at.as_ps());
            }
            let gap = ((max_at - min_at) / len as u64).max(1);
            // Bucket width = smallest power of two >= the mean gap, so a
            // day holds about one event.
            self.bucket_bits = (64 - gap.leading_zeros()).min(MAX_BUCKET_BITS);
        }
        self.in_calendar = 0;
        self.cursor_vb = u64::MAX;
        let mut min_vb = u64::MAX;
        for entry in entries {
            min_vb = min_vb.min(self.virtual_bucket(entry.at));
            let idx = self.bucket_index(self.virtual_bucket(entry.at));
            self.buckets[idx].push(entry);
            self.in_calendar += 1;
        }
        self.cursor_vb = if self.in_calendar == 0 { 0 } else { min_vb };
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let popped = self.front.take()?;
        self.front = self.take_calendar_min();
        if self.in_calendar < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild();
        }
        self.now = popped.at;
        Some((popped.at, popped.payload))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.front.as_ref().map(|e| e.at)
    }

    /// Drains and returns every event scheduled at exactly the next
    /// timestamp (a full "delta cycle"), in FIFO order.
    pub fn pop_batch(&mut self) -> Vec<(Time, E)> {
        let mut out = Vec::new();
        self.pop_batch_into(&mut out);
        out
    }

    /// [`Self::pop_batch`] into a caller-owned buffer (cleared first), so
    /// a scheduler loop can reuse one allocation across delta cycles.
    pub fn pop_batch_into(&mut self, out: &mut Vec<(Time, E)>) {
        out.clear();
        let Some(t) = self.peek_time() else {
            return;
        };
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
    }
}

/// The original binary-heap event queue, kept as the executable
/// reference implementation for [`EventQueue`].
///
/// Identical API and `(time, seq)` ordering contract; differential tests
/// and the `queue` perf bench drive both side by side.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current queue time.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.payload)
        })
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains and returns every event scheduled at exactly the next
    /// timestamp, in FIFO order.
    pub fn pop_batch(&mut self) -> Vec<(Time, E)> {
        let Some(t) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "a");
        q.pop();
        q.schedule_after(Time::from_ns(5), "b");
        assert_eq!(q.peek_time(), Some(Time::from_ns(15)));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn pop_batch_drains_delta_cycle() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(1), 'b');
        q.schedule(Time::from_ns(2), 'c');
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 'a');
        assert_eq!(batch[1].1, 'b');
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(q.pop_batch().is_empty());
    }

    #[test]
    fn pop_batch_into_reuses_buffer() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(3), 1u32);
        q.schedule(Time::from_ns(3), 2u32);
        let mut buf = vec![(Time::ZERO, 99u32); 8];
        q.pop_batch_into(&mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].1, 1);
        q.pop_batch_into(&mut buf);
        assert!(buf.is_empty());
    }

    /// One interleaved schedule/pop trace driven through both queues;
    /// the pop sequences must match element for element.
    fn differential_run(seed: u64, n_ops: usize, span_ns: u64) {
        let mut rng = SplitMix64::new(seed);
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut tag = 0u64;
        for op in 0..n_ops {
            // Mixed workload: bursts of schedules, bursts of pops, and
            // occasional same-timestamp pileups to stress FIFO ties.
            if rng.next_below(3) > 0 || cal.is_empty() {
                let base = cal.now().as_ps();
                let at = if rng.next_below(8) == 0 {
                    Time::from_ps(base) // exactly "now": a delta event
                } else {
                    Time::from_ps(base + rng.next_below(span_ns * 1000).max(1))
                };
                cal.schedule(at, tag);
                heap.schedule(at, tag);
                tag += 1;
            } else if rng.next_bool(0.3) {
                assert_eq!(cal.pop_batch(), heap.pop_batch(), "op {op} batch");
            } else {
                assert_eq!(cal.pop(), heap.pop(), "op {op}");
                assert_eq!(cal.now(), heap.now(), "op {op} now");
            }
            assert_eq!(cal.len(), heap.len(), "op {op} len");
            assert_eq!(cal.peek_time(), heap.peek_time(), "op {op} peek");
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), heap.pop(), "drain");
        }
        assert!(heap.is_empty());
    }

    #[test]
    fn calendar_matches_heap_dense() {
        differential_run(1, 20_000, 50);
    }

    #[test]
    fn calendar_matches_heap_sparse() {
        differential_run(2, 20_000, 5_000_000);
    }

    #[test]
    fn calendar_matches_heap_many_seeds() {
        for seed in 10..26 {
            differential_run(seed, 2_000, 1 << (seed % 22));
        }
    }

    #[test]
    fn far_future_event_survives_resizes() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs_f64(3600.0), u64::MAX);
        for i in 0..500u64 {
            q.schedule(Time::from_ns(i), i);
        }
        for i in 0..500u64 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
        assert_eq!(q.pop().map(|(_, e)| e), Some(u64::MAX));
        assert!(q.is_empty());
    }

    #[test]
    fn time_max_sentinel_is_schedulable() {
        let mut q = EventQueue::new();
        q.schedule(Time::MAX, "never");
        q.schedule(Time::from_ns(1), "soon");
        assert_eq!(q.pop().map(|(_, e)| e), Some("soon"));
        assert_eq!(q.pop(), Some((Time::MAX, "never")));
    }
}
