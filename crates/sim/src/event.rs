//! A deterministic discrete-event queue.
//!
//! Events scheduled for the same timestamp are delivered in insertion order
//! (FIFO tie-break via a monotone sequence number), which keeps simulations
//! bit-reproducible across runs regardless of heap internals.

use crate::clock::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue over an arbitrary payload type.
///
/// # Example
///
/// ```
/// use tee_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(5), "late");
/// q.schedule(Time::from_ns(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (Time::from_ns(1), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current queue time — scheduling
    /// into the past indicates a simulator bug.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.payload)
        })
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains and returns every event scheduled at exactly the next
    /// timestamp (a full "delta cycle"), in FIFO order.
    pub fn pop_batch(&mut self) -> Vec<(Time, E)> {
        let Some(t) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "a");
        q.pop();
        q.schedule_after(Time::from_ns(5), "b");
        assert_eq!(q.peek_time(), Some(Time::from_ns(15)));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn pop_batch_drains_delta_cycle() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(1), 'b');
        q.schedule(Time::from_ns(2), 'c');
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 'a');
        assert_eq!(batch[1].1, 'b');
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(q.pop_batch().is_empty());
    }
}
