//! Message authentication codes for integrity verification (§2.2, §4.3).
//!
//! * Per-cacheline MAC: `MAC = Hash(K_MAC, (C, PA, VN))`, truncated to the
//!   56-bit tag width used by the SGX MEE. The hash is SipHash-2-4 — a
//!   keyed PRF with published test vectors, standing in for the MEE's
//!   Carter–Wegman construction.
//! * Tensor MAC (§4.3): `MAC_tensor = MAC_0 ⊕ MAC_1 ⊕ … ⊕ MAC_{n-1}`.
//!   XOR combination is order-insensitive, which is exactly what lets the
//!   NPU verify tiled/reordered tensor reads, and does not shrink the
//!   56-bit output space (§4.3 "Security analysis").

use crate::ctr::LINE_BYTES;
use crate::{Key, MAC_BITS};

/// A MAC key (128-bit, independent from the encryption key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacKey(pub [u8; 16]);

impl From<Key> for MacKey {
    fn from(k: Key) -> Self {
        MacKey(k.derive("mac").0)
    }
}

/// A truncated 56-bit MAC tag.
///
/// # Example
///
/// ```
/// use tee_crypto::MacTag;
/// let t = MacTag::from_raw(u64::MAX);
/// assert_eq!(t.as_u64() >> 56, 0); // truncated to 56 bits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacTag(u64);

impl MacTag {
    /// Masks a raw 64-bit value down to the 56-bit tag space.
    pub fn from_raw(v: u64) -> Self {
        MacTag(v & ((1u64 << MAC_BITS) - 1))
    }

    /// The tag value (top 8 bits always zero).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// XOR-combines two tags (tensor-MAC accumulation).
    pub fn xor(self, other: MacTag) -> MacTag {
        MacTag(self.0 ^ other.0)
    }
}

/// SipHash-2-4 keyed hash (Aumasson & Bernstein), reference implementation.
fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..].try_into().expect("8 bytes"));
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround!();
    sipround!();
    v0 ^= last;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Computes the per-cacheline MAC over `(ciphertext, PA, VN)`.
///
/// # Example
///
/// ```
/// use tee_crypto::mac::{line_mac, MacKey};
/// let key = MacKey([0u8; 16]);
/// let ct = [0u8; 64];
/// let a = line_mac(&key, &ct, 0x40, 1);
/// let b = line_mac(&key, &ct, 0x40, 2); // different VN
/// assert_ne!(a, b);
/// ```
pub fn line_mac(key: &MacKey, ciphertext: &[u8; LINE_BYTES], pa: u64, vn: u64) -> MacTag {
    let mut buf = [0u8; LINE_BYTES + 16];
    buf[..LINE_BYTES].copy_from_slice(ciphertext);
    buf[LINE_BYTES..LINE_BYTES + 8].copy_from_slice(&pa.to_le_bytes());
    buf[LINE_BYTES + 8..].copy_from_slice(&vn.to_le_bytes());
    MacTag::from_raw(siphash24(&key.0, &buf))
}

/// Computes a MAC over an arbitrary byte message (metadata channel,
/// attestation reports, Merkle nodes).
pub fn message_mac(key: &MacKey, message: &[u8]) -> MacTag {
    MacTag::from_raw(siphash24(&key.0, message))
}

/// An order-insensitive XOR accumulator of per-line MACs: the tensor-wise
/// MAC of §4.3.
///
/// Because XOR is commutative and associative, the accumulated tag is
/// independent of the order lines are visited — tiled NPU access patterns
/// produce the same tensor MAC as streaming ones. A tag XORed in twice
/// cancels out, so callers must add each line exactly once (the update
/// bitmap in `tee-cpu` enforces the analogous property for VNs).
///
/// # Example
///
/// ```
/// use tee_crypto::{MacTag, TensorMac};
/// let t1 = MacTag::from_raw(0x12);
/// let t2 = MacTag::from_raw(0x34);
/// let mut fwd = TensorMac::new();
/// fwd.absorb(t1);
/// fwd.absorb(t2);
/// let mut rev = TensorMac::new();
/// rev.absorb(t2);
/// rev.absorb(t1);
/// assert_eq!(fwd.tag(), rev.tag());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TensorMac {
    acc: MacTag,
    lines: u64,
}

impl TensorMac {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one per-line MAC.
    pub fn absorb(&mut self, tag: MacTag) {
        self.acc = self.acc.xor(tag);
        self.lines += 1;
    }

    /// The accumulated tensor tag.
    pub fn tag(&self) -> MacTag {
        self.acc
    }

    /// Number of line MACs absorbed.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Verifies the accumulator against a stored tensor tag.
    pub fn verify(&self, expected: MacTag) -> bool {
        self.acc == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference test vectors from the SipHash paper (key = 00..0f).
    #[test]
    fn siphash_reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        // vectors_sip64 from the reference implementation, first 4 entries,
        // each the little-endian encoding of the output for input 00,01,..,len-1.
        let expected: [[u8; 8]; 4] = [
            [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
            [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
            [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
            [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
        ];
        for (len, exp) in expected.iter().enumerate() {
            let data: Vec<u8> = (0..len as u8).collect();
            let got = siphash24(&key, &data);
            assert_eq!(got.to_le_bytes(), *exp, "length {len}");
        }
    }

    #[test]
    fn tag_truncated_to_56_bits() {
        assert_eq!(MacTag::from_raw(u64::MAX).as_u64(), (1u64 << 56) - 1);
    }

    #[test]
    fn mac_binds_all_inputs() {
        let key = MacKey([7u8; 16]);
        let ct1 = [1u8; LINE_BYTES];
        let mut ct2 = ct1;
        ct2[5] ^= 1;
        let base = line_mac(&key, &ct1, 0x40, 3);
        assert_ne!(base, line_mac(&key, &ct2, 0x40, 3), "ciphertext bound");
        assert_ne!(base, line_mac(&key, &ct1, 0x80, 3), "PA bound");
        assert_ne!(base, line_mac(&key, &ct1, 0x40, 4), "VN bound");
        let other_key = MacKey([8u8; 16]);
        assert_ne!(base, line_mac(&other_key, &ct1, 0x40, 3), "key bound");
    }

    #[test]
    fn tensor_mac_order_insensitive() {
        let tags: Vec<MacTag> = (0..16u64).map(|i| MacTag::from_raw(i * 0x123457)).collect();
        let mut fwd = TensorMac::new();
        for &t in &tags {
            fwd.absorb(t);
        }
        let mut rev = TensorMac::new();
        for &t in tags.iter().rev() {
            rev.absorb(t);
        }
        assert_eq!(fwd.tag(), rev.tag());
        assert_eq!(fwd.lines(), 16);
        assert!(fwd.verify(rev.tag()));
    }

    #[test]
    fn tensor_mac_detects_single_line_tamper() {
        let key = MacKey([3u8; 16]);
        let mut good = TensorMac::new();
        let mut bad = TensorMac::new();
        for i in 0..8u64 {
            let ct = [i as u8; LINE_BYTES];
            good.absorb(line_mac(&key, &ct, i * 64, 1));
            let mut tampered = ct;
            if i == 5 {
                tampered[0] ^= 0x80;
            }
            bad.absorb(line_mac(&key, &tampered, i * 64, 1));
        }
        assert!(!bad.verify(good.tag()));
    }

    #[test]
    fn double_absorb_cancels() {
        // Documents the XOR caveat: absorbing the same tag twice cancels.
        let t = MacTag::from_raw(0xBEEF);
        let mut m = TensorMac::new();
        m.absorb(t);
        m.absorb(t);
        assert_eq!(m.tag(), MacTag::default());
    }

    #[test]
    fn message_mac_differs_by_message() {
        let key = MacKey([9u8; 16]);
        assert_ne!(message_mac(&key, b"hello"), message_mac(&key, b"hellp"));
    }
}
