//! Counter-mode cacheline encryption (§2.2).
//!
//! The MEE encrypts each 64 B cacheline with a keystream generated from a
//! counter built from the line's physical address and version number:
//!
//! ```text
//! C = AES(K_AES, (PA, VN, block_index)) ⊕ P
//! ```
//!
//! Decryption is the same operation (XOR). Freshness comes from the VN:
//! the same line written twice produces unrelated ciphertexts, and a
//! replayed stale ciphertext decrypts to garbage under the current VN —
//! which the MAC then catches.

use crate::aes::Aes128;
use crate::Key;

/// Bytes per protected cacheline.
pub const LINE_BYTES: usize = 64;

/// AES blocks per cacheline.
const BLOCKS_PER_LINE: usize = LINE_BYTES / 16;

/// The `(PA, VN)` counter identifying one cacheline version.
///
/// # Example
///
/// ```
/// use tee_crypto::LineCounter;
/// let c = LineCounter { pa: 0x1000, vn: 3 };
/// assert_ne!(c.block(0), c.block(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCounter {
    /// Physical (line) address.
    pub pa: u64,
    /// Version number — incremented on every write-back.
    pub vn: u64,
}

impl LineCounter {
    /// Serializes the counter for AES block `idx` within the line.
    pub fn block(&self, idx: u8) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.pa.to_le_bytes());
        // Reserve the top byte of the VN lane for the block index so the
        // four per-line keystream blocks never collide.
        b[8..15].copy_from_slice(&self.vn.to_le_bytes()[..7]);
        b[15] = idx;
        b
    }
}

/// A counter-mode encryption engine bound to one AES key.
///
/// # Example
///
/// ```
/// use tee_crypto::{CtrEngine, Key, LineCounter};
///
/// let eng = CtrEngine::new(Key::from_seed(5));
/// let ctr = LineCounter { pa: 0x40, vn: 1 };
/// let pt = [7u8; 64];
/// let ct = eng.encrypt_line(&pt, ctr);
/// assert_ne!(ct, pt);
/// assert_eq!(eng.decrypt_line(&ct, ctr), pt);
/// ```
#[derive(Debug, Clone)]
pub struct CtrEngine {
    aes: Aes128,
}

impl CtrEngine {
    /// Creates an engine from a key.
    pub fn new(key: Key) -> Self {
        CtrEngine {
            aes: Aes128::new(&key),
        }
    }

    /// Generates the 64 B keystream for a line counter.
    pub fn keystream(&self, ctr: LineCounter) -> [u8; LINE_BYTES] {
        let mut ks = [0u8; LINE_BYTES];
        for i in 0..BLOCKS_PER_LINE {
            let block = self.aes.encrypt_block(ctr.block(i as u8));
            ks[i * 16..(i + 1) * 16].copy_from_slice(&block);
        }
        ks
    }

    /// Encrypts one cacheline under `(PA, VN)`.
    pub fn encrypt_line(&self, plaintext: &[u8; LINE_BYTES], ctr: LineCounter) -> [u8; LINE_BYTES] {
        self.xor_line(plaintext, ctr)
    }

    /// Decrypts one cacheline under `(PA, VN)` (same XOR operation).
    pub fn decrypt_line(
        &self,
        ciphertext: &[u8; LINE_BYTES],
        ctr: LineCounter,
    ) -> [u8; LINE_BYTES] {
        self.xor_line(ciphertext, ctr)
    }

    fn xor_line(&self, data: &[u8; LINE_BYTES], ctr: LineCounter) -> [u8; LINE_BYTES] {
        let ks = self.keystream(ctr);
        let mut out = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            out[i] = data[i] ^ ks[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CtrEngine {
        CtrEngine::new(Key::from_seed(0xDEAD))
    }

    #[test]
    fn round_trip() {
        let eng = engine();
        let mut pt = [0u8; LINE_BYTES];
        for (i, b) in pt.iter_mut().enumerate() {
            *b = i as u8;
        }
        let ctr = LineCounter { pa: 0x2000, vn: 9 };
        assert_eq!(eng.decrypt_line(&eng.encrypt_line(&pt, ctr), ctr), pt);
    }

    #[test]
    fn vn_change_breaks_decryption() {
        // A replayed ciphertext decrypted under a newer VN yields garbage —
        // the freshness property the VN exists to provide.
        let eng = engine();
        let pt = [0xAB; LINE_BYTES];
        let old = LineCounter { pa: 0x40, vn: 1 };
        let new = LineCounter { pa: 0x40, vn: 2 };
        let ct_old = eng.encrypt_line(&pt, old);
        assert_ne!(eng.decrypt_line(&ct_old, new), pt);
    }

    #[test]
    fn pa_binding_prevents_relocation() {
        // Moving ciphertext to a different address decrypts to garbage.
        let eng = engine();
        let pt = [0x5A; LINE_BYTES];
        let here = LineCounter { pa: 0x100, vn: 1 };
        let there = LineCounter { pa: 0x140, vn: 1 };
        let ct = eng.encrypt_line(&pt, here);
        assert_ne!(eng.decrypt_line(&ct, there), pt);
    }

    #[test]
    fn keystream_blocks_are_distinct() {
        let eng = engine();
        let ks = eng.keystream(LineCounter { pa: 0, vn: 0 });
        for i in 0..BLOCKS_PER_LINE {
            for j in (i + 1)..BLOCKS_PER_LINE {
                assert_ne!(ks[i * 16..(i + 1) * 16], ks[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn same_plaintext_two_versions_differ() {
        let eng = engine();
        let pt = [1u8; LINE_BYTES];
        let c1 = eng.encrypt_line(&pt, LineCounter { pa: 0, vn: 1 });
        let c2 = eng.encrypt_line(&pt, LineCounter { pa: 0, vn: 2 });
        assert_ne!(c1, c2);
    }

    #[test]
    fn counter_block_encodes_index_and_fields() {
        let c = LineCounter {
            pa: 0x1122334455667788,
            vn: 0x0011223344556677,
        };
        let b0 = c.block(0);
        assert_eq!(&b0[..8], &0x1122334455667788u64.to_le_bytes());
        assert_eq!(b0[15], 0);
        assert_eq!(c.block(3)[15], 3);
    }
}
