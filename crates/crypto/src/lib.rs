//! # tee-crypto
//!
//! Cryptographic building blocks for the TensorTEE memory-encryption
//! engines and secure channels (§2.2 counter-mode memory protection,
//! §4.3 tensor MACs, §4.4 the direct-transfer key agreement), implemented
//! from scratch (no external crypto crates are available offline):
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), used in counter mode,
//! * [`ctr`] — counter-mode cacheline encryption with `(PA, VN)` counters
//!   exactly as formulated in §2.2: `C = AES(K, (PA, VN)) ⊕ P`,
//! * [`mac`] — keyed MACs per cacheline
//!   (`MAC = Hash(K_MAC, (C, PA, VN))`, §2.2) and the XOR-combined
//!   *tensor MAC* of §4.3 (`MAC_tensor = MAC_0 ⊕ … ⊕ MAC_{n-1}`),
//! * [`merkle`] — the 8-ary Bonsai Merkle tree protecting off-chip VNs in
//!   the SGX-like baseline,
//! * [`kex`] — a Diffie–Hellman key agreement used by the direct-transfer
//!   protocol so both enclaves hold the same AES/MAC keys (§4.4.2),
//! * [`attest`] — enclave measurement and mutual attestation reports.
//!
//! Functional fidelity matters here: integration tests tamper with and
//! replay simulated DRAM ciphertext and must observe real MAC/VN failures.
//!
//! ## Security note
//!
//! The AES and SipHash implementations follow their specifications and pass
//! the published test vectors, but they are *simulation components*: they are
//! not constant-time and the Diffie–Hellman group is deliberately small.
//! Do not reuse them as production cryptography.

pub mod aes;
pub mod attest;
pub mod ctr;
pub mod kex;
pub mod mac;
pub mod merkle;

pub use aes::Aes128;
pub use attest::{AttestationError, EnclaveIdentity, Report};
pub use ctr::{CtrEngine, LineCounter};
pub use kex::DhKeyPair;
pub use mac::{MacKey, MacTag, TensorMac};
pub use merkle::VnMerkleTree;

/// AES pipeline latency in engine cycles (Table 1: "AES Encryption …
/// 40 cycle lat." for both CPU and NPU engines).
pub const AES_LATENCY_CYCLES: u64 = 40;

/// MAC computation latency in engine cycles (Table 1).
pub const MAC_LATENCY_CYCLES: u64 = 40;

/// Version-number width in bits (SGX MEE uses a 56-bit VN per 64 B line).
pub const VN_BITS: u32 = 56;

/// MAC tag width in bits (§4.3: 56-bit MAC output space).
pub const MAC_BITS: u32 = 56;

/// A 128-bit symmetric key shared by the encryption and MAC engines of one
/// enclave (or, after key exchange, by a pair of enclaves).
///
/// # Example
///
/// ```
/// use tee_crypto::Key;
/// let k = Key::from_seed(42);
/// assert_ne!(k.derive("enc"), k.derive("mac"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub [u8; 16]);

impl Key {
    /// Derives a key from a 64-bit seed (simulation convenience).
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
        Key(bytes)
    }

    /// Derives a distinct sub-key for a named purpose (domain separation).
    pub fn derive(&self, label: &str) -> Key {
        let mut k = self.0;
        for (i, b) in label.bytes().enumerate() {
            k[i % 16] ^= b.rotate_left((i % 7) as u32);
        }
        // One AES pass to mix.
        let aes = Aes128::new(&Key(k));
        let block = aes.encrypt_block([0u8; 16]);
        Key(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_differ_by_label() {
        let k = Key::from_seed(7);
        assert_ne!(k.derive("enc"), k.derive("mac"));
        assert_eq!(k.derive("enc"), k.derive("enc"));
    }

    #[test]
    fn seeded_keys_are_deterministic() {
        assert_eq!(Key::from_seed(1), Key::from_seed(1));
        assert_ne!(Key::from_seed(1), Key::from_seed(2));
    }
}
