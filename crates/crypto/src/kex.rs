//! Diffie–Hellman key agreement for the direct-transfer protocol (§4.4.2).
//!
//! After mutual attestation, the CPU and NPU enclaves "perform a
//! key-exchange protocol like the Diffie–Hellman which enables the same key
//! in both enclaves without leaking the key in the communication process".
//!
//! This is a *modeled* exchange over the multiplicative group modulo the
//! Mersenne prime `2^61 - 1` — it exercises the protocol shape (nothing
//! secret crosses the bus; both sides derive the same [`Key`]) at
//! simulation cost, not production strength. See the crate-level security
//! note.

use crate::Key;

/// The group modulus: Mersenne prime `2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// A generator of a large subgroup.
pub const GENERATOR: u64 = 3;

/// Modular exponentiation `base^exp mod MODULUS`.
fn modpow(mut base: u64, mut exp: u64) -> u64 {
    let m = MODULUS as u128;
    let mut acc: u128 = 1;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    base = acc as u64;
    base
}

/// One party's Diffie–Hellman key pair.
///
/// # Example
///
/// ```
/// use tee_crypto::DhKeyPair;
/// let cpu = DhKeyPair::from_secret(0x1234_5678_9abc);
/// let npu = DhKeyPair::from_secret(0xfeed_f00d_cafe);
/// let k1 = cpu.shared_key(npu.public());
/// let k2 = npu.shared_key(cpu.public());
/// assert_eq!(k1, k2);
/// ```
#[derive(Debug, Clone)]
pub struct DhKeyPair {
    secret: u64,
    public: u64,
}

impl DhKeyPair {
    /// Creates a key pair from a private exponent.
    ///
    /// # Panics
    ///
    /// Panics if `secret` is zero (a degenerate exponent).
    pub fn from_secret(secret: u64) -> Self {
        assert!(secret != 0, "secret exponent must be nonzero");
        let secret = secret % (MODULUS - 1);
        let secret = if secret == 0 { 1 } else { secret };
        DhKeyPair {
            secret,
            public: modpow(GENERATOR, secret),
        }
    }

    /// The public value `g^secret mod p` — safe to send over the bus.
    pub fn public(&self) -> u64 {
        self.public
    }

    /// Derives the shared symmetric [`Key`] from the peer's public value.
    pub fn shared_key(&self, peer_public: u64) -> Key {
        let shared = modpow(peer_public, self.secret);
        Key::from_seed(shared).derive("dh-session")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        let a = DhKeyPair::from_secret(987_654_321);
        let b = DhKeyPair::from_secret(123_456_789);
        assert_eq!(a.shared_key(b.public()), b.shared_key(a.public()));
    }

    #[test]
    fn different_peers_different_keys() {
        let a = DhKeyPair::from_secret(11);
        let b = DhKeyPair::from_secret(22);
        let c = DhKeyPair::from_secret(33);
        assert_ne!(a.shared_key(b.public()), a.shared_key(c.public()));
    }

    #[test]
    fn public_value_hides_secret() {
        // The public value is not the secret and not a trivial function of it.
        let a = DhKeyPair::from_secret(42);
        assert_ne!(a.public(), 42);
        assert_ne!(a.public(), GENERATOR * 42);
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(modpow(2, 10), 1024);
        assert_eq!(modpow(GENERATOR, 0), 1);
        assert_eq!(modpow(GENERATOR, 1), GENERATOR);
    }

    #[test]
    fn modpow_fermat() {
        // g^(p-1) ≡ 1 mod p for prime p.
        assert_eq!(modpow(GENERATOR, MODULUS - 1), 1);
        assert_eq!(modpow(12345, MODULUS - 1), 1);
    }

    #[test]
    #[should_panic]
    fn zero_secret_rejected() {
        let _ = DhKeyPair::from_secret(0);
    }
}
