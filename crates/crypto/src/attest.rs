//! Enclave measurement and mutual attestation (§4.4.2, authentication phase).
//!
//! Enclave creation copies code/data into secure memory and computes a
//! *measurement* (a MAC over the image under a device key). Each side then
//! produces a [`Report`] binding its measurement to a peer-supplied nonce;
//! the peer verifies the report before the Diffie–Hellman exchange
//! establishes the shared session key.

use crate::kex::DhKeyPair;
use crate::mac::{message_mac, MacKey, MacTag};
use crate::Key;

/// Reasons attestation can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The report MAC did not verify under the device key.
    BadSignature,
    /// The measurement does not match the expected enclave image.
    MeasurementMismatch,
    /// The nonce in the report is not the one we challenged with.
    NonceMismatch,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttestationError::BadSignature => "attestation report signature invalid",
            AttestationError::MeasurementMismatch => "enclave measurement mismatch",
            AttestationError::NonceMismatch => "attestation nonce mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AttestationError {}

/// The identity of one enclave: its measured code+data image.
///
/// # Example
///
/// ```
/// use tee_crypto::{EnclaveIdentity, Key};
/// let device = Key::from_seed(1);
/// let enclave = EnclaveIdentity::measure("npu-kernel", b"...code image...", device);
/// let report = enclave.report(7);
/// assert!(report.verify(&enclave.measurement(), 7, device).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct EnclaveIdentity {
    name: String,
    measurement: MacTag,
    device_key: Key,
}

impl EnclaveIdentity {
    /// Measures an enclave image under the platform's device key.
    pub fn measure(name: impl Into<String>, image: &[u8], device_key: Key) -> Self {
        let mk = MacKey(device_key.derive("measure").0);
        EnclaveIdentity {
            name: name.into(),
            measurement: message_mac(&mk, image),
            device_key,
        }
    }

    /// The enclave's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measurement tag.
    pub fn measurement(&self) -> MacTag {
        self.measurement
    }

    /// Produces an attestation report for a challenger-chosen nonce.
    pub fn report(&self, nonce: u64) -> Report {
        let sig_key = MacKey(self.device_key.derive("report").0);
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.measurement.as_u64().to_le_bytes());
        buf.extend_from_slice(&nonce.to_le_bytes());
        Report {
            measurement: self.measurement,
            nonce,
            signature: message_mac(&sig_key, &buf),
        }
    }
}

/// A signed attestation report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Claimed enclave measurement.
    pub measurement: MacTag,
    /// Challenger nonce this report answers.
    pub nonce: u64,
    /// MAC over `(measurement, nonce)` under the device report key.
    pub signature: MacTag,
}

impl Report {
    /// Verifies this report against an expected measurement and nonce.
    ///
    /// # Errors
    ///
    /// Returns an [`AttestationError`] naming the first check that failed
    /// (signature, then nonce, then measurement).
    pub fn verify(
        &self,
        expected_measurement: &MacTag,
        expected_nonce: u64,
        device_key: Key,
    ) -> Result<(), AttestationError> {
        let sig_key = MacKey(device_key.derive("report").0);
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.measurement.as_u64().to_le_bytes());
        buf.extend_from_slice(&self.nonce.to_le_bytes());
        if message_mac(&sig_key, &buf) != self.signature {
            return Err(AttestationError::BadSignature);
        }
        if self.nonce != expected_nonce {
            return Err(AttestationError::NonceMismatch);
        }
        if self.measurement != *expected_measurement {
            return Err(AttestationError::MeasurementMismatch);
        }
        Ok(())
    }
}

/// Runs the full authentication phase between two enclaves: mutual report
/// verification followed by Diffie–Hellman agreement.
///
/// Returns the shared session [`Key`] both enclaves now hold on-chip.
///
/// # Errors
///
/// Propagates the first failed report verification.
pub fn mutual_attest(
    cpu: &EnclaveIdentity,
    npu: &EnclaveIdentity,
    device_key: Key,
    cpu_nonce: u64,
    npu_nonce: u64,
    cpu_dh_secret: u64,
    npu_dh_secret: u64,
) -> Result<Key, AttestationError> {
    // CPU challenges NPU, NPU challenges CPU.
    let npu_report = npu.report(cpu_nonce);
    npu_report.verify(&npu.measurement(), cpu_nonce, device_key)?;
    let cpu_report = cpu.report(npu_nonce);
    cpu_report.verify(&cpu.measurement(), npu_nonce, device_key)?;

    // Key exchange: only public values cross the (snoopable) bus.
    let cpu_kp = DhKeyPair::from_secret(cpu_dh_secret);
    let npu_kp = DhKeyPair::from_secret(npu_dh_secret);
    let k_cpu = cpu_kp.shared_key(npu_kp.public());
    let k_npu = npu_kp.shared_key(cpu_kp.public());
    debug_assert_eq!(k_cpu, k_npu);
    Ok(k_cpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EnclaveIdentity, EnclaveIdentity, Key) {
        let device = Key::from_seed(0xD00D);
        let cpu = EnclaveIdentity::measure("cpu-adam", b"cpu enclave image", device);
        let npu = EnclaveIdentity::measure("npu-train", b"npu enclave image", device);
        (cpu, npu, device)
    }

    #[test]
    fn report_round_trip() {
        let (cpu, _, device) = setup();
        let r = cpu.report(99);
        assert!(r.verify(&cpu.measurement(), 99, device).is_ok());
    }

    #[test]
    fn forged_signature_rejected() {
        let (cpu, _, device) = setup();
        let mut r = cpu.report(99);
        r.signature = r.signature.xor(MacTag::from_raw(1));
        assert_eq!(
            r.verify(&cpu.measurement(), 99, device),
            Err(AttestationError::BadSignature)
        );
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (cpu, _, device) = setup();
        let r = cpu.report(1);
        assert_eq!(
            r.verify(&cpu.measurement(), 2, device),
            Err(AttestationError::NonceMismatch)
        );
    }

    #[test]
    fn wrong_image_rejected() {
        let (cpu, npu, device) = setup();
        let r = cpu.report(5);
        assert_eq!(
            r.verify(&npu.measurement(), 5, device),
            Err(AttestationError::MeasurementMismatch)
        );
    }

    #[test]
    fn tampered_image_changes_measurement() {
        let device = Key::from_seed(0xD00D);
        let clean = EnclaveIdentity::measure("e", b"image", device);
        let evil = EnclaveIdentity::measure("e", b"imagE", device);
        assert_ne!(clean.measurement(), evil.measurement());
    }

    #[test]
    fn mutual_attest_yields_shared_key() {
        let (cpu, npu, device) = setup();
        let k = mutual_attest(&cpu, &npu, device, 11, 22, 1234, 5678).expect("attestation");
        let k2 = mutual_attest(&cpu, &npu, device, 11, 22, 1234, 5678).expect("attestation");
        assert_eq!(k, k2, "deterministic for fixed nonces/secrets");
    }
}
