//! 8-ary Bonsai Merkle tree over off-chip version numbers (§2.2).
//!
//! The SGX-like baseline stores per-cacheline VNs in DRAM; their integrity
//! is guaranteed by a Merkle tree whose root lives on-chip (BMT \[72\]: the
//! tree protects only the VNs, MACs protect data directly). Every VN read
//! triggers a leaf-to-root verification walk — the dominant metadata
//! overhead TensorTEE eliminates on the CPU side.
//!
//! This implementation is *functional*: it stores real node tags, so tests
//! can corrupt off-chip state and watch verification fail, and the CPU MEE
//! model counts the per-level accesses for its timing.

use crate::mac::{message_mac, MacKey, MacTag};

/// Tree arity (8-ary, as in the paper's SGX baseline).
pub const ARITY: usize = 8;

/// Error returned when a verification walk meets an inconsistent node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Level at which the mismatch was found (0 = leaf hash level).
    pub level: usize,
    /// Node index within that level.
    pub index: usize,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "merkle integrity violation at level {} index {}",
            self.level, self.index
        )
    }
}

impl std::error::Error for IntegrityViolation {}

/// An 8-ary Merkle tree over a flat array of version numbers.
///
/// Level 0 holds the VN leaves; level `k+1` holds MAC tags over groups of
/// eight level-`k` entries; the single top tag is the on-chip root.
///
/// # Example
///
/// ```
/// use tee_crypto::{mac::MacKey, VnMerkleTree};
///
/// let mut tree = VnMerkleTree::new(64, MacKey([1; 16]));
/// tree.increment(5);
/// assert_eq!(tree.vn(5), 1);
/// assert!(tree.verify(5).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct VnMerkleTree {
    key: MacKey,
    /// Leaf VNs.
    vns: Vec<u64>,
    /// hash_levels[0] = tags over leaf groups, …, last = [root].
    hash_levels: Vec<Vec<MacTag>>,
}

impl VnMerkleTree {
    /// Builds a tree over `num_leaves` zero VNs.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero.
    pub fn new(num_leaves: usize, key: MacKey) -> Self {
        assert!(num_leaves > 0, "tree needs at least one leaf");
        let vns = vec![0u64; num_leaves];
        let mut tree = VnMerkleTree {
            key,
            vns,
            hash_levels: Vec::new(),
        };
        tree.rebuild();
        tree
    }

    /// Number of VN leaves.
    pub fn num_leaves(&self) -> usize {
        self.vns.len()
    }

    /// Number of hash levels above the leaves (= DRAM accesses saved per
    /// read when VNs move on-chip).
    pub fn depth(&self) -> usize {
        self.hash_levels.len()
    }

    /// Reads a leaf VN (no verification).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn vn(&self, idx: usize) -> u64 {
        self.vns[idx]
    }

    /// The on-chip root tag.
    pub fn root(&self) -> MacTag {
        *self
            .hash_levels
            .last()
            .and_then(|l| l.first())
            .expect("non-empty tree has a root")
    }

    /// Increments the VN at `idx` (a write-back) and updates the path to
    /// the root. Returns the number of hash levels touched.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn increment(&mut self, idx: usize) -> usize {
        self.vns[idx] += 1;
        self.update_path(idx)
    }

    /// Overwrites the VN at `idx` legitimately (used when restoring a
    /// saved enclave context) and updates the path.
    pub fn set_vn(&mut self, idx: usize, vn: u64) -> usize {
        self.vns[idx] = vn;
        self.update_path(idx)
    }

    /// Verifies the leaf-to-root path for `idx`.
    ///
    /// Returns the number of levels walked on success.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityViolation`] when a recomputed group tag does not
    /// match the stored parent tag — i.e. off-chip state was tampered with.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn verify(&self, idx: usize) -> Result<usize, IntegrityViolation> {
        assert!(idx < self.vns.len(), "leaf index out of bounds");
        let mut group = idx / ARITY;
        // Level 0: recompute the tag over the leaf group.
        let computed = self.leaf_group_tag(group);
        if computed != self.hash_levels[0][group] {
            return Err(IntegrityViolation {
                level: 0,
                index: group,
            });
        }
        // Upper levels: recompute each parent from stored children.
        for level in 1..self.hash_levels.len() {
            let parent = group / ARITY;
            let computed = self.inner_group_tag(level - 1, parent);
            if computed != self.hash_levels[level][parent] {
                return Err(IntegrityViolation {
                    level,
                    index: parent,
                });
            }
            group = parent;
        }
        Ok(self.hash_levels.len())
    }

    /// Adversarial hook: overwrite a leaf VN *without* updating hashes,
    /// emulating a physical attack on off-chip VN storage.
    pub fn corrupt_leaf(&mut self, idx: usize, vn: u64) {
        self.vns[idx] = vn;
    }

    /// Adversarial hook: flip bits in a stored interior tag (levels below
    /// the root; the root is on-chip and untouchable).
    ///
    /// # Panics
    ///
    /// Panics if targeting the root level or out-of-range indices.
    pub fn corrupt_node(&mut self, level: usize, idx: usize) {
        assert!(
            level + 1 < self.hash_levels.len(),
            "the root is on-chip and cannot be corrupted"
        );
        let t = self.hash_levels[level][idx];
        self.hash_levels[level][idx] = t.xor(MacTag::from_raw(0x1));
    }

    fn rebuild(&mut self) {
        self.hash_levels.clear();
        let groups = self.vns.len().div_ceil(ARITY);
        let mut level: Vec<MacTag> = (0..groups)
            .map(|g| self.leaf_group_tag_of(&self.vns, g))
            .collect();
        self.hash_levels.push(level.clone());
        while level.len() > 1 {
            let next: Vec<MacTag> = (0..level.len().div_ceil(ARITY))
                .map(|g| Self::tag_over(&self.key, &level, g))
                .collect();
            self.hash_levels.push(next.clone());
            level = next;
        }
    }

    fn update_path(&mut self, idx: usize) -> usize {
        let mut group = idx / ARITY;
        self.hash_levels[0][group] = self.leaf_group_tag(group);
        let mut touched = 1;
        for level in 1..self.hash_levels.len() {
            let parent = group / ARITY;
            self.hash_levels[level][parent] = self.inner_group_tag(level - 1, parent);
            group = parent;
            touched += 1;
        }
        touched
    }

    fn leaf_group_tag(&self, group: usize) -> MacTag {
        self.leaf_group_tag_of(&self.vns, group)
    }

    fn leaf_group_tag_of(&self, vns: &[u64], group: usize) -> MacTag {
        let start = group * ARITY;
        let end = (start + ARITY).min(vns.len());
        let mut buf = Vec::with_capacity((end - start) * 8 + 8);
        buf.extend_from_slice(&(group as u64).to_le_bytes());
        for &vn in &vns[start..end] {
            buf.extend_from_slice(&vn.to_le_bytes());
        }
        message_mac(&self.key, &buf)
    }

    fn inner_group_tag(&self, child_level: usize, group: usize) -> MacTag {
        Self::tag_over(&self.key, &self.hash_levels[child_level], group)
    }

    fn tag_over(key: &MacKey, children: &[MacTag], group: usize) -> MacTag {
        let start = group * ARITY;
        let end = (start + ARITY).min(children.len());
        let mut buf = Vec::with_capacity((end - start) * 8 + 8);
        buf.extend_from_slice(&(group as u64).to_le_bytes());
        for tag in &children[start..end] {
            buf.extend_from_slice(&tag.as_u64().to_le_bytes());
        }
        message_mac(key, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(leaves: usize) -> VnMerkleTree {
        VnMerkleTree::new(leaves, MacKey([0x42; 16]))
    }

    #[test]
    fn depth_grows_logarithmically() {
        assert_eq!(tree(1).depth(), 1);
        assert_eq!(tree(8).depth(), 1);
        assert_eq!(tree(9).depth(), 2);
        assert_eq!(tree(64).depth(), 2);
        assert_eq!(tree(65).depth(), 3);
        assert_eq!(tree(4096).depth(), 4);
    }

    #[test]
    fn fresh_tree_verifies_everywhere() {
        let t = tree(100);
        for i in 0..100 {
            assert!(t.verify(i).is_ok());
        }
    }

    #[test]
    fn increment_keeps_consistency() {
        let mut t = tree(200);
        for i in (0..200).step_by(7) {
            t.increment(i);
        }
        for i in 0..200 {
            assert!(t.verify(i).is_ok(), "leaf {i}");
        }
        assert_eq!(t.vn(7), 1);
        assert_eq!(t.vn(8), 0);
    }

    #[test]
    fn corrupt_leaf_detected() {
        let mut t = tree(64);
        t.increment(10);
        let root_before = t.root();
        t.corrupt_leaf(10, 0); // replay the stale VN
        assert_eq!(t.root(), root_before, "corruption bypasses hash update");
        let err = t.verify(10).unwrap_err();
        assert_eq!(err.level, 0);
        // Unrelated leaves in other groups still verify.
        assert!(t.verify(63).is_ok());
    }

    #[test]
    fn corrupt_inner_node_detected() {
        let mut t = tree(512); // depth 3
        t.corrupt_node(0, 3);
        // Any leaf under that node fails at level 1 (parent mismatch) or 0.
        let err = t.verify(3 * ARITY).unwrap_err();
        assert!(err.level <= 1);
    }

    #[test]
    fn root_changes_with_updates() {
        let mut t = tree(64);
        let r0 = t.root();
        t.increment(0);
        assert_ne!(t.root(), r0);
    }

    #[test]
    fn set_vn_restores_context() {
        let mut t = tree(16);
        t.set_vn(3, 77);
        assert_eq!(t.vn(3), 77);
        assert!(t.verify(3).is_ok());
    }

    #[test]
    fn update_touches_depth_levels() {
        let mut t = tree(4096);
        assert_eq!(t.increment(0), 4);
    }

    #[test]
    #[should_panic]
    fn empty_tree_rejected() {
        let _ = tree(0);
    }

    #[test]
    #[should_panic]
    fn root_cannot_be_corrupted() {
        let mut t = tree(64);
        let top = t.depth() - 1;
        t.corrupt_node(top, 0);
    }
}
