//! Property-based tests for the cryptographic primitives.

use proptest::collection::vec;
use proptest::prelude::*;
use tee_crypto::aes::Aes128;
use tee_crypto::ctr::{CtrEngine, LineCounter, LINE_BYTES};
use tee_crypto::mac::{line_mac, message_mac, MacKey};
use tee_crypto::merkle::VnMerkleTree;
use tee_crypto::{DhKeyPair, Key};

proptest! {
    // Shared CI configuration: deterministic per-test seeds, bounded case
    // count, both overridable via PROPTEST_CASES / PROPTEST_RNG_SEED when
    // replaying a regression (see proptest-regressions/README.md).
    #![proptest_config(ProptestConfig::ci())]
    /// AES is a permutation: decrypt ∘ encrypt = id for any key/block.
    #[test]
    fn aes_block_round_trip(key_seed in any::<u64>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&Key::from_seed(key_seed));
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    /// AES injectivity: distinct blocks map to distinct ciphertexts.
    #[test]
    fn aes_injective(key_seed in any::<u64>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(&Key::from_seed(key_seed));
        prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
    }

    /// Keystream depends on every counter field: changing the VN, the PA
    /// or the key changes the ciphertext.
    #[test]
    fn ctr_counter_separation(seed in any::<u64>(), pa in any::<u64>(), vn in 0u64..u64::MAX) {
        let pa = pa & !63;
        let eng = CtrEngine::new(Key::from_seed(seed));
        let pt = [0u8; LINE_BYTES];
        let base = eng.encrypt_line(&pt, LineCounter { pa, vn });
        prop_assert_ne!(base, eng.encrypt_line(&pt, LineCounter { pa, vn: vn + 1 }));
        prop_assert_ne!(base, eng.encrypt_line(&pt, LineCounter { pa: pa ^ 64, vn }));
        let other = CtrEngine::new(Key::from_seed(seed.wrapping_add(1)));
        prop_assert_ne!(base, other.encrypt_line(&pt, LineCounter { pa, vn }));
    }

    /// MACs never exceed their 56-bit space and differ across keys.
    #[test]
    fn mac_tag_space(seed in any::<u64>(), msg in vec(any::<u8>(), 0..256)) {
        let k1 = MacKey(Key::from_seed(seed).0);
        let k2 = MacKey(Key::from_seed(seed ^ 0xFFFF).0);
        let t1 = message_mac(&k1, &msg);
        prop_assert_eq!(t1.as_u64() >> 56, 0);
        // Distinct keys should disagree (56-bit collision chance ~2^-56).
        prop_assert_ne!(t1, message_mac(&k2, &msg));
    }

    /// line_mac is deterministic.
    #[test]
    fn line_mac_deterministic(seed in any::<u64>(), data in any::<[u8; 32]>(), pa in any::<u64>(), vn in any::<u64>()) {
        let key = MacKey(Key::from_seed(seed).0);
        let mut line = [0u8; LINE_BYTES];
        line[..32].copy_from_slice(&data);
        prop_assert_eq!(line_mac(&key, &line, pa, vn), line_mac(&key, &line, pa, vn));
    }

    /// Merkle root changes for every distinct single-leaf update.
    #[test]
    fn merkle_root_sensitivity(leaves in 2usize..200, idx in any::<proptest::sample::Index>()) {
        let mut t = VnMerkleTree::new(leaves, MacKey([9; 16]));
        let root0 = t.root();
        let i = idx.index(leaves);
        t.increment(i);
        prop_assert_ne!(t.root(), root0);
        prop_assert!(t.verify(i).is_ok());
    }

    /// Merkle interior corruption is detected for leaves in that subtree.
    #[test]
    fn merkle_interior_corruption(group in 0usize..8) {
        let mut t = VnMerkleTree::new(512, MacKey([3; 16])); // 3 levels
        t.corrupt_node(0, group);
        let leaf = group * 8;
        prop_assert!(t.verify(leaf).is_err());
    }

    /// DH public values are never the secret itself for nontrivial secrets.
    #[test]
    fn dh_public_hides_secret(s in 2u64..(1 << 60)) {
        let kp = DhKeyPair::from_secret(s);
        prop_assert_ne!(kp.public(), s);
    }

    /// Key derivation is injective across labels (sampled).
    #[test]
    fn key_derivation_label_separation(seed in any::<u64>()) {
        let k = Key::from_seed(seed);
        let labels = ["enc", "mac", "meta-enc", "meta-mac", "report", "measure"];
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                prop_assert_ne!(k.derive(a), k.derive(b), "{} vs {}", a, b);
            }
        }
    }
}
